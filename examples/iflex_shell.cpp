// Interactive iFlex shell: load or generate a corpus, write an Alog
// program rule by rule, execute it, and refine it with constraints —
// the manual version of the develop/execute/refine loop.
//
//   ./examples/iflex_shell
//
//   iflex> gen movies
//   iflex> declare extractEbert 1 2
//   iflex> rule q(t) :- ebertPages(x), extractEbert(x, t, yr), yr < 1960.
//   iflex> rule extractEbert(x, t, yr) :- from(x, t), from(x, yr).
//   iflex> query q
//   iflex> run
//   iflex> constrain extractEbert 1 numeric yes
//   iflex> run
//
// Also scriptable: ./examples/iflex_shell < script.iflex
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/strutil.h"
#include "resilience/deadline.h"
#include "resilience/failpoint.h"
#include "datagen/books.h"
#include "datagen/dblife.h"
#include "datagen/dblp.h"
#include "datagen/movies.h"
#include "exec/executor.h"
#include "obs/cost_model.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/trace.h"
#include "runtime/task_pool.h"
#include "text/markup_parser.h"

using namespace iflex;

namespace {

class Shell {
 public:
  /// `threads == 0` sizes the pool to the hardware; 1 runs serial (no
  /// pool at all). Executions are bit-identical at any setting.
  Shell(size_t threads, int64_t deadline_ms) : catalog_(&corpus_) {
    catalog_.RegisterBuiltinFunctions();
    if (threads == 0) threads = std::thread::hardware_concurrency();
    if (threads > 1) pool_ = std::make_unique<runtime::TaskPool>(threads);
    deadline_ms_ = deadline_ms;
  }

  /// Exits nonzero when any command failed, so scripted runs
  /// (./iflex_shell < script.iflex) compose with `&&` and CI.
  int Run() {
    std::string line;
    Prompt();
    while (std::getline(std::cin, line)) {
      Status st = Dispatch(line);
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        had_error_ = true;
      }
      if (done_) break;
      Prompt();
    }
    return had_error_ ? 1 : 0;
  }

 private:
  void Prompt() {
    std::printf("iflex> ");
    std::fflush(stdout);
  }

  Status Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') return Status::OK();
    if (cmd == "quit" || cmd == "exit") {
      done_ = true;
      return Status::OK();
    }
    if (cmd == "help") return Help();
    if (cmd == "gen") return Gen(in);
    if (cmd == "load") return Load(in);
    if (cmd == "declare") return Declare(in);
    if (cmd == "rule") return AddRule(line.substr(5));
    if (cmd == "program") {
      std::printf("%s", program_src_.c_str());
      return Status::OK();
    }
    if (cmd == "clear") {
      program_src_.clear();
      return Status::OK();
    }
    if (cmd == "query") {
      in >> query_;
      return Status::OK();
    }
    if (cmd == "tables") return Tables();
    if (cmd == "constrain") return Constrain(in);
    if (cmd == "run") return Execute();
    if (cmd == "trace") {
      std::printf("%s", obs::DefaultTracer().SummaryTree().c_str());
      return Status::OK();
    }
    if (cmd == "explain") return Explain();
    if (cmd == "telemetry") return Telemetry(in);
    return Status::InvalidArgument("unknown command '" + cmd +
                                   "' (try: help)");
  }

  Status Help() {
    std::printf(
        "commands:\n"
        "  gen movies|dblp|books|dblife    generate a synthetic domain\n"
        "  load <table> <file> [...]       load markup files into a table\n"
        "  declare <iepred> <nin> <nout>   declare an IE predicate\n"
        "  rule <alog rule ending in '.'>  append a rule to the program\n"
        "  program | clear                 show / reset the program text\n"
        "  query <predicate>               set the query predicate\n"
        "  constrain <iepred> <idx> <feature> [param] [value]\n"
        "                                  add a domain constraint\n"
        "  run                             execute and print the result\n"
        "  trace                           print the recorded span tree\n"
        "  explain                         enable the attribution profiler\n"
        "                                  / print the (rule, operator)\n"
        "                                  cost table of the runs so far\n"
        "  telemetry [file]                print (or write) the metric\n"
        "                                  registry as OpenMetrics text\n"
        "  tables                          list extensional tables\n"
        "  quit\n"
        "flags: --threads N  pool width for run (default: hardware\n"
        "       concurrency; 1 = serial; results are identical)\n"
        "       --trace-out <file>  write a chrome://tracing JSON on exit\n"
        "       --deadline-ms N     time bound on each run command\n"
        "       --fail <spec>       arm fail points (IFLEX_FAILPOINTS "
        "syntax)\n");
    return Status::OK();
  }

  Status Gen(std::istringstream& in) {
    std::string domain;
    in >> domain;
    auto add_table = [this](const char* name,
                            const std::vector<DocId>& docs) -> Status {
      CompactTable t({"x"});
      for (DocId d : docs) {
        CompactTuple tup;
        tup.cells.push_back(Cell::Exact(Value::Doc(d)));
        t.Add(std::move(tup));
      }
      return catalog_.AddTable(name, std::move(t));
    };
    if (domain == "movies") {
      MoviesSpec spec;
      spec.n_imdb = 50;
      spec.n_ebert = 50;
      spec.n_prasanna = 50;
      spec.n_shared = 10;
      MoviesData data = GenerateMovies(&corpus_, spec);
      std::vector<DocId> imdb, ebert, prasanna;
      for (const auto& m : data.imdb) imdb.push_back(m.doc);
      for (const auto& m : data.ebert) ebert.push_back(m.doc);
      for (const auto& m : data.prasanna) prasanna.push_back(m.doc);
      IFLEX_RETURN_NOT_OK(add_table("imdbPages", imdb));
      IFLEX_RETURN_NOT_OK(add_table("ebertPages", ebert));
      return add_table("prasannaPages", prasanna);
    }
    if (domain == "dblp") {
      DblpSpec spec;
      spec.n_garcia = 40;
      spec.n_vldb = 60;
      spec.n_sigmod = 40;
      spec.n_icde = 40;
      spec.n_shared_teams = 8;
      DblpData data = GenerateDblp(&corpus_, spec);
      std::vector<DocId> garcia, vldb, sigmod, icde;
      for (const auto& p : data.garcia) garcia.push_back(p.doc);
      for (const auto& p : data.vldb) vldb.push_back(p.doc);
      for (const auto& p : data.sigmod) sigmod.push_back(p.doc);
      for (const auto& p : data.icde) icde.push_back(p.doc);
      IFLEX_RETURN_NOT_OK(add_table("garciaPages", garcia));
      IFLEX_RETURN_NOT_OK(add_table("vldbPages", vldb));
      IFLEX_RETURN_NOT_OK(add_table("sigmodPages", sigmod));
      return add_table("icdePages", icde);
    }
    if (domain == "books") {
      BooksSpec spec;
      spec.n_amazon = 60;
      spec.n_barnes = 80;
      spec.n_shared = 15;
      BooksData data = GenerateBooks(&corpus_, spec);
      std::vector<DocId> amazon, barnes;
      for (const auto& b : data.amazon) amazon.push_back(b.doc);
      for (const auto& b : data.barnes) barnes.push_back(b.doc);
      IFLEX_RETURN_NOT_OK(add_table("amazonPages", amazon));
      return add_table("barnesPages", barnes);
    }
    if (domain == "dblife") {
      DblifeData data = GenerateDblife(&corpus_, DblifeSpec{});
      return add_table("docs", data.all_docs);
    }
    return Status::InvalidArgument("unknown domain " + domain);
  }

  Status Load(std::istringstream& in) {
    std::string table;
    in >> table;
    if (table.empty()) {
      return Status::InvalidArgument("usage: load <table> <file> [...]");
    }
    CompactTable t({"x"});
    std::string path;
    while (in >> path) {
      std::ifstream file(path);
      if (!file) return Status::NotFound("cannot open " + path);
      std::stringstream buf;
      buf << file.rdbuf();
      IFLEX_ASSIGN_OR_RETURN(Document doc, ParseMarkup(path, buf.str()));
      DocId d = corpus_.Add(std::move(doc));
      CompactTuple tup;
      tup.cells.push_back(Cell::Exact(Value::Doc(d)));
      t.Add(std::move(tup));
    }
    std::printf("loaded %zu document(s) into %s\n", t.size(), table.c_str());
    return catalog_.AddTable(table, std::move(t));
  }

  Status Declare(std::istringstream& in) {
    std::string name;
    size_t nin = 0, nout = 0;
    in >> name >> nin >> nout;
    return catalog_.DeclareIEPredicate(name, nin, nout);
  }

  Status AddRule(const std::string& rule) {
    program_src_ += rule;
    program_src_ += "\n";
    return Status::OK();
  }

  Status Tables() {
    for (const std::string& name : catalog_.TableNames()) {
      std::printf("  %s (%zu tuples)\n", name.c_str(),
                  (*catalog_.Table(name))->size());
    }
    return Status::OK();
  }

  Status Constrain(std::istringstream& in) {
    std::string pred, feature, token;
    size_t idx = 0;
    in >> pred >> idx >> feature;
    if (feature.empty()) {
      return Status::InvalidArgument(
          "usage: constrain <iepred> <idx> <feature> [param] [value]");
    }
    FeatureParam param;
    FeatureValue value = FeatureValue::kYes;
    while (in >> token) {
      auto fv = FeatureValueFromString(token);
      if (fv.ok()) {
        value = *fv;
      } else if (auto n = ParseLooseNumber(token)) {
        param = FeatureParam::Num(*n);
      } else {
        param = FeatureParam::Str(token);
      }
    }
    IFLEX_ASSIGN_OR_RETURN(Program prog, CurrentProgram());
    IFLEX_RETURN_NOT_OK(
        prog.AddConstraint(catalog_, pred, idx, feature, param, value));
    program_src_ = prog.ToString();
    std::printf("program is now:\n%s", program_src_.c_str());
    return Status::OK();
  }

  Result<Program> CurrentProgram() {
    if (program_src_.empty()) {
      return Status::InvalidArgument("no rules yet (use: rule ...)");
    }
    IFLEX_ASSIGN_OR_RETURN(Program prog,
                           ParseProgram(program_src_, catalog_));
    if (!query_.empty()) prog.set_query(query_);
    return prog;
  }

  Status Explain() {
    obs::CostModel& model = obs::DefaultCostModel();
    if (!model.enabled()) {
      model.set_enabled(true);
      std::printf(
          "attribution profiler enabled; 'run' then 'explain' again\n");
      return Status::OK();
    }
    obs::ExplainReport report = model.Report();
    if (report.empty()) {
      std::printf("nothing charged yet (profiler is on; try 'run')\n");
      return Status::OK();
    }
    std::printf("%s", report.ToText().c_str());
    return Status::OK();
  }

  Status Telemetry(std::istringstream& in) {
    obs::OpenMetricsOptions options;
    options.labels["scenario"] = "iflex_shell";
    options.labels["threads"] =
        std::to_string(pool_ != nullptr ? pool_->thread_count() : 1);
    std::string path;
    in >> path;
    if (path.empty()) {
      std::printf("%s", obs::ToOpenMetrics(obs::DefaultMetrics(),
                                           options).c_str());
      return Status::OK();
    }
    if (!obs::WriteOpenMetrics(obs::DefaultMetrics(), path, options)) {
      return Status::NotFound("cannot write " + path);
    }
    std::printf("wrote %s\n", path.c_str());
    return Status::OK();
  }

  Status Execute() {
    IFLEX_ASSIGN_OR_RETURN(Program prog, CurrentProgram());
    ExecOptions options;
    options.pool = pool_.get();
    // Shared registry so the telemetry command sees the runs' counters.
    options.metrics = &obs::DefaultMetrics();
    if (deadline_ms_ > 0) {
      options.deadline = resilience::Deadline::AfterMillis(deadline_ms_);
    }
    Executor exec(catalog_, options);
    IFLEX_ASSIGN_OR_RETURN(CompactTable result, exec.Execute(prog));
    std::printf("%zu compact tuple(s), ~%.0f candidate tuple(s)\n",
                result.size(), result.ExpandedTupleCount(corpus_));
    size_t shown = 0;
    for (const CompactTuple& t : result.tuples()) {
      if (shown++ >= 10) {
        std::printf("  ... (%zu more)\n", result.size() - 10);
        break;
      }
      std::printf("  %s\n", t.ToString(&corpus_).c_str());
    }
    return Status::OK();
  }

  Corpus corpus_;
  Catalog catalog_;
  std::unique_ptr<runtime::TaskPool> pool_;
  std::string program_src_;
  std::string query_;
  int64_t deadline_ms_ = 0;
  bool done_ = false;
  bool had_error_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  size_t threads = 0;  // 0 = hardware concurrency
  int64_t deadline_ms = 0;  // 0 = no deadline
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--fail") == 0 && i + 1 < argc) {
      // Same syntax as the IFLEX_FAILPOINTS env var; lets a script
      // exercise fault handling without touching the environment.
      iflex::Status st =
          iflex::resilience::FailPoints::Instance().Configure(argv[++i]);
      if (!st.ok()) {
        std::fprintf(stderr, "bad --fail spec: %s\n", st.ToString().c_str());
        return 2;
      }
    }
  }
  if (!trace_out.empty()) iflex::obs::DefaultTracer().set_enabled(true);
  int rc = Shell(threads, deadline_ms).Run();
  if (!trace_out.empty()) {
    if (iflex::obs::DefaultTracer().WriteChromeJson(trace_out)) {
      std::fprintf(stderr, "wrote trace %s (open in chrome://tracing)\n",
                   trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace %s\n", trace_out.c_str());
    }
  }
  return rc;
}
