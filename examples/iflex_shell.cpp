// Interactive iFlex shell: load or generate a corpus, write an Alog
// program rule by rule, execute it, and refine it with constraints —
// the manual version of the develop/execute/refine loop.
//
//   ./examples/iflex_shell
//
//   iflex> gen movies
//   iflex> declare extractEbert 1 2
//   iflex> rule q(t) :- ebertPages(x), extractEbert(x, t, yr), yr < 1960.
//   iflex> rule extractEbert(x, t, yr) :- from(x, t), from(x, yr).
//   iflex> query q
//   iflex> run
//   iflex> constrain extractEbert 1 numeric yes
//   iflex> run
//
// Also scriptable: ./examples/iflex_shell < script.iflex
//
// The command grammar lives in serve::CommandInterpreter — the same core
// iflexd hosts behind its wire protocol (docs/SERVING.md); this file is
// only the stdin/stdout surface around it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "obs/trace.h"
#include "resilience/failpoint.h"
#include "runtime/task_pool.h"
#include "serve/command_interpreter.h"

using namespace iflex;

namespace {

const char kFlagsHelp[] =
    "flags: --threads N  pool width for run (default: hardware\n"
    "       concurrency; 1 = serial; results are identical)\n"
    "       --trace-out <file>  write a chrome://tracing JSON on exit\n"
    "       --deadline-ms N     time bound on each run command\n"
    "       --fail <spec>       arm fail points (IFLEX_FAILPOINTS "
    "syntax)\n";

/// Exits nonzero when any command failed, so scripted runs
/// (./iflex_shell < script.iflex) compose with `&&` and CI.
int RunShell(size_t threads, int64_t deadline_ms) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  std::unique_ptr<runtime::TaskPool> pool;
  if (threads > 1) pool = std::make_unique<runtime::TaskPool>(threads);

  serve::InterpreterOptions options;
  options.pool = pool.get();
  options.default_deadline_ms = deadline_ms;
  serve::CommandInterpreter interpreter(options);

  bool had_error = false;
  std::string line;
  std::printf("iflex> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    serve::CommandOutcome outcome = interpreter.Interpret(line);
    if (line.substr(0, 4) == "help") outcome.output += kFlagsHelp;
    std::fputs(outcome.output.c_str(), stdout);
    if (!outcome.status.ok()) {
      std::printf("error: %s\n", outcome.status.ToString().c_str());
      had_error = true;
    }
    if (outcome.quit) break;
    std::printf("iflex> ");
    std::fflush(stdout);
  }
  return had_error ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  size_t threads = 0;       // 0 = hardware concurrency
  int64_t deadline_ms = 0;  // 0 = no deadline
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--fail") == 0 && i + 1 < argc) {
      // Same syntax as the IFLEX_FAILPOINTS env var; lets a script
      // exercise fault handling without touching the environment.
      iflex::Status st =
          iflex::resilience::FailPoints::Instance().Configure(argv[++i]);
      if (!st.ok()) {
        std::fprintf(stderr, "bad --fail spec: %s\n", st.ToString().c_str());
        return 2;
      }
    }
  }
  if (!trace_out.empty()) iflex::obs::DefaultTracer().set_enabled(true);
  int rc = RunShell(threads, deadline_ms);
  if (!trace_out.empty()) {
    if (iflex::obs::DefaultTracer().WriteChromeJson(trace_out)) {
      std::fprintf(stderr, "wrote trace %s (open in chrome://tracing)\n",
                   trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace %s\n", trace_out.c_str());
    }
  }
  return rc;
}
