// Heterogeneous-data extraction: the DBLife portal tasks (paper §6.3).
//
// Builds a synthetic DBLife crawl (conference pages, researcher
// homepages, mailing-list noise), then uses iFlex's higher-level features
// (prec_label_contains, in_list, in_title, person_name) to extract
// (panelist, conference) pairs and (chair, type, conference) triples —
// the latter finishing with a procedural cleanup predicate, exactly the
// paper's §2.2.4 workflow.
//
//   ./examples/dblife_portal
#include <cstdio>

#include "assistant/session.h"
#include "oracle/evaluate.h"
#include "tasks/task.h"

using namespace iflex;

namespace {

int RunOne(const char* id) {
  auto task = MakeTask(id, /*scale=*/0);
  if (!task.ok()) {
    std::fprintf(stderr, "error: %s\n", task.status().ToString().c_str());
    return 1;
  }
  std::printf("== %s: %s\n", id, (*task)->description.c_str());

  SessionOptions options;
  options.strategy = StrategyKind::kSimulation;
  RefinementSession session(*(*task)->catalog, (*task)->initial_program,
                            (*task)->developer.get(), options);
  auto result = session.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "session error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("refined in %zu iterations, %zu questions\n",
              result->iterations.size(), result->questions_asked);

  CompactTable final_result = result->final_result;
  const auto* gold = &(*task)->gold.query_result;
  if ((*task)->apply_cleanup) {
    // Paper §2.2.4: once declarative refinement converges, attach the
    // procedural cleanup predicate (here: reading the chair type off the
    // text before the name).
    auto cleaned = (*task)->apply_cleanup(result->final_program);
    if (!cleaned.ok()) {
      std::fprintf(stderr, "cleanup error: %s\n",
                   cleaned.status().ToString().c_str());
      return 1;
    }
    Executor exec(*(*task)->catalog);
    auto r = exec.Execute(*cleaned);
    if (!r.ok()) {
      std::fprintf(stderr, "exec error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    final_result = std::move(r).value();
    gold = &(*task)->cleanup_gold;
    std::printf("cleanup procedure attached (chairType)\n");
  }

  EvalReport report =
      EvaluateResult(*(*task)->corpus, final_result, *gold);
  std::printf("result: %s\n", report.ToString().c_str());
  size_t shown = 0;
  for (const CompactTuple& t : final_result.tuples()) {
    if (shown++ >= 6) break;
    std::string row;
    for (size_t c = 0; c + 1 < t.cells.size(); ++c) {  // drop the doc col
      if (c > 0) row += "  |  ";
      row += t.cells[c].ToString((*task)->corpus.get());
    }
    std::printf("  %s\n", row.c_str());
  }
  std::printf("\n");
  return report.covers_all_gold ? 0 : 1;
}

}  // namespace

int main() {
  int rc = 0;
  for (const char* id : {"Panel", "Project", "Chair"}) {
    rc |= RunOne(id);
  }
  return rc;
}
