// Best-effort IE with the next-effort assistant, end to end.
//
// Scenario (paper task T9): find books cheaper at Amazon than at Barnes &
// Noble. We start from a skeletal program whose extractors are just
// from() — no knowledge of the pages at all — and let the next-effort
// assistant interrogate a (simulated) developer. The transcript shows the
// questions picked by the simulation strategy and how the result
// converges.
//
//   ./examples/bookstore_deals
#include <cstdio>

#include "assistant/session.h"
#include "oracle/evaluate.h"
#include "tasks/task.h"

using namespace iflex;

int main() {
  auto task = MakeTask("T9", /*scale=*/60);
  if (!task.ok()) {
    std::fprintf(stderr, "error: %s\n", task.status().ToString().c_str());
    return 1;
  }
  std::printf("Task: %s\n", (*task)->description.c_str());
  std::printf("Initial (skeletal) program:\n%s\n",
              (*task)->initial_program.ToString().c_str());
  std::printf("Gold answer: %zu books\n\n",
              (*task)->gold.query_result.size());

  SessionOptions options;
  options.strategy = StrategyKind::kSimulation;
  RefinementSession session(*(*task)->catalog, (*task)->initial_program,
                            (*task)->developer.get(), options);
  auto result = session.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "session error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  for (const IterationRecord& it : result->iterations) {
    std::printf("iteration %d [%s]: %.0f candidate tuples\n", it.iteration,
                it.full_data ? "reuse/full" : "subset", it.result_tuples);
    for (size_t i = 0; i < it.questions.size(); ++i) {
      std::printf("  assistant asks: %-42s developer: %s\n",
                  it.questions[i].ToString().c_str(),
                  it.answers[i].ToString().c_str());
    }
  }
  std::printf("\nConverged: %s after %zu questions (%zu simulations)\n",
              result->converged ? "yes" : "no", result->questions_asked,
              result->simulations_run);
  std::printf("Final program:\n%s\n", result->final_program.ToString().c_str());

  EvalReport report = EvaluateResult(*(*task)->corpus, result->final_result,
                                     (*task)->gold.query_result);
  std::printf("Evaluation: %s\n", report.ToString().c_str());
  std::printf("\nExtracted deals:\n");
  size_t shown = 0;
  for (const CompactTuple& t : result->final_result.tuples()) {
    if (shown++ >= 10) break;
    std::printf("  %s\n", t.cells[0].ToString((*task)->corpus.get()).c_str());
  }
  return report.covers_all_gold ? 0 : 1;
}
