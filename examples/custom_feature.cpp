// Extending iFlex with a domain feature (paper §2.2.2: "to add a new
// feature f, a developer needs to implement only two procedures Verify
// and Refine").
//
// We add an `all_caps` feature (the span consists of ALL-CAPS tokens,
// like stock tickers or conference acronyms), register it, and use it
// from an Alog program to pull tickers out of a news blurb.
//
//   ./examples/custom_feature
#include <cctype>
#include <cstdio>

#include "exec/executor.h"
#include "features/token_features.h"
#include "text/markup_parser.h"

using namespace iflex;

namespace {

bool IsAllCapsWord(std::string_view w) {
  if (w.size() < 2) return false;
  for (char c : w) {
    if (!std::isupper(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// The two required procedures: Verify checks f(s)=v, Refine returns the
// maximal satisfying sub-spans. RefineTokenRuns does the token plumbing.
class AllCapsFeature : public Feature {
 public:
  AllCapsFeature() : Feature("all_caps") {}

  bool Verify(const Document& doc, const Span& span, const FeatureParam&,
              FeatureValue v) const override {
    const auto& tokens = doc.tokens();
    size_t first = doc.FirstTokenAtOrAfter(span.begin);
    size_t last = doc.TokensEndingBy(span.end);
    bool all = first < last;
    for (size_t i = first; i < last && all; ++i) {
      all = IsAllCapsWord(
          doc.TextOf(Span(span.doc, tokens[i].begin, tokens[i].end)));
    }
    bool want = v == FeatureValue::kYes || v == FeatureValue::kDistinctYes;
    return v == FeatureValue::kUnknown || (want == all);
  }

  std::vector<RefinedRegion> Refine(const Document& doc, const Span& span,
                                    const FeatureParam&,
                                    FeatureValue v) const override {
    if (v != FeatureValue::kYes && v != FeatureValue::kDistinctYes) {
      return {RefinedRegion{span, false}};
    }
    return RefineTokenRuns(doc, span, IsAllCapsWord,
                           /*exact_per_token=*/false);
  }
};

Status Run() {
  // Registry with the built-ins plus our feature.
  std::unique_ptr<FeatureRegistry> registry = CreateDefaultRegistry();
  IFLEX_RETURN_NOT_OK(registry->Register(std::make_unique<AllCapsFeature>()));

  Corpus corpus;
  IFLEX_ASSIGN_OR_RETURN(
      Document doc,
      ParseMarkup("news",
                  "Shares of ACME rose 12 percent after IBM and MSFT\n"
                  "announced a joint venture, the Journal reported."));
  DocId d = corpus.Add(std::move(doc));

  Catalog catalog(&corpus, registry.get());
  CompactTable pages({"x"});
  CompactTuple t;
  t.cells.push_back(Cell::Exact(Value::Doc(d)));
  pages.Add(std::move(t));
  IFLEX_RETURN_NOT_OK(catalog.AddTable("news", std::move(pages)));
  IFLEX_RETURN_NOT_OK(catalog.DeclareIEPredicate("extractTicker", 1, 1));

  // The new feature is immediately usable as a domain constraint.
  IFLEX_ASSIGN_OR_RETURN(Program program, ParseProgram(R"(
    tickers(x, s) :- news(x), extractTicker(x, s).
    extractTicker(x, s) :- from(x, s), all_caps(s) = yes,
                           numeric(s) = no, max_length(s) = 4.
  )", catalog));
  program.set_query("tickers");

  Executor exec(catalog);
  IFLEX_ASSIGN_OR_RETURN(CompactTable result, exec.Execute(program));
  std::printf("Extracted tickers:\n%s", result.ToString(&corpus).c_str());
  return Status::OK();
}

}  // namespace

int main() {
  Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
