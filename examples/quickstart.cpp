// Quickstart: the paper's running example (Figures 1-3) on the iFlex API.
//
// Build a tiny corpus of house and school pages, write an approximate
// Alog program with a possible-worlds annotation, execute it with the
// approximate query processor, then refine it with one domain constraint
// and watch the result tighten.
//
//   ./examples/quickstart
#include <cstdio>

#include "exec/executor.h"
#include "text/markup_parser.h"

using namespace iflex;

namespace {

Status RunExample() {
  // 1. A corpus: two house pages, two school pages (markup tags become
  //    document layers: <b>old = bold, etc.).
  Corpus corpus;
  auto add = [&corpus](const char* name, const char* markup) -> Result<DocId> {
    IFLEX_ASSIGN_OR_RETURN(Document doc, ParseMarkup(name, markup));
    return corpus.Add(std::move(doc));
  };
  IFLEX_ASSIGN_OR_RETURN(DocId x1, add("x1",
                                       "Price: <b>$351,000</b>\n"
                                       "Cozy house on quiet street\n"
                                       "Sqft: 2750\n"
                                       "High school: Vanhise High"));
  IFLEX_ASSIGN_OR_RETURN(DocId x2, add("x2",
                                       "Price: <b>$619,000</b>\n"
                                       "Amazing house, great location\n"
                                       "Sqft: 4700\n"
                                       "High school: Basktall HS"));
  IFLEX_ASSIGN_OR_RETURN(DocId y1, add("y1",
                                       "<b>Basktall</b>, Cherry Hills\n"
                                       "<b>Vanhise</b>, Champaign"));
  IFLEX_ASSIGN_OR_RETURN(DocId y2, add("y2", "<b>Hoover</b>, Akron"));

  // 2. A catalog: extensional tables + declared IE predicates.
  Catalog catalog(&corpus);
  catalog.RegisterBuiltinFunctions(/*similarity_threshold=*/0.4);
  CompactTable houses({"x"});
  for (DocId d : {x1, x2}) {
    CompactTuple t;
    t.cells.push_back(Cell::Exact(Value::Doc(d)));
    houses.Add(std::move(t));
  }
  IFLEX_RETURN_NOT_OK(catalog.AddTable("housePages", std::move(houses)));
  CompactTable schools({"y"});
  for (DocId d : {y1, y2}) {
    CompactTuple t;
    t.cells.push_back(Cell::Exact(Value::Doc(d)));
    schools.Add(std::move(t));
  }
  IFLEX_RETURN_NOT_OK(catalog.AddTable("schoolPages", std::move(schools)));
  IFLEX_RETURN_NOT_OK(catalog.DeclareIEPredicate("extractHouses", 1, 3));
  IFLEX_RETURN_NOT_OK(catalog.DeclareIEPredicate("extractSchools", 1, 1));

  // 3. The approximate program of Figure 2.c: <p> marks an attribute
  //    annotation (one price per page), '?' an existence annotation.
  const char* src = R"(
    houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(x, p, a, h).
    schools(s)? :- schoolPages(y), extractSchools(y, s).
    q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500,
                     approx_match(h, s).
    extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h),
                                 numeric(p) = yes, numeric(a) = yes.
    extractSchools(y, s) :- from(y, s), bold_font(s) = yes.
  )";
  IFLEX_ASSIGN_OR_RETURN(Program program, ParseProgram(src, catalog));

  // 4. Execute under superset semantics. First look at the intermediate
  //    houses relation: with only "p and a are numeric", each page keeps
  //    several candidate values per attribute (Figure 3's compact table).
  Executor executor(catalog);
  program.set_query("houses");
  IFLEX_ASSIGN_OR_RETURN(CompactTable houses_before,
                         executor.Execute(program));
  std::printf("houses before refinement:\n%s\n",
              houses_before.ToString(&corpus).c_str());

  program.set_query("q");
  IFLEX_ASSIGN_OR_RETURN(CompactTable result, executor.Execute(program));
  std::printf("query result (%zu tuple(s)):\n%s\n", result.size(),
              result.ToString(&corpus).c_str());

  // 5. Refine: the developer answers "is the price in bold font?" with
  //    "distinct-yes"; iFlex folds the constraint into the description
  //    rule, pinning the price to the bold span.
  IFLEX_RETURN_NOT_OK(program.AddConstraint(catalog, "extractHouses",
                                            /*output_idx=*/0, "bold_font",
                                            FeatureParam::None(),
                                            FeatureValue::kDistinctYes));
  program.set_query("houses");
  IFLEX_ASSIGN_OR_RETURN(CompactTable houses_after,
                         executor.Execute(program));
  std::printf("houses after 'price is distinctly bold':\n%s\n",
              houses_after.ToString(&corpus).c_str());
  std::printf("price ambiguity before vs after: %.0f vs %.0f values\n",
              houses_before.TotalValueCount(corpus),
              houses_after.TotalValueCount(corpus));
  return Status::OK();
}

}  // namespace

int main() {
  Status st = RunExample();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
