// Regenerates Table 1: the real-world domains and their tables.
// Paper columns: Domain | Data | Tables | Table Descriptions | Num Pages.
// Our substitute corpora are synthetic (see DESIGN.md); this bench prints
// the generated counterparts so the scale is auditable.
#include <cstdio>

#include "bench_util.h"
#include "datagen/books.h"
#include "datagen/dblife.h"
#include "datagen/dblp.h"
#include "datagen/movies.h"

using namespace iflex;

namespace {

iflex::bench::BenchReporter* g_reporter = nullptr;

size_t CorpusBytes(const Corpus& corpus) {
  size_t bytes = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    bytes += corpus.Get(static_cast<DocId>(i)).text().size();
  }
  return bytes;
}

void Row(const char* domain, const char* table, const char* desc,
         size_t records) {
  std::printf("%-8s | %-13s | %-42s | %6zu\n", domain, table, desc, records);
  using R = iflex::bench::BenchReporter;
  g_reporter->Row({R::S("domain", domain), R::S("table", table),
                   R::N("records", static_cast<double>(records))});
}

}  // namespace

int main(int argc, char** argv) {
  iflex::bench::BenchReporter reporter("table1_domains", argc, argv);
  g_reporter = &reporter;
  std::printf("Table 1: domains for the experiments (synthetic rebuild)\n");
  std::printf("%-8s | %-13s | %-42s | %6s\n", "Domain", "Table",
              "Description", "Recs");
  std::printf("---------+---------------+--------------------------------------------+-------\n");

  {
    Corpus corpus;
    MoviesData movies = GenerateMovies(&corpus, MoviesSpec{});
    Row("Movies", "Ebert", "Roger Ebert's greatest movies list",
        movies.ebert.size());
    Row("Movies", "IMDB", "IMDB top 250 movies", movies.imdb.size());
    Row("Movies", "Prasanna", "Prasanna's 517 greatest movies",
        movies.prasanna.size());
    std::printf("  Movies corpus: %zu records, %zu KB\n", corpus.size(),
                CorpusBytes(corpus) / 1024);
  }
  {
    Corpus corpus;
    DblpData dblp = GenerateDblp(&corpus, DblpSpec{});
    Row("DBLP", "Garcia-Molina", "Hector Garcia-Molina publications list",
        dblp.garcia.size());
    Row("DBLP", "SIGMOD", "SIGMOD papers '75-'05", dblp.sigmod.size());
    Row("DBLP", "ICDE", "ICDE papers '84-'05", dblp.icde.size());
    Row("DBLP", "VLDB", "VLDB papers '75-'05", dblp.vldb.size());
    std::printf("  DBLP corpus: %zu records, %zu KB\n", corpus.size(),
                CorpusBytes(corpus) / 1024);
  }
  {
    Corpus corpus;
    BooksData books = GenerateBooks(&corpus, BooksSpec{});
    Row("Books", "Amazon", "Amazon query on 'Database'", books.amazon.size());
    Row("Books", "Barnes", "Barnes & Noble query on 'Database'",
        books.barnes.size());
    std::printf("  Books corpus: %zu records, %zu KB\n", corpus.size(),
                CorpusBytes(corpus) / 1024);
  }
  {
    Corpus corpus;
    DblifeData dblife = GenerateDblife(&corpus, DblifeSpec{});
    Row("DBLife", "docs", "heterogeneous crawl (conf/home/misc pages)",
        dblife.all_docs.size());
    std::printf(
        "  DBLife crawl: %zu conference, %zu homepage, %zu other pages, "
        "%zu KB\n",
        dblife.conferences.size(), dblife.homepages.size(),
        dblife.distractors.size(), CorpusBytes(corpus) / 1024);
  }
  return 0;
}
