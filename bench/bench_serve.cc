// Serving load driver for iflexd (docs/SERVING.md): starts an in-process
// serve::Server, replays a mixed develop/execute/refine workload from K
// concurrent client connections (one session each) over real TCP, and
// writes BENCH_SERVE.json with latency quantiles, throughput, and the
// rejection rate — the machine-readable serving trajectory next to the
// batch benches.
//
//   ./bench/bench_serve [--sessions N] [--loops N] [--threads N]
//                       [--json-out <file>]
//
// Three rows:
//   mixed    — S sessions in parallel, full gen/rule/run/constrain/run
//              script; every response is byte-compared against a batch
//              CommandInterpreter replay (`identical` must be 1).
//   overload — admission sized to max_concurrent=1/max_queue=0, hammered
//              by 4 connections; asserts typed Overloaded rejections.
//   deadline — a long command occupies the single slot; deadline-bounded
//              requests behind it must come back DeadlineExceeded both
//              while queued and while executing.
//
// Exits nonzero on any byte mismatch, missing rejection, or missed
// deadline, so the ctest under the `serve` label is a correctness gate,
// not only a timer.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "serve/client.h"
#include "serve/command_interpreter.h"
#include "serve/server.h"

using namespace iflex;
using R = bench::BenchReporter;

namespace {

/// The per-session command script (same grammar as the iflex shell). The
/// outputs carry no timestamps or timings, so byte-identity against a
/// batch replay is well-defined.
std::vector<std::string> SessionScript() {
  return {
      "gen movies",
      "declare extractEbert 1 2",
      "rule q(t) :- ebertPages(x), extractEbert(x, t, yr), yr < 1960.",
      "rule extractEbert(x, t, yr) :- from(x, t), from(x, yr).",
      "query q",
      "run",
      "constrain extractEbert 1 numeric yes",
      "run",
  };
}

struct Expected {
  bool ok = false;
  std::string output;
};

/// Batch reference: the same repeated script through one
/// CommandInterpreter, no server in between.
std::vector<Expected> BatchReference(size_t loops) {
  serve::InterpreterOptions options;
  serve::CommandInterpreter interp(options);
  std::vector<Expected> expected;
  for (size_t l = 0; l < loops; ++l) {
    for (const std::string& command : SessionScript()) {
      serve::CommandOutcome outcome = interp.Interpret(command);
      expected.push_back({outcome.status.ok(), outcome.output});
    }
  }
  return expected;
}

double Quantile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0;
  std::sort(sorted->begin(), sorted->end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

}  // namespace

int main(int argc, char** argv) {
  size_t sessions = 3;
  size_t loops = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--loops") == 0 && i + 1 < argc) {
      loops = std::strtoul(argv[++i], nullptr, 10);
    }
  }
  if (sessions < 2) sessions = 2;  // the acceptance bar is >= 2 concurrent
  if (loops < 1) loops = 1;

  bench::BenchReporter reporter("SERVE", argc, argv);
  bool failed = false;

  // ---- mixed: S parallel sessions, byte-compared against batch ----
  {
    std::vector<Expected> expected = BatchReference(loops);

    serve::ServerOptions so;
    so.threads = reporter.threads();
    so.max_concurrent = sessions;
    so.max_queue = 2 * sessions + 2;
    serve::Server server(so);
    Status st = server.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
      return 1;
    }

    std::atomic<size_t> mismatches{0};
    std::atomic<size_t> rejected{0};
    std::mutex lat_mu;
    std::vector<double> latencies_ms;

    Stopwatch wall;
    std::vector<std::thread> clients;
    for (size_t s = 0; s < sessions; ++s) {
      clients.emplace_back([&, s] {
        std::string sid = "s" + std::to_string(s);
        serve::LineClient client;
        if (!client.Connect(server.port()).ok() ||
            !client.Call("open " + sid).ok()) {
          mismatches.fetch_add(1);
          return;
        }
        std::vector<double> local_ms;
        size_t idx = 0;
        for (size_t l = 0; l < loops; ++l) {
          for (const std::string& command : SessionScript()) {
            Stopwatch req_watch;
            auto resp = client.Call("cmd " + sid + " " + command);
            local_ms.push_back(req_watch.ElapsedSeconds() * 1e3);
            const Expected& want = expected[idx++];
            if (!resp.ok()) {
              std::fprintf(stderr, "[%s] transport error: %s\n", sid.c_str(),
                           resp.status().ToString().c_str());
              mismatches.fetch_add(1);
              continue;
            }
            if (resp->code == "Overloaded") rejected.fetch_add(1);
            if (resp->ok != want.ok || resp->output != want.output) {
              std::fprintf(stderr,
                           "[%s] MISMATCH on %-30s (ok %d vs %d)\n  got:  "
                           "%.120s\n  want: %.120s\n",
                           sid.c_str(), command.c_str(), resp->ok ? 1 : 0,
                           want.ok ? 1 : 0, resp->output.c_str(),
                           want.output.c_str());
              mismatches.fetch_add(1);
            }
          }
        }
        client.Call("close " + sid);
        std::lock_guard<std::mutex> lock(lat_mu);
        latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                            local_ms.end());
      });
    }
    for (auto& t : clients) t.join();
    double wall_s = wall.ElapsedSeconds();
    server.metrics().MergeInto(&obs::DefaultMetrics(), "");
    server.Stop();

    size_t requests = sessions * loops * SessionScript().size();
    double qps = wall_s > 0 ? static_cast<double>(requests) / wall_s : 0;
    double p50 = Quantile(&latencies_ms, 0.50);
    double p99 = Quantile(&latencies_ms, 0.99);
    double rejection_rate =
        static_cast<double>(rejected.load()) / static_cast<double>(requests);
    bool identical = mismatches.load() == 0;
    if (!identical) failed = true;
    std::printf(
        "mixed:    %zu sessions x %zu loops -> %zu requests, %.0f req/s, "
        "p50 %.2f ms, p99 %.2f ms, identical=%d\n",
        sessions, loops, requests, qps, p50, p99, identical ? 1 : 0);
    reporter.Row({R::S("case", "mixed"),
                  R::N("sessions", static_cast<double>(sessions)),
                  R::N("requests", static_cast<double>(requests)),
                  R::N("qps", qps), R::N("p50_ms", p50), R::N("p99_ms", p99),
                  R::N("rejection_rate", rejection_rate),
                  R::N("identical", identical ? 1 : 0)});
  }

  // ---- overload: queue of zero, one slot, four hammering clients ----
  {
    serve::ServerOptions so;
    so.max_concurrent = 1;
    so.max_queue = 0;
    serve::Server server(so);
    if (!server.Start().ok()) return 1;

    constexpr size_t kClients = 4;
    constexpr size_t kPerClient = 8;
    std::atomic<size_t> rejected{0};
    std::atomic<size_t> accepted{0};
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::string sid = "o" + std::to_string(c);
        serve::LineClient client;
        if (!client.Connect(server.port()).ok() ||
            !client.Call("open " + sid).ok()) {
          return;
        }
        for (size_t i = 0; i < kPerClient; ++i) {
          auto resp = client.Call("cmd " + sid + " sleep 25");
          if (!resp.ok()) continue;
          if (resp->code == "Overloaded") {
            rejected.fetch_add(1);
          } else if (resp->ok) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    server.metrics().MergeInto(&obs::DefaultMetrics(), "");
    server.Stop();

    size_t requests = kClients * kPerClient;
    double rejection_rate =
        static_cast<double>(rejected.load()) / static_cast<double>(requests);
    std::printf(
        "overload: %zu requests at max_concurrent=1/max_queue=0 -> "
        "%zu accepted, %zu rejected (rate %.2f)\n",
        requests, accepted.load(), rejected.load(), rejection_rate);
    if (rejected.load() == 0) {
      std::fprintf(stderr,
                   "FAIL: overload phase produced no typed rejections\n");
      failed = true;
    }
    reporter.Row({R::S("case", "overload"),
                  R::N("requests", static_cast<double>(requests)),
                  R::N("rejected_any", rejected.load() > 0 ? 1 : 0),
                  R::N("rejection_rate", rejection_rate)});
  }

  // ---- deadline: expiry both while queued and while executing ----
  {
    serve::ServerOptions so;
    so.max_concurrent = 1;
    so.max_queue = 8;
    serve::Server server(so);
    if (!server.Start().ok()) return 1;

    serve::LineClient occupant;
    occupant.Connect(server.port());
    occupant.Call("open d0");
    occupant.Send("cmd d0 sleep 300");  // occupies the single slot
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    constexpr size_t kWaiters = 3;
    std::atomic<size_t> honored{0};
    std::vector<std::thread> waiters;
    for (size_t c = 0; c < kWaiters; ++c) {
      waiters.emplace_back([&, c] {
        std::string sid = "d" + std::to_string(c + 1);
        serve::LineClient client;
        if (!client.Connect(server.port()).ok() ||
            !client.Call("open " + sid).ok()) {
          return;
        }
        // Queued behind the 300 ms occupant with a 25 ms budget: must
        // come back DeadlineExceeded without the command ever starting.
        auto resp = client.Call("cmd " + sid + " --deadline-ms 25 sleep 200");
        if (resp.ok() && resp->code == "DeadlineExceeded") honored.fetch_add(1);
      });
    }
    for (auto& t : waiters) t.join();
    auto long_resp = occupant.ReadLine();  // drain the occupant's response

    // Expiry while executing: slot is free now, the command itself
    // overruns its budget and is stopped by the deadline poller.
    auto exec_resp = occupant.Call("cmd d0 --deadline-ms 25 sleep 200");
    bool exec_honored =
        exec_resp.ok() && exec_resp->code == "DeadlineExceeded";
    if (exec_honored) honored.fetch_add(1);

    occupant.Close();
    server.metrics().MergeInto(&obs::DefaultMetrics(), "");
    server.Stop();

    size_t requests = kWaiters + 1;
    bool all_honored = honored.load() == requests && long_resp.ok();
    std::printf("deadline: %zu/%zu bounded requests returned "
                "DeadlineExceeded (queued + executing)\n",
                honored.load(), requests);
    if (!all_honored) {
      std::fprintf(stderr, "FAIL: deadline phase missed a deadline\n");
      failed = true;
    }
    reporter.Row({R::S("case", "deadline"),
                  R::N("requests", static_cast<double>(requests)),
                  R::N("deadline_honored", all_honored ? 1 : 0)});
  }

  reporter.Finish();
  return failed ? 1 : 0;
}
