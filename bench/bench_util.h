#ifndef IFLEX_BENCH_BENCH_UTIL_H_
#define IFLEX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "assistant/session.h"
#include "common/stopwatch.h"
#include "oracle/evaluate.h"
#include "oracle/timemodel.h"
#include "tasks/task.h"
#include "xlog/precise.h"

namespace iflex {
namespace bench {

/// Outcome of one iFlex run over a task instance (one Table 3 cell).
struct IFlexRun {
  SessionResult session;
  EvalReport report;          // post-cleanup when the task has a cleanup
  double developer_minutes = 0;  // skeleton + question answering
  double cleanup_minutes = 0;    // parenthesized in the paper's tables
  double machine_seconds = 0;
};

/// Runs the full iFlex loop (refinement session + optional cleanup stage)
/// on `task` and evaluates against the task's gold.
inline Result<IFlexRun> RunIFlex(TaskInstance* task, StrategyKind strategy,
                                 const DeveloperTimeModel& model = {},
                                 SessionOptions options = {}) {
  IFlexRun run;
  options.strategy = strategy;
  Stopwatch watch;
  RefinementSession session(*task->catalog, task->initial_program,
                            task->developer.get(), options);
  IFLEX_ASSIGN_OR_RETURN(run.session, session.Run());

  CompactTable final_result = run.session.final_result;
  const auto* gold = &task->gold.query_result;
  run.cleanup_minutes = task->cleanup_minutes;
  if (task->apply_cleanup) {
    IFLEX_ASSIGN_OR_RETURN(Program cleaned,
                           task->apply_cleanup(run.session.final_program));
    Executor exec(*task->catalog, options.exec_options);
    IFLEX_ASSIGN_OR_RETURN(final_result, exec.Execute(cleaned));
    gold = &task->cleanup_gold;
  }
  run.machine_seconds = watch.ElapsedSeconds();
  run.report = EvaluateResult(*task->corpus, final_result, *gold);
  run.developer_minutes =
      model.IFlexSkeletonMinutes(task->n_rules) +
      static_cast<double>(run.session.questions_asked) *
          model.seconds_per_question / 60.0;
  return run;
}

/// Measured machine seconds + correctness of the precise Xlog baseline.
struct XlogRun {
  double machine_seconds = 0;
  EvalReport report;
};

inline Result<XlogRun> RunXlogBaseline(TaskInstance* task) {
  if (task->precise_program.rules().empty()) {
    IFLEX_RETURN_NOT_OK(AddPreciseBaseline(task));
  }
  XlogRun run;
  Stopwatch watch;
  Executor exec(*task->catalog);
  IFLEX_ASSIGN_OR_RETURN(CompactTable result,
                         exec.Execute(task->precise_program));
  run.machine_seconds = watch.ElapsedSeconds();
  const auto& gold = task->apply_cleanup ? task->cleanup_gold
                                         : task->gold.query_result;
  run.report = EvaluateResult(*task->corpus, result, gold);
  return run;
}

inline std::string FmtMinutes(double minutes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", minutes);
  return buf;
}

}  // namespace bench
}  // namespace iflex

#endif  // IFLEX_BENCH_BENCH_UTIL_H_
