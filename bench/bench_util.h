#ifndef IFLEX_BENCH_BENCH_UTIL_H_
#define IFLEX_BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "assistant/session.h"
#include "common/stopwatch.h"
#include "obs/cost_model.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/trace.h"
#include "oracle/evaluate.h"
#include "oracle/timemodel.h"
#include "runtime/task_pool.h"
#include "tasks/task.h"
#include "xlog/precise.h"

namespace iflex {
namespace bench {

/// Per-bench observability + result harness. Construct it first thing in
/// main():
///   - parses `--trace-out <file>` (enables the default tracer and writes
///     a chrome://tracing JSON + a stderr summary tree at the end) and
///     `--json-out <file>`;
///   - opens a root "bench.<name>" span so the exported span tree covers
///     the bench's whole wall time;
///   - collects structured result rows via Row() and writes them as
///     BENCH_<name>.json (with the aggregated metric registry and wall
///     time) when destroyed — the machine-readable perf trajectory next
///     to the stdout table.
class BenchReporter {
 public:
  struct Field {
    std::string key;
    bool is_num = false;
    double num = 0;
    std::string str;
  };
  static Field N(std::string key, double v) {
    Field f;
    f.key = std::move(key);
    f.is_num = true;
    f.num = v;
    return f;
  }
  static Field S(std::string key, std::string v) {
    Field f;
    f.key = std::move(key);
    f.str = std::move(v);
    return f;
  }

  explicit BenchReporter(std::string name, int argc = 0,
                         char** argv = nullptr)
      : name_(std::move(name)) {
    for (int i = 1; argv != nullptr && i < argc; ++i) {
      auto take = [&](const char* flag, std::string* out) {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
          *out = argv[++i];
          return true;
        }
        return false;
      };
      if (take("--trace-out", &trace_out_)) continue;
      if (take("--json-out", &json_out_)) continue;
      if (take("--explain-out", &explain_out_)) {
        // Attribution profiling rides the process-wide model: every
        // executor the bench creates charges into it unless the bench
        // wired its own.
        obs::DefaultCostModel().set_enabled(true);
        continue;
      }
      std::string threads;
      if (take("--threads", &threads)) {
        threads_ = static_cast<size_t>(std::strtoul(threads.c_str(), nullptr, 10));
        continue;
      }
    }
    if (json_out_.empty()) {
      const char* dir = std::getenv("IFLEX_BENCH_JSON_DIR");
      json_out_ = (dir != nullptr && dir[0] != '\0')
                      ? std::string(dir) + "/BENCH_" + name_ + ".json"
                      : "BENCH_" + name_ + ".json";
    }
    if (!trace_out_.empty()) obs::DefaultTracer().set_enabled(true);
    root_name_ = "bench." + name_;
    root_span_.emplace(&obs::DefaultTracer(), root_name_.c_str());
  }

  ~BenchReporter() { Finish(); }
  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  void Row(std::vector<Field> fields) { rows_.push_back(std::move(fields)); }

  /// `--threads N` value; 1 (serial) when the flag was absent or 0.
  size_t threads() const { return threads_ == 0 ? 1 : threads_; }
  /// Physical concurrency of the host running the bench. Recorded into
  /// every artifact so downstream tooling can tell a 2x-on-8-cores row
  /// from a 2x-on-2-cores row.
  static size_t hardware_cores() {
    return std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  /// Shared pool for the bench run: null in serial mode, created lazily
  /// for --threads > 1. Execution results are identical either way.
  runtime::TaskPool* pool() {
    if (threads() > 1 && pool_ == nullptr) {
      pool_ = std::make_unique<runtime::TaskPool>(threads());
    }
    return pool_.get();
  }

  /// Writes the JSON artifacts now (idempotent; also runs at destruction).
  void Finish() {
    if (finished_) return;
    finished_ = true;
    root_span_->End();
    double wall = watch_.ElapsedSeconds();

    obs::JsonWriter w;
    w.BeginObject();
    w.Key("bench").String(name_);
    w.Key("wall_seconds").Number(wall);
    // Host shape for the run: scaling/speedup numbers are only comparable
    // between artifacts produced on hosts with the same core count, and
    // check_regression.py refuses speedup comparisons when these differ.
    w.Key("hardware_cores")
        .Number(static_cast<double>(hardware_cores()));
    w.Key("threads").Number(static_cast<double>(threads()));
    w.Key("rows").BeginArray();
    for (const auto& row : rows_) {
      w.BeginObject();
      for (const Field& f : row) {
        w.Key(f.key);
        if (f.is_num) {
          w.Number(f.num);
        } else {
          w.String(f.str);
        }
      }
      w.EndObject();
    }
    w.EndArray();
    w.Key("metrics");
    obs::DefaultMetrics().WriteJson(&w);
    w.EndObject();
    if (std::FILE* f = std::fopen(json_out_.c_str(), "w")) {
      std::fwrite(w.str().data(), 1, w.str().size(), f);
      std::fclose(f);
      std::fprintf(stderr, "[bench] wrote %s\n", json_out_.c_str());
    } else {
      std::fprintf(stderr, "[bench] cannot write %s\n", json_out_.c_str());
    }

    // OpenMetrics sibling of the JSON artifact: the same registry in
    // Prometheus text exposition, for scrape-style tooling and the
    // check_regression.py format gate.
    std::string om_out = json_out_;
    size_t dot = om_out.rfind(".json");
    if (dot != std::string::npos && dot == om_out.size() - 5) {
      om_out.resize(dot);
    }
    om_out += ".om";
    obs::OpenMetricsOptions om_options;
    om_options.labels["run_id"] = name_ + "." + std::to_string(::getpid());
    om_options.labels["scenario"] = name_;
    om_options.labels["threads"] = std::to_string(threads());
    if (obs::WriteOpenMetrics(obs::DefaultMetrics(), om_out, om_options)) {
      std::fprintf(stderr, "[bench] wrote %s\n", om_out.c_str());
    } else {
      std::fprintf(stderr, "[bench] cannot write %s\n", om_out.c_str());
    }

    if (!explain_out_.empty()) {
      obs::ExplainReport explain = obs::DefaultCostModel().Report();
      auto write_file = [](const std::string& path, const std::string& body) {
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
          std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
          return;
        }
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
      };
      write_file(explain_out_, explain.ToText());
      write_file(explain_out_ + ".json", explain.ToJson());
    }

    if (!trace_out_.empty()) {
      if (obs::DefaultTracer().WriteChromeJson(trace_out_)) {
        std::fprintf(stderr, "[bench] wrote trace %s (open in %s)\n",
                     trace_out_.c_str(), "chrome://tracing");
      } else {
        std::fprintf(stderr, "[bench] cannot write trace %s\n",
                     trace_out_.c_str());
      }
      std::fprintf(stderr, "%s", obs::DefaultTracer().SummaryTree().c_str());
    }
  }

 private:
  std::string name_;
  std::string trace_out_;
  std::string json_out_;
  std::string explain_out_;
  size_t threads_ = 0;
  std::unique_ptr<runtime::TaskPool> pool_;
  std::string root_name_;
  std::optional<obs::TraceSpan> root_span_;
  Stopwatch watch_;
  std::vector<std::vector<Field>> rows_;
  bool finished_ = false;
};

/// Outcome of one iFlex run over a task instance (one Table 3 cell).
struct IFlexRun {
  SessionResult session;
  EvalReport report;          // post-cleanup when the task has a cleanup
  double developer_minutes = 0;  // skeleton + question answering
  double cleanup_minutes = 0;    // parenthesized in the paper's tables
  double machine_seconds = 0;
};

/// Runs the full iFlex loop (refinement session + optional cleanup stage)
/// on `task` and evaluates against the task's gold.
inline Result<IFlexRun> RunIFlex(TaskInstance* task, StrategyKind strategy,
                                 const DeveloperTimeModel& model = {},
                                 SessionOptions options = {}) {
  IFlexRun run;
  options.strategy = strategy;
  // Aggregate every executor of the run into the process-wide registry so
  // the BENCH_*.json metrics cover the whole bench.
  if (options.exec_options.metrics == nullptr) {
    options.exec_options.metrics = &obs::DefaultMetrics();
  }
  obs::TraceSpan span(obs::TracerOrDefault(options.exec_options.tracer),
                      "bench.run_iflex");
  Stopwatch watch;
  RefinementSession session(*task->catalog, task->initial_program,
                            task->developer.get(), options);
  IFLEX_ASSIGN_OR_RETURN(run.session, session.Run());

  CompactTable final_result = run.session.final_result;
  const auto* gold = &task->gold.query_result;
  run.cleanup_minutes = task->cleanup_minutes;
  if (task->apply_cleanup) {
    IFLEX_ASSIGN_OR_RETURN(Program cleaned,
                           task->apply_cleanup(run.session.final_program));
    Executor exec(*task->catalog, options.exec_options);
    IFLEX_ASSIGN_OR_RETURN(final_result, exec.Execute(cleaned));
    gold = &task->cleanup_gold;
  }
  run.machine_seconds = watch.ElapsedSeconds();
  run.report = EvaluateResult(*task->corpus, final_result, *gold);
  run.developer_minutes =
      model.IFlexSkeletonMinutes(task->n_rules) +
      static_cast<double>(run.session.questions_asked) *
          model.seconds_per_question / 60.0;
  return run;
}

/// Measured machine seconds + correctness of the precise Xlog baseline.
struct XlogRun {
  double machine_seconds = 0;
  EvalReport report;
};

inline Result<XlogRun> RunXlogBaseline(TaskInstance* task) {
  if (task->precise_program.rules().empty()) {
    IFLEX_RETURN_NOT_OK(AddPreciseBaseline(task));
  }
  XlogRun run;
  ExecOptions exec_options;
  exec_options.metrics = &obs::DefaultMetrics();
  obs::TraceSpan span(obs::TracerOrDefault(nullptr), "bench.run_xlog");
  Stopwatch watch;
  Executor exec(*task->catalog, exec_options);
  IFLEX_ASSIGN_OR_RETURN(CompactTable result,
                         exec.Execute(task->precise_program));
  run.machine_seconds = watch.ElapsedSeconds();
  const auto& gold = task->apply_cleanup ? task->cleanup_gold
                                         : task->gold.query_result;
  run.report = EvaluateResult(*task->corpus, result, gold);
  return run;
}

/// Re-runs one scenario serially and with a pool and appends a "SCALING"
/// row (machine seconds at 1 vs N threads, speedup) to the reporter —
/// the machine-readable speedup-vs-threads record next to the per-task
/// rows. N is --threads when given, hardware concurrency otherwise.
inline void EmitScalingRow(BenchReporter* reporter, const std::string& task_id,
                           size_t scale, StrategyKind strategy,
                           const DeveloperTimeModel& model) {
  size_t threads = reporter->threads();
  if (threads <= 1) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  auto run_with = [&](runtime::TaskPool* pool) -> double {
    auto task = MakeTask(task_id, scale);
    if (!task.ok()) return -1;
    SessionOptions options;
    options.pool = pool;
    auto run = RunIFlex(task->get(), strategy, model, options);
    return run.ok() ? run->machine_seconds : -1;
  };
  std::fprintf(stderr, "[scaling] %s @ %zu at 1 and %zu threads...\n",
               task_id.c_str(), scale, threads);
  double serial_seconds = run_with(nullptr);
  runtime::TaskPool pool(threads);
  double parallel_seconds = run_with(&pool);
  double speedup = serial_seconds > 0 && parallel_seconds > 0
                       ? serial_seconds / parallel_seconds
                       : 0;
  std::printf(
      "Scaling on %s@%zu: %.2fs serial, %.2fs at %zu threads (%.2fx)\n",
      task_id.c_str(), scale, serial_seconds, parallel_seconds, threads,
      speedup);
  using R = BenchReporter;
  reporter->Row(
      {R::S("task", "SCALING"), R::S("scenario", task_id),
       R::N("tuples", static_cast<double>(scale)),
       R::N("threads", static_cast<double>(threads)),
       R::N("hardware_cores", static_cast<double>(R::hardware_cores())),
       R::N("serial_seconds", serial_seconds),
       R::N("parallel_seconds", parallel_seconds), R::N("speedup", speedup)});
}

inline std::string FmtMinutes(double minutes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", minutes);
  return buf;
}

}  // namespace bench
}  // namespace iflex

#endif  // IFLEX_BENCH_BENCH_UTIL_H_
