// Ablation B: the multi-iteration optimizations of paper §5.2.
// (1) Reuse: re-executing a refined program with vs without the
//     cross-iteration cache (only the touched extractor re-runs).
// (2) Subset evaluation: executing on a 10% sample vs the full data.
#include <benchmark/benchmark.h>

#include "exec/executor.h"
#include "tasks/task.h"

namespace iflex {
namespace {

// A T9 instance plus a sequence of programs, each adding one constraint to
// the *Barnes* extractor only — the shape of a refinement session in which
// the Amazon extractor is untouched and its table can be reused.
struct Fixture {
  std::unique_ptr<TaskInstance> task;
  std::vector<Program> steps;

  static Fixture Make(size_t scale) {
    Fixture f;
    auto task = MakeTask("T9", scale);
    if (!task.ok()) std::abort();
    f.task = std::move(task).value();
    Program p = f.task->initial_program;
    // Mid-session state: both title attributes already pinned (so the
    // similarity join can use its blocking index), the Amazon side fully
    // refined. The steps then refine only the Barnes price — exactly the
    // situation reuse targets: the Amazon table never changes.
    (void)p.AddConstraint(*f.task->catalog, "extractAmazonTN", 0, "bold_font",
                          FeatureParam::None(), FeatureValue::kDistinctYes);
    (void)p.AddConstraint(*f.task->catalog, "extractAmazonTN", 1,
                          "preceded_by", FeatureParam::Str("New:"),
                          FeatureValue::kYes);
    (void)p.AddConstraint(*f.task->catalog, "extractAmazonTN", 1, "numeric",
                          FeatureParam::None(), FeatureValue::kYes);
    (void)p.AddConstraint(*f.task->catalog, "extractBarnes", 0, "bold_font",
                          FeatureParam::None(), FeatureValue::kDistinctYes);
    f.steps.push_back(p);
    struct Step {
      const char* feature;
      size_t idx;
      FeatureValue value;
    };
    for (const Step& s :
         {Step{"numeric", 1, FeatureValue::kYes},
          Step{"italic_font", 1, FeatureValue::kDistinctYes},
          Step{"bold_font", 1, FeatureValue::kNo},
          Step{"capitalized", 1, FeatureValue::kNo}}) {
      (void)p.AddConstraint(*f.task->catalog, "extractBarnes", s.idx,
                            s.feature, FeatureParam::None(), s.value);
      f.steps.push_back(p);
    }
    return f;
  }
};

void BM_IterationsNoReuse(benchmark::State& state) {
  Fixture f = Fixture::Make(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (const Program& p : f.steps) {
      Executor exec(*f.task->catalog);
      auto r = exec.Execute(p);
      if (!r.ok()) std::abort();
      benchmark::DoNotOptimize(r->size());
    }
  }
}
BENCHMARK(BM_IterationsNoReuse)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_IterationsWithReuse(benchmark::State& state) {
  Fixture f = Fixture::Make(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    ReuseCache cache;
    size_t hits = 0;
    for (const Program& p : f.steps) {
      Executor exec(*f.task->catalog);
      auto r = exec.Execute(p, &cache);
      if (!r.ok()) std::abort();
      hits += exec.stats().cache_hits;
      benchmark::DoNotOptimize(r->size());
    }
    state.counters["cache_hits"] = static_cast<double>(hits);
  }
}
BENCHMARK(BM_IterationsWithReuse)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_WarmReexecution(benchmark::State& state) {
  // Re-executing an unchanged program is what the assistant does between
  // question rounds; with a warm cache it is (nearly) free.
  Fixture f = Fixture::Make(static_cast<size_t>(state.range(0)));
  const Program& p = f.steps.back();
  ReuseCache cache;
  {
    Executor exec(*f.task->catalog);
    if (!exec.Execute(p, &cache).ok()) std::abort();
  }
  for (auto _ : state) {
    Executor exec(*f.task->catalog);
    auto r = exec.Execute(p, &cache);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->size());
  }
}
BENCHMARK(BM_WarmReexecution)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_FullEvaluation(benchmark::State& state) {
  Fixture f = Fixture::Make(static_cast<size_t>(state.range(0)));
  const Program& p = f.steps.back();
  for (auto _ : state) {
    Executor exec(*f.task->catalog);
    auto r = exec.Execute(p);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->size());
  }
}
BENCHMARK(BM_FullEvaluation)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_SubsetEvaluation(benchmark::State& state) {
  Fixture f = Fixture::Make(static_cast<size_t>(state.range(0)));
  const Program& p = f.steps.back();
  Catalog subset = f.task->catalog->CloneWithSampledTables(0.1, 42);
  for (auto _ : state) {
    Executor exec(subset);
    auto r = exec.Execute(p);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->size());
  }
}
BENCHMARK(BM_SubsetEvaluation)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iflex

BENCHMARK_MAIN();
