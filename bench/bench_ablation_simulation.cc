// Ablation C: cost of question selection. Sequential selection is
// near-free; simulation selection pays one subset execution per candidate
// answer, and subset evaluation is what keeps that affordable (paper
// §5.1-5.2).
#include <benchmark/benchmark.h>

#include <set>

#include "assistant/strategy.h"
#include "tasks/task.h"

namespace iflex {
namespace {

struct Fixture {
  std::unique_ptr<TaskInstance> task;
  Catalog subset;
  ReuseCache cache;
  std::set<std::string> asked;

  explicit Fixture(double fraction)
      : task(MakeTask("T2", 100).value()),
        subset(task->catalog->CloneWithSampledTables(fraction, 42)) {}

  StrategyContext Ctx() {
    StrategyContext ctx;
    ctx.program = &task->initial_program;
    ctx.full_catalog = task->catalog.get();
    ctx.subset_catalog = &subset;
    ctx.subset_cache = &cache;
    ctx.asked = &asked;
    return ctx;
  }
};

void BM_SequentialNext(benchmark::State& state) {
  Fixture f(0.2);
  SequentialStrategy strategy;
  for (auto _ : state) {
    auto q = strategy.Next(f.Ctx());
    if (!q.ok()) std::abort();
    benchmark::DoNotOptimize(q->has_value());
  }
}
BENCHMARK(BM_SequentialNext);

void BM_SimulationNextOnSubset(benchmark::State& state) {
  Fixture f(0.2);
  SimulationStrategy strategy;
  for (auto _ : state) {
    auto q = strategy.Next(f.Ctx());
    if (!q.ok()) std::abort();
    benchmark::DoNotOptimize(q->has_value());
  }
  state.counters["sims"] = static_cast<double>(strategy.simulations_run());
}
BENCHMARK(BM_SimulationNextOnSubset)->Unit(benchmark::kMillisecond);

void BM_SimulationNextOnFullData(benchmark::State& state) {
  // Subset evaluation off: the "subset" is the full table.
  Fixture f(1.0);
  SimulationStrategy strategy;
  for (auto _ : state) {
    auto q = strategy.Next(f.Ctx());
    if (!q.ok()) std::abort();
    benchmark::DoNotOptimize(q->has_value());
  }
  state.counters["sims"] = static_cast<double>(strategy.simulations_run());
}
BENCHMARK(BM_SimulationNextOnFullData)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iflex

BENCHMARK_MAIN();
