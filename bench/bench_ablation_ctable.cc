// Ablation A: compact tables vs plain a-tables.
// (1) Representation: how many concrete values/tuples a from()-produced
//     compact table encodes per stored assignment (paper §3's motivation).
// (2) The annotation operator psi: the direct compact-table implementation
//     vs the paper's default a-table route (convert -> BAnnotate ->
//     convert back).
#include <benchmark/benchmark.h>

#include "datagen/books.h"
#include "exec/annotate.h"
#include "exec/executor.h"
#include "tasks/task.h"

namespace iflex {
namespace {

// Builds the pre-annotation extraction table for T7 (title+price from
// B&N records) by executing the unannotated rule.
struct Fixture {
  std::unique_ptr<TaskInstance> task;
  CompactTable input;

  static Fixture Make(size_t scale) {
    Fixture f;
    auto task = MakeTask("T7", scale);
    if (!task.ok()) std::abort();
    f.task = std::move(task).value();
    // Same rule without annotations: bbooks(x, title, price).
    Program prog = f.task->initial_program;
    for (Rule& r : prog.rules()) {
      std::fill(r.head.annotated.begin(), r.head.annotated.end(), false);
    }
    // Narrow price so cells are small but non-trivial.
    (void)prog.AddConstraint(*f.task->catalog, "extractBarnes", 1, "numeric",
                             FeatureParam::None(), FeatureValue::kYes);
    prog.set_query("bbooks");
    Executor exec(*f.task->catalog);
    auto result = exec.Execute(prog);
    if (!result.ok()) std::abort();
    f.input = std::move(result).value();
    return f;
  }
};

void BM_RepresentationCompression(benchmark::State& state) {
  Fixture f = Fixture::Make(static_cast<size_t>(state.range(0)));
  double possible = 0;
  size_t assignments = 0;
  for (auto _ : state) {
    possible = f.input.PossibleTupleCount(*f.task->corpus);
    assignments = f.input.AssignmentCount();
    benchmark::DoNotOptimize(possible);
  }
  state.counters["possible_tuples"] = possible;
  state.counters["assignments"] = static_cast<double>(assignments);
  state.counters["compression"] =
      possible / static_cast<double>(assignments);
}
BENCHMARK(BM_RepresentationCompression)->Arg(100)->Arg(500);

void BM_AnnotateCompact(benchmark::State& state) {
  Fixture f = Fixture::Make(static_cast<size_t>(state.range(0)));
  AnnotationSpec spec;
  spec.annotated = {1, 2};  // title, price
  for (auto _ : state) {
    auto out = ApplyAnnotations(*f.task->corpus, f.input, spec,
                                /*use_compact=*/true);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out->size());
  }
}
BENCHMARK(BM_AnnotateCompact)->Arg(100)->Arg(500);

void BM_AnnotateViaATables(benchmark::State& state) {
  Fixture f = Fixture::Make(static_cast<size_t>(state.range(0)));
  AnnotationSpec spec;
  spec.annotated = {1, 2};
  for (auto _ : state) {
    auto out = ApplyAnnotations(*f.task->corpus, f.input, spec,
                                /*use_compact=*/false);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out->size());
  }
}
BENCHMARK(BM_AnnotateViaATables)->Arg(100)->Arg(500);

}  // namespace
}  // namespace iflex

BENCHMARK_MAIN();
