// Regenerates Table 5: sequential vs simulation question selection.
// The paper's shape: Seq is always faster (no simulations), but in
// several tasks it converges to a much larger superset; Sim pays more and
// reaches ~100%.
#include <cstdio>
#include <map>

#include "bench_util.h"

using namespace iflex;
using namespace iflex::bench;

int main(int argc, char** argv) {
  BenchReporter reporter("table5_strategies", argc, argv);
  DeveloperTimeModel model;
  // --threads N runs every session on a shared pool (results identical to
  // serial); a SCALING row with the largest scenario's speedup lands in
  // the JSON either way.
  SessionOptions session_options;
  session_options.pool = reporter.pool();
  std::map<std::string, size_t> scenario = {
      {"T1", 100}, {"T2", 100}, {"T3", 100}, {"T4", 100}, {"T5", 500},
      {"T6", 500}, {"T7", 500}, {"T8", 500}, {"T9", 500}};

  std::printf(
      "Table 5: question-selection strategies\n"
      "%-4s %-6s %-7s | %-4s %5s %4s %8s %9s %6s\n",
      "Task", "Tuples", "Correct", "Strat", "Iters", "Qs", "Time(m)",
      "Superset", "Sims");
  std::printf(
      "---------------------+---------------------------------------------\n");

  for (const std::string& id : AllTaskIds()) {
    for (StrategyKind kind :
         {StrategyKind::kSequential, StrategyKind::kSimulation}) {
      auto task = MakeTask(id, scenario[id]);
      if (!task.ok()) {
        std::printf("%s: ERROR %s\n", id.c_str(),
                    task.status().ToString().c_str());
        return 1;
      }
      auto run = RunIFlex(task->get(), kind, model, session_options);
      if (!run.ok()) {
        std::printf("%s/%s: ERROR %s\n", id.c_str(),
                    kind == StrategyKind::kSequential ? "Seq" : "Sim",
                    run.status().ToString().c_str());
        continue;
      }
      double total_minutes = run->developer_minutes +
                             run->machine_seconds / 60.0 +
                             run->cleanup_minutes;
      std::printf("%-4s %-6zu %-7zu | %-4s %5zu %4zu %8.2f %8.0f%% %6zu\n",
                  id.c_str(), (*task)->tuples_per_table,
                  (*task)->gold.query_result.size(),
                  kind == StrategyKind::kSequential ? "Seq" : "Sim",
                  run->session.iterations.size(),
                  run->session.questions_asked, total_minutes,
                  run->report.superset_pct, run->session.simulations_run);
      using R = BenchReporter;
      reporter.Row(
          {R::S("task", id),
           R::S("strategy",
                kind == StrategyKind::kSequential ? "seq" : "sim"),
           R::N("iterations",
                static_cast<double>(run->session.iterations.size())),
           R::N("questions",
                static_cast<double>(run->session.questions_asked)),
           R::N("total_minutes", total_minutes),
           R::N("superset_pct", run->report.superset_pct),
           R::N("simulations",
                static_cast<double>(run->session.simulations_run))});
    }
  }
  size_t largest_scale = 0;
  std::string largest_id;
  for (const auto& [id, scale] : scenario) {
    if (scale >= largest_scale) {
      largest_scale = scale;
      largest_id = id;
    }
  }
  if (!largest_id.empty()) {
    EmitScalingRow(&reporter, largest_id, largest_scale,
                   StrategyKind::kSimulation, model);
  }
  return 0;
}
