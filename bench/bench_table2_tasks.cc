// Regenerates Table 2: the nine IE tasks and their initial programs.
// Prints each task's description plus the parsed-and-validated initial
// Alog program (before any description-rule refinement).
#include <cstdio>

#include "tasks/task.h"

using namespace iflex;

int main() {
  std::printf("Table 2: IE tasks and initial Alog programs\n\n");
  for (const std::string& id : AllTaskIds()) {
    auto task = MakeTask(id, 20);
    if (!task.ok()) {
      std::printf("%s: ERROR %s\n", id.c_str(),
                  task.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: %s\n", id.c_str(), (*task)->description.c_str());
    std::printf("%s\n", (*task)->initial_program.ToString().c_str());
  }
  return 0;
}
