// Regenerates Table 2: the nine IE tasks and their initial programs.
// Prints each task's description plus the parsed-and-validated initial
// Alog program (before any description-rule refinement).
#include <cstdio>

#include "bench_util.h"
#include "tasks/task.h"

using namespace iflex;

int main(int argc, char** argv) {
  bench::BenchReporter reporter("table2_tasks", argc, argv);
  std::printf("Table 2: IE tasks and initial Alog programs\n\n");
  for (const std::string& id : AllTaskIds()) {
    auto task = MakeTask(id, 20);
    if (!task.ok()) {
      std::printf("%s: ERROR %s\n", id.c_str(),
                  task.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: %s\n", id.c_str(), (*task)->description.c_str());
    std::printf("%s\n", (*task)->initial_program.ToString().c_str());
    using R = bench::BenchReporter;
    reporter.Row(
        {R::S("task", id),
         R::N("rules",
              static_cast<double>((*task)->initial_program.rules().size()))});
  }
  return 0;
}
