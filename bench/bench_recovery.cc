// Durability benchmark (docs/ROBUSTNESS.md): the serving cost of crash
// safety, measured on the real server stack.
//
//   1. REPLAY rows — recovery (RecoverAll) time as a function of journal
//      length, with snapshots off (replay everything) and on (replay the
//      compacted snapshot prefix + journal suffix). `replay_ms` is gated
//      by check_regression.py; the replayed-command counts are
//      deterministic and must match the baseline exactly.
//   2. OVERHEAD rows — journaling overhead on command throughput per
//      fsync policy (off / interval:25 / every), as a slowdown factor
//      against an ephemeral server on the same workload. `overhead_rate`
//      is reported but ungated: it moves with both numerator and
//      denominator under machine load.
//
// Exits nonzero if a recovered session's program/table state diverges
// from the server that wrote the journal — the benchmark doubles as an
// end-to-end replay-fidelity check.
//
// Writes BENCH_RECOVERY.json (+ .om) via the bench harness.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/strutil.h"
#include "durability/session_log.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace {

using iflex::Stopwatch;
using iflex::StringPrintf;
using iflex::serve::ParsedResponse;
using iflex::serve::ParseResponse;
using iflex::serve::Server;
using iflex::serve::ServerOptions;

ParsedResponse MustCall(Server* server, const std::string& line) {
  auto parsed = ParseResponse(server->HandleLine(line));
  if (!parsed.ok() || !parsed->ok) {
    std::fprintf(stderr, "bench_recovery: request failed: %s\n  -> %s\n",
                 line.c_str(),
                 parsed.ok() ? parsed->error.c_str()
                             : parsed.status().ToString().c_str());
    std::exit(1);
  }
  return *parsed;
}

/// A refinement-session-shaped churn workload: one corpus gen, then
/// rule/query edit cycles punctuated by `clear` (so compaction has dead
/// history to drop). Every command is accepted and journaled.
std::vector<std::string> Workload(size_t n) {
  std::vector<std::string> commands;
  commands.push_back("gen movies");
  for (size_t i = 0; commands.size() < n; ++i) {
    switch (i % 4) {
      case 0:
        commands.push_back(
            StringPrintf("rule q%zu(t) :- ebertPages(t).", i));
        break;
      case 1:
        commands.push_back(StringPrintf("query q%zu", i - 1));
        break;
      case 2:
        commands.push_back(
            StringPrintf("rule p%zu(t) :- imdbPages(t).", i));
        break;
      default:
        commands.push_back("clear");
        break;
    }
  }
  return commands;
}

/// What replay must reproduce exactly: program text + table inventory.
std::string StateOf(Server* server) {
  return MustCall(server, "cmd s1 program").output + "\n==\n" +
         MustCall(server, "cmd s1 tables").output;
}

}  // namespace

int main(int argc, char** argv) {
  iflex::bench::BenchReporter reporter("RECOVERY", argc, argv);
  using R = iflex::bench::BenchReporter;
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() /
      ("bench_recovery_" + std::to_string(static_cast<long>(::getpid())));
  fs::create_directories(root);
  int failures = 0;

  // ------------------------------------------- replay time vs length
  std::printf("%-8s %-9s %10s %10s %12s\n", "task", "mode", "commands",
              "replayed", "replay_ms");
  const size_t kLengths[] = {500, 2000, 8000};
  for (size_t n : kLengths) {
    for (bool snapshots : {false, true}) {
      const char* mode = snapshots ? "snapshot" : "journal";
      ServerOptions options;
      options.run_id = "bench_recovery";
      options.data_dir =
          (root / StringPrintf("replay_%s_%zu", mode, n)).string();
      options.durability.snapshot_every = snapshots ? 256 : 0;
      std::string expected;
      {
        Server writer(options);
        MustCall(&writer, "open s1");
        for (const std::string& command : Workload(n)) {
          MustCall(&writer, "cmd s1 " + command);
        }
        expected = StateOf(&writer);
      }
      // Replay is idempotent, so recover repeatedly and keep the best
      // time — minimum over repeats is the standard noise floor for a
      // deterministic workload under a gated timing.
      double replay_ms = 0;
      double replayed = 0;
      for (int rep = 0; rep < 3; ++rep) {
        Server reader(options);
        Stopwatch watch;
        iflex::Status st = reader.RecoverAll();
        double ms = watch.ElapsedSeconds() * 1e3;
        if (!st.ok()) {
          std::fprintf(stderr, "bench_recovery: RecoverAll: %s\n",
                       st.ToString().c_str());
          return 1;
        }
        if (StateOf(&reader) != expected) {
          std::fprintf(stderr,
                       "bench_recovery: FIDELITY FAILURE: recovered state "
                       "diverges (mode=%s n=%zu)\n",
                       mode, n);
          ++failures;
          break;
        }
        if (rep == 0 || ms < replay_ms) replay_ms = ms;
        replayed = static_cast<double>(
            reader.metrics().counter("serve.replayed_commands")->value());
      }
      std::printf("%-8s %-9s %10zu %10.0f %12.2f\n", "REPLAY", mode, n,
                  replayed, replay_ms);
      reporter.Row({R::S("task", "REPLAY"), R::S("mode", mode),
                    R::N("commands", static_cast<double>(n)),
                    R::N("replayed", replayed),
                    R::N("replay_ms", replay_ms)});
    }
  }

  // ------------------------------------- journal overhead per policy
  struct Policy {
    const char* name;
    bool durable;
    iflex::durability::FsyncPolicy fsync;
  };
  const Policy kPolicies[] = {
      {"ephemeral", false, iflex::durability::FsyncPolicy::kOff},
      {"off", true, iflex::durability::FsyncPolicy::kOff},
      {"interval", true, iflex::durability::FsyncPolicy::kInterval},
      {"every", true, iflex::durability::FsyncPolicy::kEveryRecord},
  };
  const size_t kCommands = 600;
  std::printf("\n%-8s %-9s %10s %14s\n", "task", "policy", "commands",
              "overhead_rate");
  double ephemeral_qps = 0;
  for (const Policy& policy : kPolicies) {
    ServerOptions options;
    options.run_id = "bench_recovery";
    if (policy.durable) {
      options.data_dir = (root / StringPrintf("overhead_%s", policy.name))
                             .string();
      options.durability.fsync = policy.fsync;
      options.durability.fsync_interval_ms = 25;
      options.durability.snapshot_every = 0;  // isolate the journal cost
    }
    Server server(options);
    MustCall(&server, "open s1");
    std::vector<std::string> lines;
    lines.reserve(kCommands);
    for (size_t i = 0; i < kCommands; ++i) {
      lines.push_back(StringPrintf("cmd s1 query q%zu", i));
    }
    Stopwatch watch;
    for (const std::string& line : lines) MustCall(&server, line);
    double qps = static_cast<double>(kCommands) / watch.ElapsedSeconds();
    if (!policy.durable) ephemeral_qps = qps;
    double overhead_rate = ephemeral_qps > 0 ? ephemeral_qps / qps : 0;
    std::printf("%-8s %-9s %10zu %13.2fx   (%.0f cmd/s)\n", "OVERHEAD",
                policy.name, kCommands, overhead_rate, qps);
    reporter.Row({R::S("task", "OVERHEAD"), R::S("policy", policy.name),
                  R::N("commands", static_cast<double>(kCommands)),
                  R::N("overhead_rate", overhead_rate)});
  }

  std::error_code ec;
  fs::remove_all(root, ec);
  if (failures > 0) {
    std::fprintf(stderr, "bench_recovery: %d fidelity failure(s)\n",
                 failures);
    return 1;
  }
  return 0;
}
