// Regenerates Table 4: iFlex's per-iteration behaviour when soliciting
// domain knowledge — result tuples per iteration (subset-evaluation mode
// in plain numbers, reuse/full mode marked with '*'), questions asked,
// total modelled time, and the final superset size.
#include <cstdio>
#include <map>

#include "bench_util.h"

using namespace iflex;
using namespace iflex::bench;

int main(int argc, char** argv) {
  BenchReporter reporter("table4_iterations", argc, argv);
  DeveloperTimeModel model;
  // The paper's Table 4 picks one scenario per task.
  std::map<std::string, size_t> scenario = {
      {"T1", 10},  {"T2", 100}, {"T3", 517}, {"T4", 10},  {"T5", 500},
      {"T6", 500}, {"T7", 500}, {"T8", 2490}, {"T9", 100}};

  std::printf(
      "Table 4: per-iteration tuples ('*' = reuse/full-data mode)\n"
      "%-4s %-6s %-7s | %-44s | %5s %8s %9s\n",
      "Task", "Tuples", "Correct", "Tuples after each iteration", "Qs",
      "Time(m)", "Superset");
  std::printf(
      "---------------------+----------------------------------------------+"
      "------------------------\n");

  for (const std::string& id : AllTaskIds()) {
    auto task = MakeTask(id, scenario[id]);
    if (!task.ok()) {
      std::printf("%s: ERROR %s\n", id.c_str(),
                  task.status().ToString().c_str());
      return 1;
    }
    auto run = RunIFlex(task->get(), StrategyKind::kSimulation, model);
    if (!run.ok()) {
      std::printf("%s: ERROR %s\n", id.c_str(),
                  run.status().ToString().c_str());
      return 1;
    }
    std::string iters;
    for (const IterationRecord& it : run->session.iterations) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%s%.0f%s", it.full_data ? "*" : "",
                    it.result_tuples, " ");
      iters += buf;
    }
    double total_minutes = run->developer_minutes +
                           run->machine_seconds / 60.0 +
                           run->cleanup_minutes;
    std::printf("%-4s %-6zu %-7zu | %-44s | %5zu %8.2f %8.0f%%\n", id.c_str(),
                (*task)->tuples_per_table, (*task)->gold.query_result.size(),
                iters.c_str(), run->session.questions_asked, total_minutes,
                run->report.superset_pct);
    using R = BenchReporter;
    reporter.Row(
        {R::S("task", id),
         R::N("tuples", static_cast<double>((*task)->tuples_per_table)),
         R::N("iterations",
              static_cast<double>(run->session.iterations.size())),
         R::N("questions",
              static_cast<double>(run->session.questions_asked)),
         R::N("total_minutes", total_minutes),
         R::N("superset_pct", run->report.superset_pct)});
  }
  return 0;
}
