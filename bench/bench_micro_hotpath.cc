// Hot-path micro-benchmarks for the interned fast paths
// (docs/PERFORMANCE.md): string interning, cached token similarity, the
// JoinAtom hash equi-join vs the legacy tri-state scan, the Verify
// memo, and the compiled operator core (rule lowering cost plus the
// fused verify chain vs the per-literal interpreter). Writes
// BENCH_MICRO.json; bench/check_regression.py diffs it against the
// committed baseline. Every workload is seeded/synthetic, so the op
// counts are exactly reproducible — only the timings move.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/intern.h"
#include "exec/compile.h"
#include "exec/executor.h"
#include "exec/verify_memo.h"
#include "text/markup_parser.h"

using namespace iflex;
using namespace iflex::bench;

namespace {

// Deterministic pseudo-words: enough collisions to exercise the intern
// hit path, enough spread to grow the arena.
std::string Word(size_t i) {
  static const char* kStems[] = {"alpha", "bravo", "china",  "delta",
                                 "echo",  "fox",   "golf",   "hotel",
                                 "india", "julia", "kilo",   "lima"};
  return std::string(kStems[i % 12]) + std::to_string(i % 997);
}

std::string Phrase(size_t i, size_t words) {
  std::string s;
  for (size_t w = 0; w < words; ++w) {
    if (!s.empty()) s += ' ';
    s += Word(i * 7 + w * 13);
  }
  return s;
}

// Catalog with r(a,b) |><| s(b,c) on exact numeric keys, sized so the
// join dominates: every probe key exists, so the scan pays the full
// |r| x |s| tri-state comparisons the index skips.
std::unique_ptr<Catalog> JoinCatalog(Corpus* corpus, size_t r_rows,
                                     size_t s_rows) {
  auto catalog = std::make_unique<Catalog>(corpus);
  auto num = [](double n) { return Cell::Exact(Value::Number(n)); };
  CompactTable r({"a", "b"});
  for (size_t i = 0; i < r_rows; ++i) {
    CompactTuple t;
    t.cells.push_back(num(static_cast<double>(i)));
    t.cells.push_back(num(static_cast<double>(i % s_rows)));
    r.Add(std::move(t));
  }
  CompactTable s({"b", "c"});
  for (size_t i = 0; i < s_rows; ++i) {
    CompactTuple t;
    t.cells.push_back(num(static_cast<double>(i)));
    t.cells.push_back(num(static_cast<double>(i * 100)));
    s.Add(std::move(t));
  }
  if (!catalog->AddTable("r", std::move(r)).ok()) return nullptr;
  if (!catalog->AddTable("s", std::move(s)).ok()) return nullptr;
  catalog->RegisterBuiltinFunctions();
  return catalog;
}

double JoinSeconds(const Catalog& catalog, const Program& prog, bool fast,
                   size_t* join_pairs) {
  ExecOptions options;
  options.enable_fast_path = fast;
  Executor exec(catalog, options);
  Stopwatch watch;
  auto result = exec.Execute(prog);
  double seconds = watch.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "join bench: %s\n",
                 result.status().ToString().c_str());
    return -1;
  }
  *join_pairs = exec.stats().join_pairs;
  return seconds;
}

// Markup corpus where every token is a bold number, plus a cands(p)
// table holding one exact token span per row: the driving rule's body is
// a verify chain (bold_font, numeric) followed by two comparisons — the
// exact literal sequence rule compilation fuses into a constraint chain
// and a columnar filter block. Every row survives every literal, so the
// interpreter pays its full per-literal cost (a table rebuild and a
// feature re-resolution per constraint, a cell enumeration per
// comparison) on every tuple.
std::unique_ptr<Catalog> VerifyCatalog(Corpus* corpus, size_t docs,
                                       size_t tokens_per_doc, size_t* rows) {
  std::vector<DocId> ids;
  for (size_t d = 0; d < docs; ++d) {
    std::string markup;
    for (size_t t = 0; t < tokens_per_doc; ++t) {
      if (!markup.empty()) markup += ' ';
      markup +=
          "<b>" + std::to_string(101 + (d * tokens_per_doc + t) % 899779) +
          "</b>";
    }
    auto doc = ParseMarkup("verify/" + std::to_string(d), markup);
    if (!doc.ok()) return nullptr;
    ids.push_back(corpus->Add(std::move(doc).value()));
  }
  auto catalog = std::make_unique<Catalog>(corpus);
  CompactTable cands({"p"});
  for (DocId id : ids) {
    const Document& doc = corpus->Get(id);
    for (const Token& tok : doc.tokens()) {
      CompactTuple t;
      t.cells.push_back(
          Cell::Exact(Value::OfSpan(*corpus, Span(id, tok.begin, tok.end))));
      cands.Add(std::move(t));
    }
  }
  *rows = cands.size();
  if (!catalog->AddTable("cands", std::move(cands)).ok()) return nullptr;
  catalog->RegisterBuiltinFunctions();
  return catalog;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("MICRO", argc, argv);
  using R = BenchReporter;

  // ------------------------------------------------ interner throughput
  {
    constexpr size_t kOps = 400000;
    StringInterner interner;
    Stopwatch watch;
    for (size_t i = 0; i < kOps; ++i) interner.Intern(Word(i));
    double seconds = watch.ElapsedSeconds();
    std::printf("intern            %8zu ops  %6.1f ns/op  (%zu distinct)\n",
                kOps, 1e9 * seconds / kOps, interner.size());
    reporter.Row({R::S("case", "intern"), R::N("ops", kOps),
                  R::N("seconds", seconds),
                  R::N("ns_per_op", 1e9 * seconds / kOps),
                  R::N("distinct", static_cast<double>(interner.size()))});
  }

  // ------------------------------- similarity: legacy vs interned tokens
  {
    constexpr size_t kPairs = 40000;
    std::vector<std::string> lhs, rhs;
    for (size_t i = 0; i < kPairs; ++i) {
      lhs.push_back(Phrase(i, 6));
      rhs.push_back(Phrase(i / 3, 6));  // 1-in-3 near-duplicates
    }
    double legacy_sum = 0, fast_sum = 0;
    Stopwatch legacy_watch;
    for (size_t i = 0; i < kPairs; ++i)
      legacy_sum += TokenJaccard(lhs[i], rhs[i]);
    double legacy_seconds = legacy_watch.ElapsedSeconds();

    StringInterner interner;
    TokenCache cache(&interner);
    Stopwatch fast_watch;
    for (size_t i = 0; i < kPairs; ++i)
      fast_sum += TokenIdJaccard(cache.TokensOf(lhs[i]), cache.TokensOf(rhs[i]));
    double fast_seconds = fast_watch.ElapsedSeconds();
    if (legacy_sum != fast_sum) {
      std::fprintf(stderr, "similarity mismatch: %f vs %f\n", legacy_sum,
                   fast_sum);
      return 1;
    }
    std::printf("similar legacy    %8zu ops  %6.1f ns/op\n", kPairs,
                1e9 * legacy_seconds / kPairs);
    std::printf("similar interned  %8zu ops  %6.1f ns/op  (%.1fx)\n", kPairs,
                1e9 * fast_seconds / kPairs, legacy_seconds / fast_seconds);
    reporter.Row({R::S("case", "similar_legacy"), R::N("ops", kPairs),
                  R::N("seconds", legacy_seconds),
                  R::N("ns_per_op", 1e9 * legacy_seconds / kPairs)});
    reporter.Row({R::S("case", "similar_interned"), R::N("ops", kPairs),
                  R::N("seconds", fast_seconds),
                  R::N("ns_per_op", 1e9 * fast_seconds / kPairs),
                  R::N("speedup", legacy_seconds / fast_seconds)});
  }

  // --------------------------------------- join: hash index vs tri-state
  {
    Corpus corpus;
    auto catalog = JoinCatalog(&corpus, 2000, 1000);
    if (catalog == nullptr) return 1;
    auto prog = ParseProgram("q(a, c) :- r(a, b), s(b, c).", *catalog);
    if (!prog.ok()) return 1;
    prog->set_query("q");
    size_t scan_pairs = 0, hash_pairs = 0;
    double scan_seconds =
        JoinSeconds(*catalog, *prog, /*fast=*/false, &scan_pairs);
    double hash_seconds =
        JoinSeconds(*catalog, *prog, /*fast=*/true, &hash_pairs);
    if (scan_seconds < 0 || hash_seconds < 0) return 1;
    std::printf("join scan         %8zu pairs %6.3f s\n", scan_pairs,
                scan_seconds);
    std::printf("join hash         %8zu pairs %6.3f s  (%.1fx)\n", hash_pairs,
                hash_seconds, scan_seconds / hash_seconds);
    reporter.Row({R::S("case", "join_scan"),
                  R::N("join_pairs", static_cast<double>(scan_pairs)),
                  R::N("seconds", scan_seconds)});
    reporter.Row({R::S("case", "join_hash"),
                  R::N("join_pairs", static_cast<double>(hash_pairs)),
                  R::N("seconds", hash_seconds),
                  R::N("speedup", scan_seconds / hash_seconds)});
  }

  // ------------------- rule compilation + fused verify chain throughput
  {
    Corpus corpus;
    size_t rows = 0;
    auto catalog = VerifyCatalog(&corpus, 200, 200, &rows);
    if (catalog == nullptr) return 1;
    auto prog = ParseProgram(
        "q(p) :- cands(p), bold_font(p) = yes, numeric(p) = yes, "
        "p > 100, p < 1000000000, p != 0, p >= 101.",
        *catalog);
    if (!prog.ok()) return 1;
    prog->set_query("q");

    // Lowering cost: how long CompileRule takes to turn the program into
    // plans. rules/plans are deterministic; compile_ms is gated with
    // generous slack (it is microseconds of work, so one scheduler blip
    // moves it a lot).
    constexpr size_t kCompileIters = 1000;
    size_t plans = 0;
    Stopwatch compile_watch;
    for (size_t i = 0; i < kCompileIters; ++i) {
      plans = 0;
      for (const Rule& rule : prog->rules()) {
        if (CompileRule(*catalog, rule).has_value()) ++plans;
      }
    }
    double compile_ms = 1e3 * compile_watch.ElapsedSeconds() / kCompileIters;
    std::printf("rule compile      %8zu rules %6.1f us/program  (%zu plans)\n",
                prog->rules().size(), 1e3 * compile_ms, plans);
    reporter.Row({R::S("case", "rule_compile"),
                  R::N("rules", static_cast<double>(prog->rules().size())),
                  R::N("plans", static_cast<double>(plans)),
                  R::N("compile_ms", compile_ms)});

    // Fused pass vs interpreter, single thread, best of three. The two
    // paths must produce identical bytes and identical constraint-cell
    // counts — the bench exits nonzero on any divergence, so the speedup
    // row can never be bought with a behaviour change.
    auto measure = [&](bool enable, std::string* bytes,
                       size_t* cells) -> double {
      double best = -1;
      for (int rep = 0; rep < 3; ++rep) {
        ExecOptions options;
        options.enable_rule_compile = enable;
        Executor exec(*catalog, options);
        Stopwatch watch;
        auto result = exec.Execute(*prog);
        double seconds = watch.ElapsedSeconds();
        if (!result.ok()) {
          std::fprintf(stderr, "fused verify bench: %s\n",
                       result.status().ToString().c_str());
          return -1;
        }
        if (enable && exec.stats().rules_compiled == 0) {
          std::fprintf(stderr, "fused verify bench: rule did not compile\n");
          return -1;
        }
        std::string got = result->ToString(&corpus);
        if (bytes->empty()) {
          *bytes = std::move(got);
        } else if (got != *bytes) {
          std::fprintf(stderr, "fused verify bench: bytes diverged\n");
          return -1;
        }
        *cells = exec.stats().constraint_cells;
        if (best < 0 || seconds < best) best = seconds;
      }
      return best;
    };
    std::string interp_bytes, fused_bytes;
    size_t interp_cells = 0, fused_cells = 0;
    double interp_seconds = measure(false, &interp_bytes, &interp_cells);
    double fused_seconds = measure(true, &fused_bytes, &fused_cells);
    if (interp_seconds < 0 || fused_seconds < 0) return 1;
    if (interp_bytes != fused_bytes || interp_cells != fused_cells) {
      std::fprintf(stderr,
                   "fused verify bench: compiled path diverged from the "
                   "interpreter\n");
      return 1;
    }
    std::printf("verify interp     %8zu cells %6.3f s\n", interp_cells,
                interp_seconds);
    std::printf("verify fused      %8zu cells %6.3f s  (%.1fx)\n", fused_cells,
                fused_seconds, interp_seconds / fused_seconds);
    // speedup_floor arms the absolute >= 1.3x gate in check_regression.py
    // (threads = 1, so it is armed on every host); cells_per_second is the
    // lower-is-regression throughput gate.
    reporter.Row({R::S("case", "fused_verify"),
                  R::N("tuples", static_cast<double>(rows)),
                  R::N("constraint_cells", static_cast<double>(fused_cells)),
                  R::N("interp_seconds", interp_seconds),
                  R::N("seconds", fused_seconds),
                  R::N("speedup", interp_seconds / fused_seconds),
                  R::N("speedup_floor", 1.3), R::N("threads", 1),
                  R::N("hardware_cores",
                       static_cast<double>(R::hardware_cores())),
                  R::N("cells_per_second", fused_cells / fused_seconds)});
  }

  // ------------------------------------------------- verify memo lookups
  {
    constexpr size_t kOps = 1000000;
    VerifyMemo memo;
    VerifyMemo::Key k{};
    k.target_kind = 1;
    Stopwatch watch;
    for (size_t i = 0; i < kOps; ++i) {
      k.feature = static_cast<ValueId>(i % 64);
      k.text = static_cast<ValueId>(i % 4096);
      if (!memo.Lookup(k).has_value()) memo.Insert(k, 1);
    }
    double seconds = watch.ElapsedSeconds();
    std::printf("verify memo       %8zu ops  %6.1f ns/op  (%zu entries, "
                "%zu hits)\n",
                kOps, 1e9 * seconds / kOps, memo.size(), memo.hits());
    reporter.Row({R::S("case", "verify_memo"), R::N("ops", kOps),
                  R::N("seconds", seconds),
                  R::N("ns_per_op", 1e9 * seconds / kOps),
                  R::N("entries", static_cast<double>(memo.size())),
                  R::N("hits", static_cast<double>(memo.hits()))});
  }

  return 0;
}
