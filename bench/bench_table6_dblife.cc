// Regenerates Table 6: the DBLife tasks (Panel / Project / Chair) over the
// heterogeneous synthetic crawl. The paper reports iFlex development
// minutes (with cleanup in parentheses) of 44-60 min vs 2-3 hours for the
// hand-written Perl programs, and final-program runtimes of 104-351 s over
// the 10,007-page crawl (our crawl is smaller; see DESIGN.md).
#include <cstdio>

#include "bench_util.h"

using namespace iflex;
using namespace iflex::bench;

int main(int argc, char** argv) {
  BenchReporter reporter("table6_dblife", argc, argv);
  DeveloperTimeModel model;
  std::printf(
      "Table 6: DBLife tasks\n"
      "%-8s | %-14s | %-10s | %-9s | %-10s\n",
      "Task", "iFlex min(clnp)", "runtime(s)", "superset", "perl-model(m)");
  std::printf(
      "---------+----------------+------------+-----------+-----------\n");

  for (const std::string& id : DblifeTaskIds()) {
    auto task = MakeTask(id, 0);
    if (!task.ok()) {
      std::printf("%s: ERROR %s\n", id.c_str(),
                  task.status().ToString().c_str());
      return 1;
    }
    TaskInstance* t = task->get();
    auto run = RunIFlex(t, StrategyKind::kSimulation, model);
    if (!run.ok()) {
      std::printf("%s: ERROR %s\n", id.c_str(),
                  run.status().ToString().c_str());
      return 1;
    }

    // Runtime of the *final* converged program over the whole crawl.
    Program final_program = run->session.final_program;
    if (t->apply_cleanup) {
      auto cleaned = t->apply_cleanup(final_program);
      if (cleaned.ok()) final_program = *cleaned;
    }
    Stopwatch watch;
    Executor exec(*t->catalog);
    auto result = exec.Execute(final_program);
    double runtime = watch.ElapsedSeconds();
    if (!result.ok()) {
      std::printf("%s: exec ERROR %s\n", id.c_str(),
                  result.status().ToString().c_str());
      return 1;
    }

    // The paper's comparison point: hand-written precise programs took
    // 2-3 hours; our cost model for the same procedures:
    double perl_minutes =
        model.XlogMinutes(t->n_procedures, t->n_attributes, t->n_rules) * 2;

    double iflex_minutes = run->developer_minutes +
                           run->machine_seconds / 60.0 +
                           run->cleanup_minutes;
    std::printf("%-8s | %6.1f (%2.0f)    | %10.2f | %8.0f%% | %8.0f\n",
                id.c_str(), iflex_minutes, run->cleanup_minutes, runtime,
                run->report.superset_pct, perl_minutes);
    using R = BenchReporter;
    reporter.Row({R::S("task", id), R::N("iflex_minutes", iflex_minutes),
                  R::N("cleanup_minutes", run->cleanup_minutes),
                  R::N("final_runtime_seconds", runtime),
                  R::N("superset_pct", run->report.superset_pct),
                  R::N("perl_model_minutes", perl_minutes)});
  }
  return 0;
}
