// Regenerates Table 3: run time of Manual / Xlog / iFlex over 27
// scenarios (9 tasks x 3 sizes). Developer time is modelled (see
// DeveloperTimeModel and DESIGN.md); machine time is measured. The shapes
// to verify against the paper:
//   - Manual grows with the data and becomes infeasible ("-") on the
//     large scenarios of join tasks,
//   - Xlog is roughly flat per task (procedure-writing dominated),
//   - iFlex is the cheapest everywhere (paper: 25-98% reduction vs Xlog),
//     and converges to ~100% supersets (§6.2: 23/27 scenarios exact).
#include <cstdio>

#include "bench_util.h"

using namespace iflex;
using namespace iflex::bench;

int main(int argc, char** argv) {
  BenchReporter reporter("table3_overall", argc, argv);
  DeveloperTimeModel model;
  // --threads N runs every session on a shared pool (results identical to
  // serial); a SCALING row with the largest scenario's speedup lands in
  // the JSON either way.
  SessionOptions session_options;
  session_options.pool = reporter.pool();
  std::printf(
      "Table 3: developer+machine minutes over 27 scenarios\n"
      "%-4s %-6s | %-7s %-7s %-14s | %-9s %-5s\n",
      "Task", "Tuples", "Manual", "Xlog", "iFlex(cleanup)", "superset%",
      "conv");
  std::printf(
      "------------+---------------------------------+---------------\n");

  int exact_scenarios = 0;
  int scenarios = 0;
  double xlog_total = 0;
  double iflex_total = 0;
  std::string largest_id;
  size_t largest_scale = 0;
  size_t largest_tuples = 0;
  for (const std::string& id : AllTaskIds()) {
    for (size_t scale : ScenarioSizes(id)) {
      std::fprintf(stderr, "[table3] %s @ %zu...\n", id.c_str(), scale);
      auto task = MakeTask(id, scale);
      if (!task.ok()) {
        std::printf("%s@%zu: ERROR %s\n", id.c_str(), scale,
                    task.status().ToString().c_str());
        return 1;
      }
      TaskInstance* t = task->get();

      auto manual =
          model.ManualMinutes(t->manual_records, t->manual_pairs);
      auto xlog = RunXlogBaseline(t);
      auto iflex = RunIFlex(t, StrategyKind::kSimulation, model, session_options);
      if (!xlog.ok() || !iflex.ok()) {
        std::printf("%s@%zu: ERROR %s %s\n", id.c_str(), scale,
                    xlog.status().ToString().c_str(),
                    iflex.status().ToString().c_str());
        return 1;
      }
      double xlog_minutes =
          model.XlogMinutes(t->n_procedures, t->n_attributes, t->n_rules) +
          xlog->machine_seconds / 60.0;
      double iflex_minutes =
          iflex->developer_minutes + iflex->machine_seconds / 60.0;
      double iflex_total_minutes = iflex_minutes + iflex->cleanup_minutes;

      char manual_buf[16];
      if (manual.has_value()) {
        std::snprintf(manual_buf, sizeof(manual_buf), "%.1f", *manual);
      } else {
        std::snprintf(manual_buf, sizeof(manual_buf), "-");
      }
      char iflex_buf[32];
      if (iflex->cleanup_minutes > 0) {
        std::snprintf(iflex_buf, sizeof(iflex_buf), "%.1f (%.0f)",
                      iflex_total_minutes, iflex->cleanup_minutes);
      } else {
        std::snprintf(iflex_buf, sizeof(iflex_buf), "%.1f",
                      iflex_total_minutes);
      }
      std::printf("%-4s %-6zu | %-7s %-7.1f %-14s | %8.0f%% %-5s\n",
                  id.c_str(), t->tuples_per_table, manual_buf, xlog_minutes,
                  iflex_buf, iflex->report.superset_pct,
                  iflex->session.converged ? "yes" : "no");

      ++scenarios;
      if (t->tuples_per_table > largest_tuples) {
        largest_tuples = t->tuples_per_table;
        largest_id = id;
        largest_scale = scale;
      }
      if (iflex->report.exact) ++exact_scenarios;
      xlog_total += xlog_minutes;
      iflex_total += iflex_total_minutes;
      using R = BenchReporter;
      reporter.Row(
          {R::S("task", id), R::N("tuples", static_cast<double>(scale)),
           R::N("manual_minutes", manual.has_value() ? *manual : -1),
           R::N("xlog_minutes", xlog_minutes),
           R::N("iflex_minutes", iflex_total_minutes),
           R::N("cleanup_minutes", iflex->cleanup_minutes),
           R::N("xlog_machine_seconds", xlog->machine_seconds),
           R::N("iflex_machine_seconds", iflex->machine_seconds),
           R::N("superset_pct", iflex->report.superset_pct),
           R::N("converged", iflex->session.converged ? 1 : 0),
           R::N("exact", iflex->report.exact ? 1 : 0)});

      // Shape checks (the paper's qualitative claims).
      if (!xlog->report.exact) {
        std::printf("  !! Xlog baseline not exact on %s@%zu: %s\n",
                    id.c_str(), scale, xlog->report.ToString().c_str());
      }
      if (!iflex->report.covers_all_gold) {
        std::printf("  !! iFlex lost gold tuples on %s@%zu: %s\n", id.c_str(),
                    scale, iflex->report.ToString().c_str());
      }
    }
  }
  std::printf(
      "\nSummary: %d/%d scenarios converged to the exact result "
      "(paper: 23/27)\n",
      exact_scenarios, scenarios);
  std::printf("Total Xlog minutes %.0f vs iFlex minutes %.0f (%.0f%% saved)\n",
              xlog_total, iflex_total,
              100.0 * (1.0 - iflex_total / xlog_total));
  using R = BenchReporter;
  reporter.Row({R::S("task", "TOTAL"),
                R::N("exact_scenarios", exact_scenarios),
                R::N("scenarios", scenarios),
                R::N("xlog_minutes", xlog_total),
                R::N("iflex_minutes", iflex_total)});
  if (!largest_id.empty()) {
    EmitScalingRow(&reporter, largest_id, largest_scale,
                   StrategyKind::kSimulation, model);
  }
  return 0;
}
