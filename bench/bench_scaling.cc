// Scaling benchmark for the morsel-driven parallel executor
// (docs/RUNTIME.md, "Morsel scheduler"; methodology in
// docs/PERFORMANCE.md): re-runs two fixed workloads — the largest Table 3
// scenario and a synthetic corpus with heavy document skew — serially and
// at 1/2/4/8 threads, and writes per-thread-count rows to
// BENCH_SCALING.json. Every row records the host's hardware_cores so
// check_regression.py can refuse cross-host speedup comparisons; the
// 8-thread rows author a speedup_floor that the gate enforces only on
// hosts with >= 8 cores (loudly skipped elsewhere). The 1-thread-pool
// run also yields morsel_overhead_x — the price of morsel dispatch over
// the pool-less serial pipeline — which is host-independent and gated
// everywhere. Exits nonzero if any parallel result differs byte-for-byte
// from the serial one.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/intern.h"
#include "exec/executor.h"
#include "text/markup_parser.h"

using namespace iflex;
using namespace iflex::bench;

namespace {

// The authored promise for the 8-thread rows: at least this speedup over
// serial whenever the host really has 8+ cores. Deliberately conservative
// (ideal would be ~8x): it catches "parallelism silently broke" without
// flaking on shared CI machines.
constexpr double kSpeedupFloor8t = 2.0;

struct RunOutcome {
  double seconds = -1;
  std::string result;  // canonical text of the answer, for identity checks
};

// One executor run; `threads` == 0 means no pool (the pool-less serial
// pipeline, the identity reference).
RunOutcome RunOnce(const Catalog& catalog, const Corpus& corpus,
                   const Program& prog, size_t threads, size_t morsel_docs) {
  RunOutcome out;
  std::unique_ptr<runtime::TaskPool> pool;
  ExecOptions options;
  if (threads > 0) {
    pool = std::make_unique<runtime::TaskPool>(threads);
    options.pool = pool.get();
  }
  options.morsel_docs = morsel_docs;
  Executor exec(catalog, options);
  Stopwatch watch;
  auto result = exec.Execute(prog);
  out.seconds = watch.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "bench_scaling: run failed: %s\n",
                 result.status().ToString().c_str());
    out.seconds = -1;
    return out;
  }
  out.result = result->ToString(&corpus);
  return out;
}

// Synthetic skew workload: a handful of huge documents among many small
// ones. With coarse static shards the shard drawing the huge documents
// serializes its whole range; morsels keep the other workers fed.
struct SkewedWorkload {
  Corpus corpus;
  std::unique_ptr<Catalog> catalog;
  Program program;

  static std::unique_ptr<SkewedWorkload> Make() {
    auto w = std::make_unique<SkewedWorkload>();
    std::vector<DocId> docs;
    auto add_doc = [&](size_t i, size_t prices) -> bool {
      std::string body;
      for (size_t p = 0; p < prices; ++p) {
        body += "Price: <b>$" + std::to_string(100000 + (i * 131 + p * 7) % 900000) +
                "</b> ";
      }
      auto page = ParseMarkup("page" + std::to_string(i), body);
      if (!page.ok()) return false;
      docs.push_back(w->corpus.Add(std::move(page).value()));
      return true;
    };
    // 4 heavy docs (~200 candidate spans each) in front of 60 light ones:
    // a contiguous-shard split hands all the heavy work to one worker.
    for (size_t i = 0; i < 4; ++i) {
      if (!add_doc(i, 200)) return nullptr;
    }
    for (size_t i = 4; i < 64; ++i) {
      if (!add_doc(i, 2)) return nullptr;
    }
    w->catalog = std::make_unique<Catalog>(&w->corpus);
    CompactTable pages({"x"});
    for (DocId d : docs) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      pages.Add(t);
    }
    if (!w->catalog->AddTable("pages", std::move(pages)).ok()) return nullptr;
    if (!w->catalog->DeclareIEPredicate("extractPrice", 1, 1).ok()) {
      return nullptr;
    }
    w->catalog->RegisterBuiltinFunctions();
    auto prog = ParseProgram(R"(
      q(x, p) :- pages(x), extractPrice(x, p).
      extractPrice(x, p) :- from(x, p), numeric(p) = yes,
                            bold_font(p) = yes.
    )",
                             *w->catalog);
    if (!prog.ok()) return nullptr;
    w->program = std::move(*prog);
    w->program.set_query("q");
    return w;
  }
};

// Runs one scenario serially and at each thread count, emits the rows,
// and byte-compares every run against the serial reference. Returns
// false on run failure or result divergence.
bool RunScenario(BenchReporter* reporter, const std::string& scenario,
                 const Catalog& catalog, const Corpus& corpus,
                 const Program& prog, size_t morsel_docs) {
  using R = BenchReporter;
  std::fprintf(stderr, "[scaling] %s: serial reference...\n",
               scenario.c_str());
  RunOutcome serial = RunOnce(catalog, corpus, prog, 0, morsel_docs);
  if (serial.seconds < 0) return false;

  static const size_t kThreadCounts[] = {1, 2, 4, 8};
  for (size_t threads : kThreadCounts) {
    std::fprintf(stderr, "[scaling] %s: %zu threads...\n", scenario.c_str(),
                 threads);
    RunOutcome run = RunOnce(catalog, corpus, prog, threads, morsel_docs);
    if (run.seconds < 0) return false;
    if (run.result != serial.result) {
      std::fprintf(stderr,
                   "bench_scaling: %s at %zu threads diverged from the "
                   "serial result (determinism contract violated)\n",
                   scenario.c_str(), threads);
      return false;
    }
    double speedup = run.seconds > 0 ? serial.seconds / run.seconds : 0;
    std::printf("%-12s %zut: %.3fs serial, %.3fs parallel (%.2fx)\n",
                scenario.c_str(), threads, serial.seconds, run.seconds,
                speedup);
    // cfg is a *string* so each thread count forms its own row identity.
    std::vector<R::Field> row = {
        R::S("case", "scaling"), R::S("scenario", scenario),
        R::S("cfg", std::to_string(threads) + "t"),
        R::N("threads", static_cast<double>(threads)),
        R::N("hardware_cores", static_cast<double>(R::hardware_cores())),
        R::N("morsel_docs", static_cast<double>(morsel_docs)),
        R::N("serial_seconds", serial.seconds),
        R::N("parallel_seconds", run.seconds), R::N("speedup", speedup)};
    if (threads == 8) row.push_back(R::N("speedup_floor", kSpeedupFloor8t));
    reporter->Row(std::move(row));
    if (threads == 1) {
      // Pure dispatch overhead of the morsel path: same serial hardware
      // budget, but work flows through morsel carving, the context pool,
      // and the L1 flush barriers. Host-independent (a ratio of two runs
      // in this process), so this row carries no hardware_cores and the
      // gate checks it on every machine.
      double overhead =
          serial.seconds > 0 ? run.seconds / serial.seconds : 0;
      std::printf("%-12s morsel overhead at 1 thread: %.2fx\n",
                  scenario.c_str(), overhead);
      reporter->Row({R::S("case", "morsel_overhead"),
                     R::S("scenario", scenario),
                     R::N("morsel_overhead_x", overhead)});
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReporter reporter("SCALING", argc, argv);
  using R = BenchReporter;

  // ------------------------- largest Table 3 scenario (T7 @ 5000 tuples)
  {
    auto task = MakeTask("T7", 5000);
    if (!task.ok()) {
      std::fprintf(stderr, "bench_scaling: MakeTask failed: %s\n",
                   task.status().ToString().c_str());
      return 1;
    }
    TaskInstance* t = task->get();
    if (t->precise_program.rules().empty()) {
      auto st = AddPreciseBaseline(t);
      if (!st.ok()) {
        std::fprintf(stderr, "bench_scaling: no precise program: %s\n",
                     st.ToString().c_str());
        return 1;
      }
    }
    if (!RunScenario(&reporter, "T7@5000", *t->catalog, *t->corpus,
                     t->precise_program, /*morsel_docs=*/64)) {
      return 1;
    }
  }

  // ------------------------------------------- synthetic document skew
  {
    auto skew = SkewedWorkload::Make();
    if (skew == nullptr) {
      std::fprintf(stderr, "bench_scaling: skewed corpus setup failed\n");
      return 1;
    }
    // morsel_docs = 1: one document per morsel, so the four heavy
    // documents are four independent work units instead of one shard.
    if (!RunScenario(&reporter, "skewed", *skew->catalog, skew->corpus,
                     skew->program, /*morsel_docs=*/1)) {
      return 1;
    }
  }

  // ------------------- interner contention (alignas pads on the atomics)
  {
    constexpr size_t kOps = 200000;
    constexpr size_t kThreads = 8;
    StringInterner interner;
    runtime::TaskPool pool(kThreads);
    Stopwatch watch;
    // 8 workers interning overlapping word sets: every op bumps the
    // hit-or-miss atomics, so this is the false-sharing hot spot the
    // cache-line padding in common/intern.h exists for.
    pool.ParallelFor(kOps, [&](size_t i) {
      static const char* kStems[] = {"alpha", "bravo", "china", "delta",
                                     "echo",  "fox",   "golf",  "hotel"};
      interner.Intern(std::string(kStems[i % 8]) + std::to_string(i % 1499));
    });
    double seconds = watch.ElapsedSeconds();
    double mops = seconds > 0 ? kOps / seconds / 1e6 : 0;
    std::printf("intern contention: %zu ops on %zu threads, %.2f Mops/s\n",
                kOps, kThreads, mops);
    // Throughput moves with the host, so it rides the ungated _rate
    // suffix; ops is the only deterministic field.
    reporter.Row({R::S("case", "intern_contention"), R::N("ops", kOps),
                  R::N("threads", static_cast<double>(kThreads)),
                  R::N("mops_rate", mops)});
  }

  return 0;
}
