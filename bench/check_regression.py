#!/usr/bin/env python3
"""Diff a fresh BENCH_*.json against its committed baseline.

Usage:
    bench/check_regression.py NEW.json [--baseline BASE.json]
                              [--tolerance 0.5] [--wall-tolerance 1.0]
                              [--openmetrics FILE.om]

Rows are matched by their identity fields (every string-valued field,
e.g. "case" or "task"). Two classes of numeric fields are checked:

  * Deterministic counts (ops, join_pairs, distinct, entries, hits,
    converged, exact, ...) must match the baseline exactly — the
    workloads are seeded, so any drift is a behaviour change, not noise.
  * Timings (seconds, ns_per_op, wall_seconds, *_minutes, *_ms) may
    regress by at most --tolerance (fraction over baseline; default 0.5 =
    50% slower) before the check fails. Improvements never fail. Derived
    speedup ratios and *_rate fractions are reported but not gated (they
    move with both numerator and denominator / with machine load).
  * Throughputs (qps, *_per_second) are gated in the opposite direction:
    the check fails when the fresh value drops below
    baseline / (1 + tolerance); higher is always fine.
  * Tiny timings (compile_ms) are gated like timings but with generous
    slack (at least GENEROUS_TOLERANCE) — they measure microseconds, so
    scheduler noise moves them by integer factors.

Rows carrying a `speedup_floor` additionally promise an absolute speedup
at their `threads`, judged purely on the fresh artifact (no baseline);
the gate arms only on hosts with hardware_cores >= threads.

The default baseline is bench/baselines/<basename of NEW>. Exit code 0
on pass, 1 on regression/mismatch, 2 on usage or I/O errors. Stdlib
only — no third-party packages.
"""

import argparse
import json
import os
import re
import sys

TIMING_KEYS = ("seconds", "ns_per_op", "wall_seconds")
# *_overhead_x: ratio of a new code path over the old one measured on the
# same host in the same process — host-independent, so it is gated like a
# timing (may grow by at most --tolerance over baseline).
TIMING_SUFFIXES = ("_seconds", "_minutes", "_ms", "_overhead_x")
RATE_KEYS = ("qps",)
RATE_SUFFIXES = ("_per_second",)
# hardware_cores/threads describe the host, not the workload; they gate
# *whether* rows are comparable (see the mismatch skip below), never fail
# a comparison themselves.
UNGATED_KEYS = ("speedup", "hardware_cores", "threads")
UNGATED_SUFFIXES = ("_rate",)
# compile_ms: lowering a whole program into plans is microseconds of
# work, so one scheduler blip moves the number by integer factors. Still
# gated (a real compile-cost explosion must fail), but with generous
# slack: at least GENEROUS_TOLERANCE regardless of --tolerance.
GENEROUS_TIMING_KEYS = ("compile_ms",)
GENEROUS_TOLERANCE = 3.0


def is_timing(key):
    return key in TIMING_KEYS or key.endswith(TIMING_SUFFIXES)


def is_rate(key):
    return key in RATE_KEYS or key.endswith(RATE_SUFFIXES)


def is_ungated(key):
    return key in UNGATED_KEYS or key.endswith(UNGATED_SUFFIXES)


def row_identity(row):
    return tuple(sorted((k, v) for k, v in row.items() if isinstance(v, str)))


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_regression: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


# ----------------------------------------------------------- OpenMetrics
# Tiny structural validator for the exposition the bench harness writes
# next to BENCH_*.json (stdlib only, mirrors the subset the writer emits).

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$')


def parse_openmetrics(text):
    """Parses an OpenMetrics text exposition; returns a list of
    (name, labels_dict, value) samples. Raises ValueError on malformed
    input: bad names/labels/values, non-cumulative histogram buckets, or
    a missing `# EOF` terminator."""
    samples = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("missing '# EOF' terminator")
    typed = {}
    for lineno, line in enumerate(lines[:-1], 1):
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_RE.match(parts[2]) or parts[
                3
            ] not in ("counter", "gauge", "histogram"):
                raise ValueError(f"line {lineno}: malformed TYPE line: {line}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample: {line}")
        labels = {}
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                if not _LABEL_RE.match(pair):
                    raise ValueError(f"line {lineno}: malformed label: {pair}")
                k, v = pair.split("=", 1)
                labels[k] = v[1:-1]
        try:
            value = float(m.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value: {m.group('value')}"
            )
        samples.append((m.group("name"), labels, value))
    # Sample names must belong to a declared family (allowing the
    # counter _total and histogram _bucket/_sum/_count suffixes).
    for name, labels, _ in samples:
        base = name
        for suffix in ("_total", "_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base not in typed:
            raise ValueError(f"sample {name} has no TYPE declaration")
    # Histogram buckets must be cumulative in le order, ending at +Inf.
    buckets = {}
    for name, labels, value in samples:
        if not name.endswith("_bucket"):
            continue
        if "le" not in labels:
            raise ValueError(f"bucket sample {name} lacks an le label")
        le = float("inf") if labels["le"] == "+Inf" else float(labels["le"])
        buckets.setdefault(name, []).append((le, value))
    for name, series in buckets.items():
        series.sort(key=lambda p: p[0])
        if series[-1][0] != float("inf"):
            raise ValueError(f"{name}: no le=\"+Inf\" bucket")
        last = 0.0
        for le, value in series:
            if value < last:
                raise ValueError(f"{name}: bucket counts not cumulative")
            last = value
    return samples


def check_openmetrics(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        print(f"check_regression: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    try:
        samples = parse_openmetrics(text)
    except ValueError as e:
        print(f"  {path}: INVALID OpenMetrics: {e}")
        return [f"{path}: invalid OpenMetrics: {e}"]
    print(f"  {path}: valid OpenMetrics ({len(samples)} samples)")
    return []


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("fresh", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--baseline",
        help="committed baseline (default bench/baselines/<name of FRESH>)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional slowdown per timing field (default 0.5)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=1.0,
        help="allowed fractional slowdown of total wall_seconds (default 1.0)",
    )
    parser.add_argument(
        "--openmetrics",
        help="also validate this OpenMetrics exposition (the .om sibling "
        "the bench wrote); fails on format errors",
    )
    args = parser.parse_args()

    baseline_path = args.baseline or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "baselines",
        os.path.basename(args.fresh),
    )
    fresh = load(args.fresh)
    base = load(baseline_path)

    failures = []

    def check_timing(label, key, base_v, new_v, tolerance):
        if base_v <= 0:
            return
        ratio = new_v / base_v
        verdict = "ok"
        if ratio > 1 + tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{label}.{key}: {new_v:.6g} vs baseline {base_v:.6g} "
                f"({ratio:.2f}x, tolerance {1 + tolerance:.2f}x)"
            )
        print(f"  {label}.{key}: {base_v:.6g} -> {new_v:.6g} ({ratio:.2f}x) {verdict}")

    def check_rate(label, key, base_v, new_v, tolerance):
        # Throughput: lower is worse, so the floor is baseline/(1+tol).
        if base_v <= 0:
            return
        ratio = new_v / base_v
        verdict = "ok"
        if ratio < 1 / (1 + tolerance):
            verdict = "REGRESSION"
            failures.append(
                f"{label}.{key}: {new_v:.6g} vs baseline {base_v:.6g} "
                f"({ratio:.2f}x, floor {1 / (1 + tolerance):.2f}x)"
            )
        print(f"  {label}.{key}: {base_v:.6g} -> {new_v:.6g} ({ratio:.2f}x) {verdict}")

    print(f"baseline {baseline_path}")
    print(f"fresh    {args.fresh}")
    check_timing(
        "total", "wall_seconds",
        float(base.get("wall_seconds", 0)), float(fresh.get("wall_seconds", 0)),
        args.wall_tolerance,
    )

    base_rows = {row_identity(r): r for r in base.get("rows", [])}
    fresh_rows = {row_identity(r): r for r in fresh.get("rows", [])}
    for ident, base_row in base_rows.items():
        label = ",".join(v for _, v in ident) or "<row>"
        fresh_row = fresh_rows.get(ident)
        if fresh_row is None:
            failures.append(f"{label}: row missing from fresh results")
            continue
        base_cores = base_row.get("hardware_cores")
        fresh_cores = fresh_row.get("hardware_cores")
        if (
            isinstance(base_cores, (int, float))
            and isinstance(fresh_cores, (int, float))
            and base_cores != fresh_cores
        ):
            # Scaling rows measured on differently-shaped hosts are not
            # comparable: refuse the comparison rather than producing a
            # bogus pass or fail.
            print(
                f"  {label}: SKIPPED — baseline ran on "
                f"{base_cores:.0f} cores, fresh on {fresh_cores:.0f}; "
                "speedup-class rows are only compared between matching "
                "hosts (re-seed the baseline on this machine)"
            )
            continue
        for key, base_v in base_row.items():
            if not isinstance(base_v, (int, float)) or isinstance(base_v, bool):
                continue
            new_v = fresh_row.get(key)
            if not isinstance(new_v, (int, float)):
                failures.append(f"{label}.{key}: missing from fresh results")
                continue
            if is_ungated(key):
                print(f"  {label}.{key}: {base_v:.6g} -> {new_v:.6g} (ungated)")
            elif key in GENEROUS_TIMING_KEYS:
                check_timing(
                    label, key, float(base_v), float(new_v),
                    max(args.tolerance, GENEROUS_TOLERANCE),
                )
            elif is_timing(key):
                check_timing(label, key, float(base_v), float(new_v), args.tolerance)
            elif is_rate(key):
                check_rate(label, key, float(base_v), float(new_v), args.tolerance)
            elif new_v != base_v:
                failures.append(
                    f"{label}.{key}: count {new_v:.6g} != baseline {base_v:.6g} "
                    "(deterministic field; investigate the behaviour change)"
                )
    for ident in fresh_rows.keys() - base_rows.keys():
        label = ",".join(v for _, v in ident) or "<row>"
        print(f"  {label}: new row (not in baseline; add it on the next rebase)")

    # Absolute speedup gate: a row that authors a `speedup_floor` promises
    # at least that speedup at its `threads` — but only on hosts that can
    # actually run that many threads in parallel. Judged purely on the
    # fresh artifact (no baseline involved), so it holds on any machine
    # with enough cores and is loudly skipped on smaller ones.
    for ident, fresh_row in fresh_rows.items():
        label = ",".join(v for _, v in ident) or "<row>"
        floor = fresh_row.get("speedup_floor")
        if not isinstance(floor, (int, float)) or isinstance(floor, bool):
            continue
        threads = fresh_row.get("threads")
        cores = fresh_row.get("hardware_cores")
        speedup = fresh_row.get("speedup")
        if not isinstance(threads, (int, float)) or not isinstance(
            cores, (int, float)
        ):
            failures.append(
                f"{label}: speedup_floor row lacks threads/hardware_cores"
            )
            continue
        if cores < threads:
            print(
                f"  {label}: speedup_floor {floor:.2f} SKIPPED — host has "
                f"{cores:.0f} cores, row needs {threads:.0f} "
                "(gate is armed only on big-enough hosts)"
            )
            continue
        if not isinstance(speedup, (int, float)):
            failures.append(f"{label}: speedup_floor row lacks a speedup")
            continue
        if speedup < floor:
            failures.append(
                f"{label}.speedup: {speedup:.2f} below floor {floor:.2f} "
                f"at {threads:.0f} threads on {cores:.0f} cores"
            )
            print(
                f"  {label}.speedup: {speedup:.2f} vs floor {floor:.2f} "
                "REGRESSION"
            )
        else:
            print(f"  {label}.speedup: {speedup:.2f} vs floor {floor:.2f} ok")

    if args.openmetrics:
        failures.extend(check_openmetrics(args.openmetrics))

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s)", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nPASS: no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
