file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_dblife.dir/bench_table6_dblife.cc.o"
  "CMakeFiles/bench_table6_dblife.dir/bench_table6_dblife.cc.o.d"
  "bench_table6_dblife"
  "bench_table6_dblife.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_dblife.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
