
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table6_dblife.cc" "bench/CMakeFiles/bench_table6_dblife.dir/bench_table6_dblife.cc.o" "gcc" "bench/CMakeFiles/bench_table6_dblife.dir/bench_table6_dblife.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xlog/CMakeFiles/iflex_xlog.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/iflex_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/iflex_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/iflex_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/assistant/CMakeFiles/iflex_assistant.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/iflex_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/alog/CMakeFiles/iflex_alog.dir/DependInfo.cmake"
  "/root/repo/build/src/ctable/CMakeFiles/iflex_ctable.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/iflex_features.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/iflex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iflex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
