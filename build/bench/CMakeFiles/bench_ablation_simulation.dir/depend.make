# Empty dependencies file for bench_ablation_simulation.
# This may be replaced when dependencies are built.
