file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_simulation.dir/bench_ablation_simulation.cc.o"
  "CMakeFiles/bench_ablation_simulation.dir/bench_ablation_simulation.cc.o.d"
  "bench_ablation_simulation"
  "bench_ablation_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
