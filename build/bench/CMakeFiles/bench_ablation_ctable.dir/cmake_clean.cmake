file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ctable.dir/bench_ablation_ctable.cc.o"
  "CMakeFiles/bench_ablation_ctable.dir/bench_ablation_ctable.cc.o.d"
  "bench_ablation_ctable"
  "bench_ablation_ctable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ctable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
