# Empty compiler generated dependencies file for bench_ablation_ctable.
# This may be replaced when dependencies are built.
