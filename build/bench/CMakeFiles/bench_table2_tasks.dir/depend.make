# Empty dependencies file for bench_table2_tasks.
# This may be replaced when dependencies are built.
