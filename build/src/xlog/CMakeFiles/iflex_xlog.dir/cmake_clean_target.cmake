file(REMOVE_RECURSE
  "libiflex_xlog.a"
)
