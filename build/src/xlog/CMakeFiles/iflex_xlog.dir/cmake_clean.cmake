file(REMOVE_RECURSE
  "CMakeFiles/iflex_xlog.dir/precise.cc.o"
  "CMakeFiles/iflex_xlog.dir/precise.cc.o.d"
  "libiflex_xlog.a"
  "libiflex_xlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iflex_xlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
