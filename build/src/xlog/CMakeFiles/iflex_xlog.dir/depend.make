# Empty dependencies file for iflex_xlog.
# This may be replaced when dependencies are built.
