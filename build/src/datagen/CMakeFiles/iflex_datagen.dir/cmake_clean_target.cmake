file(REMOVE_RECURSE
  "libiflex_datagen.a"
)
