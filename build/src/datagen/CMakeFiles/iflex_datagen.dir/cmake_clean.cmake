file(REMOVE_RECURSE
  "CMakeFiles/iflex_datagen.dir/books.cc.o"
  "CMakeFiles/iflex_datagen.dir/books.cc.o.d"
  "CMakeFiles/iflex_datagen.dir/builder.cc.o"
  "CMakeFiles/iflex_datagen.dir/builder.cc.o.d"
  "CMakeFiles/iflex_datagen.dir/dblife.cc.o"
  "CMakeFiles/iflex_datagen.dir/dblife.cc.o.d"
  "CMakeFiles/iflex_datagen.dir/dblp.cc.o"
  "CMakeFiles/iflex_datagen.dir/dblp.cc.o.d"
  "CMakeFiles/iflex_datagen.dir/movies.cc.o"
  "CMakeFiles/iflex_datagen.dir/movies.cc.o.d"
  "CMakeFiles/iflex_datagen.dir/names.cc.o"
  "CMakeFiles/iflex_datagen.dir/names.cc.o.d"
  "libiflex_datagen.a"
  "libiflex_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iflex_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
