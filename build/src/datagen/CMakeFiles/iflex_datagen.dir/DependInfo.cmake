
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/books.cc" "src/datagen/CMakeFiles/iflex_datagen.dir/books.cc.o" "gcc" "src/datagen/CMakeFiles/iflex_datagen.dir/books.cc.o.d"
  "/root/repo/src/datagen/builder.cc" "src/datagen/CMakeFiles/iflex_datagen.dir/builder.cc.o" "gcc" "src/datagen/CMakeFiles/iflex_datagen.dir/builder.cc.o.d"
  "/root/repo/src/datagen/dblife.cc" "src/datagen/CMakeFiles/iflex_datagen.dir/dblife.cc.o" "gcc" "src/datagen/CMakeFiles/iflex_datagen.dir/dblife.cc.o.d"
  "/root/repo/src/datagen/dblp.cc" "src/datagen/CMakeFiles/iflex_datagen.dir/dblp.cc.o" "gcc" "src/datagen/CMakeFiles/iflex_datagen.dir/dblp.cc.o.d"
  "/root/repo/src/datagen/movies.cc" "src/datagen/CMakeFiles/iflex_datagen.dir/movies.cc.o" "gcc" "src/datagen/CMakeFiles/iflex_datagen.dir/movies.cc.o.d"
  "/root/repo/src/datagen/names.cc" "src/datagen/CMakeFiles/iflex_datagen.dir/names.cc.o" "gcc" "src/datagen/CMakeFiles/iflex_datagen.dir/names.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/iflex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iflex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
