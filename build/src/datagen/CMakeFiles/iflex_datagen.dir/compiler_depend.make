# Empty compiler generated dependencies file for iflex_datagen.
# This may be replaced when dependencies are built.
