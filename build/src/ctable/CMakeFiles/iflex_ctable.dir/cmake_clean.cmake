file(REMOVE_RECURSE
  "CMakeFiles/iflex_ctable.dir/atable.cc.o"
  "CMakeFiles/iflex_ctable.dir/atable.cc.o.d"
  "CMakeFiles/iflex_ctable.dir/compact_table.cc.o"
  "CMakeFiles/iflex_ctable.dir/compact_table.cc.o.d"
  "CMakeFiles/iflex_ctable.dir/value.cc.o"
  "CMakeFiles/iflex_ctable.dir/value.cc.o.d"
  "CMakeFiles/iflex_ctable.dir/worlds.cc.o"
  "CMakeFiles/iflex_ctable.dir/worlds.cc.o.d"
  "libiflex_ctable.a"
  "libiflex_ctable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iflex_ctable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
