
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctable/atable.cc" "src/ctable/CMakeFiles/iflex_ctable.dir/atable.cc.o" "gcc" "src/ctable/CMakeFiles/iflex_ctable.dir/atable.cc.o.d"
  "/root/repo/src/ctable/compact_table.cc" "src/ctable/CMakeFiles/iflex_ctable.dir/compact_table.cc.o" "gcc" "src/ctable/CMakeFiles/iflex_ctable.dir/compact_table.cc.o.d"
  "/root/repo/src/ctable/value.cc" "src/ctable/CMakeFiles/iflex_ctable.dir/value.cc.o" "gcc" "src/ctable/CMakeFiles/iflex_ctable.dir/value.cc.o.d"
  "/root/repo/src/ctable/worlds.cc" "src/ctable/CMakeFiles/iflex_ctable.dir/worlds.cc.o" "gcc" "src/ctable/CMakeFiles/iflex_ctable.dir/worlds.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/iflex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iflex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
