# Empty dependencies file for iflex_ctable.
# This may be replaced when dependencies are built.
