file(REMOVE_RECURSE
  "libiflex_ctable.a"
)
