
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/corpus.cc" "src/text/CMakeFiles/iflex_text.dir/corpus.cc.o" "gcc" "src/text/CMakeFiles/iflex_text.dir/corpus.cc.o.d"
  "/root/repo/src/text/document.cc" "src/text/CMakeFiles/iflex_text.dir/document.cc.o" "gcc" "src/text/CMakeFiles/iflex_text.dir/document.cc.o.d"
  "/root/repo/src/text/markup.cc" "src/text/CMakeFiles/iflex_text.dir/markup.cc.o" "gcc" "src/text/CMakeFiles/iflex_text.dir/markup.cc.o.d"
  "/root/repo/src/text/markup_parser.cc" "src/text/CMakeFiles/iflex_text.dir/markup_parser.cc.o" "gcc" "src/text/CMakeFiles/iflex_text.dir/markup_parser.cc.o.d"
  "/root/repo/src/text/span.cc" "src/text/CMakeFiles/iflex_text.dir/span.cc.o" "gcc" "src/text/CMakeFiles/iflex_text.dir/span.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iflex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
