# Empty compiler generated dependencies file for iflex_text.
# This may be replaced when dependencies are built.
