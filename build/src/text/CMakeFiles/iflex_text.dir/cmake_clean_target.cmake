file(REMOVE_RECURSE
  "libiflex_text.a"
)
