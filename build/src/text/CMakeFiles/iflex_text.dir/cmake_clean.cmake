file(REMOVE_RECURSE
  "CMakeFiles/iflex_text.dir/corpus.cc.o"
  "CMakeFiles/iflex_text.dir/corpus.cc.o.d"
  "CMakeFiles/iflex_text.dir/document.cc.o"
  "CMakeFiles/iflex_text.dir/document.cc.o.d"
  "CMakeFiles/iflex_text.dir/markup.cc.o"
  "CMakeFiles/iflex_text.dir/markup.cc.o.d"
  "CMakeFiles/iflex_text.dir/markup_parser.cc.o"
  "CMakeFiles/iflex_text.dir/markup_parser.cc.o.d"
  "CMakeFiles/iflex_text.dir/span.cc.o"
  "CMakeFiles/iflex_text.dir/span.cc.o.d"
  "libiflex_text.a"
  "libiflex_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iflex_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
