# Empty compiler generated dependencies file for iflex_exec.
# This may be replaced when dependencies are built.
