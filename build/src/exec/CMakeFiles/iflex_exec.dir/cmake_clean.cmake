file(REMOVE_RECURSE
  "CMakeFiles/iflex_exec.dir/annotate.cc.o"
  "CMakeFiles/iflex_exec.dir/annotate.cc.o.d"
  "CMakeFiles/iflex_exec.dir/cell_ops.cc.o"
  "CMakeFiles/iflex_exec.dir/cell_ops.cc.o.d"
  "CMakeFiles/iflex_exec.dir/executor.cc.o"
  "CMakeFiles/iflex_exec.dir/executor.cc.o.d"
  "libiflex_exec.a"
  "libiflex_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iflex_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
