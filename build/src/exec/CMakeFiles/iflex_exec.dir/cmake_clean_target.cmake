file(REMOVE_RECURSE
  "libiflex_exec.a"
)
