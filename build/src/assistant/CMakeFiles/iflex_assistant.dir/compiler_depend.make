# Empty compiler generated dependencies file for iflex_assistant.
# This may be replaced when dependencies are built.
