
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assistant/example_feedback.cc" "src/assistant/CMakeFiles/iflex_assistant.dir/example_feedback.cc.o" "gcc" "src/assistant/CMakeFiles/iflex_assistant.dir/example_feedback.cc.o.d"
  "/root/repo/src/assistant/question.cc" "src/assistant/CMakeFiles/iflex_assistant.dir/question.cc.o" "gcc" "src/assistant/CMakeFiles/iflex_assistant.dir/question.cc.o.d"
  "/root/repo/src/assistant/session.cc" "src/assistant/CMakeFiles/iflex_assistant.dir/session.cc.o" "gcc" "src/assistant/CMakeFiles/iflex_assistant.dir/session.cc.o.d"
  "/root/repo/src/assistant/strategy.cc" "src/assistant/CMakeFiles/iflex_assistant.dir/strategy.cc.o" "gcc" "src/assistant/CMakeFiles/iflex_assistant.dir/strategy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/iflex_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/alog/CMakeFiles/iflex_alog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iflex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ctable/CMakeFiles/iflex_ctable.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/iflex_features.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/iflex_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
