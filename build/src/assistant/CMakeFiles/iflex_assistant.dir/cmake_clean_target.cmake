file(REMOVE_RECURSE
  "libiflex_assistant.a"
)
