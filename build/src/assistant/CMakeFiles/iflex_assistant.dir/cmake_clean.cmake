file(REMOVE_RECURSE
  "CMakeFiles/iflex_assistant.dir/example_feedback.cc.o"
  "CMakeFiles/iflex_assistant.dir/example_feedback.cc.o.d"
  "CMakeFiles/iflex_assistant.dir/question.cc.o"
  "CMakeFiles/iflex_assistant.dir/question.cc.o.d"
  "CMakeFiles/iflex_assistant.dir/session.cc.o"
  "CMakeFiles/iflex_assistant.dir/session.cc.o.d"
  "CMakeFiles/iflex_assistant.dir/strategy.cc.o"
  "CMakeFiles/iflex_assistant.dir/strategy.cc.o.d"
  "libiflex_assistant.a"
  "libiflex_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iflex_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
