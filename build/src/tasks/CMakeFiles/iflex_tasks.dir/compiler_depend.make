# Empty compiler generated dependencies file for iflex_tasks.
# This may be replaced when dependencies are built.
