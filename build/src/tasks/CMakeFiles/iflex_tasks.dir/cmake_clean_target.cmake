file(REMOVE_RECURSE
  "libiflex_tasks.a"
)
