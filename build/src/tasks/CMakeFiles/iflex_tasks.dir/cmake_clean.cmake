file(REMOVE_RECURSE
  "CMakeFiles/iflex_tasks.dir/book_tasks.cc.o"
  "CMakeFiles/iflex_tasks.dir/book_tasks.cc.o.d"
  "CMakeFiles/iflex_tasks.dir/dblife_tasks.cc.o"
  "CMakeFiles/iflex_tasks.dir/dblife_tasks.cc.o.d"
  "CMakeFiles/iflex_tasks.dir/dblp_tasks.cc.o"
  "CMakeFiles/iflex_tasks.dir/dblp_tasks.cc.o.d"
  "CMakeFiles/iflex_tasks.dir/movie_tasks.cc.o"
  "CMakeFiles/iflex_tasks.dir/movie_tasks.cc.o.d"
  "CMakeFiles/iflex_tasks.dir/task.cc.o"
  "CMakeFiles/iflex_tasks.dir/task.cc.o.d"
  "libiflex_tasks.a"
  "libiflex_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iflex_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
