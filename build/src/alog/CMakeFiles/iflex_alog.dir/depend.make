# Empty dependencies file for iflex_alog.
# This may be replaced when dependencies are built.
