file(REMOVE_RECURSE
  "libiflex_alog.a"
)
