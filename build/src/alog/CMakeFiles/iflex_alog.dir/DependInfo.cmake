
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alog/ast.cc" "src/alog/CMakeFiles/iflex_alog.dir/ast.cc.o" "gcc" "src/alog/CMakeFiles/iflex_alog.dir/ast.cc.o.d"
  "/root/repo/src/alog/catalog.cc" "src/alog/CMakeFiles/iflex_alog.dir/catalog.cc.o" "gcc" "src/alog/CMakeFiles/iflex_alog.dir/catalog.cc.o.d"
  "/root/repo/src/alog/lexer.cc" "src/alog/CMakeFiles/iflex_alog.dir/lexer.cc.o" "gcc" "src/alog/CMakeFiles/iflex_alog.dir/lexer.cc.o.d"
  "/root/repo/src/alog/program.cc" "src/alog/CMakeFiles/iflex_alog.dir/program.cc.o" "gcc" "src/alog/CMakeFiles/iflex_alog.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ctable/CMakeFiles/iflex_ctable.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/iflex_features.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/iflex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iflex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
