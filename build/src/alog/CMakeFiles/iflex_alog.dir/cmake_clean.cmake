file(REMOVE_RECURSE
  "CMakeFiles/iflex_alog.dir/ast.cc.o"
  "CMakeFiles/iflex_alog.dir/ast.cc.o.d"
  "CMakeFiles/iflex_alog.dir/catalog.cc.o"
  "CMakeFiles/iflex_alog.dir/catalog.cc.o.d"
  "CMakeFiles/iflex_alog.dir/lexer.cc.o"
  "CMakeFiles/iflex_alog.dir/lexer.cc.o.d"
  "CMakeFiles/iflex_alog.dir/program.cc.o"
  "CMakeFiles/iflex_alog.dir/program.cc.o.d"
  "libiflex_alog.a"
  "libiflex_alog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iflex_alog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
