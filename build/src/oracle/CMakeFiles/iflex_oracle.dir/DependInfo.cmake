
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oracle/developer.cc" "src/oracle/CMakeFiles/iflex_oracle.dir/developer.cc.o" "gcc" "src/oracle/CMakeFiles/iflex_oracle.dir/developer.cc.o.d"
  "/root/repo/src/oracle/evaluate.cc" "src/oracle/CMakeFiles/iflex_oracle.dir/evaluate.cc.o" "gcc" "src/oracle/CMakeFiles/iflex_oracle.dir/evaluate.cc.o.d"
  "/root/repo/src/oracle/timemodel.cc" "src/oracle/CMakeFiles/iflex_oracle.dir/timemodel.cc.o" "gcc" "src/oracle/CMakeFiles/iflex_oracle.dir/timemodel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assistant/CMakeFiles/iflex_assistant.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/iflex_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iflex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/alog/CMakeFiles/iflex_alog.dir/DependInfo.cmake"
  "/root/repo/build/src/ctable/CMakeFiles/iflex_ctable.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/iflex_features.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/iflex_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
