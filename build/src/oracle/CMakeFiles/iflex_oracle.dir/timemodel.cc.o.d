src/oracle/CMakeFiles/iflex_oracle.dir/timemodel.cc.o: \
 /root/repo/src/oracle/timemodel.cc /usr/include/stdc-predef.h
