# Empty compiler generated dependencies file for iflex_oracle.
# This may be replaced when dependencies are built.
