file(REMOVE_RECURSE
  "libiflex_oracle.a"
)
