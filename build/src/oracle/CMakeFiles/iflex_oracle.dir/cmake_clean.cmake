file(REMOVE_RECURSE
  "CMakeFiles/iflex_oracle.dir/developer.cc.o"
  "CMakeFiles/iflex_oracle.dir/developer.cc.o.d"
  "CMakeFiles/iflex_oracle.dir/evaluate.cc.o"
  "CMakeFiles/iflex_oracle.dir/evaluate.cc.o.d"
  "CMakeFiles/iflex_oracle.dir/timemodel.cc.o"
  "CMakeFiles/iflex_oracle.dir/timemodel.cc.o.d"
  "libiflex_oracle.a"
  "libiflex_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iflex_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
