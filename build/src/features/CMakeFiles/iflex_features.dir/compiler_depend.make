# Empty compiler generated dependencies file for iflex_features.
# This may be replaced when dependencies are built.
