file(REMOVE_RECURSE
  "libiflex_features.a"
)
