
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/context_features.cc" "src/features/CMakeFiles/iflex_features.dir/context_features.cc.o" "gcc" "src/features/CMakeFiles/iflex_features.dir/context_features.cc.o.d"
  "/root/repo/src/features/feature.cc" "src/features/CMakeFiles/iflex_features.dir/feature.cc.o" "gcc" "src/features/CMakeFiles/iflex_features.dir/feature.cc.o.d"
  "/root/repo/src/features/markup_features.cc" "src/features/CMakeFiles/iflex_features.dir/markup_features.cc.o" "gcc" "src/features/CMakeFiles/iflex_features.dir/markup_features.cc.o.d"
  "/root/repo/src/features/registry.cc" "src/features/CMakeFiles/iflex_features.dir/registry.cc.o" "gcc" "src/features/CMakeFiles/iflex_features.dir/registry.cc.o.d"
  "/root/repo/src/features/token_features.cc" "src/features/CMakeFiles/iflex_features.dir/token_features.cc.o" "gcc" "src/features/CMakeFiles/iflex_features.dir/token_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/iflex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iflex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
