file(REMOVE_RECURSE
  "CMakeFiles/iflex_features.dir/context_features.cc.o"
  "CMakeFiles/iflex_features.dir/context_features.cc.o.d"
  "CMakeFiles/iflex_features.dir/feature.cc.o"
  "CMakeFiles/iflex_features.dir/feature.cc.o.d"
  "CMakeFiles/iflex_features.dir/markup_features.cc.o"
  "CMakeFiles/iflex_features.dir/markup_features.cc.o.d"
  "CMakeFiles/iflex_features.dir/registry.cc.o"
  "CMakeFiles/iflex_features.dir/registry.cc.o.d"
  "CMakeFiles/iflex_features.dir/token_features.cc.o"
  "CMakeFiles/iflex_features.dir/token_features.cc.o.d"
  "libiflex_features.a"
  "libiflex_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iflex_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
