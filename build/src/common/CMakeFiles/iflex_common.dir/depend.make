# Empty dependencies file for iflex_common.
# This may be replaced when dependencies are built.
