file(REMOVE_RECURSE
  "libiflex_common.a"
)
