file(REMOVE_RECURSE
  "CMakeFiles/iflex_common.dir/rng.cc.o"
  "CMakeFiles/iflex_common.dir/rng.cc.o.d"
  "CMakeFiles/iflex_common.dir/status.cc.o"
  "CMakeFiles/iflex_common.dir/status.cc.o.d"
  "CMakeFiles/iflex_common.dir/strutil.cc.o"
  "CMakeFiles/iflex_common.dir/strutil.cc.o.d"
  "libiflex_common.a"
  "libiflex_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iflex_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
