# Empty compiler generated dependencies file for superset_property_test.
# This may be replaced when dependencies are built.
