file(REMOVE_RECURSE
  "CMakeFiles/superset_property_test.dir/superset_property_test.cc.o"
  "CMakeFiles/superset_property_test.dir/superset_property_test.cc.o.d"
  "superset_property_test"
  "superset_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superset_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
