file(REMOVE_RECURSE
  "CMakeFiles/annotate_modes_test.dir/annotate_modes_test.cc.o"
  "CMakeFiles/annotate_modes_test.dir/annotate_modes_test.cc.o.d"
  "annotate_modes_test"
  "annotate_modes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotate_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
