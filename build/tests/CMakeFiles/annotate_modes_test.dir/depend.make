# Empty dependencies file for annotate_modes_test.
# This may be replaced when dependencies are built.
