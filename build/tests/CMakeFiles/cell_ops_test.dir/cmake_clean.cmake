file(REMOVE_RECURSE
  "CMakeFiles/cell_ops_test.dir/cell_ops_test.cc.o"
  "CMakeFiles/cell_ops_test.dir/cell_ops_test.cc.o.d"
  "cell_ops_test"
  "cell_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
