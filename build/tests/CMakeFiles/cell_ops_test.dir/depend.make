# Empty dependencies file for cell_ops_test.
# This may be replaced when dependencies are built.
