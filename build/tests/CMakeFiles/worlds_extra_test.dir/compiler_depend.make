# Empty compiler generated dependencies file for worlds_extra_test.
# This may be replaced when dependencies are built.
