file(REMOVE_RECURSE
  "CMakeFiles/worlds_extra_test.dir/worlds_extra_test.cc.o"
  "CMakeFiles/worlds_extra_test.dir/worlds_extra_test.cc.o.d"
  "worlds_extra_test"
  "worlds_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worlds_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
