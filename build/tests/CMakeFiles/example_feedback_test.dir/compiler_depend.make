# Empty compiler generated dependencies file for example_feedback_test.
# This may be replaced when dependencies are built.
