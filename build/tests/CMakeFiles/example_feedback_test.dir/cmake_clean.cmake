file(REMOVE_RECURSE
  "CMakeFiles/example_feedback_test.dir/example_feedback_test.cc.o"
  "CMakeFiles/example_feedback_test.dir/example_feedback_test.cc.o.d"
  "example_feedback_test"
  "example_feedback_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_feedback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
