# Empty compiler generated dependencies file for ctable_test.
# This may be replaced when dependencies are built.
