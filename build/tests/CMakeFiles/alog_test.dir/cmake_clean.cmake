file(REMOVE_RECURSE
  "CMakeFiles/alog_test.dir/alog_test.cc.o"
  "CMakeFiles/alog_test.dir/alog_test.cc.o.d"
  "alog_test"
  "alog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
