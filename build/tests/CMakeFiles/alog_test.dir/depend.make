# Empty dependencies file for alog_test.
# This may be replaced when dependencies are built.
