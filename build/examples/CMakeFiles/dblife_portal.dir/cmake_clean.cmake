file(REMOVE_RECURSE
  "CMakeFiles/dblife_portal.dir/dblife_portal.cpp.o"
  "CMakeFiles/dblife_portal.dir/dblife_portal.cpp.o.d"
  "dblife_portal"
  "dblife_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblife_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
