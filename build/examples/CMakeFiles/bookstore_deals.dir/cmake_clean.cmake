file(REMOVE_RECURSE
  "CMakeFiles/bookstore_deals.dir/bookstore_deals.cpp.o"
  "CMakeFiles/bookstore_deals.dir/bookstore_deals.cpp.o.d"
  "bookstore_deals"
  "bookstore_deals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookstore_deals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
