# Empty compiler generated dependencies file for bookstore_deals.
# This may be replaced when dependencies are built.
