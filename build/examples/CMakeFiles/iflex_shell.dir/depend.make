# Empty dependencies file for iflex_shell.
# This may be replaced when dependencies are built.
