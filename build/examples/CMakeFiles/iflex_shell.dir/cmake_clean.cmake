file(REMOVE_RECURSE
  "CMakeFiles/iflex_shell.dir/iflex_shell.cpp.o"
  "CMakeFiles/iflex_shell.dir/iflex_shell.cpp.o.d"
  "iflex_shell"
  "iflex_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iflex_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
