// The explain profile must be a pure observation: for a fixed scenario
// the stable columns (rows / verify / probes) are byte-identical at 1, 2,
// or 8 threads, because document shards partition the binding rows
// (docs/OBSERVABILITY.md). Timing-derived columns are excluded by
// ToText(stable_only=true) — that view is the determinism contract.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "obs/cost_model.h"
#include "runtime/task_pool.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

// The paper's running example (Figures 1-3), as in paper_example_test.
constexpr char kProgram[] = R"(
  houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(x, p, a, h).
  schools(s)? :- schoolPages(y), extractSchools(y, s).
  q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500,
                   approx_match(h, s).
  extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h),
                               numeric(p) = yes, numeric(a) = yes.
  extractSchools(y, s) :- from(y, s), bold_font(s) = yes.
)";

class ExplainDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto x1 = ParseMarkup("x1",
                          "Price: <b>$351,000</b>\n"
                          "Cozy house on quiet street\n"
                          "5146 Windsor Ave, Champaign\n"
                          "Sqft: 2750\n"
                          "High school: Vanhise High");
    auto x2 = ParseMarkup("x2",
                          "Price: <b>$619,000</b>\n"
                          "Amazing house in great location\n"
                          "3112 Stonecreek Blvd, Cherry Hills\n"
                          "Sqft: 4700\n"
                          "High school: Basktall HS");
    auto y1 = ParseMarkup("y1",
                          "Top High Schools and Location (page 1)\n"
                          "<b>Basktall</b>, Cherry Hills\n"
                          "<b>Franklin</b>, Robeson\n"
                          "<b>Vanhise</b>, Champaign");
    auto y2 = ParseMarkup("y2",
                          "Top High Schools and Location (page 2)\n"
                          "<b>Hoover</b>, Akron\n"
                          "<b>Ossage</b>, Lynneville");
    for (auto* d : {&x1, &x2, &y1, &y2}) ASSERT_TRUE(d->ok());
    std::vector<DocId> houses_docs = {corpus_.Add(std::move(x1).value()),
                                      corpus_.Add(std::move(x2).value())};
    std::vector<DocId> school_docs = {corpus_.Add(std::move(y1).value()),
                                      corpus_.Add(std::move(y2).value())};

    catalog_ = std::make_unique<Catalog>(&corpus_);
    CompactTable houses({"x"});
    for (DocId d : houses_docs) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      houses.Add(t);
    }
    ASSERT_TRUE(catalog_->AddTable("housePages", std::move(houses)).ok());
    CompactTable schools({"y"});
    for (DocId d : school_docs) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      schools.Add(t);
    }
    ASSERT_TRUE(catalog_->AddTable("schoolPages", std::move(schools)).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractHouses", 1, 3).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractSchools", 1, 1).ok());
    catalog_->RegisterBuiltinFunctions(/*similarity_threshold=*/0.4);
  }

  // Runs the paper query once with a fresh profiler and returns the
  // stable explain view.
  std::string StableExplain(runtime::TaskPool* pool) {
    auto prog = ParseProgram(kProgram, *catalog_);
    EXPECT_TRUE(prog.ok()) << prog.status();
    prog->set_query("q");
    obs::CostModel model;
    model.set_enabled(true);
    ExecOptions options;
    options.pool = pool;
    options.cost_model = &model;
    Executor exec(*catalog_, options);
    auto r = exec.Execute(*prog);
    EXPECT_TRUE(r.ok()) << r.status();
    return model.Report().ToText(/*stable_only=*/true);
  }

  Corpus corpus_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(ExplainDeterminismTest, StableColumnsAreIdenticalAtAnyThreadCount) {
  const std::string expected = StableExplain(nullptr);
  ASSERT_FALSE(expected.empty());
  // The serial profile actually attributes work, rather than trivially
  // matching on emptiness.
  EXPECT_NE(expected.find("join"), std::string::npos) << expected;
  EXPECT_NE(expected.find("from"), std::string::npos) << expected;
  for (size_t threads : {1, 2, 8}) {
    runtime::TaskPool pool(threads);
    EXPECT_EQ(StableExplain(&pool), expected) << threads << " threads";
  }
}

TEST_F(ExplainDeterminismTest, RepeatedSerialRunsAreIdentical) {
  // Same-config idempotence: the stable view contains no timing residue.
  EXPECT_EQ(StableExplain(nullptr), StableExplain(nullptr));
}

}  // namespace
}  // namespace iflex
