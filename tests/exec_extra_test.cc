// Deeper executor coverage: join-filter pushdown, the blocking similarity
// join, p-predicate semantics over expansion cells, and psi edge cases.
#include <gtest/gtest.h>

#include "common/strutil.h"
#include "ctable/worlds.h"
#include "exec/annotate.h"
#include "exec/executor.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

CompactTable OneColStrings(const std::vector<std::string>& values,
                           const std::string& col) {
  CompactTable t({col});
  for (const std::string& s : values) {
    CompactTuple tup;
    tup.cells.push_back(Cell::Exact(Value::String(s)));
    t.Add(std::move(tup));
  }
  return t;
}

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = std::make_unique<Catalog>(&corpus_);
    catalog_->RegisterBuiltinFunctions(0.75);
  }

  Corpus corpus_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(JoinTest, SimilarityJoinWithBlockingIndex) {
  // > 32 right-side tuples with exact cells turns the token index on.
  std::vector<std::string> left = {"Principles of Databases",
                                   "Stream Processing Systems"};
  std::vector<std::string> right;
  for (int i = 0; i < 40; ++i) {
    right.push_back("Filler Title Number " + std::to_string(i));
  }
  right.push_back("Principles of Databases");
  ASSERT_TRUE(catalog_->AddTable("l", OneColStrings(left, "a")).ok());
  ASSERT_TRUE(catalog_->AddTable("r", OneColStrings(right, "b")).ok());

  auto prog = ParseProgram("q(a, b) :- l(a), r(b), similar(a, b).",
                           *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->tuples()[0].cells[0].assignments[0].value.AsText(),
            "Principles of Databases");
  // Blocking means nowhere near 2*41 pairs were scored.
  EXPECT_LT(exec.stats().join_pairs, 30u);
}

TEST_F(JoinTest, BlockingAndFullScanAgree) {
  std::vector<std::string> left = {"Alpha Beta Gamma", "Delta Epsilon"};
  std::vector<std::string> small_right = {"Alpha Beta Gamma", "Zeta Eta",
                                          "Delta Epsilon"};
  // Small table: index off. Padded table: index on. Same matches.
  std::vector<std::string> big_right = small_right;
  for (int i = 0; i < 40; ++i) {
    big_right.push_back("Pad Pad" + std::to_string(i));
  }
  ASSERT_TRUE(catalog_->AddTable("l", OneColStrings(left, "a")).ok());
  ASSERT_TRUE(catalog_->AddTable("rs", OneColStrings(small_right, "b")).ok());
  ASSERT_TRUE(catalog_->AddTable("rb", OneColStrings(big_right, "b")).ok());

  auto p1 = ParseProgram("q(a, b) :- l(a), rs(b), similar(a, b).", *catalog_);
  auto p2 = ParseProgram("q(a, b) :- l(a), rb(b), similar(a, b).", *catalog_);
  ASSERT_TRUE(p1.ok() && p2.ok());
  Executor exec(*catalog_);
  auto r1 = exec.Execute(*p1);
  auto r2 = exec.Execute(*p2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->size(), 2u);
  EXPECT_EQ(r2->size(), 2u);
}

TEST_F(JoinTest, ComparisonPushdownIntoCrossJoin) {
  CompactTable nums({"n"});
  for (int i = 0; i < 10; ++i) {
    CompactTuple t;
    t.cells.push_back(Cell::Exact(Value::Number(i)));
    nums.Add(std::move(t));
  }
  ASSERT_TRUE(catalog_->AddTable("n1", nums).ok());
  ASSERT_TRUE(catalog_->AddTable("n2", std::move(nums)).ok());
  auto prog = ParseProgram("q(a, b) :- n1(a), n2(b), a < b.", *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 45u);  // pairs with a < b
}

TEST_F(JoinTest, SharedVariableJoin) {
  ASSERT_TRUE(catalog_->AddTable("l", OneColStrings({"x", "y"}, "a")).ok());
  CompactTable pairs({"a", "c"});
  for (const auto& [k, v] : std::vector<std::pair<std::string, std::string>>{
           {"x", "1"}, {"x", "2"}, {"z", "3"}}) {
    CompactTuple t;
    t.cells.push_back(Cell::Exact(Value::String(k)));
    t.cells.push_back(Cell::Exact(Value::String(v)));
    pairs.Add(std::move(t));
  }
  ASSERT_TRUE(catalog_->AddTable("p", std::move(pairs)).ok());
  auto prog = ParseProgram("q(a, c) :- l(a), p(a, c).", *catalog_);
  ASSERT_TRUE(prog.ok());
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);  // (x,1), (x,2)
}

TEST_F(JoinTest, ConstantInAtomFilters) {
  CompactTable pairs({"a", "c"});
  for (const auto& [k, v] : std::vector<std::pair<std::string, double>>{
           {"x", 1}, {"y", 2}}) {
    CompactTuple t;
    t.cells.push_back(Cell::Exact(Value::String(k)));
    t.cells.push_back(Cell::Exact(Value::Number(v)));
    pairs.Add(std::move(t));
  }
  ASSERT_TRUE(catalog_->AddTable("p", std::move(pairs)).ok());
  auto prog = ParseProgram("q(a) :- p(a, 2).", *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->tuples()[0].cells[0].assignments[0].value.AsText(), "y");
}

TEST_F(JoinTest, RepeatedVariableInAtom) {
  CompactTable pairs({"a", "b"});
  for (const auto& [k, v] : std::vector<std::pair<std::string, std::string>>{
           {"x", "x"}, {"x", "y"}, {"z", "z"}}) {
    CompactTuple t;
    t.cells.push_back(Cell::Exact(Value::String(k)));
    t.cells.push_back(Cell::Exact(Value::String(v)));
    pairs.Add(std::move(t));
  }
  ASSERT_TRUE(catalog_->AddTable("p", std::move(pairs)).ok());
  auto prog = ParseProgram("q(a) :- p(a, a).", *catalog_);
  ASSERT_TRUE(prog.ok());
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);  // (x,x) and (z,z)
}

class PPredExpansionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = ParseMarkup("d", "<b>Alice</b> and <b>Bob</b>");
    ASSERT_TRUE(doc.ok());
    d_ = corpus_.Add(std::move(doc).value());
    catalog_ = std::make_unique<Catalog>(&corpus_);
    CompactTable pages({"x"});
    CompactTuple t;
    t.cells.push_back(Cell::Exact(Value::Doc(d_)));
    pages.Add(std::move(t));
    ASSERT_TRUE(catalog_->AddTable("pages", std::move(pages)).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("names", 1, 1).ok());
    ASSERT_TRUE(catalog_
                    ->DeclarePPredicate(
                        "shout", 1, 1,
                        [](const Corpus&, const std::vector<Value>& in)
                            -> Result<std::vector<std::vector<Value>>> {
                          std::string s(in[0].AsText());
                          for (char& c : s) {
                            c = static_cast<char>(
                                std::toupper(static_cast<unsigned char>(c)));
                          }
                          return std::vector<std::vector<Value>>{
                              {Value::String(s)}};
                        })
                    .ok());
  }

  Corpus corpus_;
  DocId d_ = 0;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(PPredExpansionTest, ExpansionCellInputsAreCertain) {
  // names(x, s) yields an expansion cell of two bold names; feeding it to
  // the p-predicate must yield two *non-maybe* tuples (paper §4.1: only
  // non-expansion multiplicity makes outputs maybe).
  auto prog = ParseProgram(R"(
    q(s, u) :- pages(x), names(x, s), shout(s, u).
    names(x, s) :- from(x, s), bold_font(s) = distinct_yes.
  )", *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("q");
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 2u);
  // Non-maybe outputs, and pairs stay correlated: ALICE/Alice, BOB/Bob.
  for (const CompactTuple& t : result->tuples()) {
    EXPECT_FALSE(t.maybe);
    EXPECT_EQ(iflex::ToLower(t.cells[1].assignments[0].value.AsText()),
              iflex::ToLower(t.cells[0].assignments[0].value.AsText()));
  }
}

TEST_F(PPredExpansionTest, UncertainCellInputsBecomeMaybe) {
  // A plain (non-expansion) two-value cell is one tuple with an uncertain
  // value -> p-predicate outputs are maybe.
  CompactTable two({"s"});
  CompactTuple t;
  Cell c;
  c.assignments.push_back(Assignment::Exact(Value::String("a")));
  c.assignments.push_back(Assignment::Exact(Value::String("b")));
  t.cells.push_back(std::move(c));
  two.Add(std::move(t));
  ASSERT_TRUE(catalog_->AddTable("two", std::move(two)).ok());
  auto prog = ParseProgram("q(s, u) :- two(s), shout(s, u).", *catalog_);
  ASSERT_TRUE(prog.ok());
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  for (const CompactTuple& tup : result->tuples()) {
    EXPECT_TRUE(tup.maybe);
  }
}

TEST(AnnotateEdgeTest, EmptySpecIsIdentity) {
  Corpus corpus;
  CompactTable t({"a"});
  CompactTuple tup;
  tup.cells.push_back(Cell::Exact(Value::Number(1)));
  t.Add(std::move(tup));
  AnnotationSpec spec;
  auto out = ApplyAnnotations(corpus, t, spec);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
  EXPECT_FALSE(out->tuples()[0].maybe);
}

TEST(AnnotateEdgeTest, CompactAndATablePathsAgree) {
  Corpus corpus;
  CompactTable t({"k", "v"});
  for (int k = 0; k < 3; ++k) {
    for (int v = 0; v < 2; ++v) {
      CompactTuple tup;
      tup.maybe = (k == 1);
      tup.cells.push_back(Cell::Exact(Value::Number(k)));
      tup.cells.push_back(Cell::Exact(Value::Number(10 * k + v)));
      t.Add(std::move(tup));
    }
  }
  AnnotationSpec spec;
  spec.annotated = {1};
  auto fast = ApplyAnnotations(corpus, t, spec, /*use_compact=*/true);
  auto slow = ApplyAnnotations(corpus, t, spec, /*use_compact=*/false);
  ASSERT_TRUE(fast.ok() && slow.ok());
  auto wf = WorldSet(*CompactToATable(corpus, *fast));
  auto ws = WorldSet(*CompactToATable(corpus, *slow));
  ASSERT_TRUE(wf.ok() && ws.ok());
  EXPECT_EQ(*wf, *ws);
}

}  // namespace
}  // namespace iflex
