// The optimized compact-table psi and the paper's default a-table route
// must agree on whole-program results (ablation A's correctness side).
#include <gtest/gtest.h>

#include "ctable/worlds.h"
#include "exec/executor.h"
#include "tasks/task.h"

namespace iflex {
namespace {

class AnnotateModesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AnnotateModesTest, CompactAndATableRoutesAgreeOnTasks) {
  auto task = MakeTask(GetParam(), 12);
  ASSERT_TRUE(task.ok()) << task.status();
  // Constrain enough that the a-table route stays enumerable.
  Program prog = (*task)->initial_program;
  const Catalog& catalog = *(*task)->catalog;
  for (const AttributeRef& attr : EnumerateAttributes(prog, catalog)) {
    ASSERT_TRUE(prog.AddConstraint(catalog, attr.ie_predicate,
                                   attr.output_idx, "numeric",
                                   FeatureParam::None(), FeatureValue::kYes)
                    .ok());
  }

  ExecOptions compact_mode;
  compact_mode.compact_annotate = true;
  ExecOptions atable_mode;
  atable_mode.compact_annotate = false;

  Executor e1(catalog, compact_mode);
  Executor e2(catalog, atable_mode);
  auto r1 = e1.Execute(prog);
  auto r2 = e2.Execute(prog);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();

  const Corpus& corpus = *(*task)->corpus;
  EXPECT_EQ(r1->size(), r2->size());
  EXPECT_DOUBLE_EQ(r1->ExpandedTupleCount(corpus),
                   r2->ExpandedTupleCount(corpus));
  // Same possible relations (worlds) when small enough to enumerate.
  auto a1 = CompactToATable(corpus, *r1);
  auto a2 = CompactToATable(corpus, *r2);
  ASSERT_TRUE(a1.ok() && a2.ok());
  auto w1 = WorldSet(*a1, 1 << 18);
  auto w2 = WorldSet(*a2, 1 << 18);
  if (w1.ok() && w2.ok()) {
    EXPECT_EQ(*w1, *w2);
  }
}

INSTANTIATE_TEST_SUITE_P(Tasks, AnnotateModesTest,
                         ::testing::Values("T1", "T2", "T4", "T7"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace iflex
