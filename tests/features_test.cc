#include <gtest/gtest.h>

#include "features/context_features.h"
#include "features/markup_features.h"
#include "features/registry.h"
#include "features/token_features.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

Document Doc(const std::string& markup) {
  auto r = ParseMarkup("t", markup);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

std::string TextOfRegion(const Document& doc, const RefinedRegion& r) {
  return std::string(doc.TextOf(r.span));
}

TEST(MarkupFeatureTest, VerifyYesDistinctNo) {
  Document doc = Doc("Price: <b>$99</b> rest");
  MarkupFeature bold("bold_font", MarkupKind::kBold);
  Span price(doc.id(), 7, 10);  // "$99"
  Span partial(doc.id(), 5, 10);
  EXPECT_TRUE(bold.Verify(doc, price, {}, FeatureValue::kYes));
  EXPECT_TRUE(bold.Verify(doc, price, {}, FeatureValue::kDistinctYes));
  EXPECT_FALSE(bold.Verify(doc, partial, {}, FeatureValue::kYes));
  EXPECT_TRUE(bold.Verify(doc, Span(doc.id(), 0, 5), {}, FeatureValue::kNo));
  EXPECT_FALSE(bold.Verify(doc, partial, {}, FeatureValue::kNo));
}

TEST(MarkupFeatureTest, DistinctYesRequiresUncoveredNeighbours) {
  Document doc = Doc("<b>one two</b>");
  MarkupFeature bold("bold_font", MarkupKind::kBold);
  // "one" is bold but its right neighbour is also bold -> not distinct.
  EXPECT_TRUE(bold.Verify(doc, Span(doc.id(), 0, 3), {}, FeatureValue::kYes));
  EXPECT_FALSE(
      bold.Verify(doc, Span(doc.id(), 0, 3), {}, FeatureValue::kDistinctYes));
  EXPECT_TRUE(
      bold.Verify(doc, Span(doc.id(), 0, 7), {}, FeatureValue::kDistinctYes));
}

TEST(MarkupFeatureTest, RefineYesGivesContainRuns) {
  Document doc = Doc("a <b>b c</b> d <b>e</b>");
  MarkupFeature bold("bold_font", MarkupKind::kBold);
  auto runs = bold.Refine(doc, doc.FullSpan(), {}, FeatureValue::kYes);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(TextOfRegion(doc, runs[0]), "b c");
  EXPECT_FALSE(runs[0].exact);
  EXPECT_EQ(TextOfRegion(doc, runs[1]), "e");
}

TEST(MarkupFeatureTest, RefineDistinctYesGivesExactRuns) {
  Document doc = Doc("a <b>b c</b> d");
  MarkupFeature bold("bold_font", MarkupKind::kBold);
  auto runs = bold.Refine(doc, doc.FullSpan(), {}, FeatureValue::kDistinctYes);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs[0].exact);
  EXPECT_EQ(TextOfRegion(doc, runs[0]), "b c");
}

TEST(MarkupFeatureTest, RefineNoGivesGaps) {
  Document doc = Doc("aa <b>bb</b> cc");
  MarkupFeature bold("bold_font", MarkupKind::kBold);
  auto runs = bold.Refine(doc, doc.FullSpan(), {}, FeatureValue::kNo);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(TextOfRegion(doc, runs[0]), "aa ");
  EXPECT_EQ(TextOfRegion(doc, runs[1]), " cc");
}

TEST(NumericFeatureTest, VerifyAndRefine) {
  Document doc = Doc("Price: $351,000 area 2750 school Lincoln");
  NumericFeature numeric;
  auto runs = numeric.Refine(doc, doc.FullSpan(), {}, FeatureValue::kYes);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(TextOfRegion(doc, runs[0]), "$351,000");
  EXPECT_TRUE(runs[0].exact);
  EXPECT_EQ(TextOfRegion(doc, runs[1]), "2750");
  EXPECT_TRUE(numeric.Verify(doc, runs[0].span, {}, FeatureValue::kYes));
  EXPECT_TRUE(
      numeric.Verify(doc, Span(doc.id(), 0, 5), {}, FeatureValue::kNo));
}

TEST(NumericFeatureTest, VerifyText) {
  NumericFeature numeric;
  EXPECT_TRUE(*numeric.VerifyText("$42", {}, FeatureValue::kYes));
  EXPECT_FALSE(*numeric.VerifyText("fortytwo", {}, FeatureValue::kYes));
  EXPECT_TRUE(*numeric.VerifyText("fortytwo", {}, FeatureValue::kNo));
}

TEST(CapitalizedFeatureTest, RefineRuns) {
  Document doc = Doc("the Big Apple fell on New York today");
  CapitalizedFeature cap;
  auto runs = cap.Refine(doc, doc.FullSpan(), {}, FeatureValue::kYes);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(TextOfRegion(doc, runs[0]), "Big Apple");
  EXPECT_EQ(TextOfRegion(doc, runs[1]), "New York");
  EXPECT_TRUE(cap.Verify(doc, runs[0].span, {}, FeatureValue::kYes));
}

TEST(PersonNameFeatureTest, VerifyShapes) {
  Document doc = Doc("speaker Jane A. Smith and DBMS 2007 panel");
  PersonNameFeature person;
  auto runs = person.Refine(doc, doc.FullSpan(), {}, FeatureValue::kYes);
  bool found = false;
  for (const auto& r : runs) {
    if (TextOfRegion(doc, r) == "Jane A. Smith") found = true;
    // No candidate may contain a number.
    EXPECT_EQ(TextOfRegion(doc, r).find("2007"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(ValueBoundFeatureTest, MinValue) {
  Document doc = Doc("votes 24567 year 1972 rank 12");
  ValueBoundFeature min_value(/*is_min=*/true);
  FeatureParam p = FeatureParam::Num(5000);
  auto runs = min_value.Refine(doc, doc.FullSpan(), p, FeatureValue::kYes);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(TextOfRegion(doc, runs[0]), "24567");
  EXPECT_TRUE(min_value.Verify(doc, runs[0].span, p, FeatureValue::kYes));
  EXPECT_FALSE(
      min_value.Verify(doc, Span(doc.id(), 12, 16), p, FeatureValue::kYes));
}

TEST(ValueBoundFeatureTest, MaxValueVerifyText) {
  ValueBoundFeature max_value(/*is_min=*/false);
  FeatureParam p = FeatureParam::Num(100);
  EXPECT_TRUE(*max_value.VerifyText("$99.50", p, FeatureValue::kYes));
  EXPECT_FALSE(*max_value.VerifyText("101", p, FeatureValue::kYes));
  EXPECT_FALSE(*max_value.VerifyText("text", p, FeatureValue::kYes));
}

TEST(MaxLengthFeatureTest, VerifyAndWindows) {
  Document doc = Doc("one two three four");
  MaxLengthFeature max_len;
  FeatureParam p = FeatureParam::Num(7);
  EXPECT_TRUE(max_len.Verify(doc, Span(doc.id(), 0, 7), p, FeatureValue::kYes));
  EXPECT_FALSE(
      max_len.Verify(doc, Span(doc.id(), 0, 13), p, FeatureValue::kYes));
  auto runs = max_len.Refine(doc, doc.FullSpan(), p, FeatureValue::kYes);
  // Every token-aligned sub-span of length <= 7 must fall in some window.
  for (const auto& r : runs) {
    EXPECT_LE(r.span.length(), 7u);
  }
  ASSERT_FALSE(runs.empty());
  EXPECT_EQ(TextOfRegion(doc, runs[0]), "one two");
}

TEST(InFirstHalfFeatureTest, Basics) {
  Document doc = Doc("aaaa bbbb cccc dddd");  // 19 chars, half = 9
  InFirstHalfFeature f;
  EXPECT_TRUE(f.Verify(doc, Span(doc.id(), 0, 4), {}, FeatureValue::kYes));
  EXPECT_FALSE(f.Verify(doc, Span(doc.id(), 10, 14), {}, FeatureValue::kYes));
  auto yes_runs = f.Refine(doc, doc.FullSpan(), {}, FeatureValue::kYes);
  ASSERT_EQ(yes_runs.size(), 1u);
  EXPECT_EQ(yes_runs[0].span.end, 9u);
}

TEST(AdjacencyFeatureTest, PrecededBy) {
  Document doc = Doc("Price: $35.99. Only two left.");
  AdjacencyFeature preceded(/*before=*/true);
  FeatureParam p = FeatureParam::Str("Price:");
  Span price(doc.id(), 7, 13);  // "$35.99"
  EXPECT_TRUE(preceded.Verify(doc, price, p, FeatureValue::kYes));
  EXPECT_FALSE(
      preceded.Verify(doc, Span(doc.id(), 15, 19), p, FeatureValue::kYes));
  auto runs = preceded.Refine(doc, doc.FullSpan(), p, FeatureValue::kYes);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].span.begin, 6u);  // right after "Price:"
}

TEST(AdjacencyFeatureTest, PrecededByStopsAtLineBreak) {
  Document doc = Doc("Price:\n$35.99");
  AdjacencyFeature preceded(/*before=*/true);
  FeatureParam p = FeatureParam::Str("Price:");
  // The label is on the previous line; our preceded_by is line-local.
  EXPECT_FALSE(
      preceded.Verify(doc, Span(doc.id(), 7, 13), p, FeatureValue::kYes));
}

TEST(AdjacencyFeatureTest, FollowedBy) {
  Document doc = Doc("123 - 135 pages");
  AdjacencyFeature followed(/*before=*/false);
  FeatureParam p = FeatureParam::Str("-");
  EXPECT_TRUE(
      followed.Verify(doc, Span(doc.id(), 0, 3), p, FeatureValue::kYes));
  EXPECT_FALSE(
      followed.Verify(doc, Span(doc.id(), 6, 9), p, FeatureValue::kYes));
}

TEST(EdgeRegexFeatureTest, StartsAndEndsWith) {
  Document doc = Doc("SIGMOD 2007 Conference");
  EdgeRegexFeature starts(/*at_start=*/true);
  EdgeRegexFeature ends(/*at_start=*/false);
  Span conf(doc.id(), 0, 11);  // "SIGMOD 2007"
  EXPECT_TRUE(starts.Verify(doc, conf, FeatureParam::Str("[A-Z][A-Z]+"),
                            FeatureValue::kYes));
  EXPECT_TRUE(ends.Verify(doc, conf, FeatureParam::Str("19\\d\\d|20\\d\\d"),
                          FeatureValue::kYes));
  EXPECT_FALSE(ends.Verify(doc, doc.FullSpan(),
                           FeatureParam::Str("19\\d\\d|20\\d\\d"),
                           FeatureValue::kYes));
  // Invalid regex matches nothing rather than crashing.
  EXPECT_FALSE(starts.Verify(doc, conf, FeatureParam::Str("[unclosed"),
                             FeatureValue::kYes));
}

TEST(ContainsFeatureTest, Basics) {
  Document doc = Doc("The SIGMOD panel on IE");
  ContainsFeature contains;
  EXPECT_TRUE(contains.Verify(doc, doc.FullSpan(), FeatureParam::Str("panel"),
                              FeatureValue::kYes));
  EXPECT_TRUE(contains.Verify(doc, Span(doc.id(), 0, 3),
                              FeatureParam::Str("panel"), FeatureValue::kNo));
}

TEST(PrecLabelFeaturesTest, ContainsAndDistance) {
  Document doc =
      Doc("<label>Panelists:</label> Jane Smith\n<label>Chairs:</label> Bob");
  PrecLabelContainsFeature plc;
  PrecLabelMaxDistFeature pld;
  Span jane(doc.id(), 11, 21);
  EXPECT_TRUE(plc.Verify(doc, jane, FeatureParam::Str("panel"),
                         FeatureValue::kYes));
  EXPECT_FALSE(plc.Verify(doc, jane, FeatureParam::Str("chair"),
                          FeatureValue::kYes));
  EXPECT_TRUE(
      pld.Verify(doc, jane, FeatureParam::Num(5), FeatureValue::kYes));
  EXPECT_FALSE(
      pld.Verify(doc, jane, FeatureParam::Num(0), FeatureValue::kYes));

  // Refine for "panel" must not cross into the Chairs region.
  auto runs = plc.Refine(doc, doc.FullSpan(), FeatureParam::Str("panel"),
                         FeatureValue::kYes);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_LE(runs[0].span.end, 38u);
}

TEST(RegistryTest, DefaultRegistryHasCoreFeatures) {
  auto reg = CreateDefaultRegistry();
  for (const char* name :
       {"numeric", "bold_font", "italic_font", "underlined", "hyperlinked",
        "capitalized", "in_list", "in_title", "in_first_half",
        "prec_label_contains", "prec_label_max_dist", "preceded_by",
        "followed_by", "starts_with", "ends_with", "contains_str",
        "min_value", "max_value", "max_length", "person_name"}) {
    EXPECT_TRUE(reg->Has(name)) << name;
  }
  EXPECT_FALSE(reg->Has("no_such_feature"));
  EXPECT_FALSE(reg->Get("no_such_feature").ok());
}

TEST(RegistryTest, RejectsDuplicates) {
  FeatureRegistry reg;
  EXPECT_TRUE(reg.Register(std::make_unique<NumericFeature>()).ok());
  EXPECT_FALSE(reg.Register(std::make_unique<NumericFeature>()).ok());
}

// Property: for every built-in paramless feature and every refined region
// with exact=false, Verify must accept the region itself (the region is a
// *satisfying* maximal sub-span).
TEST(FeaturePropertyTest, RefinedRegionsSatisfyVerify) {
  Document doc = Doc(
      "<title>B&N Books</title>\n<b>Database Systems</b>\n"
      "Our Price: <i>$123.45</i>\nISBN: 0131873253\n<li>item one</li>");
  auto reg = CreateDefaultRegistry();
  for (const std::string& name : reg->names()) {
    const Feature* f = *reg->Get(name);
    if (f->param_kind() != ParamKind::kNone) continue;
    for (FeatureValue v : f->AnswerSpace()) {
      for (const RefinedRegion& r :
           f->Refine(doc, doc.FullSpan(), {}, v)) {
        if (r.span.empty()) continue;
        EXPECT_TRUE(f->Verify(doc, r.span, {}, v))
            << name << " " << FeatureValueToString(v) << " region '"
            << std::string(doc.TextOf(r.span)) << "'";
      }
    }
  }
}

}  // namespace
}  // namespace iflex
