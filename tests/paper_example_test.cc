// End-to-end reproduction of the paper's running example (Figures 1-3):
// two house pages, two school pages, the Alog program of Figure 2.c, and
// the expected answer (x2, 619000, 4700, "Basktall HS").
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Figure 1.b, lightly adapted: prices are bold; school names in the
    // school pages are bold.
    auto x1 = ParseMarkup("x1",
                          "Price: <b>$351,000</b>\n"
                          "Cozy house on quiet street\n"
                          "5146 Windsor Ave, Champaign\n"
                          "Sqft: 2750\n"
                          "High school: Vanhise High");
    auto x2 = ParseMarkup("x2",
                          "Price: <b>$619,000</b>\n"
                          "Amazing house in great location\n"
                          "3112 Stonecreek Blvd, Cherry Hills\n"
                          "Sqft: 4700\n"
                          "High school: Basktall HS");
    auto y1 = ParseMarkup("y1",
                          "Top High Schools and Location (page 1)\n"
                          "<b>Basktall</b>, Cherry Hills\n"
                          "<b>Franklin</b>, Robeson\n"
                          "<b>Vanhise</b>, Champaign");
    auto y2 = ParseMarkup("y2",
                          "Top High Schools and Location (page 2)\n"
                          "<b>Hoover</b>, Akron\n"
                          "<b>Ossage</b>, Lynneville");
    for (auto* d : {&x1, &x2, &y1, &y2}) ASSERT_TRUE(d->ok());
    x1_ = corpus_.Add(std::move(x1).value());
    x2_ = corpus_.Add(std::move(x2).value());
    y1_ = corpus_.Add(std::move(y1).value());
    y2_ = corpus_.Add(std::move(y2).value());

    catalog_ = std::make_unique<Catalog>(&corpus_);
    CompactTable houses({"x"});
    for (DocId d : {x1_, x2_}) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      houses.Add(t);
    }
    ASSERT_TRUE(catalog_->AddTable("housePages", std::move(houses)).ok());
    CompactTable schools({"y"});
    for (DocId d : {y1_, y2_}) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      schools.Add(t);
    }
    ASSERT_TRUE(catalog_->AddTable("schoolPages", std::move(schools)).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractHouses", 1, 3).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractSchools", 1, 1).ok());
    // "Basktall HS" vs "Basktall": token Jaccard 0.5.
    catalog_->RegisterBuiltinFunctions(/*similarity_threshold=*/0.4);
  }

  Corpus corpus_;
  DocId x1_ = 0, x2_ = 0, y1_ = 0, y2_ = 0;
  std::unique_ptr<Catalog> catalog_;
};

// Figure 2.c: the annotated Alog program.
constexpr char kProgram[] = R"(
  houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(x, p, a, h).
  schools(s)? :- schoolPages(y), extractSchools(y, s).
  q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500,
                   approx_match(h, s).
  extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h),
                               numeric(p) = yes, numeric(a) = yes.
  extractSchools(y, s) :- from(y, s), bold_font(s) = yes.
)";

TEST_F(PaperExampleTest, HousesRuleProducesOneTuplePerPage) {
  auto prog = ParseProgram(kProgram, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("houses");
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  // Example 2.3: each possible houses relation has exactly one tuple per
  // document, so the compact result has one (non-maybe) tuple per page.
  ASSERT_EQ(result->size(), 2u);
  for (const auto& t : result->tuples()) {
    EXPECT_FALSE(t.maybe);
    // p and a hold the page's numeric values (3 candidates each).
    EXPECT_EQ(t.cells[1].assignments.size(), 3u);
    EXPECT_EQ(t.cells[2].assignments.size(), 3u);
    // h is condensed to a single contain assignment over the page.
    ASSERT_EQ(t.cells[3].assignments.size(), 1u);
    EXPECT_TRUE(t.cells[3].assignments[0].is_contain());
  }
}

TEST_F(PaperExampleTest, SchoolsRuleIsCompactAndMaybe) {
  auto prog = ParseProgram(kProgram, *catalog_);
  ASSERT_TRUE(prog.ok());
  prog->set_query("schools");
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  // Figure 3: one compact tuple per school page, existence-annotated.
  ASSERT_EQ(result->size(), 2u);
  size_t bold_spans = 0;
  for (const auto& t : result->tuples()) {
    EXPECT_TRUE(t.maybe);
    EXPECT_TRUE(t.cells[0].is_expansion);
    bold_spans += t.cells[0].assignments.size();
  }
  EXPECT_EQ(bold_spans, 5u);  // Basktall, Franklin, Vanhise, Hoover, Ossage
}

TEST_F(PaperExampleTest, QueryReturnsTheExpectedHouse) {
  auto prog = ParseProgram(kProgram, *catalog_);
  ASSERT_TRUE(prog.ok());
  prog->set_query("q");
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  // Example 2.2: only (x2, 619000, 4700, "Basktall HS") qualifies.
  ASSERT_EQ(result->size(), 1u);
  const CompactTuple& t = result->tuples()[0];
  EXPECT_EQ(t.cells[0].assignments[0].value.doc(), x2_);
  ASSERT_EQ(t.cells[1].assignments.size(), 1u);
  EXPECT_DOUBLE_EQ(*t.cells[1].assignments[0].value.AsNumber(), 619000);
  // a narrowed to values > 4500 (the true 4700 must be among them).
  bool has_4700 = false;
  std::vector<Value> a_values;
  t.cells[2].EnumerateValues(corpus_, 100, &a_values);
  for (const Value& v : a_values) {
    auto n = v.AsNumber();
    ASSERT_TRUE(n.has_value());
    EXPECT_GT(*n, 4500);
    has_4700 = has_4700 || *n == 4700;
  }
  EXPECT_TRUE(has_4700);
}

TEST_F(PaperExampleTest, CompactTablesBeatATablesInSize) {
  // The compact houses table encodes vastly more possible tuples than it
  // stores assignments — the motivation for compact tables (paper §3).
  auto prog = ParseProgram(kProgram, *catalog_);
  ASSERT_TRUE(prog.ok());
  prog->set_query("houses");
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok());
  double possible = result->PossibleTupleCount(corpus_);
  size_t assignments = result->AssignmentCount();
  EXPECT_GT(possible, static_cast<double>(assignments) * 10);
}

TEST_F(PaperExampleTest, ExampleOneNarrativeSupersetShrinks) {
  // Example 1.1's narrative: an underspecified program returns a larger
  // superset; adding "price is bold" shrinks it.
  // The low threshold keeps several candidate numbers per page, so the
  // initial result is genuinely ambiguous.
  const char* loose = R"(
    q(x, p) :- housePages(x), extractPrice(x, p), p > 3000.
    extractPrice(x, p) :- from(x, p), numeric(p) = yes.
  )";
  ASSERT_TRUE(catalog_->DeclareIEPredicate("extractPrice", 1, 1).ok());
  auto prog = ParseProgram(loose, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("q");
  Executor exec(*catalog_);
  auto r1 = exec.Execute(*prog);
  ASSERT_TRUE(r1.ok());
  size_t loose_assignments = r1->AssignmentCount();

  ASSERT_TRUE(prog->AddConstraint(*catalog_, "extractPrice", 0, "bold_font",
                                  FeatureParam::None(), FeatureValue::kYes)
                  .ok());
  auto r2 = exec.Execute(*prog);
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(r2->AssignmentCount(), loose_assignments);
  // Both prices exceed the threshold, so both pages remain, now pinned.
  EXPECT_EQ(r2->size(), 2u);
  for (const auto& t : r2->tuples()) {
    EXPECT_EQ(t.cells[1].assignments.size(), 1u);
  }
}

}  // namespace
}  // namespace iflex
