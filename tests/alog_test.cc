#include <gtest/gtest.h>

#include "alog/catalog.h"
#include "alog/lexer.h"
#include "alog/program.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

class AlogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d1 = ParseMarkup("h1", "Price: 351000 Sqft: 2750");
    auto d2 = ParseMarkup("s1", "<b>Basktall</b> Cherry Hills");
    ASSERT_TRUE(d1.ok());
    ASSERT_TRUE(d2.ok());
    DocId h = corpus_.Add(std::move(d1).value());
    DocId s = corpus_.Add(std::move(d2).value());

    catalog_ = std::make_unique<Catalog>(&corpus_);
    CompactTable house_pages({"x"});
    CompactTuple ht;
    ht.cells.push_back(Cell::Exact(Value::Doc(h)));
    house_pages.Add(ht);
    ASSERT_TRUE(catalog_->AddTable("housePages", std::move(house_pages)).ok());

    CompactTable school_pages({"y"});
    CompactTuple st;
    st.cells.push_back(Cell::Exact(Value::Doc(s)));
    school_pages.Add(st);
    ASSERT_TRUE(
        catalog_->AddTable("schoolPages", std::move(school_pages)).ok());

    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractHouses", 1, 3).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractSchools", 1, 1).ok());
    catalog_->RegisterBuiltinFunctions();
  }

  Corpus corpus_;
  std::unique_ptr<Catalog> catalog_;
};

TEST(LexerTest, BasicTokens) {
  auto toks = Lex("houses(x, <p>)? :- housePages(x), p > 500000.");
  ASSERT_TRUE(toks.ok());
  std::vector<TokKind> kinds;
  for (const auto& t : *toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokKind::kIdent);
  EXPECT_EQ(kinds.back(), TokKind::kEnd);
  // Contains '?', ':-', '>', '.', number.
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::kQuestion),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::kImplies),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::kGt), kinds.end());
}

TEST(LexerTest, NumbersAndDots) {
  auto toks = Lex("p > 4.5.");
  ASSERT_TRUE(toks.ok());
  // ident, >, number(4.5), dot, end
  ASSERT_EQ(toks->size(), 5u);
  EXPECT_DOUBLE_EQ((*toks)[2].num, 4.5);
  EXPECT_EQ((*toks)[3].kind, TokKind::kDot);
}

TEST(LexerTest, StringsWithEscapes) {
  auto toks = Lex("f(x, \"a\\\"b\") = yes.");
  ASSERT_TRUE(toks.ok());
  bool found = false;
  for (const auto& t : *toks) {
    if (t.kind == TokKind::kString) {
      EXPECT_EQ(t.text, "a\"b");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, CommentsIgnored) {
  auto toks = Lex("% a comment\nq(x) :- t(x). # more\n");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "q");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("a : b").ok());
  EXPECT_FALSE(Lex("a ! b").ok());
  EXPECT_FALSE(Lex("a @ b").ok());
}

TEST_F(AlogTest, ParsesPaperProgram) {
  const char* src = R"(
    houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(x, p, a, h).
    schools(s)? :- schoolPages(y), extractSchools(y, s).
    q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500,
                     approx_match(h, s).
    extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h),
                                 numeric(p) = yes, numeric(a) = yes.
    extractSchools(y, s) :- from(y, s), bold_font(s) = yes.
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  ASSERT_EQ(prog->rules().size(), 5u);
  const Rule& r0 = prog->rules()[0];
  EXPECT_FALSE(r0.head.existence);
  EXPECT_FALSE(r0.head.annotated[0]);
  EXPECT_TRUE(r0.head.annotated[1]);
  EXPECT_TRUE(prog->rules()[1].head.existence);
  EXPECT_TRUE(prog->rules()[3].is_description);
  EXPECT_TRUE(prog->rules()[4].is_description);
  EXPECT_EQ(prog->query(), "houses");
  prog->set_query("q");
  EXPECT_EQ(prog->query(), "q");
}

TEST_F(AlogTest, ParsesParameterizedConstraints) {
  const char* src = R"(
    q(s) :- schoolPages(y), extractSchools(y, s).
    extractSchools(y, s) :- from(y, s), preceded_by(s, "Price:") = yes,
                            max_length(s) = 18, min_value(s) = 500000.
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  const Rule& desc = prog->rules()[1];
  ASSERT_EQ(desc.body.size(), 4u);
  EXPECT_EQ(desc.body[1].constraint.param.str.value(), "Price:");
  EXPECT_EQ(desc.body[2].constraint.param.num.value(), 18);
  EXPECT_EQ(desc.body[3].constraint.param.num.value(), 500000);
}

TEST_F(AlogTest, RejectsUnsafeRule) {
  // h never bound anywhere.
  const char* src = R"(
    q(h) :- housePages(x).
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_FALSE(prog.ok());
  EXPECT_EQ(prog.status().code(), StatusCode::kUnsafeRule);
}

TEST_F(AlogTest, RejectsUnsafeConstraintVariable) {
  const char* src = R"(
    q(x) :- housePages(x), numeric(p) = yes.
  )";
  EXPECT_FALSE(ParseProgram(src, *catalog_).ok());
}

TEST_F(AlogTest, DescriptionRuleInputVariablesAreBound) {
  // In a description rule the head input x is given; from(x, p) uses it.
  const char* src = R"(
    q(p) :- housePages(x), extractHouses(x, p, a, h).
    extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h).
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
}

TEST_F(AlogTest, RejectsUnknownPredicate) {
  EXPECT_FALSE(ParseProgram("q(x) :- nonesuch(x).", *catalog_).ok());
}

TEST_F(AlogTest, RejectsArityMismatch) {
  EXPECT_FALSE(ParseProgram("q(x) :- housePages(x, y).", *catalog_).ok());
}

TEST_F(AlogTest, RejectsAnnotationsOnDescriptionRules) {
  const char* src = R"(
    q(p) :- housePages(x), extractHouses(x, p, a, h).
    extractHouses(x, <p>, a, h) :- from(x, p), from(x, a), from(x, h).
  )";
  EXPECT_FALSE(ParseProgram(src, *catalog_).ok());
}

TEST_F(AlogTest, UnfoldInlinesDescriptionRules) {
  const char* src = R"(
    q(x, s) :- schoolPages(x), extractSchools(x, s).
    extractSchools(y, s) :- from(y, s), bold_font(s) = yes.
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  auto unfolded = prog->Unfold(*catalog_);
  ASSERT_TRUE(unfolded.ok()) << unfolded.status();
  ASSERT_EQ(unfolded->rules().size(), 1u);
  const Rule& r = unfolded->rules()[0];
  // schoolPages(x), from(x, s), bold_font(s)=yes.
  ASSERT_EQ(r.body.size(), 3u);
  EXPECT_EQ(r.body[1].atom.predicate, "from");
  EXPECT_EQ(r.body[1].atom.args[0].var, "x");  // unified with the call site
  EXPECT_EQ(r.body[2].constraint.var, "s");
}

TEST_F(AlogTest, UnfoldSupportsMultipleDescriptionRules) {
  const char* src = R"(
    q(x, s) :- schoolPages(x), extractSchools(x, s).
    extractSchools(y, s) :- from(y, s), bold_font(s) = yes.
    extractSchools(y, s) :- from(y, s), italic_font(s) = yes.
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok());
  auto unfolded = prog->Unfold(*catalog_);
  ASSERT_TRUE(unfolded.ok());
  EXPECT_EQ(unfolded->rules().size(), 2u);  // union of the two variants
}

TEST_F(AlogTest, UnfoldFailsWithoutDescriptionRule) {
  const char* src = R"(
    q(x, s) :- schoolPages(x), extractSchools(x, s).
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok());
  EXPECT_FALSE(prog->Unfold(*catalog_).ok());
}

TEST_F(AlogTest, AddConstraintTargetsCorrectVariable) {
  const char* src = R"(
    q(p) :- housePages(x), extractHouses(x, p, a, h).
    extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h).
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok());
  // Attribute index 2 of extractHouses is h (after 1 input).
  ASSERT_TRUE(prog->AddConstraint(*catalog_, "extractHouses", 2, "bold_font",
                                  FeatureParam::None(), FeatureValue::kYes)
                  .ok());
  const Rule& desc = prog->rules()[1];
  const Literal& added = desc.body.back();
  ASSERT_EQ(added.kind, Literal::Kind::kConstraint);
  EXPECT_EQ(added.constraint.var, "h");
  // Idempotent.
  size_t before = desc.body.size();
  ASSERT_TRUE(prog->AddConstraint(*catalog_, "extractHouses", 2, "bold_font",
                                  FeatureParam::None(), FeatureValue::kYes)
                  .ok());
  EXPECT_EQ(prog->rules()[1].body.size(), before);
}

TEST_F(AlogTest, FingerprintChangesWithConstraints) {
  const char* src = R"(
    q(p) :- housePages(x), extractHouses(x, p, a, h).
    extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h).
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok());
  uint64_t fp1 = prog->Fingerprint();
  ASSERT_TRUE(prog->AddConstraint(*catalog_, "extractHouses", 0, "numeric",
                                  FeatureParam::None(), FeatureValue::kYes)
                  .ok());
  EXPECT_NE(prog->Fingerprint(), fp1);
}

TEST_F(AlogTest, CatalogLookups) {
  EXPECT_EQ(*catalog_->KindOf("housePages"), PredicateKind::kExtensional);
  EXPECT_EQ(*catalog_->KindOf("extractHouses"), PredicateKind::kIEPredicate);
  EXPECT_EQ(*catalog_->KindOf("from"), PredicateKind::kBuiltinFrom);
  EXPECT_EQ(*catalog_->KindOf("similar"), PredicateKind::kPFunction);
  EXPECT_EQ(*catalog_->ArityOf("extractHouses"), 4u);
  EXPECT_EQ(*catalog_->InputArityOf("extractHouses"), 1u);
  EXPECT_FALSE(catalog_->KindOf("nope").ok());
  EXPECT_FALSE(catalog_->AddTable("housePages", CompactTable({"x"})).ok());
}

TEST_F(AlogTest, TokenJaccard) {
  EXPECT_DOUBLE_EQ(TokenJaccard("The Godfather", "the godfather"), 1.0);
  EXPECT_GT(TokenJaccard("Basktall HS", "Basktall"), 0.4);
  EXPECT_DOUBLE_EQ(TokenJaccard("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("", ""), 1.0);
}

TEST_F(AlogTest, CloneWithSampledTables) {
  Catalog sampled = catalog_->CloneWithSampledTables(0.5, 7);
  // 1-tuple tables sample to at least 1 tuple.
  EXPECT_EQ((*sampled.Table("housePages"))->size(), 1u);
  EXPECT_TRUE(sampled.Has("extractHouses"));
  EXPECT_TRUE(sampled.Has("similar"));
  EXPECT_TRUE(sampled.Has("from"));
}

}  // namespace
}  // namespace iflex
