#include <atomic>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// ---------------------------------------------------------------------------
// Global allocation counter, used to prove the disabled-tracing path does
// not allocate. Every other test tolerates allocation; only the counter
// deltas inside DisabledSpanAllocatesNothing are asserted on.
// ---------------------------------------------------------------------------

namespace {
std::atomic<size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

// The nothrow forms must be overridden alongside the throwing ones:
// otherwise (e.g. under ASan) nothrow allocations come from a different
// allocator than the plain operator delete releases them to.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace iflex {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser — enough to check that exported
// documents are well-formed without depending on an external library.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, EscapesAndNests) {
  JsonWriter w;
  w.BeginObject();
  w.Key("quote\"backslash\\").String("tab\tnewline\ncontrol\x01");
  w.Key("arr").BeginArray().Number(1.5).Bool(true).Null().EndArray();
  w.EndObject();
  std::string out = w.str();
  EXPECT_NE(out.find("\\\""), std::string::npos);
  EXPECT_NE(out.find("\\\\"), std::string::npos);
  EXPECT_NE(out.find("\\t"), std::string::npos);
  EXPECT_NE(out.find("\\n"), std::string::npos);
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
  EXPECT_TRUE(JsonChecker(out).Valid()) << out;
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Number(std::numeric_limits<double>::infinity());
  w.Number(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
  EXPECT_TRUE(JsonChecker(w.str()).Valid());
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterGaugeBasics) {
  MetricRegistry reg;
  Counter* c = reg.counter("exec.things");
  c->Add();
  c->Add(4);
  EXPECT_EQ(c->value(), 5u);
  // Get-or-create returns the same stable pointer.
  EXPECT_EQ(reg.counter("exec.things"), c);

  Gauge* g = reg.gauge("exec.size");
  g->Set(2.5);
  g->Add(0.5);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);

  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
}

TEST(MetricsTest, HistogramPercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // 100 samples, index = q * 99 with linear interpolation.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 50.5);
  EXPECT_NEAR(h.Percentile(0.9), 90.1, 1e-9);
  EXPECT_NEAR(h.Percentile(0.99), 99.01, 1e-9);
  // Out-of-range quantiles clamp.
  EXPECT_DOUBLE_EQ(h.Percentile(-3), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(7), 100.0);
}

TEST(MetricsTest, HistogramReservoirBeyondCapacity) {
  Histogram h(/*max_samples=*/8);
  for (int i = 0; i < 100; ++i) h.Record(i);
  // Exact aggregates keep counting past the reservoir.
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.max(), 99.0);
  // Percentiles come from the first 8 samples only (0..7).
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 7.0);
}

TEST(MetricsTest, RegistryJsonIsWellFormed) {
  MetricRegistry reg;
  reg.counter("a.count")->Add(3);
  reg.gauge("b.gauge")->Set(1.25);
  Histogram* h = reg.histogram("c.hist");
  h->Record(1);
  h->Record(2);
  std::string json = reg.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  std::string text = reg.ToText();
  EXPECT_NE(text.find("a.count"), std::string::npos);
}

TEST(MetricsTest, ExportsCarryHistogramPercentiles) {
  MetricRegistry reg;
  Histogram* h = reg.histogram("iter.seconds");
  for (int i = 1; i <= 100; ++i) h->Record(i);
  std::string json = reg.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"p50\":50.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p90\":90.1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":99.01"), std::string::npos) << json;
  std::string text = reg.ToText();
  EXPECT_NE(text.find("p50=50.5"), std::string::npos) << text;
  EXPECT_NE(text.find("p90=90.1"), std::string::npos) << text;
  EXPECT_NE(text.find("p99=99.01"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Tracer + spans
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  {
    TraceSpan span(&tracer, "test.outer");
    TraceSpan inner(&tracer, "test.inner");
  }
  EXPECT_EQ(tracer.size(), 0u);
  // A null tracer is also a no-op.
  TraceSpan null_span(nullptr, "test.null");
}

TEST(TracerTest, SpanNestingDepthAndOrder) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan outer(&tracer, "test.outer", "o");
    {
      TraceSpan mid(&tracer, "test.mid");
      TraceSpan leaf(&tracer, "test.leaf");
    }
    TraceSpan sibling(&tracer, "test.sibling");
  }
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Snapshot is start-ordered: outer first, then mid, leaf, sibling.
  EXPECT_EQ(events[0].name, "test.outer");
  EXPECT_EQ(events[0].detail, "o");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "test.mid");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "test.leaf");
  EXPECT_EQ(events[2].depth, 2);
  EXPECT_EQ(events[3].name, "test.sibling");
  EXPECT_EQ(events[3].depth, 1);
  // Containment: children start and end within the outer span.
  uint64_t outer_end = events[0].start_ns + events[0].dur_ns;
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[0].start_ns);
    EXPECT_LE(events[i].start_ns + events[i].dur_ns, outer_end);
  }
}

TEST(TracerTest, SummaryTreeReflectsNesting) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan outer(&tracer, "test.outer");
    for (int i = 0; i < 3; ++i) {
      TraceSpan child(&tracer, "test.child");
    }
  }
  std::string tree = tracer.SummaryTree();
  // One aggregated line per name; the child folds its 3 calls.
  EXPECT_NE(tree.find("test.outer"), std::string::npos) << tree;
  EXPECT_NE(tree.find("test.child"), std::string::npos) << tree;
  EXPECT_NE(tree.find("3x"), std::string::npos) << tree;
  // The child line is indented under the outer line.
  size_t outer_pos = tree.find("test.outer");
  size_t child_pos = tree.find("  test.child");
  EXPECT_NE(child_pos, std::string::npos) << tree;
  EXPECT_LT(outer_pos, child_pos);
}

TEST(TracerTest, EndIsIdempotentAndExplicit) {
  Tracer tracer;
  tracer.set_enabled(true);
  TraceSpan span(&tracer, "test.once");
  span.End();
  span.End();  // no double-record
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(TracerTest, RingOverwritesOldestAndCountsDrops) {
  Tracer tracer(/*capacity=*/4);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span(&tracer, i % 2 == 0 ? "test.even" : "test.odd");
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // The survivors are the newest 4 events, still start-ordered.
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
  }
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, OverflowSurfacesInDefaultRegistryAndEventLog) {
  // Drop accounting outside the Chrome export (satellite wiring in
  // Tracer::Record): every overwritten span bumps the default-registry
  // "obs.trace_dropped" counter, and the first wrap of an episode warns
  // once into the default event log; Clear() re-arms the warning.
  Counter* drops = DefaultMetrics().counter("obs.trace_dropped");
  EventLog& log = DefaultEventLog();
  const uint64_t drops_before = drops->value();
  const uint64_t events_before = log.total();

  Tracer tracer(/*capacity=*/2);
  tracer.set_enabled(true);
  for (int i = 0; i < 7; ++i) {
    TraceSpan span(&tracer, "test.overflow");
  }
  EXPECT_EQ(tracer.dropped(), 5u);
  EXPECT_EQ(drops->value() - drops_before, 5u);
  // Exactly one wrap warning for the whole episode.
  uint64_t wrap_warnings = 0;
  for (const LogEvent& ev : log.Snapshot()) {
    if (ev.ticket >= events_before && ev.site == "obs.trace") ++wrap_warnings;
  }
  EXPECT_EQ(wrap_warnings, 1u);

  // A cleared tracer warns again on its next wrap.
  tracer.Clear();
  for (int i = 0; i < 3; ++i) {
    TraceSpan span(&tracer, "test.overflow");
  }
  wrap_warnings = 0;
  for (const LogEvent& ev : log.Snapshot()) {
    if (ev.ticket >= events_before && ev.site == "obs.trace") ++wrap_warnings;
  }
  EXPECT_EQ(wrap_warnings, 2u);
}

TEST(TracerTest, ChromeJsonIsWellFormed) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan outer(&tracer, "test.outer", "detail \"quoted\"\n");
    TraceSpan inner(&tracer, "test.inner");
  }
  std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
  // The quoted detail survives escaping.
  EXPECT_NE(json.find("detail \\\"quoted\\\"\\n"), std::string::npos);
}

TEST(TracerTest, MultiThreadedSpansKeepTheirTids) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan main_span(&tracer, "test.main");
    std::thread t([&tracer] { TraceSpan s(&tracer, "test.worker"); });
    t.join();
  }
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  // Each thread starts its own depth at zero.
  for (const TraceEvent& ev : events) EXPECT_EQ(ev.depth, 0);
}

TEST(TraceSpanTest, DisabledSpanAllocatesNothing) {
  Tracer tracer;  // disabled
  std::string detail(64, 'x');  // non-empty, would be copied if enabled
  size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span(&tracer, "test.disabled", detail);
  }
  size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  // Enabled spans DO copy the detail (sanity-check the counter works).
  tracer.set_enabled(true);
  before = g_allocations.load(std::memory_order_relaxed);
  {
    TraceSpan span(&tracer, "test.enabled", detail);
  }
  after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GT(after - before, 0u);
}

}  // namespace
}  // namespace obs
}  // namespace iflex
