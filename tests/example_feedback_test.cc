// Example feedback (paper §5.1.1): marked-up samples prune the answer
// space and reduce simulation work without hurting convergence.
#include <gtest/gtest.h>

#include "assistant/example_feedback.h"
#include "assistant/session.h"
#include "oracle/evaluate.h"
#include "tasks/task.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

TEST(ExampleFeedbackTest, DeriveExclusionsFromSpanExample) {
  Corpus corpus;
  auto doc = ParseMarkup("d", "Price: <b>$42</b> plain text");
  ASSERT_TRUE(doc.ok());
  DocId d = corpus.Add(std::move(doc).value());
  auto registry = CreateDefaultRegistry();
  AttributeRef attr{"extract", 0, "price"};

  // Example: the bold numeric "$42".
  Value example = Value::OfSpan(corpus, Span(d, 7, 10));
  AnswerExclusions ex = DeriveExclusions(corpus, *registry, attr, example);

  Question bold{attr, "bold_font"};
  ASSERT_TRUE(ex.count(bold.Key()));
  // The example IS bold, so "no" is impossible; yes/distinct-yes are not.
  EXPECT_TRUE(ex[bold.Key()].count(FeatureValue::kNo));
  EXPECT_FALSE(ex[bold.Key()].count(FeatureValue::kYes));
  EXPECT_FALSE(ex[bold.Key()].count(FeatureValue::kDistinctYes));

  Question numeric{attr, "numeric"};
  ASSERT_TRUE(ex.count(numeric.Key()));
  EXPECT_TRUE(ex[numeric.Key()].count(FeatureValue::kNo));

  Question italic{attr, "italic_font"};
  ASSERT_TRUE(ex.count(italic.Key()));
  // The example is not italic: yes and distinct-yes are impossible.
  EXPECT_TRUE(ex[italic.Key()].count(FeatureValue::kYes));
  EXPECT_TRUE(ex[italic.Key()].count(FeatureValue::kDistinctYes));
  EXPECT_FALSE(ex[italic.Key()].count(FeatureValue::kNo));
}

TEST(ExampleFeedbackTest, ScalarExampleUsesTextVerification) {
  Corpus corpus;
  auto registry = CreateDefaultRegistry();
  AttributeRef attr{"extract", 0, "count"};
  AnswerExclusions ex =
      DeriveExclusions(corpus, *registry, attr, Value::String("1234"));
  Question numeric{attr, "numeric"};
  ASSERT_TRUE(ex.count(numeric.Key()));
  EXPECT_TRUE(ex[numeric.Key()].count(FeatureValue::kNo));
  // Markup features cannot be judged on a scalar: nothing excluded.
  Question bold{attr, "bold_font"};
  EXPECT_FALSE(ex.count(bold.Key()));
}

TEST(ExampleFeedbackTest, MergeUnionsSets) {
  AnswerExclusions a = {{"k", {FeatureValue::kYes}}};
  AnswerExclusions b = {{"k", {FeatureValue::kNo}},
                        {"j", {FeatureValue::kDistinctYes}}};
  MergeExclusions(&a, b);
  EXPECT_EQ(a["k"].size(), 2u);
  EXPECT_EQ(a["j"].size(), 1u);
}

TEST(ExampleFeedbackTest, SessionWithExamplesStillConvergesWithFewerSims) {
  auto run = [](bool with_examples) {
    auto task = MakeTask("T2", 30).value();
    SessionOptions options;
    options.strategy = StrategyKind::kSimulation;
    options.example_feedback = with_examples;
    RefinementSession session(*task->catalog, task->initial_program,
                              task->developer.get(), options);
    auto result = session.Run();
    EXPECT_TRUE(result.ok()) << result.status();
    EvalReport report = EvaluateResult(*task->corpus, result->final_result,
                                       task->gold.query_result);
    return std::make_tuple(result->simulations_run,
                           result->examples_collected, report.exact);
  };
  auto [sims_plain, examples_plain, exact_plain] = run(false);
  auto [sims_ex, examples_ex, exact_ex] = run(true);
  EXPECT_TRUE(exact_plain);
  EXPECT_TRUE(exact_ex);
  EXPECT_EQ(examples_plain, 0u);
  EXPECT_EQ(examples_ex, 2u);  // title and year
  // Pruned answer space -> fewer simulated executions.
  EXPECT_LT(sims_ex, sims_plain);
}

TEST(CertainTuplesTest, LowerBoundNeverExceedsUpperBound) {
  auto task = MakeTask("T7", 40).value();
  SessionOptions options;
  RefinementSession session(*task->catalog, task->initial_program,
                            task->developer.get(), options);
  auto result = session.Run();
  ASSERT_TRUE(result.ok());
  EvalReport report = EvaluateResult(*task->corpus, result->final_result,
                                     task->gold.query_result);
  EXPECT_LE(report.certain_tuples, report.result_tuples);
  // On a converged clean task the bounds meet at the gold count.
  EXPECT_DOUBLE_EQ(report.certain_tuples,
                   static_cast<double>(report.gold_tuples));
}

}  // namespace
}  // namespace iflex
