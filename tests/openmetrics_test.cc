// OpenMetrics / Prometheus text exposition (src/obs/openmetrics.h):
// naming, type lines, counter/gauge/histogram series shapes, label
// escaping, and the `# EOF` terminator that bench/check_regression.py's
// validator requires.
#include "obs/openmetrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace iflex {
namespace obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(OpenMetricsTest, CounterExportsAsSuffixedTotal) {
  MetricRegistry reg;
  reg.counter("exec.join_pairs")->Add(42);
  std::string text = ToOpenMetrics(reg);
  EXPECT_NE(text.find("# TYPE iflex_exec_join_pairs counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("iflex_exec_join_pairs_total 42\n"), std::string::npos)
      << text;
}

TEST(OpenMetricsTest, GaugeExportsVerbatim) {
  MetricRegistry reg;
  reg.gauge("exec.result_size")->Set(12.5);
  std::string text = ToOpenMetrics(reg);
  EXPECT_NE(text.find("# TYPE iflex_exec_result_size gauge\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("iflex_exec_result_size 12.5\n"), std::string::npos)
      << text;
}

TEST(OpenMetricsTest, SharedLabelsOnEverySample) {
  MetricRegistry reg;
  reg.counter("a.count")->Add(1);
  reg.gauge("b.gauge")->Set(2);
  OpenMetricsOptions options;
  options.labels["run_id"] = "r1";
  options.labels["threads"] = "4";
  std::string text = ToOpenMetrics(reg, options);
  EXPECT_NE(
      text.find("iflex_a_count_total{run_id=\"r1\",threads=\"4\"} 1\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("iflex_b_gauge{run_id=\"r1\",threads=\"4\"} 2\n"),
            std::string::npos)
      << text;
}

TEST(OpenMetricsTest, LabelValuesAreEscaped) {
  MetricRegistry reg;
  reg.counter("c")->Add(1);
  OpenMetricsOptions options;
  options.labels["scenario"] = "quote\" slash\\ line\nend";
  std::string text = ToOpenMetrics(reg, options);
  EXPECT_NE(text.find("scenario=\"quote\\\" slash\\\\ line\\nend\""),
            std::string::npos)
      << text;
}

TEST(OpenMetricsTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  MetricRegistry reg;
  Histogram* h = reg.histogram("lat.seconds");
  h->Record(5e-4);   // <= 1e-3
  h->Record(5e-4);
  h->Record(2.0);    // <= 1e1
  h->Record(500.0);  // <= 1e3
  std::string text = ToOpenMetrics(reg);
  EXPECT_NE(text.find("# TYPE iflex_lat_seconds histogram\n"),
            std::string::npos)
      << text;
  // Cumulative counts over the fixed log-scale bounds.
  EXPECT_NE(text.find("iflex_lat_seconds_bucket{le=\"1e-04\"} 0\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("iflex_lat_seconds_bucket{le=\"1e-03\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("iflex_lat_seconds_bucket{le=\"1e+01\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("iflex_lat_seconds_bucket{le=\"1e+03\"} 4\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("iflex_lat_seconds_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("iflex_lat_seconds_count 4\n"), std::string::npos)
      << text;
  bool found_sum = false;
  for (const std::string& line : Lines(text)) {
    if (line.rfind("iflex_lat_seconds_sum ", 0) != 0) continue;
    found_sum = true;
    EXPECT_NEAR(std::stod(line.substr(line.rfind(' ') + 1)), 502.001, 1e-9)
        << line;
  }
  EXPECT_TRUE(found_sum) << text;
  // Monotonicity across every bucket line, scraped mechanically.
  double last = 0;
  for (const std::string& line : Lines(text)) {
    if (line.rfind("iflex_lat_seconds_bucket", 0) != 0) continue;
    double v = std::stod(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(v, last) << line;
    last = v;
  }
}

TEST(OpenMetricsTest, InfBucketCoversObservationsPastTheReservoir) {
  // The finite buckets come from the retained reservoir; the +Inf bucket
  // and _count are the exact count, so they stay authoritative when the
  // reservoir saturates.
  MetricRegistry reg;
  Histogram* h = reg.histogram("x");
  for (int i = 0; i < 10; ++i) h->Record(0.5);
  std::string text = ToOpenMetrics(reg);
  EXPECT_NE(text.find("iflex_x_bucket{le=\"+Inf\"} 10\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("iflex_x_count 10\n"), std::string::npos) << text;
}

TEST(OpenMetricsTest, ExpositionEndsWithEof) {
  MetricRegistry reg;
  reg.counter("a")->Add(1);
  std::string text = ToOpenMetrics(reg);
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  // Also on an empty registry.
  MetricRegistry empty;
  EXPECT_EQ(ToOpenMetrics(empty), "# EOF\n");
}

TEST(OpenMetricsTest, WriteRoundTripsThroughAFile) {
  MetricRegistry reg;
  reg.counter("exec.rules")->Add(7);
  reg.histogram("iter.seconds")->Record(0.25);
  OpenMetricsOptions options;
  options.labels["scenario"] = "roundtrip";
  std::string path = ::testing::TempDir() + "/openmetrics_test.om";
  ASSERT_TRUE(WriteOpenMetrics(reg, path, options));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), ToOpenMetrics(reg, options));
  std::remove(path.c_str());
}

TEST(OpenMetricsTest, DottedNamesSanitizeToUnderscores) {
  MetricRegistry reg;
  reg.counter("sim.exec.cache-hits")->Add(1);
  std::string text = ToOpenMetrics(reg);
  EXPECT_NE(text.find("iflex_sim_exec_cache_hits_total 1\n"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace obs
}  // namespace iflex
