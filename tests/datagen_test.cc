#include <gtest/gtest.h>

#include <set>

#include "common/strutil.h"
#include "datagen/books.h"
#include "datagen/builder.h"
#include "datagen/dblife.h"
#include "datagen/dblp.h"
#include "datagen/movies.h"
#include "datagen/names.h"

namespace iflex {
namespace {

TEST(PageBuilderTest, TracksSpansExactly) {
  Corpus corpus;
  PageBuilder b("p");
  auto r1 = b.Append("Price: ");
  auto r2 = b.AppendMarked("$42", MarkupKind::kBold);
  b.Newline();
  DocId d = b.Finish(&corpus);
  const Document& doc = corpus.Get(d);
  EXPECT_EQ(doc.TextOf(Span(d, r1.first, r1.second)), "Price: ");
  EXPECT_EQ(doc.TextOf(Span(d, r2.first, r2.second)), "$42");
  EXPECT_TRUE(doc.layer(MarkupKind::kBold).CoversDistinctly(r2.first, r2.second));
}

TEST(NamesTest, Determinism) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(MakeMovieTitle(&a), MakeMovieTitle(&b));
  }
}

TEST(NamesTest, DistinctStringsAreDistinct) {
  Rng rng(9);
  auto titles = DistinctStrings(&rng, 500, MakeMovieTitle);
  std::set<std::string> set(titles.begin(), titles.end());
  EXPECT_EQ(set.size(), titles.size());
  EXPECT_EQ(titles.size(), 500u);
}

TEST(NamesTest, ProseIsLowercaseAndNonNumeric) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    std::string prose = MakeProse(&rng, 10);
    for (const std::string& w : Split(prose, ' ')) {
      EXPECT_FALSE(w.empty());
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(w[0]))) << w;
      EXPECT_FALSE(IsLooseNumber(w)) << w;
    }
  }
}

TEST(MoviesGenTest, CountsAndSpans) {
  Corpus corpus;
  MoviesSpec spec;
  spec.n_imdb = 25;
  spec.n_ebert = 20;
  spec.n_prasanna = 30;
  spec.n_shared = 5;
  MoviesData data = GenerateMovies(&corpus, spec);
  ASSERT_EQ(data.imdb.size(), 25u);
  ASSERT_EQ(data.ebert.size(), 20u);
  ASSERT_EQ(data.prasanna.size(), 30u);
  for (const MovieRecord& m : data.imdb) {
    EXPECT_EQ(corpus.TextOf(m.title_span), m.title);
    EXPECT_EQ(std::string(corpus.TextOf(m.votes_span)),
              StringPrintf("%d", m.votes));
    // Votes always dominate year/rating/rank distractors.
    EXPECT_GT(m.votes, 3000);
    // The title is distinctly italic.
    const Document& doc = corpus.Get(m.doc);
    EXPECT_TRUE(doc.layer(MarkupKind::kItalic)
                    .CoversDistinctly(m.title_span.begin, m.title_span.end));
  }
  for (const MovieRecord& m : data.ebert) {
    EXPECT_EQ(corpus.TextOf(m.title_span), m.title);
    EXPECT_EQ(std::string(corpus.TextOf(m.year_span)),
              StringPrintf("%d", m.year));
  }
}

TEST(MoviesGenTest, SharedTitlesAppearInAllLists) {
  Corpus corpus;
  MoviesSpec spec;
  spec.n_imdb = 30;
  spec.n_ebert = 30;
  spec.n_prasanna = 30;
  spec.n_shared = 7;
  MoviesData data = GenerateMovies(&corpus, spec);
  std::set<std::string> imdb, ebert, prasanna;
  for (const auto& m : data.imdb) imdb.insert(m.title);
  for (const auto& m : data.ebert) ebert.insert(m.title);
  for (const auto& m : data.prasanna) prasanna.insert(m.title);
  size_t in_all = 0;
  for (const auto& t : imdb) {
    if (ebert.count(t) && prasanna.count(t)) ++in_all;
  }
  EXPECT_EQ(in_all, 7u);
}

TEST(DblpGenTest, JournalAndShortFractions) {
  Corpus corpus;
  DblpSpec spec;
  spec.n_garcia = 40;
  spec.n_vldb = 50;
  spec.n_sigmod = 30;
  spec.n_icde = 30;
  spec.n_shared_teams = 8;
  DblpData data = GenerateDblp(&corpus, spec);
  size_t journals = 0;
  for (const auto& p : data.garcia) {
    if (p.is_journal) {
      ++journals;
      EXPECT_EQ(std::string(corpus.TextOf(p.journal_year_span)),
                StringPrintf("%d", p.year));
    }
  }
  EXPECT_EQ(journals, 14u);  // 35% of 40

  size_t shorts = 0;
  for (const auto& p : data.vldb) {
    EXPECT_GE(p.last_page, p.first_page);
    if (p.last_page < p.first_page + 5) ++shorts;
    EXPECT_EQ(std::string(corpus.TextOf(p.first_page_span)),
              StringPrintf("%d", p.first_page));
    EXPECT_EQ(std::string(corpus.TextOf(p.last_page_span)),
              StringPrintf("%d", p.last_page));
  }
  EXPECT_EQ(shorts, 10u);  // 20% of 50
}

TEST(DblpGenTest, SharedTeamsMatchExactly) {
  Corpus corpus;
  DblpSpec spec;
  spec.n_garcia = 0;
  spec.n_vldb = 0;
  spec.n_sigmod = 20;
  spec.n_icde = 20;
  spec.n_shared_teams = 6;
  DblpData data = GenerateDblp(&corpus, spec);
  std::set<std::string> icde_teams;
  for (const auto& p : data.icde) icde_teams.insert(p.authors);
  size_t shared = 0;
  for (const auto& p : data.sigmod) {
    shared += icde_teams.count(p.authors);
  }
  EXPECT_EQ(shared, 6u);
}

TEST(BooksGenTest, PricesAndFractions) {
  Corpus corpus;
  BooksSpec spec;
  spec.n_amazon = 40;
  spec.n_barnes = 50;
  spec.n_shared = 10;
  BooksData data = GenerateBooks(&corpus, spec);
  size_t expensive = 0;
  for (const auto& b : data.barnes) {
    if (b.bn_price > 100) ++expensive;
    EXPECT_EQ(std::string(corpus.TextOf(b.bn_price_span)),
              StringPrintf("$%.2f", b.bn_price));
  }
  EXPECT_EQ(expensive, 10u);  // 20% of 50

  size_t deals = 0;
  for (const auto& b : data.amazon) {
    if (b.list_price == b.new_price && b.used_price < b.new_price) ++deals;
    EXPECT_EQ(std::string(corpus.TextOf(b.new_price_span)),
              StringPrintf("$%.2f", b.new_price));
  }
  EXPECT_EQ(deals, 8u);  // 20% of 40

  // Shared titles align by index in both stores.
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(data.amazon[i].title, data.barnes[i].title);
  }
}

TEST(DblifeGenTest, PagesCarryStructure) {
  Corpus corpus;
  DblifeSpec spec;
  spec.n_conferences = 10;
  spec.n_homepages = 10;
  spec.n_distractors = 15;
  DblifeData data = GenerateDblife(&corpus, spec);
  EXPECT_EQ(data.all_docs.size(), 35u);
  for (const auto& page : data.conferences) {
    EXPECT_FALSE(page.panelists.empty());
    EXPECT_EQ(corpus.TextOf(page.conf_span), page.conference);
    const Document& doc = corpus.Get(page.doc);
    // The conference name is bold inside the title.
    EXPECT_TRUE(doc.layer(MarkupKind::kTitle)
                    .Covers(page.conf_span.begin, page.conf_span.end));
    EXPECT_TRUE(doc.layer(MarkupKind::kBold)
                    .Covers(page.conf_span.begin, page.conf_span.end));
    for (const auto& p : page.panelists) {
      EXPECT_EQ(corpus.TextOf(p.span), p.name);
      auto label = doc.PrecedingLabel(p.span.begin);
      ASSERT_TRUE(label.has_value());
      EXPECT_TRUE(ContainsIgnoreCase(doc.TextOf(*label), "panel"));
    }
    for (const auto& c : page.chairs) {
      EXPECT_EQ(corpus.TextOf(c.span), c.name);
      auto label = doc.PrecedingLabel(c.span.begin);
      ASSERT_TRUE(label.has_value());
      EXPECT_TRUE(ContainsIgnoreCase(doc.TextOf(*label), "chair"));
    }
  }
  for (const auto& page : data.homepages) {
    EXPECT_EQ(corpus.TextOf(page.owner_span), page.owner);
    for (const auto& p : page.projects) {
      EXPECT_EQ(corpus.TextOf(p.span), p.name);
    }
  }
}

TEST(GenDeterminismTest, SameSeedSameCorpus) {
  Corpus c1, c2;
  MoviesSpec spec;
  spec.n_imdb = 15;
  spec.n_ebert = 15;
  spec.n_prasanna = 15;
  MoviesData d1 = GenerateMovies(&c1, spec);
  MoviesData d2 = GenerateMovies(&c2, spec);
  ASSERT_EQ(c1.size(), c2.size());
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1.Get(static_cast<DocId>(i)).text(),
              c2.Get(static_cast<DocId>(i)).text());
  }
}

}  // namespace
}  // namespace iflex
