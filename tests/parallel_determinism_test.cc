// Parallel execution must be a pure scheduling change: at 1, 2, or 8
// threads — and at any morsel size — the executor (morsel-driven
// extraction) and the assistant (concurrent simulation) must produce
// byte-identical results to the serial run. These tests oversubscribe a
// small machine happily — the determinism contract is thread-count and
// morsel-size independent by construction (docs/RUNTIME.md).
#include <gtest/gtest.h>

#include <string>

#include "assistant/session.h"
#include "exec/executor.h"
#include "resilience/deadline.h"
#include "runtime/task_pool.h"
#include "tasks/task.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

// The paper's running example (Figures 1-3), as in paper_example_test.
constexpr char kProgram[] = R"(
  houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(x, p, a, h).
  schools(s)? :- schoolPages(y), extractSchools(y, s).
  q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500,
                   approx_match(h, s).
  extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h),
                               numeric(p) = yes, numeric(a) = yes.
  extractSchools(y, s) :- from(y, s), bold_font(s) = yes.
)";

class PaperExampleDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto x1 = ParseMarkup("x1",
                          "Price: <b>$351,000</b>\n"
                          "Cozy house on quiet street\n"
                          "5146 Windsor Ave, Champaign\n"
                          "Sqft: 2750\n"
                          "High school: Vanhise High");
    auto x2 = ParseMarkup("x2",
                          "Price: <b>$619,000</b>\n"
                          "Amazing house in great location\n"
                          "3112 Stonecreek Blvd, Cherry Hills\n"
                          "Sqft: 4700\n"
                          "High school: Basktall HS");
    auto y1 = ParseMarkup("y1",
                          "Top High Schools and Location (page 1)\n"
                          "<b>Basktall</b>, Cherry Hills\n"
                          "<b>Franklin</b>, Robeson\n"
                          "<b>Vanhise</b>, Champaign");
    auto y2 = ParseMarkup("y2",
                          "Top High Schools and Location (page 2)\n"
                          "<b>Hoover</b>, Akron\n"
                          "<b>Ossage</b>, Lynneville");
    for (auto* d : {&x1, &x2, &y1, &y2}) ASSERT_TRUE(d->ok());
    std::vector<DocId> houses_docs = {corpus_.Add(std::move(x1).value()),
                                      corpus_.Add(std::move(x2).value())};
    std::vector<DocId> school_docs = {corpus_.Add(std::move(y1).value()),
                                      corpus_.Add(std::move(y2).value())};

    catalog_ = std::make_unique<Catalog>(&corpus_);
    CompactTable houses({"x"});
    for (DocId d : houses_docs) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      houses.Add(t);
    }
    ASSERT_TRUE(catalog_->AddTable("housePages", std::move(houses)).ok());
    CompactTable schools({"y"});
    for (DocId d : school_docs) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      schools.Add(t);
    }
    ASSERT_TRUE(catalog_->AddTable("schoolPages", std::move(schools)).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractHouses", 1, 3).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractSchools", 1, 1).ok());
    catalog_->RegisterBuiltinFunctions(/*similarity_threshold=*/0.4);
  }

  Corpus corpus_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(PaperExampleDeterminismTest, ExecutionIsIdenticalAtAnyThreadCount) {
  auto prog = ParseProgram(kProgram, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("q");

  Executor serial(*catalog_);
  auto base = serial.Execute(*prog);
  ASSERT_TRUE(base.ok()) << base.status();
  const std::string expected = base->ToString(&corpus_);
  const size_t expected_assignments = serial.stats().process_assignments;

  // The resilience machinery is armed (far deadline, live cancellation
  // token, best-effort isolation) but never triggered: it must be a pure
  // observer — byte-identical results, no degradation.
  resilience::CancellationSource cancel_source;
  const resilience::CancellationToken cancel_token = cancel_source.token();
  for (size_t threads : {1, 2, 8}) {
    runtime::TaskPool pool(threads);
    ExecOptions options;
    options.pool = &pool;
    options.deadline = resilience::Deadline::AfterMillis(60 * 60 * 1000);
    options.cancel = &cancel_token;
    options.best_effort = true;
    Executor exec(*catalog_, options);
    auto r = exec.Execute(*prog);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->ToString(&corpus_), expected) << threads << " threads";
    EXPECT_EQ(exec.stats().process_assignments, expected_assignments)
        << threads << " threads";
    EXPECT_FALSE(exec.report().degraded) << threads << " threads";
    // Every intermediate table must match too, not just the query's.
    ASSERT_EQ(exec.last_idb().size(), serial.last_idb().size());
    for (const auto& [pred, table] : serial.last_idb()) {
      auto it = exec.last_idb().find(pred);
      ASSERT_NE(it, exec.last_idb().end()) << pred;
      EXPECT_EQ(it->second.ToString(&corpus_), table.ToString(&corpus_))
          << pred << " at " << threads << " threads";
    }
  }
}

// Morsel-size sweep: the morsel is a scheduling unit, never a semantic
// one. From one-document morsels (maximum scheduling freedom) to morsels
// larger than any table (the whole body is a single work unit), every
// thread count must reproduce the serial bytes — including every
// intermediate table.
TEST_F(PaperExampleDeterminismTest, MorselSizeNeverChangesTheResult) {
  auto prog = ParseProgram(kProgram, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("q");

  Executor serial(*catalog_);
  auto base = serial.Execute(*prog);
  ASSERT_TRUE(base.ok()) << base.status();
  const std::string expected = base->ToString(&corpus_);
  const size_t expected_assignments = serial.stats().process_assignments;

  for (size_t threads : {1, 2, 8}) {
    runtime::TaskPool pool(threads);
    for (size_t morsel_docs : {1, 64, 4096}) {
      ExecOptions options;
      options.pool = &pool;
      options.morsel_docs = morsel_docs;
      Executor exec(*catalog_, options);
      auto r = exec.Execute(*prog);
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(r->ToString(&corpus_), expected)
          << threads << " threads, morsel_docs " << morsel_docs;
      EXPECT_EQ(exec.stats().process_assignments, expected_assignments)
          << threads << " threads, morsel_docs " << morsel_docs;
      ASSERT_EQ(exec.last_idb().size(), serial.last_idb().size());
      for (const auto& [pred, table] : serial.last_idb()) {
        auto it = exec.last_idb().find(pred);
        ASSERT_NE(it, exec.last_idb().end()) << pred;
        EXPECT_EQ(it->second.ToString(&corpus_), table.ToString(&corpus_))
            << pred << " at " << threads << " threads, morsel_docs "
            << morsel_docs;
      }
    }
  }
}

// A DBLife-style program (Table 6 "Panel" task) over a generated corpus:
// morsel-driven extraction over the docs table must be byte-identical
// to serial at every thread count.
TEST(DblifeDeterminismTest, PanelExtractionIsIdenticalAtAnyThreadCount) {
  auto serial_task = MakeTask("Panel", 40);
  ASSERT_TRUE(serial_task.ok()) << serial_task.status();
  Executor serial(*(*serial_task)->catalog);
  auto base = serial.Execute((*serial_task)->initial_program);
  ASSERT_TRUE(base.ok()) << base.status();
  const std::string expected =
      base->ToString((*serial_task)->corpus.get());
  ASSERT_FALSE(expected.empty());
  const size_t expected_assignments = serial.stats().process_assignments;

  for (size_t threads : {1, 2, 8}) {
    // Fresh task instance per thread count: generation is seeded, so the
    // corpora are identical; what varies is only the scheduling shape.
    auto task = MakeTask("Panel", 40);
    ASSERT_TRUE(task.ok()) << task.status();
    runtime::TaskPool pool(threads);
    // The 40-document seed table carves into 40 / 1 / 1 morsels.
    for (size_t morsel_docs : {1, 64, 4096}) {
      ExecOptions options;
      options.pool = &pool;
      options.morsel_docs = morsel_docs;
      Executor exec(*(*task)->catalog, options);
      auto r = exec.Execute((*task)->initial_program);
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(r->ToString((*task)->corpus.get()), expected)
          << threads << " threads, morsel_docs " << morsel_docs;
      EXPECT_EQ(exec.stats().process_assignments, expected_assignments)
          << threads << " threads, morsel_docs " << morsel_docs;
    }
  }
}

// Differential fast-path check (docs/PERFORMANCE.md): the interned
// pipeline — hash equi-join, Verify memo, token-id similarity — must be
// byte-identical to the legacy tri-state scan path at every thread
// count. The legacy reference is forced exactly the way the
// IFLEX_DISABLE_FASTPATH environment variable forces it: by clearing
// ExecOptions::enable_fast_path.
TEST(DblifeDeterminismTest, FastPathIsIdenticalToLegacyAtAnyThreadCount) {
  auto legacy_task = MakeTask("Panel", 40);
  ASSERT_TRUE(legacy_task.ok()) << legacy_task.status();
  ExecOptions legacy_options;
  legacy_options.enable_fast_path = false;
  Executor legacy(*(*legacy_task)->catalog, legacy_options);
  auto base = legacy.Execute((*legacy_task)->initial_program);
  ASSERT_TRUE(base.ok()) << base.status();
  const std::string expected =
      base->ToString((*legacy_task)->corpus.get());
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(legacy.stats().join_probes, 0u);
  EXPECT_EQ(legacy.stats().verify_memo_hits, 0u);

  for (size_t threads : {1, 2, 8}) {
    auto task = MakeTask("Panel", 40);
    ASSERT_TRUE(task.ok()) << task.status();
    runtime::TaskPool pool(threads);
    ExecOptions options;
    options.pool = &pool;
    options.enable_fast_path = true;
    Executor exec(*(*task)->catalog, options);
    auto r = exec.Execute((*task)->initial_program);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->ToString((*task)->corpus.get()), expected)
        << threads << " threads";
    // Every intermediate table must match too, not just the query's.
    ASSERT_EQ(exec.last_idb().size(), legacy.last_idb().size());
    for (const auto& [pred, table] : legacy.last_idb()) {
      auto it = exec.last_idb().find(pred);
      ASSERT_NE(it, exec.last_idb().end()) << pred;
      EXPECT_EQ(it->second.ToString((*task)->corpus.get()),
                table.ToString((*legacy_task)->corpus.get()))
          << pred << " at " << threads << " threads";
    }
  }
}

// End-to-end: a whole refinement session — subset executions, concurrent
// candidate simulations, question selection, reuse-mode full evaluation —
// must make the same decisions and produce the same final table with a
// pool as without.
TEST(SessionDeterminismTest, RefinementSessionIsIdenticalWithPool) {
  auto run_session = [](runtime::TaskPool* pool, bool fast_path = true)
      -> Result<std::pair<std::string, std::pair<size_t, size_t>>> {
    IFLEX_ASSIGN_OR_RETURN(auto task, MakeTask("T1", 10));
    SessionOptions options;
    options.strategy = StrategyKind::kSimulation;
    options.pool = pool;
    options.exec_options.enable_fast_path = fast_path;
    RefinementSession session(*task->catalog, task->initial_program,
                              task->developer.get(), options);
    IFLEX_ASSIGN_OR_RETURN(SessionResult result, session.Run());
    return std::make_pair(
        result.final_result.ToString(task->corpus.get()),
        std::make_pair(result.questions_asked, result.simulations_run));
  };

  auto serial = run_session(nullptr);
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (size_t threads : {2, 8}) {
    runtime::TaskPool pool(threads);
    auto parallel = run_session(&pool);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(parallel->first, serial->first) << threads << " threads";
    EXPECT_EQ(parallel->second.first, serial->second.first)
        << "questions_asked at " << threads << " threads";
    EXPECT_EQ(parallel->second.second, serial->second.second)
        << "simulations_run at " << threads << " threads";
  }

  // The whole session must also be insensitive to the interned fast
  // paths: same final table, same questions, same simulation count with
  // the session-scoped Verify memo and hash joins disabled.
  auto legacy = run_session(nullptr, /*fast_path=*/false);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_EQ(legacy->first, serial->first);
  EXPECT_EQ(legacy->second, serial->second);
}

}  // namespace
}  // namespace iflex
