#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>

#include "exec/executor.h"
#include "resilience/deadline.h"
#include "resilience/failpoint.h"
#include "resilience/report.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

using resilience::CancellationSource;
using resilience::CancellationToken;
using resilience::Deadline;
using resilience::ExecReport;
using resilience::FailPoints;
using resilience::StopPoller;

// ----------------------------------------------------------------- Deadline

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.IsNever());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(std::isinf(d.RemainingSeconds()));
  EXPECT_EQ(d, Deadline::Never());
}

TEST(DeadlineTest, AfterMillisExpires) {
  Deadline d = Deadline::AfterMillis(1);
  EXPECT_FALSE(d.IsNever());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.Expired());
  EXPECT_LT(d.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, SoonerPicksTighterBound) {
  Deadline never = Deadline::Never();
  Deadline soon = Deadline::AfterMillis(10);
  Deadline later = Deadline::AfterMillis(100000);
  EXPECT_EQ(Deadline::Sooner(never, soon), soon);
  EXPECT_EQ(Deadline::Sooner(soon, never), soon);
  EXPECT_EQ(Deadline::Sooner(soon, later), soon);
  EXPECT_EQ(Deadline::Sooner(never, never), never);
}

// ------------------------------------------------------------- Cancellation

TEST(CancellationTest, DefaultTokenNeverCancels) {
  CancellationToken t;
  EXPECT_FALSE(t.CanBeCancelled());
  EXPECT_FALSE(t.Cancelled());
}

TEST(CancellationTest, SourceCancelsItsTokens) {
  CancellationSource src;
  CancellationToken t = src.token();
  EXPECT_TRUE(t.CanBeCancelled());
  EXPECT_FALSE(t.Cancelled());
  src.Cancel();
  EXPECT_TRUE(t.Cancelled());
  EXPECT_TRUE(src.Cancelled());
}

TEST(CancellationTest, HierarchyCancelsDownNotUp) {
  CancellationSource parent;
  CancellationSource child(parent.token());
  CancellationToken ct = child.token();

  // Cancelling the parent request cancels every sub-operation...
  parent.Cancel();
  EXPECT_TRUE(ct.Cancelled());

  // ...but a cancelled child never propagates up to its parent.
  CancellationSource parent2;
  CancellationSource child2(parent2.token());
  child2.Cancel();
  EXPECT_TRUE(child2.token().Cancelled());
  EXPECT_FALSE(parent2.token().Cancelled());
}

// -------------------------------------------------------------- StopPoller

TEST(StopPollerTest, UnarmedIsAlwaysOk) {
  StopPoller p(Deadline::Never(), nullptr);
  EXPECT_FALSE(p.armed());
  EXPECT_TRUE(p.Check("op").ok());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(p.Poll("op").ok());
}

TEST(StopPollerTest, ReportsDeadlineExceeded) {
  StopPoller p(Deadline::AfterMillis(-1), nullptr);
  EXPECT_TRUE(p.armed());
  Status st = p.Check("myop");
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(st.message().find("myop"), std::string::npos);
  EXPECT_TRUE(st.IsStop());
}

TEST(StopPollerTest, CancelWinsOverDeadline) {
  CancellationSource src;
  src.Cancel();
  CancellationToken t = src.token();
  // Both bounds tripped: cancellation is the more specific outcome.
  StopPoller p(Deadline::AfterMillis(-1), &t);
  EXPECT_EQ(p.Check("op").code(), StatusCode::kCancelled);
}

TEST(StopPollerTest, PollIsStrided) {
  CancellationSource src;
  CancellationToken t = src.token();
  StopPoller p(Deadline::Never(), &t, /*stride=*/4);
  src.Cancel();
  // Polls 1-3 skip the full check; poll 4 performs it.
  EXPECT_TRUE(p.Poll("op").ok());
  EXPECT_TRUE(p.Poll("op").ok());
  EXPECT_TRUE(p.Poll("op").ok());
  EXPECT_EQ(p.Poll("op").code(), StatusCode::kCancelled);
}

// -------------------------------------------------------------- FailPoints

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::Instance().Clear(); }
};

TEST_F(FailPointTest, InactiveByDefault) {
  EXPECT_FALSE(FailPoints::Active());
  EXPECT_TRUE(resilience::FailPointStatus("nowhere").ok());
  EXPECT_FALSE(resilience::FailPointFired("nowhere"));
  EXPECT_NO_THROW(resilience::FailPointMaybeThrow("nowhere"));
}

TEST_F(FailPointTest, ErrorClauseFires) {
  ASSERT_TRUE(FailPoints::Instance().Configure("my.site=error").ok());
  EXPECT_TRUE(FailPoints::Active());
  Status st = resilience::FailPointStatus("my.site");
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
  EXPECT_NE(st.message().find("my.site"), std::string::npos);
  // Other sites stay silent.
  EXPECT_TRUE(resilience::FailPointStatus("other.site").ok());
  EXPECT_EQ(FailPoints::Instance().HitCount("my.site"), 1u);
}

TEST_F(FailPointTest, EveryKFiresDeterministically) {
  ASSERT_TRUE(FailPoints::Instance().Configure("s=error|every:3").ok());
  EXPECT_FALSE(resilience::FailPointFired("s"));  // hit 1
  EXPECT_FALSE(resilience::FailPointFired("s"));  // hit 2
  EXPECT_TRUE(resilience::FailPointFired("s"));   // hit 3
  EXPECT_FALSE(resilience::FailPointFired("s"));  // hit 4
  EXPECT_FALSE(resilience::FailPointFired("s"));  // hit 5
  EXPECT_TRUE(resilience::FailPointFired("s"));   // hit 6
  EXPECT_EQ(FailPoints::Instance().HitCount("s"), 6u);
}

TEST_F(FailPointTest, ThrowChannel) {
  ASSERT_TRUE(FailPoints::Instance().Configure("t=error").ok());
  EXPECT_THROW(resilience::FailPointMaybeThrow("t"),
               resilience::FailPointError);
}

TEST_F(FailPointTest, DelayOnlyClauseIsNotAnError) {
  ASSERT_TRUE(FailPoints::Instance().Configure("d=delay:1").ok());
  EXPECT_TRUE(resilience::FailPointStatus("d").ok());
  EXPECT_EQ(FailPoints::Instance().HitCount("d"), 1u);
}

TEST_F(FailPointTest, MultipleSitesAndArmedListing) {
  ASSERT_TRUE(
      FailPoints::Instance().Configure("a=error,b=delay:1|every:2").ok());
  auto armed = FailPoints::Instance().ArmedSites();
  ASSERT_EQ(armed.size(), 2u);
  EXPECT_EQ(armed[0], "a");
  EXPECT_EQ(armed[1], "b");
  FailPoints::Instance().Clear();
  EXPECT_FALSE(FailPoints::Active());
  EXPECT_TRUE(FailPoints::Instance().ArmedSites().empty());
}

TEST_F(FailPointTest, BadSpecsRejectedAndKeepPreviousConfig) {
  ASSERT_TRUE(FailPoints::Instance().Configure("keep=error").ok());
  EXPECT_FALSE(FailPoints::Instance().Configure("no-equals").ok());
  EXPECT_FALSE(FailPoints::Instance().Configure("s=bogus").ok());
  EXPECT_FALSE(FailPoints::Instance().Configure("s=delay:-4").ok());
  EXPECT_FALSE(FailPoints::Instance().Configure("s=every:0").ok());
  EXPECT_FALSE(FailPoints::Instance().Configure("s=every:2").ok())
      << "every without error/delay has nothing to do";
  // The good configuration survived every rejected one.
  EXPECT_FALSE(resilience::FailPointStatus("keep").ok());
}

// -------------------------------------------------------------- ExecReport

TEST(ExecReportTest, RecordsAndFlags) {
  ExecReport r;
  EXPECT_FALSE(r.degraded);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.EventCount(), 0u);
  EXPECT_EQ(r.ToString(), "ok");

  r.AddFailedDoc(7);
  r.AddFailedInput();
  r.AddSkippedRule("q: boom");
  r.AddTruncation("join output truncated to 10 tuples");
  EXPECT_TRUE(r.degraded);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.EventCount(), 4u);
  std::string s = r.ToString();
  EXPECT_NE(s.find("degraded"), std::string::npos);
  EXPECT_NE(s.find("2 doc(s)/input(s) failed"), std::string::npos);
  EXPECT_NE(s.find("1 rule(s) skipped"), std::string::npos);
  EXPECT_NE(s.find("1 truncation(s)"), std::string::npos);

  ExecReport other;
  other.AddFailedDoc(9);
  r.Merge(other);
  EXPECT_EQ(r.failed_docs.size(), 2u);
  EXPECT_EQ(r.EventCount(), 5u);

  r.Clear();
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.EventCount(), 0u);
}

// -------------------------------------------- executor integration (no
// faults injected here; chaos_test drives the fail-point suite)

class ResilientExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto p1 = ParseMarkup("page1", "Price: <b>$250,000</b> Sqft: 2000");
    auto p2 = ParseMarkup("page2", "Price: <b>$619,000</b> Sqft: 4700");
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE(p2.ok());
    d1_ = corpus_.Add(std::move(p1).value());
    d2_ = corpus_.Add(std::move(p2).value());
    catalog_ = std::make_unique<Catalog>(&corpus_);
    CompactTable pages({"x"});
    for (DocId d : {d1_, d2_}) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      pages.Add(t);
    }
    ASSERT_TRUE(catalog_->AddTable("pages", std::move(pages)).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractPrice", 1, 1).ok());
    catalog_->RegisterBuiltinFunctions();
  }

  Result<Program> Parse() {
    const char* src = R"(
      q(x, p) :- pages(x), extractPrice(x, p).
      extractPrice(x, p) :- from(x, p), numeric(p) = yes,
                            bold_font(p) = yes.
    )";
    IFLEX_ASSIGN_OR_RETURN(Program prog, ParseProgram(src, *catalog_));
    prog.set_query("q");
    return prog;
  }

  Corpus corpus_;
  DocId d1_ = 0, d2_ = 0;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(ResilientExecTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  ExecOptions options;
  options.deadline = Deadline::AfterMillis(-1);
  Executor exec(*catalog_, options);
  auto result = exec.Execute(*prog);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(exec.metrics().counter("resilience.deadline_exceeded")->value(),
            1u);
}

TEST_F(ResilientExecTest, CancelledTokenReturnsCancelled) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  CancellationSource src;
  src.Cancel();
  CancellationToken token = src.token();
  ExecOptions options;
  options.cancel = &token;
  Executor exec(*catalog_, options);
  auto result = exec.Execute(*prog);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(exec.metrics().counter("resilience.cancelled")->value(), 1u);
}

TEST_F(ResilientExecTest, ArmedButUntriggeredBoundsChangeNothing) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());

  Executor plain(*catalog_);
  auto base = plain.Execute(*prog);
  ASSERT_TRUE(base.ok());

  CancellationSource src;  // never cancelled
  CancellationToken token = src.token();
  ExecOptions options;
  options.deadline = Deadline::AfterMillis(1000000);
  options.cancel = &token;
  options.best_effort = true;
  Executor exec(*catalog_, options);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(&corpus_), base->ToString(&corpus_));
  EXPECT_FALSE(exec.report().degraded);
}

TEST_F(ResilientExecTest, BudgetOverrunErrorsByDefault) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  ExecOptions options;
  options.max_table_tuples = 1;  // two pages exceed this immediately
  Executor exec(*catalog_, options);
  auto result = exec.Execute(*prog);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(result.status().message().find("max_table_tuples"),
            std::string::npos);
}

TEST_F(ResilientExecTest, BestEffortTruncatesAndReports) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  ExecReport report;
  ExecOptions options;
  options.max_table_tuples = 1;
  options.best_effort = true;
  options.report = &report;
  Executor exec(*catalog_, options);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->size(), 1u);
  EXPECT_TRUE(report.degraded);
  ASSERT_FALSE(report.truncations.empty());
  EXPECT_NE(report.truncations[0].find("truncated"), std::string::npos);
  // Executor::report() aliases the caller-supplied sink.
  EXPECT_EQ(&exec.report(), &report);
  EXPECT_GE(exec.metrics().counter("resilience.degraded_runs")->value(), 1u);
  EXPECT_GE(exec.metrics().counter("resilience.truncations")->value(), 1u);
}

TEST_F(ResilientExecTest, DegradedTablesNeverEnterTheReuseCache) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  ReuseCache cache;
  {
    ExecOptions options;
    options.max_table_tuples = 1;
    options.best_effort = true;
    Executor exec(*catalog_, options);
    auto degraded = exec.Execute(*prog, &cache);
    ASSERT_TRUE(degraded.ok());
    ASSERT_TRUE(exec.report().degraded);
  }
  // A later fault-free iteration sharing the cache must compute the full
  // answer, not inherit the truncated table.
  Executor exec(*catalog_);
  auto full = exec.Execute(*prog, &cache);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), 2u);
  EXPECT_FALSE(exec.report().degraded);
}

TEST_F(ResilientExecTest, ReportClearsBetweenExecutes) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  ExecOptions options;
  options.max_table_tuples = 1;
  options.best_effort = true;
  Executor exec(*catalog_, options);
  ASSERT_TRUE(exec.Execute(*prog).ok());
  ASSERT_TRUE(exec.report().degraded);
  size_t first_events = exec.report().EventCount();
  ASSERT_TRUE(exec.Execute(*prog).ok());
  // Same degradation again, not accumulated on top of the first run's.
  EXPECT_EQ(exec.report().EventCount(), first_events);
}

}  // namespace
}  // namespace iflex
