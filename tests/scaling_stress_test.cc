// Contention stress for the morsel scheduler's per-worker state
// (docs/RUNTIME.md): 8 OS threads hammer the VerifyMemoL1 / ReuseCacheL1
// write-back fronts and the WorkerContextPool freelist against their
// shared striped structures. Runs under the `scaling` ctest label and the
// tsan-scaling preset — the invariants checked here (counter totals,
// first-verdict-wins inserts, context recycling) must hold under every
// interleaving, and TSan must see no races on the flush paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "ctable/compact_table.h"
#include "exec/executor.h"
#include "exec/verify_memo.h"
#include "exec/worker_context.h"

namespace iflex {
namespace {

constexpr size_t kThreads = 8;

VerifyMemo::Key MakeKey(size_t i) {
  VerifyMemo::Key k{};
  k.feature = static_cast<ValueId>(i % 97);
  k.target_kind = 1;
  k.text = static_cast<ValueId>(i);
  return k;
}

// The pure "verdict function" every thread agrees on: inserts for the
// same key always carry the same verdict, like real Verify results over
// a frozen corpus.
int8_t VerdictOf(size_t i) { return static_cast<int8_t>(i % 2); }

// 8 workers lease contexts from one pool, look up / insert overlapping
// key ranges through their L1s, and flush at "morsel boundaries"
// (Release). Afterwards the shared memo must hold every key exactly once
// with the agreed verdict, and hits + misses must equal the total lookup
// count — the L1 folds its local hits back, so no lookup is lost or
// double-counted.
TEST(ScalingStressTest, MemoL1FlushUnderContention) {
  constexpr size_t kKeys = 4096;
  constexpr size_t kMorselsPerThread = 32;
  constexpr size_t kLookupsPerMorsel = 512;

  VerifyMemo memo;
  WorkerContextPool contexts;
  contexts.BeginEpoch(&memo);

  std::atomic<uint64_t> total_lookups{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t lookups = 0;
      for (size_t m = 0; m < kMorselsPerThread; ++m) {
        WorkerContextLease lease(&contexts);
        VerifyMemoL1* l1 = lease.get()->memo();
        ASSERT_NE(l1, nullptr);
        for (size_t i = 0; i < kLookupsPerMorsel; ++i) {
          // Overlapping strided ranges: plenty of cross-thread key
          // collisions, plenty of within-thread repeats (L1 hits).
          size_t key = (t * 13 + m * 251 + i * 7) % kKeys;
          auto verdict = l1->Lookup(MakeKey(key));
          ++lookups;
          if (verdict.has_value()) {
            EXPECT_EQ(*verdict, VerdictOf(key));
          } else {
            l1->Insert(MakeKey(key), VerdictOf(key));
          }
        }
      }
      total_lookups.fetch_add(lookups, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_LE(memo.size(), kKeys);
  EXPECT_GT(memo.size(), 0u);
  for (size_t i = 0; i < kKeys; ++i) {
    auto v = memo.Lookup(MakeKey(i));
    if (v.has_value()) EXPECT_EQ(*v, VerdictOf(i)) << "key " << i;
  }
  // The verification loop above added kKeys lookups of its own.
  EXPECT_EQ(memo.hits() + memo.misses(),
            total_lookups.load() + kKeys);
  // Freelist bound: never more contexts than concurrently live leases.
  EXPECT_LE(contexts.created(), kThreads);
}

// Concurrent ReuseCacheL1 owners (one per simulated Execute) buffering
// inserts for overlapping fingerprints, flushing on destruction. The
// shared cache must end up with every fingerprint exactly once, carrying
// one of the (identical, as in real deterministic execution) tables.
TEST(ScalingStressTest, ReuseCacheL1FlushUnderContention) {
  constexpr size_t kFingerprints = 256;
  constexpr size_t kRounds = 16;

  auto table_for = [](uint64_t fp) {
    CompactTable t({"v"});
    CompactTuple tup;
    tup.cells.push_back(Cell::Exact(Value::Number(static_cast<double>(fp))));
    t.Add(std::move(tup));
    return t;
  };

  ReuseCache cache;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t r = 0; r < kRounds; ++r) {
        ReuseCacheL1 l1(&cache);
        for (size_t i = 0; i < kFingerprints; ++i) {
          uint64_t fp = (t * 31 + r * 17 + i) % kFingerprints;
          const CompactTable* hit = l1.Lookup(fp);
          if (hit != nullptr) {
            ASSERT_EQ(hit->size(), 1u);
            continue;
          }
          l1.Insert(fp, table_for(fp));
          // The pending pointer must be stable and readable back.
          const CompactTable* pending = l1.Lookup(fp);
          ASSERT_NE(pending, nullptr);
          EXPECT_EQ(pending->size(), 1u);
        }
      }  // ~ReuseCacheL1 flushes
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.size(), kFingerprints);
  for (uint64_t fp = 0; fp < kFingerprints; ++fp) {
    const CompactTable* t = cache.Lookup(fp);
    ASSERT_NE(t, nullptr) << "fingerprint " << fp;
    EXPECT_EQ(t->size(), 1u);
  }
}

// Epoch semantics under churn: BeginEpoch between batches must rebind
// every recycled context to the new memo and drop the old L1 state, even
// while other threads are still acquiring.
TEST(ScalingStressTest, ContextPoolEpochRebindsRecycledContexts) {
  WorkerContextPool contexts;
  VerifyMemo memo_a;
  VerifyMemo memo_b;

  contexts.BeginEpoch(&memo_a);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < 64; ++i) {
        WorkerContextLease lease(&contexts);
        VerifyMemoL1* l1 = lease.get()->memo();
        ASSERT_NE(l1, nullptr);
        EXPECT_EQ(l1->shared(), &memo_a);
        l1->Insert(MakeKey(i), VerdictOf(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  contexts.BeginEpoch(&memo_b);
  threads.clear();
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < 64; ++i) {
        WorkerContextLease lease(&contexts);
        VerifyMemoL1* l1 = lease.get()->memo();
        ASSERT_NE(l1, nullptr);
        // Recycled contexts must have been rebound, never still pointing
        // at the previous epoch's memo.
        EXPECT_EQ(l1->shared(), &memo_b);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Epoch A's flushed inserts stayed in memo A; none leaked into B.
  EXPECT_GT(memo_a.size(), 0u);
  EXPECT_EQ(memo_b.size(), 0u);

  // A null epoch detaches: memo() reports no front, preserving the
  // legacy no-memo behavior in cell ops.
  contexts.BeginEpoch(nullptr);
  WorkerContextLease lease(&contexts);
  EXPECT_EQ(lease.get()->memo(), nullptr);
}

}  // namespace
}  // namespace iflex
