// Tests for the work-stealing task pool (src/runtime/): full coverage
// under skewed task sizes, exception propagation to the joining thread,
// and nested ParallelFor (helping joins must never deadlock).
#include "runtime/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace iflex {
namespace runtime {
namespace {

TEST(TaskPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  TaskPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPoolTest, SkewedTasksCompleteAndSpreadAcrossThreads) {
  TaskPool pool(4);
  std::atomic<uint64_t> sum{0};
  std::mutex mu;
  std::set<std::thread::id> tids;
  pool.ParallelFor(64, [&](size_t i) {
    // Index 0 is ~100x the rest: work-stealing must keep the remaining
    // indices flowing on the other threads meanwhile.
    auto busy = std::chrono::microseconds(i == 0 ? 20000 : 200);
    auto until = std::chrono::steady_clock::now() + busy;
    while (std::chrono::steady_clock::now() < until) {
    }
    sum.fetch_add(i);
    std::lock_guard<std::mutex> lock(mu);
    tids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(sum.load(), 64u * 63u / 2);
  EXPECT_GE(tids.size(), 2u);
}

TEST(TaskPoolTest, ParallelForPropagatesExceptionToJoiningThread) {
  TaskPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](size_t i) {
                                  if (i == 13) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool survives a failed batch.
  std::atomic<int> ok{0};
  pool.ParallelFor(10, [&](size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(TaskPoolTest, FuturePropagatesResultAndException) {
  TaskPool pool(2);
  Future<int> good = Async<int>(&pool, [] { return 41 + 1; });
  EXPECT_EQ(good.Get(), 42);
  Future<int> bad =
      Async<int>(&pool, []() -> int { throw std::runtime_error("bad"); });
  EXPECT_THROW(bad.Get(), std::runtime_error);
}

TEST(TaskPoolTest, NestedParallelForDoesNotDeadlock) {
  TaskPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);

  // Three levels through the free functions, joining futures inside tasks.
  count.store(0);
  ParallelFor(&pool, 4, [&](size_t) {
    Future<int> inner = Async<int>(&pool, [&] {
      ParallelFor(&pool, 4, [&](size_t) { count.fetch_add(1); });
      return 1;
    });
    count.fetch_add(inner.Get());
  });
  EXPECT_EQ(count.load(), 4 * 4 + 4);
}

TEST(TaskPoolTest, NullAndSingleThreadPoolsRunSerially) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));

  TaskPool one(1);
  EXPECT_EQ(one.thread_count(), 1u);
  order.clear();
  ParallelFor(&one, 5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(Async<int>(&one, [] { return 7; }).Get(), 7);
  // A null pool has no queue to park the error in: Async itself throws.
  EXPECT_THROW(
      Async<int>(nullptr, []() -> int { throw std::runtime_error("e"); }),
      std::runtime_error);
}

TEST(TaskPoolTest, ParallelMapPreservesIndexOrder) {
  TaskPool pool(4);
  std::vector<size_t> out = ParallelMap<size_t>(&pool, 100, [](size_t i) {
    if (i % 7 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return i * i;
  });
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(TaskPoolTest, SubmitAndHelpUntilDrainExternalTasks) {
  TaskPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  // Main thread is not a pool worker; helping from outside must work too.
  pool.HelpUntil([&done] { return done.load() == 50; });
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace runtime
}  // namespace iflex
