// Serving-layer tests (docs/SERVING.md): wire grammar, protocol edge
// cases over real TCP (oversized / truncated frames, mid-request
// disconnect), admission control (typed Overloaded), deadlines both
// while queued and while executing, and multi-session isolation
// (byte-identical results vs the batch interpreter, per-session
// telemetry labels). Runs under the `serve` ctest label, including in
// the tsan preset — the concurrency tests are the data-race probes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/cost_model.h"
#include "serve/client.h"
#include "serve/command_interpreter.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace iflex {
namespace {

using serve::CommandInterpreter;
using serve::CommandOutcome;
using serve::InterpreterOptions;
using serve::LineClient;
using serve::ParsedResponse;
using serve::ParseRequest;
using serve::ParseResponse;
using serve::Request;
using serve::Response;
using serve::Server;
using serve::ServerOptions;

// ---------------------------------------------------------------- wire

TEST(WireTest, ParsesEveryVerb) {
  auto open = ParseRequest("open s1");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->verb, "open");
  EXPECT_EQ(open->session, "s1");

  auto cmd = ParseRequest("cmd s1 rule q(x) :- a(x), x < 3.");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->session, "s1");
  EXPECT_EQ(cmd->deadline_ms, 0);
  EXPECT_EQ(cmd->command, "rule q(x) :- a(x), x < 3.");

  auto bounded = ParseRequest("cmd s1 --deadline-ms 250 run");
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(bounded->deadline_ms, 250);
  EXPECT_EQ(bounded->command, "run");

  EXPECT_TRUE(ParseRequest("ping").ok());
  EXPECT_TRUE(ParseRequest("sessions").ok());
  EXPECT_TRUE(ParseRequest("shutdown").ok());
  EXPECT_TRUE(ParseRequest("telemetry").ok());
  auto scoped = ParseRequest("telemetry s1");
  ASSERT_TRUE(scoped.ok());
  EXPECT_EQ(scoped->session, "s1");
  EXPECT_TRUE(ParseRequest("explain s1").ok());
}

TEST(WireTest, RejectsMalformedRequests) {
  EXPECT_EQ(ParseRequest("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("frobnicate").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("open").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("open bad session id").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("open s{1}").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("cmd s1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("cmd s1 --deadline-ms nope run").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("cmd s1 --deadline-ms -5 run").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, SessionIdCharsetIsRestrictive) {
  EXPECT_TRUE(serve::IsValidSessionId("a-Z.9_x"));
  EXPECT_FALSE(serve::IsValidSessionId(""));
  EXPECT_FALSE(serve::IsValidSessionId("has space"));
  EXPECT_FALSE(serve::IsValidSessionId("quote\""));
  EXPECT_FALSE(serve::IsValidSessionId(std::string(65, 'a')));
}

TEST(WireTest, ResponseJsonRoundTrips) {
  Response resp;
  resp.status = Status::DeadlineExceeded("over \"budget\"\n\ttab");
  resp.session = "s1";
  resp.output = "line1\nline2 \\ done";
  resp.degraded = true;
  resp.flight_recorder = {"ev one", "ev \"two\""};

  auto parsed = ParseResponse(resp.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->code, "DeadlineExceeded");
  EXPECT_EQ(parsed->session, "s1");
  EXPECT_EQ(parsed->output, "line1\nline2 \\ done");
  EXPECT_EQ(parsed->error, "over \"budget\"\n\ttab");
  EXPECT_TRUE(parsed->degraded);
  ASSERT_EQ(parsed->flight_recorder.size(), 2u);
  EXPECT_EQ(parsed->flight_recorder[1], "ev \"two\"");
}

// ------------------------------------------------------- interpreter

TEST(InterpreterTest, BareRuleLineIsTypedInvalidArgument) {
  CommandInterpreter interp;
  // "rule" with no body must be a typed error, never an exception.
  EXPECT_EQ(interp.Interpret("rule").status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(interp.Interpret("rule   ").status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(interp.program_src().empty());
  EXPECT_TRUE(interp.Interpret("rule q(x) :- a(x).").status.ok());
  EXPECT_EQ(interp.program_src(), "q(x) :- a(x).\n");
}

// The develop/execute/refine script used by the isolation tests and
// the per-session explain test; the serving bench replays the same one.
std::vector<std::string> Script() {
  return {
      "gen movies",
      "declare extractEbert 1 2",
      "rule q(t) :- ebertPages(x), extractEbert(x, t, yr), yr < 1960.",
      "rule extractEbert(x, t, yr) :- from(x, t), from(x, yr).",
      "query q",
      "run",
      "constrain extractEbert 1 numeric yes",
      "run",
  };
}

// ------------------------------------------------- HandleLine (no TCP)

ParsedResponse Call(Server* server, const std::string& line) {
  auto parsed = ParseResponse(server->HandleLine(line));
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? *parsed : ParsedResponse{};
}

TEST(ServerTest, UnknownVerbIsTypedInvalidArgument) {
  Server server;
  ParsedResponse resp = Call(&server, "frobnicate s1");
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, "InvalidArgument");
}

TEST(ServerTest, SessionLifecycle) {
  Server server;
  EXPECT_TRUE(Call(&server, "ping").ok);
  EXPECT_TRUE(Call(&server, "open s1").ok);
  EXPECT_EQ(Call(&server, "open s1").code, "AlreadyExists");
  EXPECT_EQ(Call(&server, "cmd nosuch run").code, "NotFound");
  EXPECT_TRUE(Call(&server, "cmd s1 gen movies").ok);
  EXPECT_TRUE(Call(&server, "sessions").ok);
  EXPECT_TRUE(Call(&server, "close s1").ok);
  EXPECT_EQ(Call(&server, "close s1").code, "NotFound");
  EXPECT_EQ(server.session_count(), 0u);
}

TEST(ServerTest, SessionCapIsTypedOverloaded) {
  ServerOptions options;
  options.max_sessions = 2;
  Server server(options);
  EXPECT_TRUE(Call(&server, "open a").ok);
  EXPECT_TRUE(Call(&server, "open b").ok);
  EXPECT_EQ(Call(&server, "open c").code, "Overloaded");
  EXPECT_TRUE(Call(&server, "close a").ok);
  EXPECT_TRUE(Call(&server, "open c").ok);
}

TEST(ServerTest, BareRuleCmdIsTypedAndLeaksNoAdmissionSlot) {
  ServerOptions options;
  options.max_concurrent = 1;
  options.max_queue = 0;
  Server server(options);
  EXPECT_TRUE(Call(&server, "open s1").ok);
  for (int i = 0; i < 3; ++i) {
    ParsedResponse resp = Call(&server, "cmd s1 rule");
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.code, "InvalidArgument");
  }
  // With one slot and no queue, a leaked admission slot would surface
  // here as Overloaded.
  EXPECT_TRUE(Call(&server, "cmd s1 sleep 1").ok);
}

TEST(ServerTest, ExplainIsPerSessionAndLeavesProcessGlobalsAlone) {
  Server server;
  EXPECT_TRUE(Call(&server, "open a").ok);
  EXPECT_TRUE(Call(&server, "open b").ok);

  // First explain arms session a's private profiler.
  ParsedResponse armed = Call(&server, "explain a");
  ASSERT_TRUE(armed.ok);
  EXPECT_NE(armed.output.find("profiler enabled"), std::string::npos);

  for (const std::string& command : Script()) {
    EXPECT_TRUE(Call(&server, "cmd a " + command).ok) << command;
  }
  ParsedResponse table = Call(&server, "explain a");
  ASSERT_TRUE(table.ok);
  EXPECT_EQ(table.output.find("profiler enabled"), std::string::npos);
  EXPECT_EQ(table.output.find("nothing charged"), std::string::npos);

  // Session b's profiler was never armed by a's explain, and the
  // process-wide model (the shell's) stays untouched.
  ParsedResponse other = Call(&server, "explain b");
  ASSERT_TRUE(other.ok);
  EXPECT_NE(other.output.find("profiler enabled"), std::string::npos);
  EXPECT_FALSE(obs::DefaultCostModel().enabled());
}

TEST(ServerTest, ShutdownVerbFlagsTheOwner) {
  Server server;
  EXPECT_FALSE(server.shutdown_requested());
  EXPECT_TRUE(Call(&server, "shutdown").ok);
  EXPECT_TRUE(server.shutdown_requested());
}

// ------------------------------------------------------ TCP edge cases

TEST(ServerTcpTest, OversizedFrameGetsTypedErrorAndHangup) {
  ServerOptions options;
  options.max_frame_bytes = 256;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  LineClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Send(std::string(1024, 'x')).ok());
  auto line = client.ReadLine();
  ASSERT_TRUE(line.ok());
  auto resp = ParseResponse(*line);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->code, "InvalidArgument");
  // The connection is closed after the error.
  EXPECT_EQ(client.ReadLine().status().code(), StatusCode::kNotFound);

  // The server survives: a fresh connection still works.
  LineClient again;
  ASSERT_TRUE(again.Connect(server.port()).ok());
  EXPECT_TRUE(again.Call("ping")->ok);
  server.Stop();
}

TEST(ServerTcpTest, TruncatedFrameAndMidRequestDisconnectAreSurvived) {
  Server server;
  ASSERT_TRUE(server.Start().ok());

  {
    // Partial line, then clean EOF: a truncated frame, never answered.
    LineClient client;
    ASSERT_TRUE(client.Connect(server.port()).ok());
    ASSERT_TRUE(client.Send("open t1").ok());
    ASSERT_TRUE(client.ReadLine().ok());
    ASSERT_TRUE(client.SendRaw("cmd t1 gen mov").ok());  // no newline
    client.ShutdownWrite();
    EXPECT_EQ(client.ReadLine().status().code(), StatusCode::kNotFound);
  }
  {
    // Disconnect while a command is executing: the server must finish
    // (or abort the send) without taking the process down.
    LineClient client;
    ASSERT_TRUE(client.Connect(server.port()).ok());
    ASSERT_TRUE(client.Call("open t2")->ok);
    ASSERT_TRUE(client.Send("cmd t2 sleep 60").ok());
    client.Close();  // gone before the response exists
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  LineClient again;
  ASSERT_TRUE(again.Connect(server.port()).ok());
  EXPECT_TRUE(again.Call("ping")->ok);
  server.Stop();
}

// ------------------------------------------- admission and deadlines

TEST(ServerTcpTest, RejectsBeyondAdmissionLimitWithOverloaded) {
  ServerOptions options;
  options.max_concurrent = 1;
  options.max_queue = 0;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  LineClient occupant;
  ASSERT_TRUE(occupant.Connect(server.port()).ok());
  ASSERT_TRUE(occupant.Call("open a")->ok);
  ASSERT_TRUE(occupant.Send("cmd a sleep 250").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  LineClient second;
  ASSERT_TRUE(second.Connect(server.port()).ok());
  ASSERT_TRUE(second.Call("open b")->ok);
  auto resp = second.Call("cmd b sleep 5");
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->code, "Overloaded");

  auto done = occupant.ReadLine();
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(ParseResponse(*done)->ok);
  server.Stop();
}

TEST(ServerTcpTest, DeadlineExpiryWhileQueuedIsTyped) {
  ServerOptions options;
  options.max_concurrent = 1;
  options.max_queue = 4;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  LineClient occupant;
  ASSERT_TRUE(occupant.Connect(server.port()).ok());
  ASSERT_TRUE(occupant.Call("open a")->ok);
  ASSERT_TRUE(occupant.Send("cmd a sleep 300").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Queued behind a 300 ms occupant with a 25 ms budget: must come back
  // DeadlineExceeded (not hang, not Overloaded — the queue has room).
  LineClient waiter;
  ASSERT_TRUE(waiter.Connect(server.port()).ok());
  ASSERT_TRUE(waiter.Call("open b")->ok);
  auto resp = waiter.Call("cmd b --deadline-ms 25 sleep 100");
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->code, "DeadlineExceeded");

  EXPECT_TRUE(ParseResponse(*occupant.ReadLine())->ok);
  server.Stop();
}

TEST(ServerTcpTest, SessionLockWaitersDoNotPinAdmissionSlots) {
  ServerOptions options;
  options.max_concurrent = 2;
  options.max_queue = 0;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  LineClient occupant;
  ASSERT_TRUE(occupant.Connect(server.port()).ok());
  ASSERT_TRUE(occupant.Call("open a")->ok);
  ASSERT_TRUE(occupant.Send("cmd a sleep 300").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // A second client of the SAME session waits for its session turn
  // without occupying the second admission slot...
  LineClient waiter;
  ASSERT_TRUE(waiter.Connect(server.port()).ok());
  ASSERT_TRUE(waiter.Send("cmd a sleep 5").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // ...so a different session still gets that slot instead of a typed
  // rejection (max_queue=0: a pinned slot would mean Overloaded here).
  LineClient other;
  ASSERT_TRUE(other.Connect(server.port()).ok());
  ASSERT_TRUE(other.Call("open b")->ok);
  auto resp = other.Call("cmd b sleep 5");
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->ok) << resp->error;

  EXPECT_TRUE(ParseResponse(*occupant.ReadLine())->ok);
  EXPECT_TRUE(ParseResponse(*waiter.ReadLine())->ok);
  server.Stop();
}

TEST(ServerTcpTest, DeadlineExpiryWhileWaitingForSessionTurnIsTyped) {
  // Default admission (2 slots) is not the bottleneck here: the waiter
  // is blocked purely on its session turn, and its deadline must still
  // fire as a typed error.
  Server server;
  ASSERT_TRUE(server.Start().ok());
  LineClient occupant;
  ASSERT_TRUE(occupant.Connect(server.port()).ok());
  ASSERT_TRUE(occupant.Call("open a")->ok);
  ASSERT_TRUE(occupant.Send("cmd a sleep 300").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  LineClient waiter;
  ASSERT_TRUE(waiter.Connect(server.port()).ok());
  auto resp = waiter.Call("cmd a --deadline-ms 25 sleep 100");
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->code, "DeadlineExceeded");

  EXPECT_TRUE(ParseResponse(*occupant.ReadLine())->ok);
  server.Stop();
}

TEST(ServerTcpTest, DeadlineExpiryWhileExecutingIsTyped) {
  Server server;
  ASSERT_TRUE(server.Start().ok());
  LineClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Call("open a")->ok);
  auto resp = client.Call("cmd a --deadline-ms 25 sleep 250");
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->code, "DeadlineExceeded");
  // The slot was released: the next command runs normally.
  EXPECT_TRUE(client.Call("cmd a sleep 1")->ok);
  server.Stop();
}

// --------------------------------------------- multi-session isolation

TEST(ServerTcpTest, ConcurrentSessionsMatchBatchInterpreterByteForByte) {
  // Batch reference: the same script through a bare CommandInterpreter.
  std::vector<std::string> expected;
  {
    CommandInterpreter interp{InterpreterOptions{}};
    for (const std::string& command : Script()) {
      CommandOutcome outcome = interp.Interpret(command);
      ASSERT_TRUE(outcome.status.ok()) << command;
      expected.push_back(outcome.output);
    }
  }

  ServerOptions options;
  options.max_concurrent = 4;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kSessions = 3;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> clients;
  for (size_t s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      std::string sid = "iso" + std::to_string(s);
      LineClient client;
      if (!client.Connect(server.port()).ok()) {
        mismatches.fetch_add(1);
        return;
      }
      auto open = client.Call("open " + sid);
      if (!open.ok() || !open->ok) {
        mismatches.fetch_add(1);
        return;
      }
      size_t idx = 0;
      for (const std::string& command : Script()) {
        auto resp = client.Call("cmd " + sid + " " + command);
        if (!resp.ok() || !resp->ok || resp->output != expected[idx]) {
          mismatches.fetch_add(1);
        }
        ++idx;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0u);

  // Per-session telemetry: each exposition carries its own session label
  // and no other session's.
  for (size_t s = 0; s < kSessions; ++s) {
    std::string sid = "iso" + std::to_string(s);
    ParsedResponse tel = Call(&server, "telemetry " + sid);
    ASSERT_TRUE(tel.ok);
    EXPECT_NE(tel.output.find("session=\"" + sid + "\""), std::string::npos);
    for (size_t other = 0; other < kSessions; ++other) {
      if (other == s) continue;
      EXPECT_EQ(tel.output.find("session=\"iso" + std::to_string(other)),
                std::string::npos);
    }
  }
  server.Stop();
}

TEST(ServerTcpTest, OneSessionSerializesConcurrentClients) {
  // Two connections into the same session issuing commands concurrently:
  // per-session serialization means every request still gets a coherent
  // answer (tsan verifies the absence of races underneath).
  Server server;
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(Call(&server, "open shared").ok);

  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      LineClient client;
      if (!client.Connect(server.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 6; ++i) {
        auto resp = client.Call("cmd shared sleep 5");
        if (!resp.ok() || !resp->ok) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);
  server.Stop();
}

}  // namespace
}  // namespace iflex
