// Unit tests for src/durability/: CRC32C, record framing, journal
// scanning (torn vs corrupt classification), the journal writer and its
// fail-point sites, atomic snapshot writes, command compaction, and the
// SessionLog open/append/snapshot/reopen lifecycle.
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "durability/crc32c.h"
#include "durability/journal.h"
#include "durability/session_log.h"
#include "gtest/gtest.h"
#include "resilience/failpoint.h"

namespace iflex {
namespace durability {
namespace {

using resilience::FailPoints;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::Instance().Clear();
    dir_ = ::testing::TempDir() + "durability_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FailPoints::Instance().Clear();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

// ------------------------------------------------------------- CRC32C

TEST_F(DurabilityTest, Crc32cMatchesKnownVectors) {
  // The standard CRC-32C check value ("123456789" -> 0xE3069283), plus
  // the empty string and an iSCSI test vector (32 zero bytes).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
}

TEST_F(DurabilityTest, CrcMaskRoundTripsAndDisplacesValue) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

// ------------------------------------------------- framing and scanning

TEST_F(DurabilityTest, EncodeScanRoundTrip) {
  std::string buf;
  EncodeRecord(&buf, "gen movies");
  EncodeRecord(&buf, "rule q(t) :- imdbPages(d).");
  EncodeRecord(&buf, "query q");
  JournalScan scan = ScanBuffer(buf);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_EQ(scan.valid_bytes, buf.size());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0], "gen movies");
  EXPECT_EQ(scan.records[1], "rule q(t) :- imdbPages(d).");
  EXPECT_EQ(scan.records[2], "query q");
}

TEST_F(DurabilityTest, TornPayloadIsTailNotCorruption) {
  std::string buf;
  EncodeRecord(&buf, "gen movies");
  size_t first = buf.size();
  EncodeRecord(&buf, "declare extractTitle 1 1");
  // Cut mid-payload of the second record: a crash artifact.
  JournalScan scan = ScanBuffer(std::string_view(buf).substr(0, buf.size() - 3));
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_EQ(scan.valid_bytes, first);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], "gen movies");
}

TEST_F(DurabilityTest, TornHeaderIsTailNotCorruption) {
  std::string buf;
  EncodeRecord(&buf, "gen movies");
  size_t first = buf.size();
  buf.append("\x05\x00\x00", 3);  // 3 of the 8 header bytes
  JournalScan scan = ScanBuffer(buf);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_EQ(scan.valid_bytes, first);
  EXPECT_EQ(scan.records.size(), 1u);
}

TEST_F(DurabilityTest, ZeroedTailIsTornNotCorrupt) {
  // Filesystems can preallocate zeros past the last write; that must read
  // as a clean end-of-journal, not as damage worth warning about.
  std::string buf;
  EncodeRecord(&buf, "gen movies");
  size_t first = buf.size();
  buf.append(64, '\0');
  JournalScan scan = ScanBuffer(buf);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_EQ(scan.valid_bytes, first);
}

TEST_F(DurabilityTest, CrcMismatchMidFileIsCorruption) {
  std::string buf;
  EncodeRecord(&buf, "gen movies");
  size_t first = buf.size();
  EncodeRecord(&buf, "declare extractTitle 1 1");
  EncodeRecord(&buf, "query q");
  buf[first + kRecordHeaderBytes] ^= 0x40;  // flip a payload bit mid-file
  JournalScan scan = ScanBuffer(buf);
  EXPECT_TRUE(scan.corrupt);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, first);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], "gen movies");
  EXPECT_NE(scan.detail.find("CRC"), std::string::npos);
}

TEST_F(DurabilityTest, ImplausibleLengthIsCorruption) {
  std::string buf;
  EncodeRecord(&buf, "gen movies");
  size_t first = buf.size();
  buf.append("\xFF\xFF\xFF\x7F" "abcd", 8);  // 2 GiB "record"
  JournalScan scan = ScanBuffer(buf);
  EXPECT_TRUE(scan.corrupt);
  EXPECT_EQ(scan.valid_bytes, first);
}

TEST_F(DurabilityTest, ScanFileMissingIsHealthyEmpty) {
  JournalScan scan = ScanFile(Path("nope.log"));
  EXPECT_TRUE(scan.missing);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_TRUE(scan.records.empty());
}

// ------------------------------------------------------- JournalWriter

TEST_F(DurabilityTest, WriterAppendsAndReopensAfterTornTail) {
  const std::string path = Path("journal.log");
  JournalWriter::Options opts;
  {
    Result<std::unique_ptr<JournalWriter>> w =
        JournalWriter::Open(path, 0, "hdr v1", opts);
    ASSERT_TRUE(w.ok()) << w.status();
    ASSERT_TRUE((*w)->Append("one").ok());
    ASSERT_TRUE((*w)->Append("two").ok());
  }
  // Simulate a crash mid-append: garbage half-frame at the tail.
  std::string data = ReadFile(path);
  WriteFile(path, data + "\x09\x00");
  JournalScan scan = ScanFile(path);
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 3u);  // header + 2
  {
    Result<std::unique_ptr<JournalWriter>> w =
        JournalWriter::Open(path, scan.valid_bytes, "hdr v1", opts);
    ASSERT_TRUE(w.ok()) << w.status();
    ASSERT_TRUE((*w)->Append("three").ok());
  }
  JournalScan again = ScanFile(path);
  EXPECT_FALSE(again.torn_tail);
  ASSERT_EQ(again.records.size(), 4u);
  EXPECT_EQ(again.records[0], "hdr v1");
  EXPECT_EQ(again.records[3], "three");
}

TEST_F(DurabilityTest, WriterWorksUnderAllFsyncPolicies) {
  for (FsyncPolicy policy : {FsyncPolicy::kEveryRecord, FsyncPolicy::kInterval,
                             FsyncPolicy::kOff}) {
    const std::string path =
        Path(std::string("j_") + FsyncPolicyName(policy) + ".log");
    JournalWriter::Options opts;
    opts.fsync = policy;
    opts.fsync_interval_ms = 1;
    Result<std::unique_ptr<JournalWriter>> w =
        JournalWriter::Open(path, 0, "hdr v1", opts);
    ASSERT_TRUE(w.ok()) << w.status();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*w)->Append("cmd " + std::to_string(i)).ok());
    }
    EXPECT_EQ(ScanFile(path).records.size(), 11u);
  }
}

TEST_F(DurabilityTest, AppendFailPointTearsWriteAndBreaksWriter) {
  const std::string path = Path("journal.log");
  Result<std::unique_ptr<JournalWriter>> w =
      JournalWriter::Open(path, 0, "hdr v1", JournalWriter::Options{});
  ASSERT_TRUE(w.ok()) << w.status();
  ASSERT_TRUE((*w)->Append("one").ok());
  ASSERT_TRUE(
      FailPoints::Instance().Configure("serve.journal.append=error").ok());
  Status st = (*w)->Append("two");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE((*w)->broken());
  FailPoints::Instance().Clear();
  // Broken is sticky: even with the fail point disarmed, later appends
  // are rejected (bytes on disk no longer match accepted commands).
  Status rejected = (*w)->Append("three");
  EXPECT_EQ(rejected.code(), StatusCode::kInternal);
  // The torn half-frame persisted — exactly what recovery must discard.
  JournalScan scan = ScanFile(path);
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[1], "one");
}

TEST_F(DurabilityTest, FsyncFailPointBreaksWriter) {
  const std::string path = Path("journal.log");
  JournalWriter::Options opts;  // kEveryRecord: every append syncs
  Result<std::unique_ptr<JournalWriter>> w =
      JournalWriter::Open(path, 0, "hdr v1", opts);
  ASSERT_TRUE(w.ok()) << w.status();
  ASSERT_TRUE(
      FailPoints::Instance().Configure("serve.journal.fsync=error").ok());
  Status st = (*w)->Append("one");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE((*w)->broken());
}

TEST_F(DurabilityTest, FsyncFailureRollsBackTheRejectedFrame) {
  // The write lands whole but the sync fails: the client is told the
  // command was rejected, so the completed frame must not survive to be
  // replayed as a ghost after a restart.
  const std::string path = Path("journal.log");
  Result<std::unique_ptr<JournalWriter>> w =
      JournalWriter::Open(path, 0, "hdr v1", JournalWriter::Options{});
  ASSERT_TRUE(w.ok()) << w.status();
  ASSERT_TRUE((*w)->Append("one").ok());
  ASSERT_TRUE(
      FailPoints::Instance().Configure("serve.journal.fsync=error").ok());
  EXPECT_FALSE((*w)->Append("two").ok());
  EXPECT_TRUE((*w)->broken());
  FailPoints::Instance().Clear();
  JournalScan scan = ScanFile(path);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_FALSE(scan.corrupt);
  ASSERT_EQ(scan.records.size(), 2u);  // header + "one"; "two" rolled back
  EXPECT_EQ(scan.records[1], "one");
}

TEST_F(DurabilityTest, WriteFileDurablyIsAtomicUnderFailPoint) {
  const std::string path = Path("snapshot.dat");
  ASSERT_TRUE(WriteFileDurably(path, "generation 1").ok());
  ASSERT_TRUE(
      FailPoints::Instance().Configure("serve.snapshot.write=error").ok());
  Status st = WriteFileDurably(path, "generation 2", "serve.snapshot.write");
  EXPECT_FALSE(st.ok());
  // No rename happened: the previous contents stay authoritative.
  EXPECT_EQ(ReadFile(path), "generation 1");
  FailPoints::Instance().Clear();
  ASSERT_TRUE(
      WriteFileDurably(path, "generation 2", "serve.snapshot.write").ok());
  EXPECT_EQ(ReadFile(path), "generation 2");
}

// ----------------------------------------------------------- compaction

TEST_F(DurabilityTest, CompactDropsDeadProgramTextAndClears) {
  std::vector<std::string> history = {
      "gen movies",
      "rule dead(t) :- imdbPages(d).",
      "constrain extractTitle 1 isTitle",
      "clear",
      "rule live(t) :- imdbPages(d).",
      "declare extractTitle 1 1",
  };
  std::vector<std::string> compact = SessionLog::Compact(history);
  ASSERT_EQ(compact.size(), 3u);
  EXPECT_EQ(compact[0], "gen movies");
  EXPECT_EQ(compact[1], "rule live(t) :- imdbPages(d).");
  EXPECT_EQ(compact[2], "declare extractTitle 1 1");
}

TEST_F(DurabilityTest, CompactKeepsLastQueryOnly) {
  std::vector<std::string> history = {"query a", "query b", "query c"};
  std::vector<std::string> compact = SessionLog::Compact(history);
  ASSERT_EQ(compact.size(), 1u);
  EXPECT_EQ(compact[0], "query c");
}

TEST_F(DurabilityTest, CompactKeepsSupersededQueryThatAConstrainBakedIn) {
  // `constrain` rewrites the program text with the query in force at that
  // moment, so dropping "query a" here would change what replay builds.
  std::vector<std::string> history = {
      "rule q(t) :- imdbPages(d).",
      "query a",
      "constrain extractTitle 1 isTitle",
      "query b",
  };
  std::vector<std::string> compact = SessionLog::Compact(history);
  ASSERT_EQ(compact.size(), 4u);
  EXPECT_EQ(compact[1], "query a");
  EXPECT_EQ(compact[3], "query b");
}

TEST_F(DurabilityTest, CompactDropsArgumentlessQuery) {
  // A bare `query` is a no-op (the predicate keeps its old value); the
  // last *effective* query must win, not the last query token.
  std::vector<std::string> history = {"query a", "query"};
  std::vector<std::string> compact = SessionLog::Compact(history);
  ASSERT_EQ(compact.size(), 1u);
  EXPECT_EQ(compact[0], "query a");
}

TEST_F(DurabilityTest, IsMutatingCommandClassifiesVerbs) {
  for (const char* cmd :
       {"gen movies", "load t f.xml", "declare p 1 1", "rule q(t) :- b(t).",
        "clear", "query q", "constrain p 1 isTitle", "  gen movies"}) {
    EXPECT_TRUE(IsMutatingCommand(cmd)) << cmd;
  }
  for (const char* cmd : {"run", "tables", "program", "telemetry", "explain",
                          "trace", "sleep 5", "help", "quit", ""}) {
    EXPECT_FALSE(IsMutatingCommand(cmd)) << cmd;
  }
}

// ----------------------------------------------------------- SessionLog

TEST_F(DurabilityTest, SessionLogRoundTripsHistoryAcrossReopen) {
  DurabilityOptions opts;
  opts.snapshot_every = 0;  // journal only
  {
    RecoveryReport rep;
    Result<std::unique_ptr<SessionLog>> log =
        SessionLog::Open(Path("s1"), opts, &rep);
    ASSERT_TRUE(log.ok()) << log.status();
    EXPECT_EQ(rep.commands, 0u);
    ASSERT_TRUE((*log)->Append("gen movies").ok());
    ASSERT_TRUE((*log)->Append("declare extractTitle 1 1").ok());
    EXPECT_EQ((*log)->records(), 2u);
  }
  RecoveryReport rep;
  Result<std::unique_ptr<SessionLog>> log =
      SessionLog::Open(Path("s1"), opts, &rep);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(rep.commands, 2u);
  EXPECT_EQ(rep.from_snapshot, 0u);
  EXPECT_FALSE(rep.torn_tail);
  EXPECT_FALSE(rep.corrupt);
  ASSERT_EQ((*log)->history().size(), 2u);
  EXPECT_EQ((*log)->history()[0], "gen movies");
  EXPECT_EQ((*log)->history()[1], "declare extractTitle 1 1");
}

TEST_F(DurabilityTest, SessionLogSnapshotCompactsJournal) {
  DurabilityOptions opts;
  opts.snapshot_every = 4;
  {
    RecoveryReport rep;
    Result<std::unique_ptr<SessionLog>> log =
        SessionLog::Open(Path("s1"), opts, &rep);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE((*log)->Append("gen movies").ok());
    ASSERT_TRUE((*log)->Append("query a").ok());
    ASSERT_TRUE((*log)->Append("query b").ok());
    EXPECT_FALSE((*log)->ShouldSnapshot());
    ASSERT_TRUE((*log)->Append("query c").ok());
    EXPECT_TRUE((*log)->ShouldSnapshot());
    ASSERT_TRUE((*log)->WriteSnapshot().ok());
    EXPECT_EQ((*log)->watermark(), 4u);
    // gen + the last query survive compaction.
    EXPECT_EQ((*log)->last_snapshot_commands(), 2u);
    // Post-snapshot appends land in the compacted journal.
    ASSERT_TRUE((*log)->Append("declare extractTitle 1 1").ok());
    EXPECT_EQ((*log)->records(), 5u);
  }
  // The journal file itself now holds only the header and the suffix.
  JournalScan scan = ScanFile(Path("s1") + "/journal.log");
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0], "iflexjournal v1 base=4");
  EXPECT_EQ(scan.records[1], "declare extractTitle 1 1");
  RecoveryReport rep;
  Result<std::unique_ptr<SessionLog>> log =
      SessionLog::Open(Path("s1"), opts, &rep);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(rep.from_snapshot, 2u);
  EXPECT_EQ(rep.commands, 3u);
  ASSERT_EQ((*log)->history().size(), 3u);
  EXPECT_EQ((*log)->history()[0], "gen movies");
  EXPECT_EQ((*log)->history()[1], "query c");
  EXPECT_EQ((*log)->history()[2], "declare extractTitle 1 1");
  EXPECT_EQ((*log)->records(), 5u);
  EXPECT_EQ((*log)->watermark(), 4u);
}

TEST_F(DurabilityTest, SessionLogSkipsJournalOverlapAfterSnapshotOnlyCrash) {
  // A crash between the snapshot write and the journal compaction leaves
  // a new snapshot alongside the full old journal; replay must not see
  // the overlapping records twice.
  DurabilityOptions opts;
  opts.snapshot_every = 0;
  {
    RecoveryReport rep;
    Result<std::unique_ptr<SessionLog>> log =
        SessionLog::Open(Path("s1"), opts, &rep);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE((*log)->Append("gen movies").ok());
    ASSERT_TRUE((*log)->Append("query a").ok());
  }
  // Hand-write the snapshot the crashed compaction would have left.
  std::string snap;
  EncodeRecord(&snap, "iflexsnap v1 watermark=2");
  EncodeRecord(&snap, "gen movies");
  EncodeRecord(&snap, "query a");
  ASSERT_TRUE(WriteFileDurably(Path("s1") + "/snapshot.dat", snap).ok());
  RecoveryReport rep;
  Result<std::unique_ptr<SessionLog>> log =
      SessionLog::Open(Path("s1"), opts, &rep);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(rep.commands, 2u);
  EXPECT_EQ(rep.from_snapshot, 2u);
  EXPECT_EQ((*log)->records(), 2u);
}

TEST_F(DurabilityTest, SessionLogDegradesToValidPrefixOnMidFileCorruption) {
  DurabilityOptions opts;
  opts.snapshot_every = 0;
  {
    RecoveryReport rep;
    Result<std::unique_ptr<SessionLog>> log =
        SessionLog::Open(Path("s1"), opts, &rep);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE((*log)->Append("gen movies").ok());
    ASSERT_TRUE((*log)->Append("declare extractTitle 1 1").ok());
    ASSERT_TRUE((*log)->Append("query q").ok());
  }
  // Flip a bit inside the second data record's payload.
  const std::string path = Path("s1") + "/journal.log";
  std::string data = ReadFile(path);
  JournalScan before = ScanFile(path);
  ASSERT_EQ(before.records.size(), 4u);
  size_t second_data_off = 0;
  for (int i = 0; i < 2; ++i) {
    second_data_off += kRecordHeaderBytes + before.records[i].size();
  }
  data[second_data_off + kRecordHeaderBytes] ^= 0x01;
  WriteFile(path, data);

  RecoveryReport rep;
  Result<std::unique_ptr<SessionLog>> log =
      SessionLog::Open(Path("s1"), opts, &rep);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_TRUE(rep.corrupt);
  ASSERT_EQ(rep.commands, 1u);
  EXPECT_EQ((*log)->history()[0], "gen movies");
  // The damaged tail was truncated; the log accepts new appends.
  ASSERT_TRUE((*log)->Append("query other").ok());
  JournalScan after = ScanFile(path);
  EXPECT_FALSE(after.corrupt);
  ASSERT_EQ(after.records.size(), 3u);
  EXPECT_EQ(after.records[2], "query other");
}

TEST_F(DurabilityTest, SessionLogIgnoresCorruptSnapshotWhenJournalIsWhole) {
  DurabilityOptions opts;
  opts.snapshot_every = 0;
  {
    RecoveryReport rep;
    Result<std::unique_ptr<SessionLog>> log =
        SessionLog::Open(Path("s1"), opts, &rep);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE((*log)->Append("gen movies").ok());
  }
  WriteFile(Path("s1") + "/snapshot.dat", "not a snapshot at all");
  RecoveryReport rep;
  Result<std::unique_ptr<SessionLog>> log =
      SessionLog::Open(Path("s1"), opts, &rep);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_TRUE(rep.snapshot_ignored);
  EXPECT_FALSE(rep.prefix_lost);
  // base=0 journal still holds everything: nothing was lost.
  EXPECT_EQ(rep.commands, 1u);
}

TEST_F(DurabilityTest, SessionLogResetsWhenCompactedPrefixIsLost) {
  DurabilityOptions opts;
  opts.snapshot_every = 0;
  {
    RecoveryReport rep;
    Result<std::unique_ptr<SessionLog>> log =
        SessionLog::Open(Path("s1"), opts, &rep);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE((*log)->Append("gen movies").ok());
    ASSERT_TRUE((*log)->Append("query a").ok());
    ASSERT_TRUE((*log)->WriteSnapshot().ok());  // journal now base=2
    ASSERT_TRUE((*log)->Append("query b").ok());
  }
  WriteFile(Path("s1") + "/snapshot.dat", "garbage");
  RecoveryReport rep;
  Result<std::unique_ptr<SessionLog>> log =
      SessionLog::Open(Path("s1"), opts, &rep);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_TRUE(rep.snapshot_ignored);
  EXPECT_TRUE(rep.prefix_lost);
  // Replaying "query b" against the wrong starting state would be worse
  // than honesty: the session comes back empty.
  EXPECT_EQ(rep.commands, 0u);
  EXPECT_EQ((*log)->records(), 0u);
  ASSERT_TRUE((*log)->Append("gen movies").ok());
}

TEST_F(DurabilityTest, SessionLogResetsWhenSnapshotIsMissingButJournalCompacted) {
  // A deleted (not merely damaged) snapshot with a compacted journal is
  // the same prefix loss: silently replaying the post-compaction suffix
  // against an empty starting state would fabricate a wrong session.
  DurabilityOptions opts;
  opts.snapshot_every = 0;
  {
    RecoveryReport rep;
    Result<std::unique_ptr<SessionLog>> log =
        SessionLog::Open(Path("s1"), opts, &rep);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE((*log)->Append("gen movies").ok());
    ASSERT_TRUE((*log)->Append("query a").ok());
    ASSERT_TRUE((*log)->WriteSnapshot().ok());  // journal now base=2
    ASSERT_TRUE((*log)->Append("query b").ok());
  }
  std::filesystem::remove(Path("s1") + "/snapshot.dat");
  RecoveryReport rep;
  Result<std::unique_ptr<SessionLog>> log =
      SessionLog::Open(Path("s1"), opts, &rep);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_TRUE(rep.prefix_lost);
  EXPECT_NE(rep.detail.find("snapshot missing"), std::string::npos);
  EXPECT_EQ(rep.commands, 0u);
  EXPECT_EQ((*log)->records(), 0u);
  ASSERT_TRUE((*log)->Append("gen movies").ok());
}

TEST_F(DurabilityTest, SessionLogSnapshotRepairsBrokenWriter) {
  DurabilityOptions opts;
  opts.snapshot_every = 0;
  RecoveryReport rep;
  Result<std::unique_ptr<SessionLog>> log =
      SessionLog::Open(Path("s1"), opts, &rep);
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_TRUE((*log)->Append("gen movies").ok());
  ASSERT_TRUE(
      FailPoints::Instance().Configure("serve.journal.append=error").ok());
  EXPECT_FALSE((*log)->Append("query a").ok());
  EXPECT_TRUE((*log)->broken());
  EXPECT_FALSE((*log)->Append("query b").ok());  // rejected while broken
  FailPoints::Instance().Clear();
  ASSERT_TRUE((*log)->WriteSnapshot().ok());
  EXPECT_FALSE((*log)->broken());
  // Only the accepted command survived; the log accepts appends again.
  EXPECT_EQ((*log)->records(), 1u);
  ASSERT_TRUE((*log)->Append("query c").ok());
  RecoveryReport rep2;
  Result<std::unique_ptr<SessionLog>> reopened =
      SessionLog::Open(Path("s1"), opts, &rep2);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_EQ(rep2.commands, 2u);
  EXPECT_EQ((*reopened)->history()[0], "gen movies");
  EXPECT_EQ((*reopened)->history()[1], "query c");
}

TEST_F(DurabilityTest, SessionLogSnapshotFailureLeavesOldStateAuthoritative) {
  DurabilityOptions opts;
  opts.snapshot_every = 0;
  RecoveryReport rep;
  Result<std::unique_ptr<SessionLog>> log =
      SessionLog::Open(Path("s1"), opts, &rep);
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_TRUE((*log)->Append("gen movies").ok());
  ASSERT_TRUE((*log)->WriteSnapshot().ok());
  ASSERT_TRUE((*log)->Append("query a").ok());
  ASSERT_TRUE(
      FailPoints::Instance().Configure("serve.snapshot.write=error").ok());
  EXPECT_FALSE((*log)->WriteSnapshot().ok());
  FailPoints::Instance().Clear();
  // The old snapshot + journal still reproduce the full history.
  RecoveryReport rep2;
  Result<std::unique_ptr<SessionLog>> reopened =
      SessionLog::Open(Path("s1"), opts, &rep2);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(rep2.commands, 2u);
  EXPECT_EQ((*reopened)->history()[1], "query a");
}

}  // namespace
}  // namespace durability
}  // namespace iflex
