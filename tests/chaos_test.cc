// Chaos suite: every fail-point site is driven through each injection mode
// (error / delay / every:K) and the observable outcome must always be a
// clean Status or a correctly-flagged degraded result — never a crash, a
// hang, or a silently wrong answer. Runs under the `chaos` ctest label.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>

#include "exec/executor.h"
#include "resilience/deadline.h"
#include "resilience/failpoint.h"
#include "runtime/task_pool.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

using resilience::Deadline;
using resilience::FailPoints;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::Instance().Clear();
    auto p1 = ParseMarkup("page1", "Price: <b>$250,000</b> Sqft: 2000");
    auto p2 = ParseMarkup("page2", "Price: <b>$619,000</b> Sqft: 4700");
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE(p2.ok());
    d1_ = corpus_.Add(std::move(p1).value());
    d2_ = corpus_.Add(std::move(p2).value());
    catalog_ = std::make_unique<Catalog>(&corpus_);
    CompactTable pages({"x"});
    for (DocId d : {d1_, d2_}) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      pages.Add(t);
    }
    ASSERT_TRUE(catalog_->AddTable("pages", std::move(pages)).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractPrice", 1, 1).ok());
    catalog_->RegisterBuiltinFunctions();
  }

  void TearDown() override { FailPoints::Instance().Clear(); }

  // After unfolding this is a single q rule seeded by the stored pages
  // join, so with a pool the body evaluates in document shards.
  Result<Program> Parse(bool annotated = false) {
    std::string src = annotated ? R"(
      q(x, p)? :- pages(x), extractPrice(x, p).
      extractPrice(x, p) :- from(x, p), numeric(p) = yes,
                            bold_font(p) = yes.
    )"
                                : R"(
      q(x, p) :- pages(x), extractPrice(x, p).
      extractPrice(x, p) :- from(x, p), numeric(p) = yes,
                            bold_font(p) = yes.
    )";
    IFLEX_ASSIGN_OR_RETURN(Program prog, ParseProgram(src, *catalog_));
    prog.set_query("q");
    return prog;
  }

  Result<CompactTable> Baseline(const Program& prog) {
    Executor exec(*catalog_);
    return exec.Execute(prog);
  }

  Corpus corpus_;
  DocId d1_ = 0, d2_ = 0;
  std::unique_ptr<Catalog> catalog_;
};

// ------------------------------------------------------------- alog.lexer

TEST_F(ChaosTest, LexerFaultFailsParseCleanly) {
  ASSERT_TRUE(FailPoints::Instance().Configure("alog.lexer=error").ok());
  auto prog = Parse();
  ASSERT_FALSE(prog.ok());
  EXPECT_EQ(prog.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(prog.status().message().find("alog.lexer"), std::string::npos);
}

TEST_F(ChaosTest, LexerEveryKRecoversDeterministically) {
  // Fires on hits 2, 4, ...: parse, fail, parse, fail.
  ASSERT_TRUE(
      FailPoints::Instance().Configure("alog.lexer=error|every:2").ok());
  EXPECT_TRUE(Parse().ok());
  EXPECT_FALSE(Parse().ok());
  EXPECT_TRUE(Parse().ok());
  EXPECT_FALSE(Parse().ok());
}

// ---------------------------------------------------------- exec.annotate

TEST_F(ChaosTest, AnnotateFaultAbortsByDefault) {
  auto prog = Parse(/*annotated=*/true);
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(FailPoints::Instance().Configure("exec.annotate=error").ok());
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(result.status().message().find("exec.annotate"),
            std::string::npos);
}

TEST_F(ChaosTest, AnnotateFaultSkipsRuleUnderBestEffort) {
  auto prog = Parse(/*annotated=*/true);
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(FailPoints::Instance().Configure("exec.annotate=error").ok());
  ExecOptions options;
  options.best_effort = true;
  Executor exec(*catalog_, options);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  // The only q rule was trapped, so the degraded answer is the empty
  // table with q's schema — valid, just missing the rule's contribution.
  EXPECT_EQ(result->size(), 0u);
  ASSERT_TRUE(exec.report().degraded);
  ASSERT_EQ(exec.report().skipped_rules.size(), 1u);
  EXPECT_NE(exec.report().skipped_rules[0].find("q"), std::string::npos);
  EXPECT_NE(exec.report().skipped_rules[0].find("exec.annotate"),
            std::string::npos);
}

TEST_F(ChaosTest, AnnotateDelayDoesNotChangeTheResult) {
  auto prog = Parse(/*annotated=*/true);
  ASSERT_TRUE(prog.ok());
  auto base = Baseline(*prog);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(FailPoints::Instance().Configure("exec.annotate=delay:5").ok());
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(&corpus_), base->ToString(&corpus_));
  EXPECT_FALSE(exec.report().degraded);
}

// ------------------------------------------------------------- exec.cache

TEST_F(ChaosTest, CacheFaultDegradesToMissNeverWrongAnswer) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  auto base = Baseline(*prog);
  ASSERT_TRUE(base.ok());

  ReuseCache cache;
  {
    Executor warm(*catalog_);
    ASSERT_TRUE(warm.Execute(*prog, &cache).ok());
    ASSERT_GT(cache.size(), 0u);
  }
  ASSERT_TRUE(FailPoints::Instance().Configure("exec.cache=error").ok());
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog, &cache);
  ASSERT_TRUE(result.ok()) << result.status();
  // The injected lookup fault costs a recompute, not correctness.
  EXPECT_EQ(result->ToString(&corpus_), base->ToString(&corpus_));
  EXPECT_EQ(exec.stats().cache_hits, 0u);
  EXPECT_FALSE(exec.report().degraded);
}

// ------------------------------------------------------------- exec.shard

TEST_F(ChaosTest, ShardFaultAbortsByDefault) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(FailPoints::Instance().Configure("exec.shard=error").ok());
  runtime::TaskPool pool(8);
  ExecOptions options;
  options.pool = &pool;
  // One document per morsel: the two-document corpus yields two morsels,
  // so the batch really fans out over the pool (a single morsel would
  // degrade to the inline loop and skip the pool's injection sites).
  options.morsel_docs = 1;
  Executor exec(*catalog_, options);
  auto result = exec.Execute(*prog);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(result.status().message().find("exec.shard"), std::string::npos);
}

TEST_F(ChaosTest, PersistentShardFaultDegradesToEmptyWithFailedDocs) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  // Fires on every hit, so the per-seed isolation retries fail too: every
  // document is recorded as failed and the rule is skipped.
  ASSERT_TRUE(FailPoints::Instance().Configure("exec.shard=error").ok());
  runtime::TaskPool pool(8);
  ExecOptions options;
  options.pool = &pool;
  options.best_effort = true;
  options.morsel_docs = 1;  // one morsel per document
  Executor exec(*catalog_, options);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 0u);
  ASSERT_TRUE(exec.report().degraded);
  EXPECT_EQ(exec.report().failed_docs.size(), 2u);
  EXPECT_EQ(exec.report().skipped_rules.size(), 1u);
  EXPECT_GE(exec.metrics().counter("resilience.docs_failed")->value(), 2u);
}

TEST_F(ChaosTest, TransientShardFaultRecoversExactly) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  auto base = Baseline(*prog);
  ASSERT_TRUE(base.ok());
  // Two morsels (one per document): exactly one of the two initial morsel
  // evaluations draws hit #2 and fails; its seed-by-seed retry draws a
  // non-firing hit and succeeds. The recovered answer must be complete
  // and byte-identical to the fault-free serial one.
  ASSERT_TRUE(
      FailPoints::Instance().Configure("exec.shard=error|every:2").ok());
  runtime::TaskPool pool(8);
  ExecOptions options;
  options.pool = &pool;
  options.best_effort = true;
  options.morsel_docs = 1;  // one morsel per document
  Executor exec(*catalog_, options);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->ToString(&corpus_), base->ToString(&corpus_));
  EXPECT_FALSE(exec.report().degraded);
}

// ------------------------------------------------------------ runtime.task

TEST_F(ChaosTest, TaskFaultSurfacesAsCleanInternalError) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(FailPoints::Instance().Configure("runtime.task=error").ok());
  runtime::TaskPool pool(8);
  ExecOptions options;
  options.pool = &pool;
  options.morsel_docs = 1;  // two morsels, so the batch reaches the pool
  Executor exec(*catalog_, options);
  auto result = exec.Execute(*prog);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("runtime.task"),
            std::string::npos);
}

TEST_F(ChaosTest, TaskFaultSkipsRuleUnderBestEffort) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(FailPoints::Instance().Configure("runtime.task=error").ok());
  runtime::TaskPool pool(8);
  ExecOptions options;
  options.pool = &pool;
  options.best_effort = true;
  options.morsel_docs = 1;  // two morsels, so the batch reaches the pool
  Executor exec(*catalog_, options);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(exec.report().degraded);
  EXPECT_EQ(exec.report().skipped_rules.size(), 1u);
}

// ------------------------------------------------ deadline under injected
// slowness (the acceptance bound: kDeadlineExceeded within 2x at 8 threads)

TEST_F(ChaosTest, DeadlineBoundHoldsUnderInjectedDelays) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  // Each morsel evaluation sleeps 300ms; the 200ms deadline expires during
  // the sleep and the first cooperative check after it stops the run.
  ASSERT_TRUE(FailPoints::Instance().Configure("exec.shard=delay:300").ok());
  runtime::TaskPool pool(8);
  ExecOptions options;
  options.pool = &pool;
  options.morsel_docs = 1;  // one morsel per document
  constexpr int kDeadlineMs = 200;
  options.deadline = Deadline::AfterMillis(kDeadlineMs);
  Executor exec(*catalog_, options);
  auto start = std::chrono::steady_clock::now();
  auto result = exec.Execute(*prog);
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LE(elapsed_ms, 2 * kDeadlineMs)
      << "deadline enforcement took too long";
}

// --------------------------------------------------------- exec.joinindex

// A fault in the hash equi-join index must degrade to the legacy
// tri-state scan — identical answer, just slower — and, per the shared
// cache rule, the Verify memo must not be populated while faults are
// armed. Needs a conds-bearing join over a table past the hash
// threshold, so it builds its own catalog.
TEST(JoinIndexChaosTest, IndexFaultDegradesToScanNeverWrongAnswer) {
  FailPoints::Instance().Clear();
  Corpus corpus;
  Catalog catalog(&corpus);
  auto num = [](double n) { return Cell::Exact(Value::Number(n)); };
  CompactTable r({"a", "b"});
  for (int i = 1; i <= 3; ++i) {
    CompactTuple t;
    t.cells.push_back(num(i));
    t.cells.push_back(num(i * 10));
    r.Add(std::move(t));
  }
  ASSERT_TRUE(catalog.AddTable("r", std::move(r)).ok());
  CompactTable s({"b", "c"});
  for (int i = 1; i <= 9; ++i) {  // 9 rows: past the hash threshold
    CompactTuple t;
    t.cells.push_back(num(i * 10));
    t.cells.push_back(num(i * 100));
    s.Add(std::move(t));
  }
  ASSERT_TRUE(catalog.AddTable("s", std::move(s)).ok());
  catalog.RegisterBuiltinFunctions();

  auto prog = ParseProgram("q(a, c) :- r(a, b), s(b, c).", catalog);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("q");

  Executor baseline(catalog);
  auto base = baseline.Execute(*prog);
  ASSERT_TRUE(base.ok()) << base.status();
  ASSERT_GT(baseline.stats().join_probes, 0u);  // hash path really runs

  ASSERT_TRUE(
      FailPoints::Instance().Configure("exec.joinindex=error").ok());
  Executor exec(catalog);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->ToString(&corpus), base->ToString(&corpus));
  EXPECT_GT(FailPoints::Instance().HitCount("exec.joinindex"), 0u);
  // Degraded to the scan: no probes answered from the index.
  EXPECT_EQ(exec.stats().join_probes, 0u);
  EXPECT_FALSE(exec.report().degraded);
  FailPoints::Instance().Clear();
}

// ------------------------------------------------------------ exec.compile

// A fault at the rule-compilation site must degrade that rule to the
// interpreter — identical answer, just slower. Firing on every hit, no
// rule compiles at all and the run is still byte-identical.
TEST_F(ChaosTest, CompileFaultDegradesToInterpreterNeverWrongAnswer) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  auto base = Baseline(*prog);
  ASSERT_TRUE(base.ok());
  {
    // The clean baseline really took the compiled path.
    Executor check(*catalog_);
    ASSERT_TRUE(check.Execute(*prog).ok());
    ASSERT_GT(check.stats().rules_compiled, 0u);
  }

  ASSERT_TRUE(FailPoints::Instance().Configure("exec.compile=error").ok());
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->ToString(&corpus_), base->ToString(&corpus_));
  EXPECT_GT(FailPoints::Instance().HitCount("exec.compile"), 0u);
  // Degraded to the interpreter: no rule ran through a plan.
  EXPECT_EQ(exec.stats().rules_compiled, 0u);
  EXPECT_FALSE(exec.report().degraded);
}

TEST_F(ChaosTest, TransientCompileFaultRecoversDeterministically) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok());
  auto base = Baseline(*prog);
  ASSERT_TRUE(base.ok());
  // The unfolded program has one q rule, so each Execute draws one hit:
  // fires on hits 2, 4, ... — compiled, interpreted, compiled, ...
  // Either way the bytes never change.
  ASSERT_TRUE(
      FailPoints::Instance().Configure("exec.compile=error|every:2").ok());
  for (size_t expect_compiled : {1u, 0u, 1u, 0u}) {
    Executor exec(*catalog_);
    auto result = exec.Execute(*prog);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->ToString(&corpus_), base->ToString(&corpus_));
    EXPECT_EQ(exec.stats().rules_compiled, expect_compiled);
  }
}

// ----------------------------------------- nothing armed, nothing changes

TEST_F(ChaosTest, DisarmedFailPointsAreInvisible) {
  auto prog = Parse(/*annotated=*/true);
  ASSERT_TRUE(prog.ok());
  auto base = Baseline(*prog);
  ASSERT_TRUE(base.ok());
  runtime::TaskPool pool(8);
  ExecOptions options;
  options.pool = &pool;
  options.best_effort = true;
  Executor exec(*catalog_, options);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(&corpus_), base->ToString(&corpus_));
  EXPECT_FALSE(exec.report().degraded);
}

}  // namespace
}  // namespace iflex
