// Task-registry level checks: ids, scenario sizes, scaling behaviour, and
// the cost-model inputs each task carries.
#include <gtest/gtest.h>

#include "tasks/task.h"
#include "xlog/precise.h"

namespace iflex {
namespace {

TEST(TaskRegistryTest, AllIdsBuild) {
  for (const std::string& id : AllTaskIds()) {
    auto task = MakeTask(id, 12);
    ASSERT_TRUE(task.ok()) << id << ": " << task.status();
    EXPECT_EQ((*task)->id, id);
    EXPECT_FALSE((*task)->description.empty());
    EXPECT_GT((*task)->gold.query_result.size(), 0u) << id;
    EXPECT_GT((*task)->n_procedures, 0u);
    EXPECT_GT((*task)->n_attributes, 0u);
    EXPECT_GT((*task)->n_rules, 0u);
  }
  for (const std::string& id : DblifeTaskIds()) {
    auto task = MakeTask(id, 40);
    ASSERT_TRUE(task.ok()) << id << ": " << task.status();
    EXPECT_GT((*task)->gold.query_result.size(), 0u) << id;
  }
  EXPECT_FALSE(MakeTask("T0", 10).ok());
}

TEST(TaskRegistryTest, ScenarioSizesMatchTableThree) {
  for (const std::string& id : AllTaskIds()) {
    auto sizes = ScenarioSizes(id);
    ASSERT_EQ(sizes.size(), 3u) << id;
    EXPECT_LT(sizes[0], sizes[1]);
    EXPECT_LT(sizes[1], sizes[2]);
  }
  // Paper anchors.
  EXPECT_EQ(ScenarioSizes("T1").back(), 250u);
  EXPECT_EQ(ScenarioSizes("T5").back(), 2136u);
  EXPECT_EQ(ScenarioSizes("T8").back(), 2490u);
}

TEST(TaskRegistryTest, ScaleControlsTableSize) {
  auto small = MakeTask("T7", 20);
  auto large = MakeTask("T7", 80);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_EQ((*small)->tuples_per_table, 20u);
  EXPECT_EQ((*large)->tuples_per_table, 80u);
  EXPECT_GT((*large)->gold.query_result.size(),
            (*small)->gold.query_result.size());
}

TEST(TaskRegistryTest, GoldExtractionSpansResolve) {
  for (const std::string& id : AllTaskIds()) {
    auto task = MakeTask(id, 15);
    ASSERT_TRUE(task.ok());
    for (const auto& [pred, extractions] : (*task)->gold.extractions) {
      for (const auto& e : extractions) {
        for (const Value& v : e.outputs) {
          if (!v.has_span()) continue;
          EXPECT_EQ((*task)->corpus->TextOf(v.span()), v.AsText())
              << id << "/" << pred;
        }
      }
    }
  }
}

TEST(TaskRegistryTest, PreciseBaselineIsIdempotent) {
  auto task = MakeTask("T1", 15);
  ASSERT_TRUE(task.ok());
  ASSERT_TRUE(AddPreciseBaseline(task->get()).ok());
  // Declaring twice must not fail (shared extractors are idempotent).
  ASSERT_TRUE(AddPreciseBaseline(task->get()).ok());
  EXPECT_FALSE((*task)->precise_program.rules().empty());
}

TEST(TaskRegistryTest, SampledCatalogPreservesAlignedJoinPartners) {
  auto task = MakeTask("T9", 60);
  ASSERT_TRUE(task.ok());
  // Equal-size tables sampled with one seed draw identical index sets.
  auto t6 = MakeTask("T6", 60);
  ASSERT_TRUE(t6.ok());
  Catalog sampled = (*t6)->catalog->CloneWithSampledTables(0.25, 99);
  const CompactTable* sig = *sampled.Table("sigmodPages");
  const CompactTable* icde = *sampled.Table("icdePages");
  ASSERT_EQ(sig->size(), icde->size());
}

}  // namespace
}  // namespace iflex
