#include <gtest/gtest.h>

#include "text/corpus.h"
#include "text/document.h"
#include "text/markup.h"
#include "text/markup_parser.h"
#include "text/span.h"

namespace iflex {
namespace {

TEST(SpanTest, ContainsAndOverlaps) {
  Span a(0, 10, 20);
  Span b(0, 12, 18);
  Span c(0, 18, 25);
  Span d(1, 12, 18);
  EXPECT_TRUE(a.Contains(b));
  EXPECT_FALSE(b.Contains(a));
  EXPECT_TRUE(a.Overlaps(c));
  EXPECT_FALSE(a.Contains(c));
  EXPECT_FALSE(a.Contains(d));  // different document
  EXPECT_FALSE(a.Overlaps(d));
}

TEST(SpanTest, OrderingAndEquality) {
  EXPECT_EQ(Span(0, 1, 2), Span(0, 1, 2));
  EXPECT_LT(Span(0, 1, 2), Span(0, 1, 3));
  EXPECT_LT(Span(0, 1, 9), Span(0, 2, 3));
  EXPECT_LT(Span(0, 9, 9), Span(1, 0, 1));
}

TEST(MarkupLayerTest, CoalescesOverlaps) {
  MarkupLayer layer;
  layer.Add(5, 10);
  layer.Add(8, 15);
  layer.Add(20, 25);
  ASSERT_EQ(layer.ranges().size(), 2u);
  EXPECT_TRUE(layer.Covers(5, 15));
  EXPECT_FALSE(layer.Covers(5, 16));
  EXPECT_TRUE(layer.Covers(20, 25));
}

TEST(MarkupLayerTest, CoversDistinctly) {
  MarkupLayer layer;
  layer.Add(5, 10);
  EXPECT_TRUE(layer.CoversDistinctly(5, 10));
  EXPECT_FALSE(layer.CoversDistinctly(6, 10));  // extendable to the left
  EXPECT_FALSE(layer.CoversDistinctly(5, 9));
}

TEST(MarkupLayerTest, MaximalRunsWithinClipsToWindow) {
  MarkupLayer layer;
  layer.Add(5, 10);
  layer.Add(12, 20);
  auto runs = layer.MaximalRunsWithin(7, 15);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], std::make_pair(7u, 10u));
  EXPECT_EQ(runs[1], std::make_pair(12u, 15u));
}

TEST(MarkupLayerTest, DistinctRunsRequireFullContainment) {
  MarkupLayer layer;
  layer.Add(5, 10);
  layer.Add(12, 20);
  auto runs = layer.DistinctRunsWithin(4, 15);
  ASSERT_EQ(runs.size(), 1u);  // [12,20) sticks out of the window
  EXPECT_EQ(runs[0], std::make_pair(5u, 10u));
}

TEST(MarkupLayerTest, IntersectsEdges) {
  MarkupLayer layer;
  layer.Add(5, 10);
  EXPECT_TRUE(layer.Intersects(9, 12));
  EXPECT_FALSE(layer.Intersects(10, 12));  // half-open
  EXPECT_FALSE(layer.Intersects(0, 5));
}

TEST(DocumentTest, TokenizeStripsPunctuation) {
  Document doc("d", "Price: $351,000. Only (two) left!");
  ASSERT_EQ(doc.tokens().size(), 5u);
  auto tok = [&](size_t i) {
    return std::string(
        doc.TextOf(Span(doc.id(), doc.tokens()[i].begin, doc.tokens()[i].end)));
  };
  EXPECT_EQ(tok(0), "Price");
  EXPECT_EQ(tok(1), "$351,000");
  EXPECT_EQ(tok(2), "Only");
  EXPECT_EQ(tok(3), "two");
  EXPECT_EQ(tok(4), "left");
}

TEST(DocumentTest, SubSpanEnumerationCount) {
  Document doc("d", "a b c");
  std::vector<Span> spans;
  EXPECT_TRUE(doc.EnumerateSubSpans(doc.FullSpan(), 100, &spans));
  // 3 tokens -> 3 + 2 + 1 = 6 token-aligned sub-spans.
  EXPECT_EQ(spans.size(), 6u);
  EXPECT_EQ(doc.CountSubSpans(doc.FullSpan()), 6u);
}

TEST(DocumentTest, SubSpanEnumerationRespectsCap) {
  Document doc("d", "a b c d e f g h");
  std::vector<Span> spans;
  EXPECT_FALSE(doc.EnumerateSubSpans(doc.FullSpan(), 5, &spans));
  EXPECT_EQ(spans.size(), 5u);
}

TEST(DocumentTest, AlignToTokens) {
  Document doc("d", "  hello world  ");
  Span aligned = doc.AlignToTokens(doc.FullSpan());
  EXPECT_EQ(doc.TextOf(aligned), "hello world");
  Span none = doc.AlignToTokens(Span(doc.id(), 0, 2));
  EXPECT_TRUE(none.empty());
}

TEST(DocumentTest, PrecedingLabel) {
  Document doc("d", "Panelists: Jane Smith\nChairs: Bob Jones");
  doc.mutable_layer(MarkupKind::kLabel).Add(0, 10);   // "Panelists:"
  doc.mutable_layer(MarkupKind::kLabel).Add(22, 29);  // "Chairs:"
  auto l1 = doc.PrecedingLabel(15);
  ASSERT_TRUE(l1.has_value());
  EXPECT_EQ(doc.TextOf(*l1), "Panelists:");
  auto l2 = doc.PrecedingLabel(35);
  ASSERT_TRUE(l2.has_value());
  EXPECT_EQ(doc.TextOf(*l2), "Chairs:");
  EXPECT_FALSE(doc.PrecedingLabel(0).has_value());
}

TEST(MarkupParserTest, ParsesTagsIntoLayers) {
  auto doc = ParseMarkup("d", "Price: <b>$351,000</b> and <i>Lincoln</i>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->text(), "Price: $351,000 and Lincoln");
  EXPECT_TRUE(doc->layer(MarkupKind::kBold).Covers(7, 15));
  EXPECT_TRUE(doc->layer(MarkupKind::kItalic).Covers(20, 27));
  EXPECT_FALSE(doc->layer(MarkupKind::kBold).Intersects(16, 27));
}

TEST(MarkupParserTest, NestedTags) {
  auto doc = ParseMarkup("d", "<li><b>X</b> rest</li>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->text(), "X rest");
  EXPECT_TRUE(doc->layer(MarkupKind::kListItem).Covers(0, 6));
  EXPECT_TRUE(doc->layer(MarkupKind::kBold).CoversDistinctly(0, 1));
}

TEST(MarkupParserTest, RejectsMismatchedTags) {
  EXPECT_FALSE(ParseMarkup("d", "<b>x</i>").ok());
  EXPECT_FALSE(ParseMarkup("d", "<b>x").ok());
  EXPECT_FALSE(ParseMarkup("d", "a <foo> b").ok());
  EXPECT_FALSE(ParseMarkup("d", "a < b").ok());
}

TEST(MarkupParserTest, MalformedMarkupReportsParseErrorWithPosition) {
  // Every rejection is a kParseError naming the document and the offset
  // of the offending construct — the load path surfaces these verbatim.
  auto mismatched = ParseMarkup("doc.html", "ab<b>x</i>");
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kParseError);
  EXPECT_NE(mismatched.status().message().find("offset 6"),
            std::string::npos)
      << mismatched.status().message();
  EXPECT_NE(mismatched.status().message().find("doc.html"),
            std::string::npos);

  auto unterminated = ParseMarkup("doc.html", "abc<b unterminated");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_EQ(unterminated.status().code(), StatusCode::kParseError);
  EXPECT_NE(unterminated.status().message().find("offset 3"),
            std::string::npos)
      << unterminated.status().message();

  auto unclosed = ParseMarkup("doc.html", "xy<b>bold text");
  ASSERT_FALSE(unclosed.ok());
  EXPECT_EQ(unclosed.status().code(), StatusCode::kParseError);
  EXPECT_NE(unclosed.status().message().find("offset 2"), std::string::npos)
      << unclosed.status().message();
}

TEST(MarkupParserTest, RejectsPathologicalNesting) {
  // Depth cap: 64 is far above real documents, far below a stack bomb.
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "<b>";
  deep += "x";
  for (int i = 0; i < 100; ++i) deep += "</b>";
  auto doc = ParseMarkup("d", deep);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("nesting"), std::string::npos);

  // At the cap itself parsing still succeeds.
  std::string ok_deep;
  for (int i = 0; i < 64; ++i) ok_deep += "<b>";
  ok_deep += "x";
  for (int i = 0; i < 64; ++i) ok_deep += "</b>";
  EXPECT_TRUE(ParseMarkup("d", ok_deep).ok());
}

TEST(MarkupParserTest, RenderRoundTrip) {
  std::string src = "<title>IMDB</title>\n<b>#1</b> <i>The Movie</i>";
  auto doc = ParseMarkup("d", src);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(RenderMarkup(*doc), src);
}

TEST(CorpusTest, AddAndLookup) {
  Corpus corpus;
  DocId a = corpus.Add(Document("a", "first doc"));
  DocId b = corpus.Add(Document("b", "second doc"));
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.Get(a).text(), "first doc");
  EXPECT_EQ(*corpus.Find("b"), b);
  EXPECT_FALSE(corpus.Find("zzz").ok());
  EXPECT_EQ(corpus.TextOf(Span(b, 0, 6)), "second");
}

}  // namespace
}  // namespace iflex
