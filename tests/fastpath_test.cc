// Interned fast paths (docs/PERFORMANCE.md): the string interner and
// token cache behind similar(), the Verify memo behind constraint
// application, and the hash equi-join inside JoinAtom. The contract for
// every fast path is the same — byte-identical results to the legacy
// code, just fewer repeated computations — so most tests here are
// differential: run the same program with ExecOptions::enable_fast_path
// on and off and require equal output.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "alog/catalog.h"
#include "common/intern.h"
#include "exec/executor.h"
#include "exec/verify_memo.h"
#include "resilience/failpoint.h"

namespace iflex {
namespace {

// ---------------------------------------------------------- StringInterner

TEST(StringInternerTest, InternIsIdempotentAndRoundTrips) {
  StringInterner interner;
  ValueId a = interner.Intern("hello");
  ValueId b = interner.Intern("world");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("hello"), a);
  EXPECT_EQ(interner.TextOf(a), "hello");
  EXPECT_EQ(interner.TextOf(b), "world");
  EXPECT_EQ(interner.size(), 2u);
  // One miss per distinct string, one hit for the repeat.
  EXPECT_EQ(interner.misses(), 2u);
  EXPECT_EQ(interner.hits(), 1u);
}

TEST(StringInternerTest, FindNeverInserts) {
  StringInterner interner;
  EXPECT_EQ(interner.Find("absent"), kInvalidValueId);
  EXPECT_EQ(interner.size(), 0u);
  ValueId id = interner.Intern("present");
  EXPECT_EQ(interner.Find("present"), id);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(StringInternerTest, FreezeStopsGrowthButKeepsLookups) {
  StringInterner interner;
  ValueId known = interner.Intern("known");
  interner.Freeze();
  EXPECT_TRUE(interner.frozen());
  // Known strings still resolve; unseen ones report invalid instead of
  // growing the arena (callers fall back to their slow path).
  EXPECT_EQ(interner.Intern("known"), known);
  EXPECT_EQ(interner.Intern("unseen"), kInvalidValueId);
  EXPECT_EQ(interner.size(), 1u);
  EXPECT_EQ(interner.TextOf(known), "known");
}

// --------------------------------------------------------------TokenCache

TEST(TokenCacheTest, TokensAreSortedUniqueAndCached) {
  StringInterner interner;
  TokenCache cache(&interner);
  const std::vector<ValueId>& t1 = cache.TokensOf("The quick the QUICK fox");
  // Lowercased, deduplicated: {the, quick, fox}.
  EXPECT_EQ(t1.size(), 3u);
  for (size_t i = 1; i < t1.size(); ++i) EXPECT_LT(t1[i - 1], t1[i]);
  const std::vector<ValueId>& t2 = cache.TokensOf("The quick the QUICK fox");
  EXPECT_EQ(&t1, &t2);  // stable reference, served from cache
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(TokenCacheTest, TokenIdJaccardMatchesReferenceImplementation) {
  StringInterner interner;
  TokenCache cache(&interner);
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"The Godfather", "the godfather"},
      {"Basktall HS", "Basktall"},
      {"abc", "xyz"},
      {"", ""},
      {"one two three", "two three four"},
      {"Price: $351,000", "price 351 000"},
  };
  for (const auto& [a, b] : cases) {
    EXPECT_DOUBLE_EQ(TokenIdJaccard(cache.TokensOf(a), cache.TokensOf(b)),
                     TokenJaccard(a, b))
        << "\"" << a << "\" vs \"" << b << "\"";
  }
}

// -------------------------------------------------------------- VerifyMemo

VerifyMemo::Key TestKey(ValueId feature, uint8_t value) {
  VerifyMemo::Key k{};
  k.feature = feature;
  k.value = value;
  k.target_kind = 1;
  k.text = 7;
  return k;
}

TEST(VerifyMemoTest, LookupAfterInsertHitsAndCounts) {
  VerifyMemo memo;
  EXPECT_FALSE(memo.Lookup(TestKey(1, 1)).has_value());
  memo.Insert(TestKey(1, 1), 1);
  memo.Insert(TestKey(2, 0), 0);
  memo.Insert(TestKey(3, 1), -1);  // VerifyText "don't know"
  EXPECT_EQ(memo.Lookup(TestKey(1, 1)), 1);
  EXPECT_EQ(memo.Lookup(TestKey(2, 0)), 0);
  EXPECT_EQ(memo.Lookup(TestKey(3, 1)), -1);
  EXPECT_FALSE(memo.Lookup(TestKey(4, 0)).has_value());
  EXPECT_EQ(memo.size(), 3u);
  EXPECT_EQ(memo.hits(), 3u);
  EXPECT_EQ(memo.misses(), 2u);
  memo.Clear();
  EXPECT_EQ(memo.size(), 0u);
  EXPECT_FALSE(memo.Lookup(TestKey(1, 1)).has_value());
}

TEST(VerifyMemoTest, InsertSuppressedWhileFailPointsArmed) {
  // Mirrors the ReuseCache degraded-exclusion rule: runs that may have
  // been perturbed by injected faults must never populate shared caches.
  VerifyMemo memo;
  ASSERT_TRUE(
      resilience::FailPoints::Instance().Configure("some.site=error").ok());
  memo.Insert(TestKey(1, 1), 1);
  resilience::FailPoints::Instance().Clear();
  EXPECT_EQ(memo.size(), 0u);
  EXPECT_FALSE(memo.Lookup(TestKey(1, 1)).has_value());
  // Disarmed again: inserts flow normally.
  memo.Insert(TestKey(1, 1), 1);
  EXPECT_EQ(memo.Lookup(TestKey(1, 1)), 1);
}

// ----------------------------------------------------------- hash equi-join

Cell Num(double n) { return Cell::Exact(Value::Number(n)); }
Cell Str(const std::string& s) { return Cell::Exact(Value::String(s)); }

// Join fixture sized past the hash threshold, with deliberately awkward
// rows: a numeric-text key ("30" must join 30), a multi-assignment cell
// (irregular: the index cannot cover it), and keys that collide as text
// but not as values.
class HashJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = std::make_unique<Catalog>(&corpus_);
    CompactTable r({"a", "b"});
    auto add_r = [&](Cell a, Cell b) {
      CompactTuple t;
      t.cells.push_back(std::move(a));
      t.cells.push_back(std::move(b));
      r.Add(std::move(t));
    };
    add_r(Num(1), Num(10));
    add_r(Num(2), Num(20));
    add_r(Num(3), Str("30"));   // joins s's numeric 30 (text parses loose)
    add_r(Num(4), Str("abc"));
    add_r(Num(5), Num(999));    // matches nothing
    ASSERT_TRUE(catalog_->AddTable("r", std::move(r)).ok());

    CompactTable s({"b", "c"});
    auto add_s = [&](Cell b, Cell c) {
      CompactTuple t;
      t.cells.push_back(std::move(b));
      t.cells.push_back(std::move(c));
      s.Add(std::move(t));
    };
    add_s(Num(10), Num(100));
    add_s(Num(20), Num(200));
    add_s(Num(30), Num(300));
    add_s(Str("abc"), Num(400));
    // Irregular row: two possible key values; the scan must still find it
    // for both b=10 and b=20 probes.
    {
      CompactTuple t;
      Cell multi;
      multi.assignments.push_back(Assignment::Exact(Value::Number(10)));
      multi.assignments.push_back(Assignment::Exact(Value::Number(20)));
      t.cells.push_back(std::move(multi));
      t.cells.push_back(Num(500));
      s.Add(std::move(t));
    }
    add_s(Str("xyz"), Num(600));
    add_s(Num(70), Num(700));
    add_s(Num(80), Num(800));
    add_s(Num(90), Num(900));  // 9 rows >= hash threshold (8)
    ASSERT_TRUE(catalog_->AddTable("s", std::move(s)).ok());
    catalog_->RegisterBuiltinFunctions();
  }

  Result<CompactTable> Run(bool fast, ExecStats* stats_out) {
    auto prog = ParseProgram("q(a, c) :- r(a, b), s(b, c).", *catalog_);
    if (!prog.ok()) return prog.status();
    prog->set_query("q");
    ExecOptions options;
    options.enable_fast_path = fast;
    Executor exec(*catalog_, options);
    IFLEX_ASSIGN_OR_RETURN(CompactTable result, exec.Execute(*prog));
    if (stats_out != nullptr) *stats_out = exec.stats();
    return result;
  }

  Corpus corpus_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(HashJoinTest, HashPathIsByteIdenticalToLegacyScan) {
  ExecStats legacy_stats, fast_stats;
  auto legacy = Run(/*fast=*/false, &legacy_stats);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  auto fast = Run(/*fast=*/true, &fast_stats);
  ASSERT_TRUE(fast.ok()) << fast.status();

  EXPECT_EQ(fast->ToString(&corpus_), legacy->ToString(&corpus_));
  // Expected matches: (1,100), (1,500 maybe), (2,200), (2,500 maybe),
  // (3,300), (4,400) -> 6 result tuples either way.
  EXPECT_EQ(fast->size(), 6u);

  // The legacy run never touches the index; the fast run answers every
  // r-binding probe from it.
  EXPECT_EQ(legacy_stats.join_probes, 0u);
  EXPECT_EQ(legacy_stats.join_build_rows, 0u);
  EXPECT_GT(fast_stats.join_probes, 0u);
  EXPECT_EQ(fast_stats.join_build_rows, 9u);
  // Indexed probes skip non-matching rows entirely, so the fast path
  // counts strictly fewer candidate pairs.
  EXPECT_LT(fast_stats.join_pairs, legacy_stats.join_pairs);
}

TEST_F(HashJoinTest, EnvVarForcesLegacyPath) {
  // The ctor reads IFLEX_DISABLE_FASTPATH once per process, so this test
  // exercises the ExecOptions gate the env var maps onto.
  ExecStats stats;
  auto result = Run(/*fast=*/false, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.join_probes, 0u);
  EXPECT_EQ(stats.verify_memo_hits, 0u);
}

}  // namespace
}  // namespace iflex
