// End-to-end refinement sessions over small task instances: the
// develop/execute/refine loop of the paper, driven by the simulated
// developer, must converge to (a superset of) the gold result.
#include <gtest/gtest.h>

#include "assistant/session.h"
#include "oracle/evaluate.h"
#include "tasks/task.h"
#include "xlog/precise.h"

namespace iflex {
namespace {

struct SessionOutcome {
  SessionResult session;
  EvalReport report;
};

Result<SessionOutcome> RunTask(const std::string& id, size_t scale,
                               StrategyKind strategy) {
  IFLEX_ASSIGN_OR_RETURN(std::unique_ptr<TaskInstance> task,
                         MakeTask(id, scale));
  SessionOptions options;
  options.strategy = strategy;
  RefinementSession session(*task->catalog, task->initial_program,
                            task->developer.get(), options);
  IFLEX_ASSIGN_OR_RETURN(SessionResult result, session.Run());
  EvalReport report = EvaluateResult(*task->corpus, result.final_result,
                                     task->gold.query_result);
  return SessionOutcome{std::move(result), report};
}

class SessionTaskTest
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {};

TEST_P(SessionTaskTest, SimulationConvergesToGoldSuperset) {
  const auto& [id, scale] = GetParam();
  auto outcome = RunTask(id, scale, StrategyKind::kSimulation);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  const EvalReport& report = outcome->report;
  // Superset semantics: every gold tuple must be covered.
  EXPECT_TRUE(report.covers_all_gold) << id << ": " << report.ToString();
  // The session must converge to the exact result on these clean tasks.
  EXPECT_TRUE(report.exact) << id << ": " << report.ToString();
  EXPECT_GT(outcome->session.questions_asked, 0u);
  EXPECT_GE(outcome->session.iterations.size(), 2u);
  // Last iteration runs on the full data (reuse mode).
  EXPECT_TRUE(outcome->session.iterations.back().full_data);
}

INSTANTIATE_TEST_SUITE_P(
    CoreTasks, SessionTaskTest,
    ::testing::Values(std::make_tuple("T1", 30), std::make_tuple("T2", 30),
                      std::make_tuple("T4", 30), std::make_tuple("T5", 30),
                      std::make_tuple("T7", 30), std::make_tuple("T8", 30)),
    [](const auto& info) { return std::get<0>(info.param); });

class JoinSessionTest
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {};

TEST_P(JoinSessionTest, SimulationCoversGold) {
  const auto& [id, scale] = GetParam();
  auto outcome = RunTask(id, scale, StrategyKind::kSimulation);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->report.covers_all_gold)
      << id << ": " << outcome->report.ToString();
  // Join tasks may converge slightly above 100% (the paper reports 161% /
  // 170% outliers). At these small test scales the gold sets are tiny, so
  // bound the overshoot both relatively and absolutely: a handful of
  // residual maybe-tuples is fine, an unrefined blow-up is not.
  double overshoot = outcome->report.result_tuples -
                     static_cast<double>(outcome->report.gold_tuples);
  EXPECT_TRUE(outcome->report.superset_pct <= 250.0 || overshoot <= 6.0)
      << id << ": " << outcome->report.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    JoinTasks, JoinSessionTest,
    ::testing::Values(std::make_tuple("T3", 40), std::make_tuple("T6", 40),
                      std::make_tuple("T9", 40)),
    [](const auto& info) { return std::get<0>(info.param); });

TEST(PreciseBaselineTest, MatchesGoldExactly) {
  for (const std::string& id : AllTaskIds()) {
    auto task = MakeTask(id, 40);
    ASSERT_TRUE(task.ok()) << id << ": " << task.status();
    ASSERT_TRUE(AddPreciseBaseline(task->get()).ok()) << id;
    Executor exec(*(*task)->catalog);
    auto result = exec.Execute((*task)->precise_program);
    ASSERT_TRUE(result.ok()) << id << ": " << result.status();
    EvalReport report = EvaluateResult(*(*task)->corpus, *result,
                                       (*task)->gold.query_result);
    EXPECT_TRUE(report.exact) << id << ": " << report.ToString();
  }
}

class DblifeSessionTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DblifeSessionTest, ConvergesExactlyWithCleanup) {
  const std::string& id = GetParam();
  auto task = MakeTask(id, 60);
  ASSERT_TRUE(task.ok()) << task.status();
  SessionOptions options;
  options.strategy = StrategyKind::kSimulation;
  RefinementSession session(*(*task)->catalog, (*task)->initial_program,
                            (*task)->developer.get(), options);
  auto result = session.Run();
  ASSERT_TRUE(result.ok()) << result.status();

  // Declarative phase converges to the pre-cleanup gold.
  EvalReport rep = EvaluateResult(*(*task)->corpus, result->final_result,
                                  (*task)->gold.query_result);
  EXPECT_TRUE(rep.exact) << id << ": " << rep.ToString();

  // Cleanup phase (paper §2.2.4), where the task has one.
  if ((*task)->apply_cleanup) {
    auto cleaned = (*task)->apply_cleanup(result->final_program);
    ASSERT_TRUE(cleaned.ok()) << cleaned.status();
    Executor exec(*(*task)->catalog);
    auto final = exec.Execute(*cleaned);
    ASSERT_TRUE(final.ok()) << final.status();
    EvalReport crep = EvaluateResult(*(*task)->corpus, *final,
                                     (*task)->cleanup_gold);
    EXPECT_TRUE(crep.exact) << id << " cleanup: " << crep.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Dblife, DblifeSessionTest,
                         ::testing::Values("Panel", "Project", "Chair"),
                         [](const auto& info) { return info.param; });

TEST(DblifePreciseTest, BaselineMatchesGold) {
  for (const std::string& id : DblifeTaskIds()) {
    auto task = MakeTask(id, 60);
    ASSERT_TRUE(task.ok()) << task.status();
    ASSERT_TRUE(AddPreciseBaseline(task->get()).ok()) << id;
    Executor exec(*(*task)->catalog);
    auto result = exec.Execute((*task)->precise_program);
    ASSERT_TRUE(result.ok()) << id << ": " << result.status();
    const auto& gold = (*task)->apply_cleanup ? (*task)->cleanup_gold
                                              : (*task)->gold.query_result;
    EvalReport rep = EvaluateResult(*(*task)->corpus, *result, gold);
    EXPECT_TRUE(rep.exact) << id << ": " << rep.ToString();
  }
}

TEST(SessionTest, SequentialAsksCheaperQuestions) {
  auto seq = RunTask("T2", 30, StrategyKind::kSequential);
  ASSERT_TRUE(seq.ok()) << seq.status();
  // Sequential always terminates and never loses gold tuples.
  EXPECT_TRUE(seq->report.covers_all_gold) << seq->report.ToString();
  EXPECT_EQ(seq->session.simulations_run, 0u);

  auto sim = RunTask("T2", 30, StrategyKind::kSimulation);
  ASSERT_TRUE(sim.ok());
  EXPECT_GT(sim->session.simulations_run, 0u);
}

}  // namespace
}  // namespace iflex
