// Crash-recovery harness (docs/ROBUSTNESS.md): durable sessions must
// come back byte-identical after a crash. In-process tests drive the
// write-ahead journal / snapshot machinery through Server::HandleLine
// and RecoverAll; the end-to-end tests fork the real iflexd binary
// (IFLEXD_PATH), SIGKILL it at chosen points of a live workload —
// including with a command in flight — restart it on the same data
// directory, and assert the recovered session answers exactly like a
// server that replayed the acknowledged command prefix uninterrupted.
// Runs under the `recovery` ctest label.
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "durability/journal.h"
#include "obs/event_log.h"
#include "resilience/failpoint.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace iflex {
namespace {

using resilience::FailPoints;
using serve::LineClient;
using serve::ParsedResponse;
using serve::ParseResponse;
using serve::Server;
using serve::ServerOptions;

ParsedResponse Call(Server* server, const std::string& line) {
  auto parsed = ParseResponse(server->HandleLine(line));
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? *parsed : ParsedResponse{};
}

// The develop/execute/refine workload (same one the serving tests and
// bench replay). Mutating commands interleave with `run`s, which are
// deliberately not journaled — execution is reproducible from state.
std::vector<std::string> Script() {
  return {
      "gen movies",
      "declare extractEbert 1 2",
      "rule q(t) :- ebertPages(x), extractEbert(x, t, yr), yr < 1960.",
      "rule extractEbert(x, t, yr) :- from(x, t), from(x, yr).",
      "query q",
      "run",
      "constrain extractEbert 1 numeric yes",
      "run",
  };
}

/// Telemetry reduced to the deterministic session-state families
/// (iflex_session_*), with the per-process run_id label erased so
/// expositions from different daemon incarnations are comparable. The
/// exec.* counters legitimately differ after recovery (runs are not
/// replayed); the session gauges must not.
std::string SessionStateFamilies(const std::string& telemetry) {
  std::string out;
  std::istringstream in(telemetry);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("iflex_session_", 0) != 0 &&
        line.rfind("# TYPE iflex_session_", 0) != 0) {
      continue;
    }
    size_t rid = line.find("run_id=\"");
    size_t end = rid == std::string::npos ? rid : line.find('"', rid + 8);
    if (rid != std::string::npos && end != std::string::npos) {
      if (end + 1 < line.size() && line[end + 1] == ',') {
        line.erase(rid, end + 2 - rid);
      } else {
        line.erase(rid, end + 1 - rid);
      }
    }
    out += line;
    out += '\n';
  }
  return out;
}

/// One string that captures everything a client can observe about the
/// session's extraction state: program text, table inventory, a full
/// run's result, and the session-state telemetry families.
std::string Fingerprint(Server* server, const std::string& sid) {
  std::string fp;
  for (const char* probe : {"program", "tables", "run"}) {
    ParsedResponse resp =
        Call(server, "cmd " + sid + " " + std::string(probe));
    fp += std::string(probe) + ":" + (resp.ok ? "ok" : resp.code) + "\n";
    fp += resp.output;
    fp += "\n--\n";
  }
  fp += SessionStateFamilies(Call(server, "telemetry " + sid).output);
  return fp;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::Instance().Clear();
    dir_ = ::testing::TempDir() + "recovery_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FailPoints::Instance().Clear();
    std::filesystem::remove_all(dir_);
  }

  ServerOptions Durable() const {
    ServerOptions options;
    options.data_dir = dir_;
    options.run_id = "recovery-test";
    return options;
  }

  ServerOptions Ephemeral() const {
    ServerOptions options;
    options.run_id = "recovery-test";
    return options;
  }

  std::string dir_;
};

// ------------------------------------------------- in-process recovery

TEST_F(RecoveryTest, RecoveredServerAnswersByteIdentically) {
  std::string before;
  {
    Server a(Durable());
    ASSERT_TRUE(Call(&a, "open s1").ok);
    for (const std::string& command : Script()) {
      EXPECT_TRUE(Call(&a, "cmd s1 " + command).ok) << command;
    }
    before = Fingerprint(&a, "s1");
  }
  // An uninterrupted ephemeral server over the same script agrees with
  // the durable one (journaling changed nothing observable)...
  {
    Server c(Ephemeral());
    ASSERT_TRUE(Call(&c, "open s1").ok);
    for (const std::string& command : Script()) {
      Call(&c, "cmd s1 " + command);
    }
    EXPECT_EQ(Fingerprint(&c, "s1"), before);
  }
  // ...and so does a fresh server recovered from the journal alone.
  Server b(Durable());
  ASSERT_TRUE(b.RecoverAll().ok());
  ASSERT_EQ(b.session_count(), 1u);
  EXPECT_EQ(Fingerprint(&b, "s1"), before);
  EXPECT_GT(b.metrics().counter("serve.sessions_recovered")->value(), 0u);
  // Recovered sessions accept new work immediately.
  EXPECT_TRUE(Call(&b, "cmd s1 run").ok);
}

TEST_F(RecoveryTest, OpenRejectsStaleStateAndRecoverRestoresIt) {
  {
    Server a(Durable());
    ASSERT_TRUE(Call(&a, "open s1").ok);
    ASSERT_TRUE(Call(&a, "cmd s1 gen movies").ok);
  }
  Server b(Durable());
  // No RecoverAll: the session is on disk but not in memory. `open` must
  // not shadow it with an empty session.
  ParsedResponse open = Call(&b, "open s1");
  EXPECT_FALSE(open.ok);
  EXPECT_EQ(open.code, "AlreadyExists");
  ParsedResponse recover = Call(&b, "recover s1");
  EXPECT_TRUE(recover.ok);
  EXPECT_NE(recover.output.find("recovered s1"), std::string::npos);
  EXPECT_NE(Call(&b, "cmd s1 tables").output.find("imdbPages"),
            std::string::npos);
  // Second recover: it is already open.
  EXPECT_EQ(Call(&b, "recover s1").code, "AlreadyExists");
}

TEST_F(RecoveryTest, DuplicateOpenNeverTouchesTheLiveJournal) {
  // A second `open` on a live durable session must be rejected from the
  // in-memory table alone, without ever opening (and tail-truncating) the
  // journal a live writer is appending to.
  Server a(Durable());
  ASSERT_TRUE(Call(&a, "open s1").ok);
  ASSERT_TRUE(Call(&a, "cmd s1 gen movies").ok);
  const std::string path = dir_ + "/s1/journal.log";
  durability::JournalScan before = durability::ScanFile(path);
  ParsedResponse dup = Call(&a, "open s1");
  EXPECT_EQ(dup.code, "AlreadyExists");
  // Rejected from memory, not from the durable-state probe.
  EXPECT_NE(dup.error.find("already open"), std::string::npos);
  durability::JournalScan after = durability::ScanFile(path);
  EXPECT_EQ(after.records.size(), before.records.size());
  // The live session still journals and serves.
  EXPECT_TRUE(Call(&a, "cmd s1 query q").ok);
  EXPECT_EQ(durability::ScanFile(path).records.size(),
            before.records.size() + 1);
}

TEST_F(RecoveryTest, ConcurrentRecoversAdmitExactlyOne) {
  {
    Server a(Durable());
    ASSERT_TRUE(Call(&a, "open s1").ok);
    ASSERT_TRUE(Call(&a, "cmd s1 gen movies").ok);
  }
  // Both threads race `recover s1`; the table reservation must let
  // exactly one of them replay the directory.
  Server b(Durable());
  std::vector<std::string> codes(2);
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&b, &codes, i] {
      auto parsed = ParseResponse(b.HandleLine("recover s1"));
      codes[i] = parsed.ok() ? (parsed->ok ? "ok" : parsed->code) : "bad";
    });
  }
  for (std::thread& t : threads) t.join();
  std::sort(codes.begin(), codes.end());
  EXPECT_EQ(codes[0], "AlreadyExists");
  EXPECT_EQ(codes[1], "ok");
  EXPECT_EQ(b.session_count(), 1u);
  EXPECT_NE(Call(&b, "cmd s1 tables").output.find("imdbPages"),
            std::string::npos);
}

TEST_F(RecoveryTest, RecoverAndPersistValidateTheirPreconditions) {
  Server ephemeral(Ephemeral());
  EXPECT_EQ(Call(&ephemeral, "recover s1").code, "InvalidArgument");
  EXPECT_EQ(Call(&ephemeral, "persist s1").code, "NotFound");
  ASSERT_TRUE(Call(&ephemeral, "open s1").ok);
  EXPECT_EQ(Call(&ephemeral, "persist s1").code, "InvalidArgument");

  Server durable(Durable());
  EXPECT_EQ(Call(&durable, "recover nope").code, "NotFound");
  ASSERT_TRUE(Call(&durable, "open s1").ok);
  ASSERT_TRUE(Call(&durable, "cmd s1 gen movies").ok);
  ASSERT_TRUE(Call(&durable, "cmd s1 query a").ok);
  ASSERT_TRUE(Call(&durable, "cmd s1 query b").ok);
  ParsedResponse persist = Call(&durable, "persist s1");
  EXPECT_TRUE(persist.ok);
  EXPECT_NE(persist.output.find("snapshot of s1 at record 3"),
            std::string::npos);
  // The journal was compacted behind the snapshot: header only.
  durability::JournalScan scan =
      durability::ScanFile(dir_ + "/s1/journal.log");
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], "iflexjournal v1 base=3");
}

TEST_F(RecoveryTest, TornJournalWriteLosesNoAcceptedCommand) {
  std::string accepted_fp;
  {
    Server a(Durable());  // fsync policy defaults to every-record
    ASSERT_TRUE(Call(&a, "open s1").ok);
    ASSERT_TRUE(Call(&a, "cmd s1 gen movies").ok);
    ASSERT_TRUE(Call(&a, "cmd s1 declare extractEbert 1 2").ok);
    // The third mutating command hits a torn journal write: the client
    // sees a typed rejection and the command does NOT execute.
    ASSERT_TRUE(FailPoints::Instance()
                    .Configure("serve.journal.append=error")
                    .ok());
    ParsedResponse torn = Call(&a, "cmd s1 query q");
    EXPECT_FALSE(torn.ok);
    EXPECT_GT(a.metrics().counter("serve.journal_failures")->value(), 0u);
    FailPoints::Instance().Clear();
    // The journal is failed: further mutations are rejected (fail-stop
    // beats silently diverging from disk)...
    EXPECT_FALSE(Call(&a, "cmd s1 query q").ok);
    // ...while reads and the torn-free prefix still serve.
    EXPECT_TRUE(Call(&a, "cmd s1 tables").ok);
    accepted_fp = Fingerprint(&a, "s1");
  }
  // Crash. Recovery discards the torn frame and lands exactly on the
  // accepted prefix: zero accepted-command loss, zero ghost commands.
  Server b(Durable());
  ASSERT_TRUE(b.RecoverAll().ok());
  EXPECT_EQ(b.metrics().counter("serve.replayed_commands")->value(), 2u);
  EXPECT_EQ(Fingerprint(&b, "s1"), accepted_fp);
}

TEST_F(RecoveryTest, PersistRepairsABrokenJournal) {
  Server a(Durable());
  ASSERT_TRUE(Call(&a, "open s1").ok);
  ASSERT_TRUE(Call(&a, "cmd s1 gen movies").ok);
  ASSERT_TRUE(
      FailPoints::Instance().Configure("serve.journal.append=error").ok());
  EXPECT_FALSE(Call(&a, "cmd s1 query q").ok);
  FailPoints::Instance().Clear();
  EXPECT_FALSE(Call(&a, "cmd s1 query q").ok);  // still failed
  ASSERT_TRUE(Call(&a, "persist s1").ok);       // snapshot = repair
  EXPECT_TRUE(Call(&a, "cmd s1 query q").ok);   // accepting again
  EXPECT_GT(a.metrics().counter("serve.snapshots")->value(), 0u);
}

TEST_F(RecoveryTest, CorruptMidJournalDegradesToValidPrefix) {
  {
    Server a(Durable());
    ASSERT_TRUE(Call(&a, "open s1").ok);
    ASSERT_TRUE(Call(&a, "cmd s1 gen movies").ok);
    ASSERT_TRUE(Call(&a, "cmd s1 declare extractEbert 1 2").ok);
    ASSERT_TRUE(Call(&a, "cmd s1 query q").ok);
  }
  // Bit rot in the middle of the journal (record 2 of header+3).
  const std::string path = dir_ + "/s1/journal.log";
  durability::JournalScan before = durability::ScanFile(path);
  ASSERT_EQ(before.records.size(), 4u);
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  size_t offset = 0;
  for (int i = 0; i < 2; ++i) {
    offset += durability::kRecordHeaderBytes + before.records[i].size();
  }
  data[offset + durability::kRecordHeaderBytes] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  // Startup must degrade the session to the last valid prefix — with a
  // warning and a counter — not refuse to boot.
  Server b(Durable());
  ASSERT_TRUE(b.RecoverAll().ok());
  ASSERT_EQ(b.session_count(), 1u);
  EXPECT_EQ(b.metrics().counter("serve.journal_truncated")->value(), 1u);
  EXPECT_EQ(b.metrics().counter("serve.replayed_commands")->value(), 1u);
  EXPECT_NE(Call(&b, "cmd s1 tables").output.find("imdbPages"),
            std::string::npos);
  bool warned = false;
  for (const std::string& line : obs::DefaultEventLog().FormatRecent(64)) {
    if (line.find("journal damaged") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
  // The degraded session is live: new mutations extend the kept prefix.
  EXPECT_TRUE(Call(&b, "cmd s1 declare extractEbert 1 2").ok);
}

TEST_F(RecoveryTest, CrashDuringRecoveryHousekeepingIsIdempotent) {
  {
    Server a(Durable());
    ASSERT_TRUE(Call(&a, "open s1").ok);
    for (const std::string& command : Script()) {
      Call(&a, "cmd s1 " + command);
    }
  }
  // First recovery runs with the snapshot fail point armed: the overdue
  // compaction fails (torn .tmp), which must neither fail recovery nor
  // disturb the journal.
  ServerOptions opts = Durable();
  opts.durability.snapshot_every = 2;
  std::string fp_during;
  {
    ASSERT_TRUE(FailPoints::Instance()
                    .Configure("serve.snapshot.write=error")
                    .ok());
    Server b(opts);
    ASSERT_TRUE(b.RecoverAll().ok());
    EXPECT_GT(b.metrics().counter("serve.snapshot_failures")->value(), 0u);
    fp_during = Fingerprint(&b, "s1");
    FailPoints::Instance().Clear();
    // Server b "crashes" here (destroyed without snapshotting).
  }
  // Second recovery from the untouched journal converges to the same
  // state, and this time the housekeeping snapshot lands.
  Server c(opts);
  ASSERT_TRUE(c.RecoverAll().ok());
  EXPECT_EQ(Fingerprint(&c, "s1"), fp_during);
  EXPECT_GT(c.metrics().counter("serve.snapshots")->value(), 0u);
  // And a third recovery now replays mostly from the snapshot.
  Server d(opts);
  ASSERT_TRUE(d.RecoverAll().ok());
  EXPECT_EQ(Fingerprint(&d, "s1"), fp_during);
}

TEST_F(RecoveryTest, AutoSnapshotKeepsRestartIdentical) {
  ServerOptions opts = Durable();
  opts.durability.snapshot_every = 3;
  std::string before;
  {
    Server a(opts);
    ASSERT_TRUE(Call(&a, "open s1").ok);
    for (const std::string& command : Script()) {
      Call(&a, "cmd s1 " + command);
    }
    // query churn to give compaction something to drop
    ASSERT_TRUE(Call(&a, "cmd s1 query q").ok);
    ASSERT_TRUE(Call(&a, "cmd s1 query q").ok);
    EXPECT_GT(a.metrics().counter("serve.snapshots")->value(), 0u);
    before = Fingerprint(&a, "s1");
  }
  ASSERT_TRUE(std::filesystem::exists(dir_ + "/s1/snapshot.dat"));
  Server b(opts);
  ASSERT_TRUE(b.RecoverAll().ok());
  EXPECT_EQ(Fingerprint(&b, "s1"), before);
}

// --------------------------------------------- end-to-end (SIGKILL)

/// A real iflexd child process on an ephemeral port.
class Daemon {
 public:
  ~Daemon() { KillNow(); }

  /// Starts IFLEXD_PATH with `args`; parses the bound port from its
  /// stdout banner. `env_extra` entries are "KEY=VALUE".
  bool Start(std::vector<std::string> args,
             const std::vector<std::string>& env_extra = {}) {
    int fds[2];
    if (::pipe(fds) != 0) return false;
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      for (const std::string& kv : env_extra) {
        std::string key = kv.substr(0, kv.find('='));
        ::setenv(key.c_str(), kv.c_str() + key.size() + 1, 1);
      }
      std::vector<char*> argv;
      static const std::string kPath = IFLEXD_PATH;
      argv.push_back(const_cast<char*>(kPath.c_str()));
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(kPath.c_str(), argv.data());
      std::_Exit(127);
    }
    ::close(fds[1]);
    // Read the "iflexd listening on 127.0.0.1:<port>" banner.
    std::FILE* out = ::fdopen(fds[0], "r");
    if (out == nullptr) return false;
    char line[256];
    bool got = false;
    while (std::fgets(line, sizeof(line), out) != nullptr) {
      unsigned port = 0;
      if (std::sscanf(line, "iflexd listening on 127.0.0.1:%u", &port) == 1) {
        port_ = static_cast<uint16_t>(port);
        got = true;
        break;
      }
    }
    std::fclose(out);  // the daemon keeps running; we just drop its stdout
    return got;
  }

  /// SIGKILL — the crash under test. No flush, no destructors.
  void KillNow() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  /// Graceful stop via the protocol, for the uninterrupted control runs.
  void Shutdown() {
    if (pid_ <= 0) return;
    LineClient client;
    if (client.Connect(port_).ok()) (void)client.Call("shutdown");
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  uint16_t port() const { return port_; }

 private:
  pid_t pid_ = -1;
  uint16_t port_ = 0;
};

std::vector<std::string> DaemonArgs(const std::string& data_dir) {
  return {"--port", "0",     "--threads",  "2",
          "--data-dir", data_dir, "--fsync", "every"};
}

/// Client-side fingerprint of a daemon session (mirrors Fingerprint()).
std::string RemoteFingerprint(uint16_t port, const std::string& sid) {
  LineClient client;
  EXPECT_TRUE(client.Connect(port).ok());
  std::string fp;
  for (const char* probe : {"program", "tables", "run"}) {
    auto resp = client.Call("cmd " + sid + " " + std::string(probe));
    EXPECT_TRUE(resp.ok()) << probe;
    if (!resp.ok()) return fp;
    fp += std::string(probe) + ":" + (resp->ok ? "ok" : resp->code) + "\n";
    fp += resp->output;
    fp += "\n--\n";
  }
  auto telemetry = client.Call("telemetry " + sid);
  EXPECT_TRUE(telemetry.ok());
  if (telemetry.ok()) fp += SessionStateFamilies(telemetry->output);
  return fp;
}

TEST_F(RecoveryTest, SigkilledDaemonRecoversTheAckedPrefix) {
  // Kill after the k-th acknowledged command, at several points of the
  // workload including mid-script; every acked mutating command must
  // survive, and nothing else.
  for (size_t kill_after : {2u, 5u, 7u}) {
    const std::string data_dir =
        dir_ + "/kill_after_" + std::to_string(kill_after);
    std::filesystem::create_directories(data_dir);
    std::vector<std::string> acked_mutating;
    {
      Daemon daemon;
      ASSERT_TRUE(daemon.Start(DaemonArgs(data_dir)));
      LineClient client;
      ASSERT_TRUE(client.Connect(daemon.port()).ok());
      ASSERT_TRUE(client.Call("open s1").ok());
      size_t sent = 0;
      for (const std::string& command : Script()) {
        auto resp = client.Call("cmd s1 " + command);
        ASSERT_TRUE(resp.ok()) << command;
        if (durability::IsMutatingCommand(command)) {
          acked_mutating.push_back(command);
        }
        if (++sent >= kill_after) break;
      }
      daemon.KillNow();  // SIGKILL: no flush, no graceful anything
    }
    // Restart on the same data dir; recovery runs before the listener.
    Daemon restarted;
    ASSERT_TRUE(restarted.Start(DaemonArgs(data_dir)));
    std::string recovered = RemoteFingerprint(restarted.port(), "s1");

    // Control: an uninterrupted daemon fed exactly the acked commands.
    const std::string control_dir = data_dir + "_control";
    std::filesystem::create_directories(control_dir);
    Daemon control;
    ASSERT_TRUE(control.Start(DaemonArgs(control_dir)));
    {
      LineClient client;
      ASSERT_TRUE(client.Connect(control.port()).ok());
      ASSERT_TRUE(client.Call("open s1").ok());
      for (const std::string& command : acked_mutating) {
        ASSERT_TRUE(client.Call("cmd s1 " + command).ok());
      }
    }
    EXPECT_EQ(recovered, RemoteFingerprint(control.port(), "s1"))
        << "kill_after=" << kill_after;
    restarted.Shutdown();
    control.Shutdown();
  }
}

TEST_F(RecoveryTest, SigkillWithACommandInFlightRecoversAPrefix) {
  std::vector<std::string> base = {"gen movies", "declare extractEbert 1 2"};
  {
    Daemon daemon;
    ASSERT_TRUE(daemon.Start(DaemonArgs(dir_)));
    LineClient client;
    ASSERT_TRUE(client.Connect(daemon.port()).ok());
    ASSERT_TRUE(client.Call("open s1").ok());
    for (const std::string& command : base) {
      ASSERT_TRUE(client.Call("cmd s1 " + command).ok());
    }
    // Fire one more mutating command and kill without waiting for the
    // response: the crash races the append, so the journal may or may
    // not contain it (possibly as a torn tail).
    ASSERT_TRUE(client.Send("cmd s1 query q").ok());
    daemon.KillNow();
  }
  Daemon restarted;
  ASSERT_TRUE(restarted.Start(DaemonArgs(dir_)));
  std::string recovered = RemoteFingerprint(restarted.port(), "s1");
  restarted.Shutdown();

  // The recovered state must be exactly one of the two valid prefixes:
  // with or without the in-flight command. Anything else — a torn tail
  // surfacing as state, a lost acked command — is a bug.
  std::vector<std::string> with = base;
  with.push_back("query q");
  // References run in-process but must carry the daemon's telemetry
  // labels, so match its --threads 2.
  ServerOptions ref_opts = Ephemeral();
  ref_opts.threads = 2;
  std::string fp_without, fp_with;
  {
    Server ref(ref_opts);
    ASSERT_TRUE(Call(&ref, "open s1").ok);
    for (const std::string& command : base) Call(&ref, "cmd s1 " + command);
    fp_without = Fingerprint(&ref, "s1");
  }
  {
    Server ref(ref_opts);
    ASSERT_TRUE(Call(&ref, "open s1").ok);
    for (const std::string& command : with) Call(&ref, "cmd s1 " + command);
    fp_with = Fingerprint(&ref, "s1");
  }
  EXPECT_TRUE(recovered == fp_without || recovered == fp_with)
      << "recovered state matches neither valid prefix:\n"
      << recovered;
}

TEST_F(RecoveryTest, DaemonCrashDuringReplayConverges) {
  {
    Daemon daemon;
    ASSERT_TRUE(daemon.Start(DaemonArgs(dir_)));
    LineClient client;
    ASSERT_TRUE(client.Connect(daemon.port()).ok());
    ASSERT_TRUE(client.Call("open s1").ok());
    for (const std::string& command : Script()) {
      ASSERT_TRUE(client.Call("cmd s1 " + command).ok());
    }
    daemon.KillNow();
  }
  // First restart recovers with durability fail points armed via the
  // environment (the recovery-time compaction tears), then is killed —
  // a crash during/after replay.
  {
    std::vector<std::string> args = DaemonArgs(dir_);
    args.push_back("--snapshot-every");
    args.push_back("2");
    Daemon wounded;
    ASSERT_TRUE(wounded.Start(
        args, {"IFLEX_FAILPOINTS=serve.snapshot.write=error"}));
    // It still serves its recovered session despite the failing snapshot.
    LineClient client;
    ASSERT_TRUE(client.Connect(wounded.port()).ok());
    auto tables = client.Call("cmd s1 tables");
    ASSERT_TRUE(tables.ok());
    EXPECT_NE(tables->output.find("imdbPages"), std::string::npos);
    wounded.KillNow();
  }
  // Replay never rewrites the journal, so the second recovery converges
  // on the same state as an uninterrupted control daemon.
  Daemon healed;
  ASSERT_TRUE(healed.Start(DaemonArgs(dir_)));
  std::string recovered = RemoteFingerprint(healed.port(), "s1");
  healed.Shutdown();

  const std::string control_dir = dir_ + "/control";
  std::filesystem::create_directories(control_dir);
  Daemon control;
  ASSERT_TRUE(control.Start(DaemonArgs(control_dir)));
  {
    LineClient client;
    ASSERT_TRUE(client.Connect(control.port()).ok());
    ASSERT_TRUE(client.Call("open s1").ok());
    for (const std::string& command : Script()) {
      if (durability::IsMutatingCommand(command)) {
        ASSERT_TRUE(client.Call("cmd s1 " + command).ok());
      }
    }
  }
  EXPECT_EQ(recovered, RemoteFingerprint(control.port(), "s1"));
  control.Shutdown();
}

}  // namespace
}  // namespace iflex
