#include <gtest/gtest.h>

#include "ctable/atable.h"
#include "ctable/compact_table.h"
#include "ctable/value.h"
#include "ctable/worlds.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

class CTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = ParseMarkup("d", "Cozy house 351000 Vanhise High");
    ASSERT_TRUE(doc.ok());
    doc_id_ = corpus_.Add(std::move(doc).value());
  }

  Corpus corpus_;
  DocId doc_id_ = 0;
};

TEST_F(CTableTest, ValueKindsAndText) {
  EXPECT_TRUE(Value::Null().is_null());
  Value d = Value::Doc(3);
  EXPECT_EQ(d.kind(), Value::Kind::kDoc);
  EXPECT_EQ(d.doc(), 3u);
  Value s = Value::OfSpan(corpus_, Span(doc_id_, 0, 4));
  EXPECT_EQ(s.AsText(), "Cozy");
  EXPECT_TRUE(s.has_span());
  EXPECT_EQ(Value::Number(4.5).AsText(), "4.5");
  EXPECT_EQ(Value::Number(42).AsText(), "42");
  EXPECT_TRUE(Value::Bool(true).AsBool());
}

TEST_F(CTableTest, ValueNumericCast) {
  // The paper: exact("92") encodes value 92 (cast from string to numeric).
  Value s = Value::String("$351,000");
  ASSERT_TRUE(s.AsNumber().has_value());
  EXPECT_DOUBLE_EQ(*s.AsNumber(), 351000);
  EXPECT_TRUE(s.Equals(Value::Number(351000)));
  EXPECT_EQ(s.Hash(), Value::Number(351000).Hash());
}

TEST_F(CTableTest, ValueEqualityTextual) {
  EXPECT_TRUE(Value::String("abc").Equals(Value::String("abc")));
  EXPECT_FALSE(Value::String("abc").Equals(Value::String("abd")));
  EXPECT_FALSE(Value::Doc(1).Equals(Value::Doc(2)));
  EXPECT_FALSE(Value::Doc(1).Equals(Value::Number(1)));
  EXPECT_FALSE(Value::Null().Equals(Value::Number(0)));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
}

TEST_F(CTableTest, AssignmentValueCounts) {
  Assignment e = Assignment::Exact(Value::Number(92));
  EXPECT_EQ(e.ValueCount(corpus_), 1u);
  // "Cozy house 351000 Vanhise High" has 5 tokens -> 15 sub-spans.
  Assignment c = Assignment::Contain(corpus_.Get(doc_id_).FullSpan());
  EXPECT_EQ(c.ValueCount(corpus_), 15u);
}

TEST_F(CTableTest, CellEnumerationHonorsCap) {
  Cell cell;
  cell.assignments.push_back(
      Assignment::Contain(corpus_.Get(doc_id_).FullSpan()));
  std::vector<Value> values;
  EXPECT_FALSE(cell.EnumerateValues(corpus_, 4, &values));
  EXPECT_EQ(values.size(), 4u);
  values.clear();
  EXPECT_TRUE(cell.EnumerateValues(corpus_, 100, &values));
  EXPECT_EQ(values.size(), 15u);
}

TEST_F(CTableTest, ExpandExpansionCells) {
  CompactTable t({"x", "s"});
  CompactTuple tup;
  tup.cells.push_back(Cell::Exact(Value::Doc(doc_id_)));
  tup.cells.push_back(Cell::Expansion(
      {Assignment::Contain(Span(doc_id_, 0, 10))}));  // "Cozy house"
  t.Add(tup);
  auto expanded = t.ExpandExpansionCells(corpus_, 100);
  ASSERT_TRUE(expanded.ok());
  // 2 tokens -> 3 sub-spans -> 3 tuples.
  EXPECT_EQ(expanded->size(), 3u);
  for (const auto& u : expanded->tuples()) {
    EXPECT_FALSE(u.cells[1].is_expansion);
    EXPECT_FALSE(u.maybe);
  }
}

TEST_F(CTableTest, ExpandPropagatesMaybe) {
  CompactTable t({"s"});
  CompactTuple tup;
  tup.maybe = true;
  tup.cells.push_back(Cell::Expansion({Assignment::Contain(Span(doc_id_, 0, 10))}));
  t.Add(tup);
  auto expanded = t.ExpandExpansionCells(corpus_, 100);
  ASSERT_TRUE(expanded.ok());
  for (const auto& u : expanded->tuples()) EXPECT_TRUE(u.maybe);
}

TEST_F(CTableTest, ExpandCapFails) {
  CompactTable t({"s"});
  CompactTuple tup;
  tup.cells.push_back(
      Cell::Expansion({Assignment::Contain(corpus_.Get(doc_id_).FullSpan())}));
  t.Add(tup);
  EXPECT_FALSE(t.ExpandExpansionCells(corpus_, 10).ok());
}

TEST_F(CTableTest, CompactToATableDedupsValues) {
  CompactTable t({"a"});
  CompactTuple tup;
  Cell c;
  c.assignments.push_back(Assignment::Exact(Value::String("92")));
  c.assignments.push_back(Assignment::Exact(Value::Number(92)));
  tup.cells.push_back(c);
  t.Add(tup);
  auto at = CompactToATable(corpus_, t);
  ASSERT_TRUE(at.ok());
  ASSERT_EQ(at->size(), 1u);
  EXPECT_EQ(at->tuples()[0].cells[0].size(), 1u);  // "92" == 92
}

TEST_F(CTableTest, RoundTripThroughATable) {
  CompactTable t({"x", "p"});
  CompactTuple tup;
  tup.maybe = true;
  tup.cells.push_back(Cell::Exact(Value::Doc(doc_id_)));
  Cell prices;
  prices.assignments.push_back(Assignment::Exact(Value::Number(351000)));
  prices.assignments.push_back(Assignment::Exact(Value::Number(5146)));
  tup.cells.push_back(prices);
  t.Add(tup);
  auto at = CompactToATable(corpus_, t);
  ASSERT_TRUE(at.ok());
  CompactTable back = ATableToCompact(*at, t.schema());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_TRUE(back.tuples()[0].maybe);
  EXPECT_EQ(back.tuples()[0].cells[1].assignments.size(), 2u);
}

TEST_F(CTableTest, PossibleTupleCount) {
  CompactTable t({"p"});
  CompactTuple tup;
  Cell c;
  c.assignments.push_back(Assignment::Exact(Value::Number(1)));
  c.assignments.push_back(Assignment::Exact(Value::Number(2)));
  tup.cells.push_back(c);
  t.Add(tup);
  t.Add(tup);
  EXPECT_DOUBLE_EQ(t.PossibleTupleCount(corpus_), 4.0);
  EXPECT_EQ(t.AssignmentCount(), 4u);
}

// ------------------------------------------------------------------ worlds

ATuple MakeATuple(std::vector<std::vector<Value>> cells, bool maybe = false) {
  ATuple t;
  t.cells = std::move(cells);
  t.maybe = maybe;
  return t;
}

TEST(WorldsTest, PaperFigure5SemanticsOfMaybeAndChoice) {
  // A 1-cell a-tuple with 2 values -> 2 worlds; making it maybe adds the
  // empty world.
  ATable t({"age"});
  t.Add(MakeATuple({{Value::Number(8), Value::Number(9)}}));
  auto worlds = EnumerateWorlds(t);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 2u);

  ATable tm({"age"});
  tm.Add(MakeATuple({{Value::Number(8), Value::Number(9)}}, /*maybe=*/true));
  auto worlds_m = EnumerateWorlds(tm);
  ASSERT_TRUE(worlds_m.ok());
  // subsets {} (once) plus {8} and {9}.
  auto ws = WorldSet(tm);
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(ws->size(), 3u);
}

TEST(WorldsTest, CanonicalWorldIsOrderInsensitive) {
  World w1 = {{Value::Number(1)}, {Value::Number(2)}};
  World w2 = {{Value::Number(2)}, {Value::Number(1)}};
  EXPECT_EQ(CanonicalWorld(w1), CanonicalWorld(w2));
}

TEST(WorldsTest, SupersetDetection) {
  ATable spec({"a"});
  spec.Add(MakeATuple({{Value::Number(1)}}));

  // Result that hedges with a maybe tuple still covers the spec world.
  ATable result({"a"});
  result.Add(MakeATuple({{Value::Number(1)}}));
  result.Add(MakeATuple({{Value::Number(7)}}, /*maybe=*/true));
  auto ok = RepresentsSuperset(result, spec);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);

  // A result that *forces* tuple 7 is not a superset.
  ATable forced({"a"});
  forced.Add(MakeATuple({{Value::Number(1)}}));
  forced.Add(MakeATuple({{Value::Number(7)}}));
  auto bad = RepresentsSuperset(forced, spec);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(*bad);
}

TEST(WorldsTest, TooManyMaybesFails) {
  ATable t({"a"});
  for (int i = 0; i < 30; ++i) {
    t.Add(MakeATuple({{Value::Number(i)}}, /*maybe=*/true));
  }
  EXPECT_FALSE(EnumerateWorlds(t).ok());
}

}  // namespace
}  // namespace iflex
