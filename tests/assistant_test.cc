#include <gtest/gtest.h>

#include <set>

#include "assistant/convergence.h"
#include "assistant/question.h"
#include "assistant/strategy.h"
#include "tasks/task.h"

namespace iflex {
namespace {

TEST(ConvergenceTest, FiresAfterKStableObservations) {
  ConvergenceDetector d(3);
  EXPECT_FALSE(d.Observe(10, 100));
  EXPECT_FALSE(d.Observe(10, 100));
  EXPECT_TRUE(d.Observe(10, 100));
}

TEST(ConvergenceTest, AnyChangeResetsTheWindow) {
  ConvergenceDetector d(3);
  EXPECT_FALSE(d.Observe(10, 100));
  EXPECT_FALSE(d.Observe(10, 100));
  EXPECT_FALSE(d.Observe(10, 99));  // assignment change
  EXPECT_FALSE(d.Observe(10, 99));
  EXPECT_TRUE(d.Observe(10, 99));
}

TEST(ConvergenceTest, TupleChangeAloneResets) {
  ConvergenceDetector d(2);
  EXPECT_FALSE(d.Observe(10, 100));
  EXPECT_FALSE(d.Observe(9, 100));
  EXPECT_TRUE(d.Observe(9, 100));
  d.Reset();
  EXPECT_FALSE(d.Observe(9, 100));
}

class StrategyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = MakeTask("T1", 30).value();
    subset_ = std::make_unique<Catalog>(
        task_->catalog->CloneWithSampledTables(0.3, 42));
  }

  StrategyContext Ctx() {
    StrategyContext ctx;
    ctx.program = &task_->initial_program;
    ctx.full_catalog = task_->catalog.get();
    ctx.subset_catalog = subset_.get();
    ctx.subset_cache = &cache_;
    ctx.asked = &asked_;
    return ctx;
  }

  std::unique_ptr<TaskInstance> task_;
  std::unique_ptr<Catalog> subset_;
  ReuseCache cache_;
  std::set<std::string> asked_;
};

TEST_F(StrategyTest, EnumerateAttributesFindsIEOutputs) {
  auto attrs = EnumerateAttributes(task_->initial_program, *task_->catalog);
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].ie_predicate, "extractIMDB");
  EXPECT_EQ(attrs[0].display_name, "title");
  EXPECT_EQ(attrs[1].display_name, "votes");
}

TEST_F(StrategyTest, RankAttributesPrefersFilteredAttribute) {
  // votes participates in "votes < 25000" (via the intensional head);
  // the ranking must surface it first.
  auto ranked = RankAttributes(task_->initial_program, *task_->catalog);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].display_name, "votes");
}

TEST_F(StrategyTest, SequentialWalksTheQuestionSpace) {
  SequentialStrategy strategy;
  std::set<std::string> seen;
  for (int i = 0; i < 5; ++i) {
    auto q = strategy.Next(Ctx());
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(q->has_value());
    EXPECT_TRUE(seen.insert((*q)->Key()).second) << "duplicate question";
    asked_.insert((*q)->Key());
  }
}

TEST_F(StrategyTest, SequentialExhaustsEventually) {
  SequentialStrategy strategy;
  int count = 0;
  while (true) {
    auto q = strategy.Next(Ctx());
    ASSERT_TRUE(q.ok());
    if (!q->has_value()) break;
    asked_.insert((*q)->Key());
    ASSERT_LT(++count, 200);
  }
  // 2 attributes x 20 features.
  EXPECT_EQ(count, 40);
}

TEST_F(StrategyTest, SimulationPrefersUsefulQuestions) {
  SimulationStrategy strategy;
  auto q = strategy.Next(Ctx());
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->has_value());
  EXPECT_GT(strategy.simulations_run(), 0u);
  // The useful first question concerns the filtered attribute.
  EXPECT_EQ((*q)->attr.display_name, "votes");
}

TEST_F(StrategyTest, ApplyAnswerAddsConstraint) {
  Question q;
  q.attr.ie_predicate = "extractIMDB";
  q.attr.output_idx = 1;
  q.feature = "numeric";
  Program prog = task_->initial_program;
  size_t before = prog.ToString().size();
  ASSERT_TRUE(ApplyAnswer(&prog, *task_->catalog, q,
                          Answer::Of(FeatureValue::kYes))
                  .ok());
  EXPECT_GT(prog.ToString().size(), before);
  // Don't-know answers change nothing.
  Program prog2 = task_->initial_program;
  ASSERT_TRUE(ApplyAnswer(&prog2, *task_->catalog, q, Answer::DontKnow()).ok());
  EXPECT_EQ(prog2.ToString(), task_->initial_program.ToString());
}

TEST_F(StrategyTest, ProbeAttributeValuesSamplesTokens) {
  auto values = ProbeAttributeValues(Ctx(), AttributeRef{"extractIMDB", 1,
                                                         "votes"});
  ASSERT_FALSE(values.empty());
  // Token-level sampling: numeric tokens must be present.
  bool has_number = false;
  for (const Value& v : values) {
    has_number = has_number || v.AsNumber().has_value();
  }
  EXPECT_TRUE(has_number);
}

TEST_F(StrategyTest, CandidateAnswersForMarkupFeature) {
  const Feature* bold = *task_->catalog->features().Get("bold_font");
  Question q;
  q.feature = "bold_font";
  auto answers =
      CandidateAnswers(q, *bold, task_->corpus->size() ? *task_->corpus
                                                       : *task_->corpus,
                       {});
  ASSERT_EQ(answers.size(), 3u);  // yes / distinct-yes / no
  for (const Answer& a : answers) EXPECT_TRUE(a.known);
}

TEST_F(StrategyTest, CandidateAnswersForValueBounds) {
  const Feature* min_value = *task_->catalog->features().Get("min_value");
  Question q;
  q.feature = "min_value";
  std::vector<Value> observed = {Value::Number(10), Value::Number(20),
                                 Value::Number(30), Value::Number(40)};
  auto answers = CandidateAnswers(q, *min_value, *task_->corpus, observed);
  ASSERT_FALSE(answers.empty());
  for (const Answer& a : answers) {
    ASSERT_TRUE(a.param.num.has_value());
    EXPECT_GE(*a.param.num, 10);
    EXPECT_LE(*a.param.num, 40);
  }
  // No numeric observations -> no candidates.
  auto none = CandidateAnswers(q, *min_value, *task_->corpus,
                               {Value::String("abc")});
  EXPECT_TRUE(none.empty());
}

}  // namespace
}  // namespace iflex
