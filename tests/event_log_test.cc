// Structured event log / flight recorder (src/obs/event_log.h): leveled
// admission, bounded lock-free ring with drop accounting, truncation
// budgets, concurrent writers without torn reads, and the JSONL / text
// renderings.
#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace iflex {
namespace obs {
namespace {

TEST(LogLevelTest, ParseAndName) {
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warn", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("bogus", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");
}

TEST(EventLogTest, LevelThresholdGatesAdmission) {
  EventLog log(16);
  log.set_level(LogLevel::kWarn);
  EXPECT_FALSE(log.ShouldLog(LogLevel::kDebug));
  EXPECT_FALSE(log.ShouldLog(LogLevel::kInfo));
  EXPECT_TRUE(log.ShouldLog(LogLevel::kWarn));
  EXPECT_TRUE(log.ShouldLog(LogLevel::kError));
  log.Debug("t", "dropped");
  log.Info("t", "dropped");
  log.Warn("t", "kept");
  log.Error("t", "kept");
  EXPECT_EQ(log.total(), 2u);
  std::vector<LogEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].level, LogLevel::kWarn);
  EXPECT_EQ(events[1].level, LogLevel::kError);
}

TEST(EventLogTest, RingKeepsNewestAndCountsDrops) {
  EventLog log(8);
  for (int i = 0; i < 20; ++i) {
    log.Info("ring", "event " + std::to_string(i));
  }
  EXPECT_EQ(log.total(), 20u);
  EXPECT_EQ(log.dropped(), 12u);
  std::vector<LogEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Newest 8, ticket-ordered oldest first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ticket, 12 + i);
    EXPECT_EQ(events[i].message, "event " + std::to_string(12 + i));
  }
}

TEST(EventLogTest, SiteAndMessageTruncateToSlotBudget) {
  EventLog log(4);
  std::string long_site(100, 's');
  std::string long_message(500, 'm');
  log.Warn(long_site, long_message);
  std::vector<LogEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].site, std::string(EventLog::kSiteBytes, 's'));
  EXPECT_EQ(events[0].message, std::string(EventLog::kMessageBytes, 'm'));
}

TEST(EventLogTest, ClearResetsEverything) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) log.Info("t", "x");
  log.Clear();
  EXPECT_EQ(log.total(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_TRUE(log.Snapshot().empty());
  log.Error("t", "after clear");
  ASSERT_EQ(log.Snapshot().size(), 1u);
  EXPECT_EQ(log.Snapshot()[0].ticket, 0u);
}

TEST(EventLogTest, ConcurrentWritersProduceNoTornEvents) {
  EventLog log(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      // Each thread writes a recognizable (site, message) pair; a torn
      // slot would pair one thread's site with another's message.
      std::string site = "writer" + std::to_string(t);
      std::string message = "payload" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) log.Info(site, message);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(log.total(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  std::vector<LogEvent> events = log.Snapshot();
  EXPECT_LE(events.size(), log.capacity());
  EXPECT_FALSE(events.empty());
  std::set<uint64_t> tickets;
  for (const LogEvent& ev : events) {
    ASSERT_EQ(ev.site.substr(0, 6), "writer");
    std::string id = ev.site.substr(6);
    EXPECT_EQ(ev.message, "payload" + id) << "torn slot";
    EXPECT_TRUE(tickets.insert(ev.ticket).second) << "duplicate ticket";
  }
}

TEST(EventLogTest, ToJsonlEmitsOneObjectPerEvent) {
  EventLog log(8);
  log.Info("a.site", "first");
  log.Warn("b.site", "quote \" and backslash \\");
  std::istringstream lines(log.ToJsonl());
  std::string line;
  size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ticket\""), std::string::npos);
    EXPECT_NE(line.find("\"level\""), std::string::npos);
    EXPECT_NE(line.find("\"site\""), std::string::npos);
    ++n;
  }
  EXPECT_EQ(n, 2u);
  EXPECT_NE(log.ToJsonl().find("\\\""), std::string::npos);
}

TEST(EventLogTest, FormatRecentIsHumanReadableAndBounded) {
  EventLog log(32);
  for (int i = 0; i < 10; ++i) {
    log.Warn("exec.test", "event " + std::to_string(i));
  }
  std::vector<std::string> lines = log.FormatRecent(4);
  ASSERT_EQ(lines.size(), 4u);
  // Newest 4 survive; each line carries level, relative time, and site.
  EXPECT_NE(lines[0].find("[warn "), std::string::npos);
  EXPECT_NE(lines[0].find("ms"), std::string::npos);
  EXPECT_NE(lines[0].find("exec.test: event 6"), std::string::npos);
  EXPECT_NE(lines[3].find("event 9"), std::string::npos);
}

TEST(EventLogTest, JsonlSinkStreamsAdmittedEvents) {
  std::string path =
      ::testing::TempDir() + "/event_log_sink_test.jsonl";
  std::remove(path.c_str());
  EventLog log(8);
  ASSERT_TRUE(log.SetJsonlSink(path));
  log.Info("sink", "one");
  log.Warn("sink", "two");
  ASSERT_TRUE(log.SetJsonlSink(""));  // close
  log.Info("sink", "after close");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t n = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"site\":\"sink\""), std::string::npos);
    ++n;
  }
  EXPECT_EQ(n, 2u);
  std::remove(path.c_str());
}

TEST(EventLogTest, DefaultEventLogIsSingleton) {
  EventLog& a = DefaultEventLog();
  EventLog& b = DefaultEventLog();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(EventLogOrDefault(nullptr), &a);
  EventLog own(4);
  EXPECT_EQ(EventLogOrDefault(&own), &own);
}

}  // namespace
}  // namespace obs
}  // namespace iflex
