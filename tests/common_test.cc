#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strutil.h"

namespace iflex {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  // Exhaustive over the enum: adding a StatusCode without a name (or
  // without bumping kNumStatusCodes) fails here, not in a log message.
  std::set<std::string> names;
  for (int i = 0; i < kNumStatusCodes; ++i) {
    const char* name = StatusCodeToString(static_cast<StatusCode>(i));
    EXPECT_STRNE(name, "Unknown") << "code " << i;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumStatusCodes))
      << "two status codes share a name";
  EXPECT_STREQ(StatusCodeToString(static_cast<StatusCode>(kNumStatusCodes)),
               "Unknown");
}

TEST(StatusTest, StopCodes) {
  Status d = Status::DeadlineExceeded("late");
  Status c = Status::Cancelled("stop");
  EXPECT_FALSE(d.ok());
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_TRUE(d.IsStop());
  EXPECT_TRUE(c.IsStop());
  EXPECT_FALSE(Status::OK().IsStop());
  EXPECT_FALSE(Status::ExecutionError("boom").IsStop());
  EXPECT_EQ(d.ToString(), "DeadlineExceeded: late");
  EXPECT_EQ(c.ToString(), "Cancelled: stop");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status CheckedTwice(int x, int* progress) {
  IFLEX_RETURN_NOT_OK(FailsWhenNegative(x));
  *progress = 1;
  IFLEX_RETURN_NOT_OK(FailsWhenNegative(x - 10));
  *progress = 2;
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagatesAndStopsEarly) {
  int progress = 0;
  Status st = CheckedTwice(-1, &progress);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(progress, 0);  // first check returned, nothing after it ran

  progress = 0;
  st = CheckedTwice(5, &progress);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(progress, 1);  // failed at the second checkpoint

  progress = 0;
  EXPECT_TRUE(CheckedTwice(15, &progress).ok());
  EXPECT_EQ(progress, 2);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  IFLEX_ASSIGN_OR_RETURN(int h, Half(x));
  IFLEX_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
}

Result<int> StoppedComputation() {
  return Status::DeadlineExceeded("ran out of time");
}

Result<int> UsesStoppedComputation() {
  IFLEX_ASSIGN_OR_RETURN(int v, StoppedComputation());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnPreservesCodeAndMessage) {
  Result<int> r = UsesStoppedComputation();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.status().message(), "ran out of time");
  EXPECT_TRUE(r.status().IsStop());
}

TEST(StrUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StrUtilTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("The PANEL session", "panel"));
  EXPECT_FALSE(ContainsIgnoreCase("nothing here", "panel"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(StrUtilTest, ParseLooseNumberPlain) {
  EXPECT_DOUBLE_EQ(*ParseLooseNumber("42"), 42);
  EXPECT_DOUBLE_EQ(*ParseLooseNumber("4.5"), 4.5);
  EXPECT_DOUBLE_EQ(*ParseLooseNumber("-3"), -3);
}

TEST(StrUtilTest, ParseLooseNumberCurrencyAndCommas) {
  // The paper's canonical price form.
  EXPECT_DOUBLE_EQ(*ParseLooseNumber("$351,000"), 351000);
  EXPECT_DOUBLE_EQ(*ParseLooseNumber("$39.99"), 39.99);
  EXPECT_DOUBLE_EQ(*ParseLooseNumber("1,234,567"), 1234567);
}

TEST(StrUtilTest, ParseLooseNumberRejectsText) {
  EXPECT_FALSE(ParseLooseNumber("Lincoln").has_value());
  EXPECT_FALSE(ParseLooseNumber("12a").has_value());
  EXPECT_FALSE(ParseLooseNumber("").has_value());
  EXPECT_FALSE(ParseLooseNumber("$").has_value());
  EXPECT_FALSE(ParseLooseNumber("1,,2").has_value());
  EXPECT_FALSE(ParseLooseNumber("1.2.3").has_value());
}

TEST(StrUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(StrUtilTest, FingerprintStable) {
  EXPECT_EQ(Fingerprint64("abc"), Fingerprint64("abc"));
  EXPECT_NE(Fingerprint64("abc"), Fingerprint64("abd"));
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, SampleIndicesDistinctSorted) {
  Rng rng(99);
  auto s = rng.SampleIndices(100, 10);
  ASSERT_EQ(s.size(), 10u);
  for (size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
}

TEST(RngTest, SampleAllWhenKTooLarge) {
  Rng rng(5);
  auto s = rng.SampleIndices(4, 10);
  EXPECT_EQ(s.size(), 4u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace iflex
