// Focused cell-op coverage beyond what exec_test exercises: constant
// cells, equality narrowing, enumeration caps, and dedup behaviour.
#include <gtest/gtest.h>

#include "exec/cell_ops.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

class CellOpsEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = ParseMarkup("d", "alpha 42 beta 42 gamma 7");
    ASSERT_TRUE(doc.ok());
    d_ = corpus_.Add(std::move(doc).value());
    registry_ = CreateDefaultRegistry();
  }

  Corpus corpus_;
  DocId d_ = 0;
  std::unique_ptr<FeatureRegistry> registry_;
  CellOpLimits limits_;
};

TEST_F(CellOpsEdgeTest, ConstantCellFromTerms) {
  Cell n = ConstantCell(Term::Number(42));
  ASSERT_EQ(n.assignments.size(), 1u);
  EXPECT_DOUBLE_EQ(*n.assignments[0].value.AsNumber(), 42);
  Cell s = ConstantCell(Term::Str("abc"));
  EXPECT_EQ(s.assignments[0].value.AsText(), "abc");
  Cell null = ConstantCell(Term::Null());
  EXPECT_TRUE(null.assignments[0].value.is_null());
}

TEST_F(CellOpsEdgeTest, NarrowByEqualityKeepsMatchingAssignments) {
  Cell cell;
  cell.assignments.push_back(Assignment::Exact(Value::Number(1)));
  cell.assignments.push_back(Assignment::Exact(Value::Number(2)));
  cell.assignments.push_back(Assignment::Exact(Value::String("2")));
  Cell two = Cell::Exact(Value::Number(2));
  bool partial = false;
  Cell narrowed = NarrowCellByEquality(corpus_, cell, two, limits_, &partial);
  // Both the number 2 and the string "2" equal 2 (numeric cast).
  EXPECT_EQ(narrowed.assignments.size(), 2u);
  EXPECT_FALSE(partial);  // kept assignments have only matching values
}

TEST_F(CellOpsEdgeTest, NarrowEmptyWhenNothingMatches) {
  Cell cell = Cell::Exact(Value::Number(1));
  Cell other = Cell::Exact(Value::Number(9));
  bool partial = false;
  Cell narrowed = NarrowCellByEquality(corpus_, cell, other, limits_, &partial);
  EXPECT_TRUE(narrowed.assignments.empty());
}

TEST_F(CellOpsEdgeTest, EnumerationCapDegradesToSome) {
  // A tiny cap forces the tri-state evaluation to admit uncertainty.
  CellOpLimits tiny;
  tiny.max_cell_enum = 2;
  Cell cell;
  cell.assignments.push_back(Assignment::Contain(corpus_.Get(d_).FullSpan()));
  Cell big = Cell::Exact(Value::Number(1000000));
  // No sub-span is > 1000000, but under the cap we must not claim kNone.
  EXPECT_EQ(CompareCells(corpus_, cell, CmpOp::kGt, big, tiny),
            SatResult::kSome);
  // With a generous cap the truth comes out.
  EXPECT_EQ(CompareCells(corpus_, cell, CmpOp::kGt, big, limits_),
            SatResult::kNone);
}

TEST_F(CellOpsEdgeTest, CompareCellsWithOffset) {
  Cell lhs = Cell::Exact(Value::Number(10));
  Cell rhs = Cell::Exact(Value::Number(6));
  // 10 < 6 + 5.
  EXPECT_EQ(CompareCells(corpus_, lhs, CmpOp::kLt, rhs, limits_, 5),
            SatResult::kAll);
  // 10 < 6 + 3 fails.
  EXPECT_EQ(CompareCells(corpus_, lhs, CmpOp::kLt, rhs, limits_, 3),
            SatResult::kNone);
  // Offsets make non-numeric right sides incomparable except under !=.
  Cell text = Cell::Exact(Value::String("abc"));
  EXPECT_EQ(CompareCells(corpus_, lhs, CmpOp::kLt, text, limits_, 5),
            SatResult::kNone);
  EXPECT_EQ(CompareCells(corpus_, lhs, CmpOp::kNe, text, limits_, 5),
            SatResult::kAll);
}

TEST_F(CellOpsEdgeTest, ConstraintDedupsIdenticalRefinements) {
  // Two overlapping contain assignments refine to the same numeric
  // tokens; the result must not double-store them.
  Cell cell;
  cell.assignments.push_back(Assignment::Contain(Span(d_, 0, 12)));
  cell.assignments.push_back(Assignment::Contain(Span(d_, 0, 12)));
  ConstraintLit k;
  k.feature = "numeric";
  k.var = "v";
  k.value = FeatureValue::kYes;
  auto out = ApplyConstraintToCell(corpus_, *registry_, cell, k, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->assignments.size(), 1u);  // the token "42"
}

TEST_F(CellOpsEdgeTest, ConstraintOnEmptyCellStaysEmpty) {
  Cell cell;
  ConstraintLit k;
  k.feature = "numeric";
  k.var = "v";
  auto out = ApplyConstraintToCell(corpus_, *registry_, cell, k, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->assignments.empty());
}

TEST_F(CellOpsEdgeTest, ExpansionFlagSurvivesConstraint) {
  Cell cell = Cell::Expansion({Assignment::Contain(Span(d_, 0, 12))});
  ConstraintLit k;
  k.feature = "numeric";
  k.var = "v";
  auto out = ApplyConstraintToCell(corpus_, *registry_, cell, k, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->is_expansion);
}

TEST_F(CellOpsEdgeTest, UnknownFeatureFails) {
  Cell cell = Cell::Exact(Value::Number(1));
  ConstraintLit k;
  k.feature = "no_such_feature";
  k.var = "v";
  EXPECT_FALSE(ApplyConstraintToCell(corpus_, *registry_, cell, k, {}).ok());
}

}  // namespace
}  // namespace iflex
