// The compiled operator core (docs/PERFORMANCE.md, "Rule compilation")
// must be a pure performance change: for every Table-3 scenario, at any
// morsel size and thread count, a run through compiled plans produces the
// exact bytes of the legacy interpreter — same result table, same
// intermediate tables, same memo accounting, same explain attribution.
// Runs under the `compile` ctest label.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "obs/cost_model.h"
#include "runtime/task_pool.h"
#include "tasks/task.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

// Options every differential run shares. The table budget is tight and
// best-effort so the dense full-size scenarios (T3, T6, T9) truncate
// deterministically in seconds instead of materializing multi-million
// row joins; truncation goes through the same OverBudget sequence points
// on both paths, so capped runs must still match byte for byte.
ExecOptions ScenarioOptions() {
  ExecOptions options;
  options.best_effort = true;
  options.max_table_tuples = 20000;
  return options;
}

struct RunOutput {
  std::string result;
  std::vector<std::pair<std::string, std::string>> idb;  // sorted by pred
  ExecStats stats;
  bool degraded = false;
};

Result<RunOutput> RunScenario(const TaskInstance& task, ExecOptions options) {
  Executor exec(*task.catalog, options);
  IFLEX_ASSIGN_OR_RETURN(CompactTable table,
                         exec.Execute(task.initial_program));
  RunOutput out;
  out.result = table.ToString(task.corpus.get());
  for (const auto& [pred, t] : exec.last_idb()) {
    out.idb.emplace_back(pred, t.ToString(task.corpus.get()));
  }
  std::sort(out.idb.begin(), out.idb.end());
  out.stats = exec.stats();
  out.degraded = exec.report().degraded;
  return out;
}

// All 27 Table-3 scenarios (9 tasks x 3 corpus sizes): the interpreter
// (enable_rule_compile = false) is the reference; the compiled path must
// reproduce it serially and across the morsel/thread grid.
TEST(CompileDeterminismTest, CompiledMatchesInterpreterOnAllScenarios) {
  for (const std::string& id : AllTaskIds()) {
    for (size_t scale : ScenarioSizes(id)) {
      const std::string label = id + "@" + std::to_string(scale);
      auto task = MakeTask(id, scale);
      ASSERT_TRUE(task.ok()) << label << ": " << task.status();

      ExecOptions interp = ScenarioOptions();
      interp.enable_rule_compile = false;
      auto ref = RunScenario(**task, interp);
      ASSERT_TRUE(ref.ok()) << label << ": " << ref.status();
      EXPECT_EQ(ref->stats.rules_compiled, 0u) << label;

      ExecOptions compiled = ScenarioOptions();
      auto got = RunScenario(**task, compiled);
      ASSERT_TRUE(got.ok()) << label << ": " << got.status();
      // The scenario actually runs through plans, rather than trivially
      // matching because everything fell back to the interpreter.
      EXPECT_GT(got->stats.rules_compiled, 0u) << label;
      EXPECT_EQ(got->result, ref->result) << label;
      EXPECT_EQ(got->idb, ref->idb) << label;
      EXPECT_EQ(got->degraded, ref->degraded) << label;
      // Work accounting, not just answers: fused verify chains must make
      // exactly the interpreter's per-cell constraint applications and
      // memo lookups, columnar blocks its p-predicate invocations.
      EXPECT_EQ(got->stats.constraint_cells, ref->stats.constraint_cells)
          << label;
      EXPECT_EQ(got->stats.ppred_invocations, ref->stats.ppred_invocations)
          << label;
      EXPECT_EQ(got->stats.tuples_emitted, ref->stats.tuples_emitted) << label;
      EXPECT_EQ(got->stats.verify_memo_hits, ref->stats.verify_memo_hits)
          << label;
      EXPECT_EQ(got->stats.process_assignments, ref->stats.process_assignments)
          << label;

      // Morsel/thread grid: the compiled morsel path carves the same
      // morsels and merges in the same order as the interpreter's, so
      // every cell of the grid reproduces the serial reference bytes.
      // Scenarios that already truncated serially are compared serial-only:
      // the table budget applies per morsel, so a one-document-morsel run
      // there does morsels x cap work — minutes spent measuring the cap,
      // not the operator core under test.
      if (ref->degraded) continue;
      for (size_t threads : {1, 8}) {
        runtime::TaskPool pool(threads);
        for (size_t morsel_docs : {1, 64}) {
          ExecOptions grid = ScenarioOptions();
          grid.pool = &pool;
          grid.morsel_docs = morsel_docs;
          auto r = RunScenario(**task, grid);
          ASSERT_TRUE(r.ok()) << label << ": " << r.status();
          EXPECT_GT(r->stats.rules_compiled, 0u) << label;
          EXPECT_EQ(r->result, ref->result)
              << label << " at " << threads << " threads, morsel_docs "
              << morsel_docs;
          EXPECT_EQ(r->idb, ref->idb)
              << label << " at " << threads << " threads, morsel_docs "
              << morsel_docs;
          EXPECT_EQ(r->stats.process_assignments,
                    ref->stats.process_assignments)
              << label << " at " << threads << " threads, morsel_docs "
              << morsel_docs;
        }
      }
    }
  }
}

// The paper's running example (Figures 1-3), as in paper_example_test:
// constraints, comparisons, from() and an approx_match p-function, so a
// compiled plan exercises fused chains and columnar filter blocks.
constexpr char kPaperProgram[] = R"(
  houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(x, p, a, h).
  schools(s)? :- schoolPages(y), extractSchools(y, s).
  q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500,
                   approx_match(h, s).
  extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h),
                               numeric(p) = yes, numeric(a) = yes.
  extractSchools(y, s) :- from(y, s), bold_font(s) = yes.
)";

class PaperExampleCompileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto x1 = ParseMarkup("x1",
                          "Price: <b>$351,000</b>\n"
                          "Cozy house on quiet street\n"
                          "5146 Windsor Ave, Champaign\n"
                          "Sqft: 2750\n"
                          "High school: Vanhise High");
    auto x2 = ParseMarkup("x2",
                          "Price: <b>$619,000</b>\n"
                          "Amazing house in great location\n"
                          "3112 Stonecreek Blvd, Cherry Hills\n"
                          "Sqft: 4700\n"
                          "High school: Basktall HS");
    auto y1 = ParseMarkup("y1",
                          "Top High Schools and Location (page 1)\n"
                          "<b>Basktall</b>, Cherry Hills\n"
                          "<b>Franklin</b>, Robeson\n"
                          "<b>Vanhise</b>, Champaign");
    auto y2 = ParseMarkup("y2",
                          "Top High Schools and Location (page 2)\n"
                          "<b>Hoover</b>, Akron\n"
                          "<b>Ossage</b>, Lynneville");
    for (auto* d : {&x1, &x2, &y1, &y2}) ASSERT_TRUE(d->ok());
    std::vector<DocId> houses_docs = {corpus_.Add(std::move(x1).value()),
                                      corpus_.Add(std::move(x2).value())};
    std::vector<DocId> school_docs = {corpus_.Add(std::move(y1).value()),
                                      corpus_.Add(std::move(y2).value())};

    catalog_ = std::make_unique<Catalog>(&corpus_);
    CompactTable houses({"x"});
    for (DocId d : houses_docs) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      houses.Add(t);
    }
    ASSERT_TRUE(catalog_->AddTable("housePages", std::move(houses)).ok());
    CompactTable schools({"y"});
    for (DocId d : school_docs) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      schools.Add(t);
    }
    ASSERT_TRUE(catalog_->AddTable("schoolPages", std::move(schools)).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractHouses", 1, 3).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractSchools", 1, 1).ok());
    catalog_->RegisterBuiltinFunctions(/*similarity_threshold=*/0.4);
  }

  Result<Program> Parse() {
    IFLEX_ASSIGN_OR_RETURN(Program prog, ParseProgram(kPaperProgram, *catalog_));
    prog.set_query("q");
    return prog;
  }

  // Runs the paper query with a fresh profiler and returns the stable
  // explain view (iter/scope/op/rows/verify/probes).
  std::string StableExplain(bool rule_compile, runtime::TaskPool* pool) {
    auto prog = Parse();
    EXPECT_TRUE(prog.ok()) << prog.status();
    obs::CostModel model;
    model.set_enabled(true);
    ExecOptions options;
    options.pool = pool;
    options.cost_model = &model;
    options.enable_rule_compile = rule_compile;
    Executor exec(*catalog_, options);
    auto r = exec.Execute(*prog);
    EXPECT_TRUE(r.ok()) << r.status();
    if (rule_compile) {
      EXPECT_GT(exec.stats().rules_compiled, 0u);
    } else {
      EXPECT_EQ(exec.stats().rules_compiled, 0u);
    }
    return model.Report().ToText(/*stable_only=*/true);
  }

  Corpus corpus_;
  std::unique_ptr<Catalog> catalog_;
};

// Explain cost attribution: fused chains and filter blocks must charge
// the same (rule, operator) keys with the same stable columns the
// interpreter's one-pass-per-literal scopes produce, so the stable
// explain view is byte-identical — serially and across the pool.
TEST_F(PaperExampleCompileTest, StableExplainMatchesInterpreter) {
  const std::string expected = StableExplain(/*rule_compile=*/false, nullptr);
  ASSERT_FALSE(expected.empty());
  // The reference attributes real work, including constraint and
  // comparison rows (the fused/columnar operators under test).
  EXPECT_NE(expected.find("constraint"), std::string::npos) << expected;
  EXPECT_NE(expected.find("comparison"), std::string::npos) << expected;
  EXPECT_EQ(StableExplain(/*rule_compile=*/true, nullptr), expected);
  for (size_t threads : {1, 8}) {
    runtime::TaskPool pool(threads);
    EXPECT_EQ(StableExplain(/*rule_compile=*/true, &pool), expected)
        << threads << " threads";
  }
}

// Gating: rule compilation is part of the fast path. Disabling the fast
// path (the option IFLEX_DISABLE_FASTPATH maps onto) must force the
// interpreter, as must the dedicated enable_rule_compile switch (the
// option IFLEX_DISABLE_RULE_COMPILE maps onto); both gated runs still
// produce the compiled run's bytes.
TEST_F(PaperExampleCompileTest, FastPathOffDisablesCompiledPath) {
  auto prog = Parse();
  ASSERT_TRUE(prog.ok()) << prog.status();

  Executor compiled(*catalog_);
  auto base = compiled.Execute(*prog);
  ASSERT_TRUE(base.ok()) << base.status();
  EXPECT_GT(compiled.stats().rules_compiled, 0u);

  ExecOptions no_fastpath;
  no_fastpath.enable_fast_path = false;
  Executor legacy(*catalog_, no_fastpath);
  auto legacy_result = legacy.Execute(*prog);
  ASSERT_TRUE(legacy_result.ok()) << legacy_result.status();
  EXPECT_EQ(legacy.stats().rules_compiled, 0u);
  EXPECT_EQ(legacy_result->ToString(&corpus_), base->ToString(&corpus_));

  ExecOptions no_compile;
  no_compile.enable_rule_compile = false;
  Executor interp(*catalog_, no_compile);
  auto interp_result = interp.Execute(*prog);
  ASSERT_TRUE(interp_result.ok()) << interp_result.status();
  EXPECT_EQ(interp.stats().rules_compiled, 0u);
  // The interpreter still runs the other fast paths (hash join, memo).
  EXPECT_EQ(interp_result->ToString(&corpus_), base->ToString(&corpus_));
}

}  // namespace
}  // namespace iflex
