// Additional possible-worlds coverage: existence annotations end to end,
// and world semantics of combined maybe/choice tables.
#include <gtest/gtest.h>

#include "ctable/worlds.h"
#include "exec/annotate.h"

namespace iflex {
namespace {

Value Num(double n) { return Value::Number(n); }

TEST(ExistenceAnnotationTest, PowersetSemantics) {
  // Definition 1: existence annotation turns R into its powerset.
  Corpus corpus;
  CompactTable t({"a"});
  for (int i = 0; i < 3; ++i) {
    CompactTuple tup;
    tup.cells.push_back(Cell::Exact(Num(i)));
    t.Add(std::move(tup));
  }
  AnnotationSpec spec;
  spec.existence = true;
  auto out = ApplyAnnotations(corpus, t, spec);
  ASSERT_TRUE(out.ok());
  auto at = CompactToATable(corpus, *out);
  ASSERT_TRUE(at.ok());
  auto worlds = WorldSet(*at);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 8u);  // 2^3 subsets
}

TEST(ExistenceAnnotationTest, ComposesWithAttributeAnnotation) {
  // p(<a>)? over two tuples with the same key collapses to one maybe
  // tuple with both values: worlds = {} + {0} + {1} = 3.
  Corpus corpus;
  CompactTable t({"k", "a"});
  for (int i = 0; i < 2; ++i) {
    CompactTuple tup;
    tup.cells.push_back(Cell::Exact(Value::String("x")));
    tup.cells.push_back(Cell::Exact(Num(i)));
    t.Add(std::move(tup));
  }
  AnnotationSpec spec;
  spec.existence = true;
  spec.annotated = {1};
  auto out = ApplyAnnotations(corpus, t, spec);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_TRUE(out->tuples()[0].maybe);
  auto at = CompactToATable(corpus, *out);
  ASSERT_TRUE(at.ok());
  auto worlds = WorldSet(*at);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 3u);
}

TEST(WorldsExtraTest, MixedMaybeAndChoice) {
  // One fixed tuple with 2 choices, one maybe tuple with 2 choices:
  // 2 * (1 + 2) = 6 worlds, but value collisions may merge some.
  ATable t({"a"});
  ATuple fixed;
  fixed.cells = {{Num(1), Num(2)}};
  t.Add(fixed);
  ATuple maybe;
  maybe.maybe = true;
  maybe.cells = {{Num(3), Num(4)}};
  t.Add(maybe);
  auto worlds = WorldSet(t);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 6u);
}

TEST(WorldsExtraTest, DuplicateTuplesCollapseInWorlds) {
  ATable t({"a"});
  ATuple one;
  one.cells = {{Num(7)}};
  t.Add(one);
  t.Add(one);
  auto worlds = WorldSet(t);
  ASSERT_TRUE(worlds.ok());
  // Both copies always exist; as a set that is a single world {7}.
  EXPECT_EQ(worlds->size(), 1u);
}

TEST(WorldsExtraTest, CanonicalNumericNormalization) {
  World w1 = {{Value::String("42")}};
  World w2 = {{Value::Number(42)}};
  EXPECT_EQ(CanonicalWorld(w1), CanonicalWorld(w2));
  World w3 = {{Value::String("forty-two")}};
  EXPECT_NE(CanonicalWorld(w1), CanonicalWorld(w3));
}

}  // namespace
}  // namespace iflex
