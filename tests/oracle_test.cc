#include <gtest/gtest.h>

#include "features/registry.h"
#include "oracle/developer.h"
#include "oracle/evaluate.h"
#include "oracle/timemodel.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

class DeveloperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d1 = ParseMarkup("r1",
                          "Price: <b>$123.45</b>\nISBN: 0131873253\n"
                          "<label>Details:</label> in stock");
    auto d2 = ParseMarkup("r2",
                          "Price: <b>$67.89</b>\nISBN: 0201538082\n"
                          "<label>Details:</label> ships soon");
    ASSERT_TRUE(d1.ok());
    ASSERT_TRUE(d2.ok());
    d1_ = corpus_.Add(std::move(d1).value());
    d2_ = corpus_.Add(std::move(d2).value());

    // Gold: the two bold prices.
    auto span_of = [this](DocId d, const char* text) {
      const Document& doc = corpus_.Get(d);
      size_t at = doc.text().find(text);
      EXPECT_NE(at, std::string::npos);
      return Span(d, static_cast<uint32_t>(at),
                  static_cast<uint32_t>(at + std::string(text).size()));
    };
    gold_.extractions["extract"].push_back(GoldStandard::Extraction{
        d1_, {Value::OfSpan(corpus_, span_of(d1_, "$123.45"))}});
    gold_.extractions["extract"].push_back(GoldStandard::Extraction{
        d2_, {Value::OfSpan(corpus_, span_of(d2_, "$67.89"))}});

    registry_ = CreateDefaultRegistry();
    dev_ = std::make_unique<SimulatedDeveloper>(&corpus_, &gold_);
  }

  Question Q(const char* feature) {
    Question q;
    q.attr.ie_predicate = "extract";
    q.attr.output_idx = 0;
    q.attr.display_name = "price";
    q.feature = feature;
    return q;
  }

  Answer Ask(const char* feature) {
    return dev_->Ask(Q(feature), **registry_->Get(feature));
  }

  Corpus corpus_;
  DocId d1_ = 0, d2_ = 0;
  GoldStandard gold_;
  std::unique_ptr<FeatureRegistry> registry_;
  std::unique_ptr<SimulatedDeveloper> dev_;
};

TEST_F(DeveloperTest, AnswersMarkupQuestionsFromGold) {
  Answer bold = Ask("bold_font");
  ASSERT_TRUE(bold.known);
  // Both prices are distinctly bold; the developer gives the strongest
  // consistent answer.
  EXPECT_EQ(bold.value, FeatureValue::kDistinctYes);

  Answer italic = Ask("italic_font");
  ASSERT_TRUE(italic.known);
  EXPECT_EQ(italic.value, FeatureValue::kNo);

  Answer numeric = Ask("numeric");
  ASSERT_TRUE(numeric.known);
  EXPECT_EQ(numeric.value, FeatureValue::kYes);
}

TEST_F(DeveloperTest, AnswersValueBoundsFromGold) {
  Answer min = Ask("min_value");
  ASSERT_TRUE(min.known);
  EXPECT_DOUBLE_EQ(*min.param.num, 67.89);
  Answer max = Ask("max_value");
  ASSERT_TRUE(max.known);
  EXPECT_DOUBLE_EQ(*max.param.num, 123.45);
  Answer len = Ask("max_length");
  ASSERT_TRUE(len.known);
  EXPECT_DOUBLE_EQ(*len.param.num, 7);  // "$123.45"
}

TEST_F(DeveloperTest, AnswersPrecededByWhenConsistent) {
  Answer a = Ask("preceded_by");
  ASSERT_TRUE(a.known);
  EXPECT_EQ(*a.param.str, "Price:");
}

TEST_F(DeveloperTest, DontKnowForRegexQuestions) {
  EXPECT_FALSE(Ask("starts_with").known);
  EXPECT_FALSE(Ask("ends_with").known);
}

TEST_F(DeveloperTest, DontKnowForUnknownAttribute) {
  Question q = Q("numeric");
  q.attr.ie_predicate = "nonexistent";
  Answer a = dev_->Ask(q, **registry_->Get("numeric"));
  EXPECT_FALSE(a.known);
}

TEST_F(DeveloperTest, ScriptedAnswerOverrides) {
  dev_->Script(Q("starts_with"),
               Answer::WithParam(FeatureParam::Str("[A-Z]+")));
  Answer a = Ask("starts_with");
  ASSERT_TRUE(a.known);
  EXPECT_EQ(*a.param.str, "[A-Z]+");
}

TEST_F(DeveloperTest, TracksTimeAndCounts) {
  DeveloperTimeModel model;
  (void)Ask("numeric");
  EXPECT_DOUBLE_EQ(dev_->LastAnswerSeconds(), model.seconds_per_question);
  EXPECT_EQ(dev_->questions_answered(), 1u);
}

TEST_F(DeveloperTest, AlphaForcesDontKnow) {
  SimulatedDeveloper always_unsure(&corpus_, &gold_, DeveloperTimeModel{},
                                   /*alpha=*/1.0);
  Answer a = always_unsure.Ask(Q("numeric"), **registry_->Get("numeric"));
  EXPECT_FALSE(a.known);
  EXPECT_EQ(always_unsure.dont_knows(), 1u);
}

TEST(TimeModelTest, XlogAndManualShapes) {
  DeveloperTimeModel model;
  // Calibrated near the paper's Table 3: one procedure with two
  // attributes plus a rule -> ~26 min (paper T1: 28).
  EXPECT_NEAR(model.XlogMinutes(1, 2, 3), 34, 12);
  // Manual scales linearly and cuts off.
  auto small = model.ManualMinutes(100, 0);
  ASSERT_TRUE(small.has_value());
  auto big = model.ManualMinutes(100000, 0);
  EXPECT_FALSE(big.has_value());
  auto join = model.ManualMinutes(100, 100 * 100);
  ASSERT_TRUE(join.has_value());
  EXPECT_GT(*join, *small);
}

TEST(EvaluateTest, SupersetAndCoverage) {
  Corpus corpus;
  CompactTable result({"t"});
  for (const char* s : {"A", "B", "C"}) {
    CompactTuple t;
    t.cells.push_back(Cell::Exact(Value::String(s)));
    result.Add(std::move(t));
  }
  std::vector<std::vector<Value>> gold = {{Value::String("A")},
                                          {Value::String("B")}};
  EvalReport rep = EvaluateResult(corpus, result, gold);
  EXPECT_DOUBLE_EQ(rep.result_tuples, 3);
  EXPECT_EQ(rep.gold_covered, 2u);
  EXPECT_TRUE(rep.covers_all_gold);
  EXPECT_FALSE(rep.exact);
  EXPECT_DOUBLE_EQ(rep.superset_pct, 150.0);

  std::vector<std::vector<Value>> missing = {{Value::String("Z")}};
  EvalReport rep2 = EvaluateResult(corpus, result, missing);
  EXPECT_FALSE(rep2.covers_all_gold);
}

TEST(EvaluateTest, ExpansionCellsCountPerValue) {
  Corpus corpus;
  Document doc("d", "Alice Bob");
  DocId id = corpus.Add(std::move(doc));
  CompactTable result({"name"});
  CompactTuple t;
  // Two exact values in an expansion cell = two tuples.
  t.cells.push_back(Cell::Expansion(
      {Assignment::Exact(Value::OfSpan(corpus, Span(id, 0, 5))),
       Assignment::Exact(Value::OfSpan(corpus, Span(id, 6, 9)))}));
  result.Add(std::move(t));
  std::vector<std::vector<Value>> gold = {{Value::String("Alice")},
                                          {Value::String("Bob")}};
  EvalReport rep = EvaluateResult(corpus, result, gold);
  EXPECT_DOUBLE_EQ(rep.result_tuples, 2);
  EXPECT_TRUE(rep.exact);
}

}  // namespace
}  // namespace iflex
