// Property tests for the superset execution semantics (paper §4): every
// operator may over-approximate but must never lose a possible value,
// tuple, or world. Checked against brute-force enumeration on randomized
// small inputs.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "ctable/worlds.h"
#include "exec/annotate.h"
#include "exec/cell_ops.h"
#include "features/registry.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

// Deterministic small document with assorted markup and numbers.
Result<Document> MakeDoc(Rng* rng) {
  const char* words[] = {"alpha", "Beta",   "42",    "$1,250", "gamma",
                         "DELTA", "7",      "omega", "Sigma",  "99"};
  std::string markup;
  int open = 0;  // 0 none, 1 bold, 2 italic
  for (int i = 0; i < 12; ++i) {
    if (i > 0) markup += (rng->Bernoulli(0.2) ? "\n" : " ");
    int style = static_cast<int>(rng->Uniform(3));
    if (style != open) {
      if (open == 1) markup += "</b>";
      if (open == 2) markup += "</i>";
      if (style == 1) markup += "<b>";
      if (style == 2) markup += "<i>";
      open = style;
    }
    markup += words[rng->Uniform(std::size(words))];
  }
  if (open == 1) markup += "</b>";
  if (open == 2) markup += "</i>";
  return ParseMarkup("doc", markup);
}

class SupersetPropertyTest : public ::testing::TestWithParam<int> {};

// Property: ApplyConstraintToCell never loses a satisfying value. Every
// token-aligned sub-span that Verify accepts must still be encoded by the
// narrowed cell.
TEST_P(SupersetPropertyTest, ConstraintNarrowingIsSound) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 13);
  Corpus corpus;
  auto doc = MakeDoc(&rng);
  ASSERT_TRUE(doc.ok()) << doc.status();
  DocId d = corpus.Add(std::move(doc).value());
  auto registry = CreateDefaultRegistry();

  Cell cell;
  cell.assignments.push_back(Assignment::Contain(corpus.Get(d).FullSpan()));

  struct Case {
    const char* feature;
    FeatureParam param;
    FeatureValue value;
  };
  std::vector<Case> cases = {
      {"numeric", FeatureParam::None(), FeatureValue::kYes},
      {"numeric", FeatureParam::None(), FeatureValue::kNo},
      {"bold_font", FeatureParam::None(), FeatureValue::kYes},
      {"bold_font", FeatureParam::None(), FeatureValue::kDistinctYes},
      {"bold_font", FeatureParam::None(), FeatureValue::kNo},
      {"italic_font", FeatureParam::None(), FeatureValue::kYes},
      {"capitalized", FeatureParam::None(), FeatureValue::kYes},
      {"in_first_half", FeatureParam::None(), FeatureValue::kYes},
      {"min_value", FeatureParam::Num(40), FeatureValue::kYes},
      {"max_value", FeatureParam::Num(50), FeatureValue::kYes},
      {"max_length", FeatureParam::Num(8), FeatureValue::kYes},
      {"preceded_by", FeatureParam::Str("alpha"), FeatureValue::kYes},
      {"followed_by", FeatureParam::Str("42"), FeatureValue::kYes},
  };

  for (const Case& c : cases) {
    ConstraintLit k;
    k.feature = c.feature;
    k.var = "v";
    k.param = c.param;
    k.value = c.value;
    auto narrowed = ApplyConstraintToCell(corpus, *registry, cell, k, {});
    ASSERT_TRUE(narrowed.ok()) << c.feature;

    // Brute force: all satisfying token-aligned sub-spans.
    const Document& document = corpus.Get(d);
    std::vector<Span> all;
    ASSERT_TRUE(
        document.EnumerateSubSpans(document.FullSpan(), 100000, &all));
    const Feature* feature = *registry->Get(c.feature);
    std::vector<Value> encoded;
    narrowed->EnumerateValues(corpus, 1000000, &encoded);
    for (const Span& s : all) {
      if (!feature->Verify(document, s, c.param, c.value)) continue;
      bool found = false;
      for (const Value& v : encoded) {
        if (v.has_span() && v.span() == s) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << c.feature << "/" << FeatureValueToString(c.value)
                         << " lost satisfying span '"
                         << std::string(document.TextOf(s)) << "'";
    }
  }
}

// Property: NarrowCellByComparison keeps every satisfying value, and
// reports partial=true whenever it also keeps non-satisfying ones.
TEST_P(SupersetPropertyTest, ComparisonNarrowingIsSound) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 7);
  Corpus corpus;
  auto doc = MakeDoc(&rng);
  ASSERT_TRUE(doc.ok());
  DocId d = corpus.Add(std::move(doc).value());

  Cell cell;
  cell.assignments.push_back(Assignment::Contain(corpus.Get(d).FullSpan()));
  CellOpLimits limits;

  for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe,
                   CmpOp::kEq, CmpOp::kNe}) {
    double threshold = static_cast<double>(rng.UniformRange(1, 100));
    Cell other = Cell::Exact(Value::Number(threshold));
    bool partial = false;
    Cell narrowed =
        NarrowCellByComparison(corpus, cell, op, other, limits, &partial);

    std::vector<Value> before;
    cell.EnumerateValues(corpus, 1000000, &before);
    std::vector<Value> after;
    narrowed.EnumerateValues(corpus, 1000000, &after);

    size_t satisfying = 0;
    for (const Value& v : before) {
      if (!CompareValues(v, op, Value::Number(threshold))) continue;
      ++satisfying;
      bool found = false;
      for (const Value& w : after) {
        if (w.has_span() && v.has_span() && w.span() == v.span()) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "lost value " << v.ToString() << " under op "
                         << CmpOpToString(op) << " " << threshold;
    }
    // Superset may keep extra values, but then partial must be set.
    if (after.size() > satisfying) {
      EXPECT_TRUE(partial) << CmpOpToString(op);
    }
  }
}

// Reference implementation of Definition 2 on one concrete relation:
// group by non-annotated columns, then pick one value per annotated
// column per group — enumerate all picks.
std::set<std::string> AnnotateWorldsByDefinition(
    const World& relation, const std::vector<size_t>& annotated,
    size_t arity) {
  std::vector<bool> is_annotated(arity, false);
  for (size_t i : annotated) is_annotated[i] = true;
  // Group rows by key.
  std::map<std::string, std::vector<const std::vector<Value>*>> groups;
  for (const auto& row : relation) {
    std::string key;
    for (size_t i = 0; i < arity; ++i) {
      if (!is_annotated[i]) key += row[i].ToString() + "|";
    }
    groups[key].push_back(&row);
  }
  // Odometer over per-group row choices (choosing a row fixes one value
  // for every annotated attribute simultaneously — a superset of
  // column-independent choices is not needed for a containment check,
  // but per-column choices are what Definition 2 allows, so enumerate
  // per-column from the group's value sets).
  std::vector<std::vector<std::vector<Value>>> group_choices;
  std::vector<std::vector<Value>> group_keys;
  for (auto& [key, rows] : groups) {
    (void)key;
    std::vector<std::vector<Value>> per_col(arity);
    for (size_t i = 0; i < arity; ++i) {
      if (is_annotated[i]) {
        for (const auto* row : rows) {
          bool dup = false;
          for (const Value& v : per_col[i]) dup = dup || v.Equals((*row)[i]);
          if (!dup) per_col[i].push_back((*row)[i]);
        }
      } else {
        per_col[i].push_back((*rows[0])[i]);
      }
    }
    group_choices.push_back(std::move(per_col));
  }
  // Enumerate the cartesian product of annotated-column choices across
  // groups.
  std::set<std::string> out;
  std::vector<std::map<size_t, size_t>> idx(group_choices.size());
  std::function<void(size_t, World&)> rec = [&](size_t g, World& acc) {
    if (g == group_choices.size()) {
      out.insert(CanonicalWorld(acc));
      return;
    }
    // Per-group: choose one value per annotated column.
    std::vector<size_t> cols;
    for (size_t i = 0; i < arity; ++i) {
      if (group_choices[g][i].size() > 0) cols.push_back(i);
    }
    std::vector<size_t> pick(arity, 0);
    std::function<void(size_t)> choose = [&](size_t ci) {
      if (ci == arity) {
        std::vector<Value> row(arity);
        for (size_t i = 0; i < arity; ++i) {
          row[i] = group_choices[g][i][pick[i]];
        }
        acc.push_back(row);
        rec(g + 1, acc);
        acc.pop_back();
        return;
      }
      for (pick[ci] = 0; pick[ci] < group_choices[g][ci].size(); ++pick[ci]) {
        choose(ci + 1);
      }
    };
    choose(0);
  };
  World acc;
  rec(0, acc);
  return out;
}

// Property: BAnnotate's output represents a superset of the worlds that
// Definition 2 produces from each input world.
TEST_P(SupersetPropertyTest, BAnnotateIsSupersetOfDefinition) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 52361 + 3);
  // Random small a-table with 2 columns, annotated on column 1.
  ATable input({"k", "v"});
  size_t n = 1 + rng.Uniform(3);
  for (size_t i = 0; i < n; ++i) {
    ATuple t;
    t.maybe = rng.Bernoulli(0.4);
    std::vector<Value> keys;
    size_t nk = 1 + rng.Uniform(2);
    for (size_t j = 0; j < nk; ++j) {
      keys.push_back(Value::String(std::string(1, static_cast<char>(
                                                      'a' + rng.Uniform(3)))));
    }
    std::vector<Value> vals;
    size_t nv = 1 + rng.Uniform(2);
    for (size_t j = 0; j < nv; ++j) {
      vals.push_back(Value::Number(static_cast<double>(rng.Uniform(4))));
    }
    t.cells = {keys, vals};
    input.Add(std::move(t));
  }

  AnnotationSpec spec;
  spec.annotated = {1};
  auto output = BAnnotate(input, spec);
  ASSERT_TRUE(output.ok());

  auto out_worlds = WorldSet(*output);
  ASSERT_TRUE(out_worlds.ok());
  auto in_worlds = EnumerateWorlds(input);
  ASSERT_TRUE(in_worlds.ok());
  for (const World& w : *in_worlds) {
    for (const std::string& annotated_world :
         AnnotateWorldsByDefinition(w, {1}, 2)) {
      EXPECT_TRUE(out_worlds->count(annotated_world))
          << "BAnnotate lost world: " << annotated_world;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SupersetPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace iflex
