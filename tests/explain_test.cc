// Attribution profiler (src/obs/cost_model.h) + its executor plumbing:
// inert-when-disabled, per-operator charges on a real execution, the
// execute-level "caches" row, wall coverage against the recorded span,
// and the flight-recorder dump a stopped run leaves in its ExecReport.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "obs/cost_model.h"
#include "obs/event_log.h"
#include "resilience/deadline.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

using obs::Cost;
using obs::CostKey;
using obs::CostModel;
using obs::CostScope;
using obs::ExplainReport;

TEST(CostModelTest, DisabledScopeIsInert) {
  CostModel model;
  ASSERT_FALSE(model.enabled());
  {
    CostScope scope(&model, "houses", "join", 0);
    EXPECT_FALSE(scope.active());
  }
  {
    CostScope null_scope(nullptr, "houses", "join", 0);
    EXPECT_FALSE(null_scope.active());
  }
  EXPECT_TRUE(model.Report().empty());
}

TEST(CostModelTest, ChargesAggregateByKeyAndSortDeterministically) {
  CostModel model;
  model.set_enabled(true);
  Cost c;
  c.count = 1;
  c.rows = 10;
  model.Charge(CostKey{"q", "join", 1}, c);
  model.Charge(CostKey{"q", "join", 1}, c);  // same key folds
  model.Charge(CostKey{"houses", "from", 1}, c);
  model.Charge(CostKey{"q", "join", 0}, c);  // earlier iteration sorts first
  ExplainReport report = model.Report();
  ASSERT_EQ(report.rows.size(), 3u);
  EXPECT_EQ(report.rows[0].key, (CostKey{"q", "join", 0}));
  EXPECT_EQ(report.rows[1].key, (CostKey{"houses", "from", 1}));
  EXPECT_EQ(report.rows[2].key, (CostKey{"q", "join", 1}));
  EXPECT_EQ(report.rows[2].cost.count, 2u);
  EXPECT_EQ(report.rows[2].cost.rows, 20u);
  EXPECT_EQ(report.total.rows, 40u);
  EXPECT_EQ(model.Total().rows, 40u);

  model.Clear();
  EXPECT_TRUE(model.Report().empty());
  EXPECT_EQ(model.Total().count, 0u);
}

TEST(CostModelTest, ScopeTimesWallAndChargesOnEnd) {
  CostModel model;
  model.set_enabled(true);
  {
    CostScope scope(&model, "q", "project", -1);
    ASSERT_TRUE(scope.active());
    scope.cost()->rows = 5;
    scope.End();
    scope.End();  // idempotent: no double charge
  }
  ExplainReport report = model.Report();
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].cost.count, 1u);
  EXPECT_EQ(report.rows[0].cost.rows, 5u);
}

TEST(CostModelTest, AddSpanFeedsTheDefaultCoverageDenominator) {
  CostModel model;
  model.set_enabled(true);
  model.AddSpan(1000);
  model.AddSpan(500);
  EXPECT_EQ(model.span_ns(), 1500u);
  EXPECT_EQ(model.Report().span_ns, 1500u);
  EXPECT_EQ(model.Report(9999).span_ns, 9999u);  // explicit span wins
  model.Clear();
  EXPECT_EQ(model.span_ns(), 0u);
}

TEST(CostModelTest, TextAndJsonRenderings) {
  CostModel model;
  model.set_enabled(true);
  Cost c;
  c.count = 1;
  c.rows = 3;
  c.verify_calls = 2;
  model.Charge(CostKey{"houses", "constraint", 0}, c);
  model.AddSpan(1000000);
  ExplainReport report = model.Report();
  std::string full = report.ToText();
  EXPECT_NE(full.find("iter scope"), std::string::npos);
  EXPECT_NE(full.find("wall_ms"), std::string::npos);
  EXPECT_NE(full.find("houses"), std::string::npos);
  EXPECT_NE(full.find("constraint"), std::string::npos);
  EXPECT_NE(full.find("span_ms"), std::string::npos);
  std::string stable = report.ToText(/*stable_only=*/true);
  EXPECT_NE(stable.find("rows"), std::string::npos);
  // The stable view drops every timing-derived column.
  EXPECT_EQ(stable.find("wall_ms"), std::string::npos);
  EXPECT_EQ(stable.find("span_ms"), std::string::npos);
  std::string json = report.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"scope\":\"houses\""), std::string::npos);
  EXPECT_NE(json.find("\"verify_calls\":2"), std::string::npos);
  EXPECT_NE(json.find("\"span_ns\":1000000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Executor plumbing, over the paper's running example.
// ---------------------------------------------------------------------------

constexpr char kProgram[] = R"(
  houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(x, p, a, h).
  schools(s)? :- schoolPages(y), extractSchools(y, s).
  q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500,
                   approx_match(h, s).
  extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h),
                               numeric(p) = yes, numeric(a) = yes.
  extractSchools(y, s) :- from(y, s), bold_font(s) = yes.
)";

class ExplainExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto x1 = ParseMarkup("x1",
                          "Price: <b>$351,000</b>\n"
                          "Cozy house on quiet street\n"
                          "5146 Windsor Ave, Champaign\n"
                          "Sqft: 2750\n"
                          "High school: Vanhise High");
    auto x2 = ParseMarkup("x2",
                          "Price: <b>$619,000</b>\n"
                          "Amazing house in great location\n"
                          "3112 Stonecreek Blvd, Cherry Hills\n"
                          "Sqft: 4700\n"
                          "High school: Basktall HS");
    auto y1 = ParseMarkup("y1",
                          "Top High Schools and Location (page 1)\n"
                          "<b>Basktall</b>, Cherry Hills\n"
                          "<b>Franklin</b>, Robeson\n"
                          "<b>Vanhise</b>, Champaign");
    for (auto* d : {&x1, &x2, &y1}) ASSERT_TRUE(d->ok());
    std::vector<DocId> houses_docs = {corpus_.Add(std::move(x1).value()),
                                      corpus_.Add(std::move(x2).value())};
    std::vector<DocId> school_docs = {corpus_.Add(std::move(y1).value())};

    catalog_ = std::make_unique<Catalog>(&corpus_);
    CompactTable houses({"x"});
    for (DocId d : houses_docs) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      houses.Add(t);
    }
    ASSERT_TRUE(catalog_->AddTable("housePages", std::move(houses)).ok());
    CompactTable schools({"y"});
    for (DocId d : school_docs) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      schools.Add(t);
    }
    ASSERT_TRUE(catalog_->AddTable("schoolPages", std::move(schools)).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractHouses", 1, 3).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractSchools", 1, 1).ok());
    catalog_->RegisterBuiltinFunctions(/*similarity_threshold=*/0.4);
  }

  Corpus corpus_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(ExplainExecutionTest, ExecutionChargesOperatorsAndCaches) {
  auto prog = ParseProgram(kProgram, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("q");

  obs::CostModel model;
  model.set_enabled(true);
  ExecOptions options;
  options.cost_model = &model;
  options.cost_iteration = 3;
  Executor exec(*catalog_, options);
  auto r = exec.Execute(*prog);
  ASSERT_TRUE(r.ok()) << r.status();

  ExplainReport report = model.Report();
  ASSERT_FALSE(report.empty());
  bool saw_join = false, saw_from = false, saw_caches = false;
  for (const ExplainReport::Row& row : report.rows) {
    EXPECT_EQ(row.key.iteration, 3) << row.key.scope << "/" << row.key.op;
    if (row.key.op == "join") saw_join = true;
    if (row.key.op == "from") saw_from = true;
    if (row.key.op == "caches") {
      saw_caches = true;
      EXPECT_EQ(row.key.scope, "q");
      EXPECT_EQ(row.cost.wall_ns, 0u);  // never double-counts leaf time
    }
  }
  EXPECT_TRUE(saw_join);
  EXPECT_TRUE(saw_from);
  EXPECT_TRUE(saw_caches);
  // Rules that extract charge rows; the query joins both extractions.
  EXPECT_GT(report.total.rows, 0u);
  EXPECT_GT(report.total.verify_calls, 0u);
  // Wall coverage sanity: attributed leaf time fits inside the Execute
  // span the executor recorded via AddSpan.
  EXPECT_GT(model.span_ns(), 0u);
  EXPECT_LE(report.total.wall_ns, model.span_ns());
  // The report also rides along in the ExecReport for post-mortems.
  EXPECT_FALSE(exec.report().explain.empty());
  EXPECT_NE(exec.report().explain.find("caches"), std::string::npos);
}

TEST_F(ExplainExecutionTest, DisabledProfilerChargesNothing) {
  auto prog = ParseProgram(kProgram, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("q");

  obs::CostModel model;  // disabled
  ExecOptions options;
  options.cost_model = &model;
  Executor exec(*catalog_, options);
  auto r = exec.Execute(*prog);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(model.Report().empty());
  EXPECT_EQ(model.span_ns(), 0u);
  EXPECT_TRUE(exec.report().explain.empty());
}

TEST_F(ExplainExecutionTest, StoppedRunDumpsTheFlightRecorder) {
  auto prog = ParseProgram(kProgram, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("q");

  obs::EventLog log(64);
  ExecOptions options;
  options.event_log = &log;
  options.deadline = resilience::Deadline::AfterMillis(0);  // expired
  Executor exec(*catalog_, options);
  auto r = exec.Execute(*prog);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_FALSE(exec.report().flight_recorder.empty());
  std::string joined;
  for (const std::string& line : exec.report().flight_recorder) {
    joined += line;
    joined.push_back('\n');
  }
  EXPECT_NE(joined.find("dumping flight recorder"), std::string::npos)
      << joined;
  EXPECT_NE(joined.find("execute begin"), std::string::npos) << joined;
}

TEST_F(ExplainExecutionTest, CleanRunLeavesNoFlightRecorder) {
  auto prog = ParseProgram(kProgram, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("q");

  obs::EventLog log(64);
  ExecOptions options;
  options.event_log = &log;
  Executor exec(*catalog_, options);
  auto r = exec.Execute(*prog);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(exec.report().flight_recorder.empty());
  // The run still logged its begin/end breadcrumbs (info level default).
  EXPECT_GE(log.total(), 2u);
}

}  // namespace
}  // namespace iflex
