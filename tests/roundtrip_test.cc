// Cross-cutting round-trip properties over all task programs: the parser
// and printer agree, validation/unfolding succeed, and fingerprints are
// stable.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "tasks/task.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

class TaskProgramTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TaskProgramTest, ParsePrintParseIsStable) {
  auto task = MakeTask(GetParam(), 10);
  ASSERT_TRUE(task.ok()) << task.status();
  const Program& p = (*task)->initial_program;
  std::string printed = p.ToString();
  auto reparsed = ParseProgram(printed, *(*task)->catalog);
  ASSERT_TRUE(reparsed.ok()) << GetParam() << ": " << reparsed.status()
                             << "\n" << printed;
  EXPECT_EQ(reparsed->ToString(), printed);
}

TEST_P(TaskProgramTest, UnfoldSucceedsAndRemovesIEPredicates) {
  auto task = MakeTask(GetParam(), 10);
  ASSERT_TRUE(task.ok());
  auto unfolded = (*task)->initial_program.Unfold(*(*task)->catalog);
  ASSERT_TRUE(unfolded.ok()) << unfolded.status();
  for (const Rule& r : unfolded->rules()) {
    for (const Literal& lit : r.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      auto kind = (*task)->catalog->KindOf(lit.atom.predicate);
      if (kind.ok()) {
        EXPECT_NE(*kind, PredicateKind::kIEPredicate)
            << lit.atom.predicate << " survived unfolding";
      }
    }
  }
}

TEST_P(TaskProgramTest, FingerprintIsDeterministic) {
  auto t1 = MakeTask(GetParam(), 10);
  auto t2 = MakeTask(GetParam(), 10);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ((*t1)->initial_program.Fingerprint(),
            (*t2)->initial_program.Fingerprint());
}

TEST_P(TaskProgramTest, InitialProgramExecutesOnSmallSubset) {
  auto task = MakeTask(GetParam(), 10);
  ASSERT_TRUE(task.ok());
  Catalog subset = (*task)->catalog->CloneWithSampledTables(0.5, 1);
  Executor exec(subset);
  auto result = exec.Execute((*task)->initial_program);
  ASSERT_TRUE(result.ok()) << GetParam() << ": " << result.status();
  // The unconstrained initial program must not lose anything: at least
  // one candidate tuple per sampled input record of the first table.
  EXPECT_GT(result->size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllTasks, TaskProgramTest,
                         ::testing::Values("T1", "T2", "T3", "T4", "T5",
                                           "T6", "T7", "T8", "T9", "Panel",
                                           "Project", "Chair"),
                         [](const auto& info) { return info.param; });

TEST(RenderMarkupTest, RoundTripsGeneratedPages) {
  auto task = MakeTask("T7", 5);
  ASSERT_TRUE(task.ok());
  const Corpus& corpus = *(*task)->corpus;
  for (size_t i = 0; i < corpus.size(); ++i) {
    const Document& doc = corpus.Get(static_cast<DocId>(i));
    std::string rendered = RenderMarkup(doc);
    auto reparsed = ParseMarkup(doc.name() + "/rt", rendered);
    ASSERT_TRUE(reparsed.ok()) << rendered;
    EXPECT_EQ(reparsed->text(), doc.text());
    for (int k = 0; k < kNumMarkupKinds; ++k) {
      EXPECT_EQ(reparsed->layer(static_cast<MarkupKind>(k)).ranges(),
                doc.layer(static_cast<MarkupKind>(k)).ranges());
    }
  }
}

}  // namespace
}  // namespace iflex
