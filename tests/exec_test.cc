#include <gtest/gtest.h>

#include <utility>

#include "exec/annotate.h"
#include "exec/cell_ops.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "text/markup_parser.h"

namespace iflex {
namespace {

Value Num(double n) { return Value::Number(n); }
Value Str(const std::string& s) { return Value::String(s); }

// ------------------------------------------------------- BAnnotate (Fig 5)

ATuple MakeATuple(std::vector<std::vector<Value>> cells, bool maybe = false) {
  ATuple t;
  t.cells = std::move(cells);
  t.maybe = maybe;
  return t;
}

TEST(BAnnotateTest, PaperFigure5) {
  // T1 from Figure 5.a with an attribute annotation on age.
  ATable t1({"name", "age"});
  t1.Add(MakeATuple({{Str("Alice"), Str("Bob")}, {Num(5)}}));
  t1.Add(MakeATuple({{Str("Alice"), Str("Carol")}, {Num(6), Num(7)}}));
  t1.Add(MakeATuple({{Str("Dave")}, {Num(8), Num(9)}}));

  AnnotationSpec spec;
  spec.annotated = {1};
  auto t2 = BAnnotate(t1, spec);
  ASSERT_TRUE(t2.ok()) << t2.status();
  ASSERT_EQ(t2->size(), 4u);

  auto find = [&](const std::string& name) -> const ATuple* {
    for (const auto& t : t2->tuples()) {
      if (t.cells[0][0].AsText() == name) return &t;
    }
    return nullptr;
  };
  const ATuple* alice = find("Alice");
  ASSERT_NE(alice, nullptr);
  EXPECT_TRUE(alice->maybe);
  EXPECT_EQ(alice->cells[1].size(), 3u);  // {5, 6, 7}

  const ATuple* bob = find("Bob");
  ASSERT_NE(bob, nullptr);
  EXPECT_TRUE(bob->maybe);
  EXPECT_EQ(bob->cells[1].size(), 1u);

  const ATuple* carol = find("Carol");
  ASSERT_NE(carol, nullptr);
  EXPECT_TRUE(carol->maybe);
  EXPECT_EQ(carol->cells[1].size(), 2u);

  // Dave is pinned: every possible relation has a Dave tuple.
  const ATuple* dave = find("Dave");
  ASSERT_NE(dave, nullptr);
  EXPECT_FALSE(dave->maybe);
  EXPECT_EQ(dave->cells[1].size(), 2u);  // {8, 9}
}

TEST(BAnnotateTest, MaybeInputNeverPins) {
  ATable t({"name", "age"});
  t.Add(MakeATuple({{Str("Dave")}, {Num(8)}}, /*maybe=*/true));
  AnnotationSpec spec;
  spec.annotated = {1};
  auto out = BAnnotate(t, spec);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_TRUE(out->tuples()[0].maybe);
}

TEST(BAnnotateTest, MultipleAnnotatedAttributes) {
  ATable t({"k", "a", "b"});
  t.Add(MakeATuple({{Str("x")}, {Num(1), Num(2)}, {Num(3)}}));
  t.Add(MakeATuple({{Str("x")}, {Num(2)}, {Num(4)}}));
  AnnotationSpec spec;
  spec.annotated = {1, 2};
  auto out = BAnnotate(t, spec);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuples()[0].cells[1].size(), 2u);  // {1,2}
  EXPECT_EQ(out->tuples()[0].cells[2].size(), 2u);  // {3,4}
  EXPECT_FALSE(out->tuples()[0].maybe);
}

// ------------------------------------------------------------ cell ops

class CellOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = ParseMarkup(
        "d", "Price: <b>$619,000</b>\nSqft: 4700\nSchool: Basktall HS");
    ASSERT_TRUE(d.ok());
    doc_ = corpus_.Add(std::move(d).value());
    registry_ = CreateDefaultRegistry();
  }

  Cell WholeDocContain() {
    Cell c;
    c.assignments.push_back(Assignment::Contain(corpus_.Get(doc_).FullSpan()));
    return c;
  }

  Corpus corpus_;
  DocId doc_ = 0;
  std::unique_ptr<FeatureRegistry> registry_;
  CellOpLimits limits_;
};

TEST_F(CellOpsTest, ConstraintRefinesContainToExactNumbers) {
  ConstraintLit k;
  k.feature = "numeric";
  k.var = "p";
  k.value = FeatureValue::kYes;
  auto cell = ApplyConstraintToCell(corpus_, *registry_, WholeDocContain(), k, {});
  ASSERT_TRUE(cell.ok());
  ASSERT_EQ(cell->assignments.size(), 2u);  // $619,000 and 4700
  EXPECT_TRUE(cell->assignments[0].is_exact());
}

TEST_F(CellOpsTest, ConstraintHistoryRechecked) {
  // First bold, then numeric: numeric Refine over the bold region; the
  // result must still satisfy bold (it does: $619,000 is inside bold).
  ConstraintLit bold;
  bold.feature = "bold_font";
  bold.var = "p";
  ConstraintLit numeric;
  numeric.feature = "numeric";
  numeric.var = "p";
  auto after_bold =
      ApplyConstraintToCell(corpus_, *registry_, WholeDocContain(), bold, {});
  ASSERT_TRUE(after_bold.ok());
  auto after_num = ApplyConstraintToCell(corpus_, *registry_, *after_bold,
                                         numeric, {bold});
  ASSERT_TRUE(after_num.ok());
  ASSERT_EQ(after_num->assignments.size(), 1u);
  EXPECT_EQ(after_num->assignments[0].value.AsText(), "$619,000");

  // Order independence (paper §4.2): numeric then bold gives the same set.
  auto a1 = ApplyConstraintToCell(corpus_, *registry_, WholeDocContain(),
                                  numeric, {});
  ASSERT_TRUE(a1.ok());
  auto a2 = ApplyConstraintToCell(corpus_, *registry_, *a1, bold, {numeric});
  ASSERT_TRUE(a2.ok());
  ASSERT_EQ(a2->assignments.size(), 1u);
  EXPECT_EQ(a2->assignments[0].value.AsText(), "$619,000");
}

TEST_F(CellOpsTest, ScalarValuesVerifiedByText) {
  Cell c = Cell::Exact(Value::String("42"));
  ConstraintLit numeric;
  numeric.feature = "numeric";
  numeric.var = "v";
  auto r = ApplyConstraintToCell(corpus_, *registry_, c, numeric, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->assignments.size(), 1u);
  // A markup feature cannot narrow a scalar: value kept (sound).
  ConstraintLit bold;
  bold.feature = "bold_font";
  bold.var = "v";
  auto r2 = ApplyConstraintToCell(corpus_, *registry_, c, bold, {});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->assignments.size(), 1u);
}

TEST_F(CellOpsTest, CompareCellsTriState) {
  Cell big = Cell::Exact(Num(619000));
  Cell small = Cell::Exact(Num(4700));
  Cell threshold = Cell::Exact(Num(500000));
  EXPECT_EQ(CompareCells(corpus_, big, CmpOp::kGt, threshold, limits_),
            SatResult::kAll);
  EXPECT_EQ(CompareCells(corpus_, small, CmpOp::kGt, threshold, limits_),
            SatResult::kNone);
  Cell both;
  both.assignments.push_back(Assignment::Exact(Num(619000)));
  both.assignments.push_back(Assignment::Exact(Num(4700)));
  EXPECT_EQ(CompareCells(corpus_, both, CmpOp::kGt, threshold, limits_),
            SatResult::kSome);
}

TEST_F(CellOpsTest, CompareValuesNullSemantics) {
  EXPECT_TRUE(CompareValues(Value::Null(), CmpOp::kEq, Value::Null()));
  EXPECT_TRUE(CompareValues(Num(1), CmpOp::kNe, Value::Null()));
  EXPECT_FALSE(CompareValues(Num(1), CmpOp::kEq, Value::Null()));
  EXPECT_FALSE(CompareValues(Value::Null(), CmpOp::kLt, Num(1)));
}

TEST_F(CellOpsTest, CompareValuesMixedNumericString) {
  EXPECT_TRUE(CompareValues(Str("$39.99"), CmpOp::kEq, Num(39.99)));
  EXPECT_TRUE(CompareValues(Str("abc"), CmpOp::kLt, Str("abd")));
  // Both sides parse as numbers, so the comparison is numeric: 10 < 9 is
  // false even though "10" < "9" lexicographically.
  EXPECT_FALSE(CompareValues(Str("10"), CmpOp::kLt, Str("9")));
  // A true number never matches non-numeric text.
  EXPECT_FALSE(CompareValues(Str("Sqft"), CmpOp::kGt, Num(500000)));
  EXPECT_TRUE(CompareValues(Str("Sqft"), CmpOp::kNe, Num(500000)));
}

TEST_F(CellOpsTest, NarrowByComparisonFlagsPartial) {
  Cell both;
  both.assignments.push_back(Assignment::Exact(Num(619000)));
  both.assignments.push_back(Assignment::Exact(Num(4700)));
  Cell threshold = Cell::Exact(Num(500000));
  bool partial = false;
  Cell narrowed = NarrowCellByComparison(corpus_, both, CmpOp::kGt, threshold,
                                         limits_, &partial);
  ASSERT_EQ(narrowed.assignments.size(), 1u);
  EXPECT_EQ(*narrowed.assignments[0].value.AsNumber(), 619000);
  // No partiality: the dropped assignment had no satisfying value, the
  // kept one only satisfying values.
  EXPECT_FALSE(partial);

  // contain over the whole document: some sub-spans satisfy, some do not.
  bool partial2 = false;
  Cell narrowed2 = NarrowCellByComparison(corpus_, WholeDocContain(),
                                          CmpOp::kGt, threshold, limits_,
                                          &partial2);
  EXPECT_EQ(narrowed2.assignments.size(), 1u);
  EXPECT_TRUE(partial2);
}

// --------------------------------------------------------------- executor

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto p1 = ParseMarkup("page1", "Price: <b>$250,000</b> Sqft: 2000");
    auto p2 = ParseMarkup("page2", "Price: <b>$619,000</b> Sqft: 4700");
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE(p2.ok());
    d1_ = corpus_.Add(std::move(p1).value());
    d2_ = corpus_.Add(std::move(p2).value());
    catalog_ = std::make_unique<Catalog>(&corpus_);
    CompactTable pages({"x"});
    for (DocId d : {d1_, d2_}) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Value::Doc(d)));
      pages.Add(t);
    }
    ASSERT_TRUE(catalog_->AddTable("pages", std::move(pages)).ok());
    ASSERT_TRUE(catalog_->DeclareIEPredicate("extractPrice", 1, 1).ok());
    catalog_->RegisterBuiltinFunctions();
  }

  Corpus corpus_;
  DocId d1_ = 0, d2_ = 0;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(ExecutorTest, ExtractWithConstraints) {
  const char* src = R"(
    q(x, p) :- pages(x), extractPrice(x, p).
    extractPrice(x, p) :- from(x, p), numeric(p) = yes,
                          bold_font(p) = yes.
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("q");
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 2u);
  // Each page's p cell narrowed to the single bold price.
  for (const auto& t : result->tuples()) {
    ASSERT_EQ(t.cells[1].assignments.size(), 1u);
    EXPECT_TRUE(t.cells[1].assignments[0].is_exact());
  }
}

TEST_F(ExecutorTest, ComparisonDropsAndNarrows) {
  const char* src = R"(
    q(x, p) :- pages(x), extractPrice(x, p), p > 500000.
    extractPrice(x, p) :- from(x, p), numeric(p) = yes,
                          bold_font(p) = yes.
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok());
  prog->set_query("q");
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_DOUBLE_EQ(
      *result->tuples()[0].cells[1].assignments[0].value.AsNumber(), 619000);
  EXPECT_FALSE(result->tuples()[0].maybe);
}

TEST_F(ExecutorTest, UnconstrainedAttributeComparisonKeepsMaybe) {
  // Without the bold/numeric narrowing, some sub-span satisfies and most
  // do not -> the page-2 tuple survives as a maybe tuple.
  const char* src = R"(
    q(x, p) :- pages(x), extractPrice(x, p), p > 500000.
    extractPrice(x, p) :- from(x, p).
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok());
  prog->set_query("q");
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->tuples()[0].maybe);
}

TEST_F(ExecutorTest, ExistenceAnnotationMarksMaybe) {
  const char* src = R"(
    q(x, p)? :- pages(x), extractPrice(x, p).
    extractPrice(x, p) :- from(x, p), numeric(p) = yes, bold_font(p) = yes.
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok());
  prog->set_query("q");
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok());
  for (const auto& t : result->tuples()) EXPECT_TRUE(t.maybe);
}

TEST_F(ExecutorTest, AttributeAnnotationGroupsPerKey) {
  // numeric alone leaves two candidate numbers per page; the attribute
  // annotation groups them into one tuple per page.
  const char* src = R"(
    q(x, <p>) :- pages(x), extractPrice(x, p).
    extractPrice(x, p) :- from(x, p), numeric(p) = yes.
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok());
  prog->set_query("q");
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 2u);
  for (const auto& t : result->tuples()) {
    EXPECT_FALSE(t.maybe);
    EXPECT_EQ(t.cells[1].assignments.size(), 2u);  // price and sqft numbers
  }
}

TEST_F(ExecutorTest, PPredicateAppliesPerInputValue) {
  ASSERT_TRUE(catalog_
                  ->DeclarePPredicate(
                      "double_it", 1, 1,
                      [](const Corpus&, const std::vector<Value>& in)
                          -> Result<std::vector<std::vector<Value>>> {
                        auto n = in[0].AsNumber();
                        if (!n.has_value()) return std::vector<std::vector<Value>>{};
                        return std::vector<std::vector<Value>>{
                            {Value::Number(*n * 2)}};
                      })
                  .ok());
  const char* src = R"(
    q(x, p, d) :- pages(x), extractPrice(x, p), double_it(p, d).
    extractPrice(x, p) :- from(x, p), numeric(p) = yes, bold_font(p) = yes.
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("q");
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 2u);
  for (const auto& t : result->tuples()) {
    double p = *t.cells[1].assignments[0].value.AsNumber();
    double d = *t.cells[2].assignments[0].value.AsNumber();
    EXPECT_DOUBLE_EQ(d, 2 * p);
    EXPECT_FALSE(t.maybe);  // exactly one input combination
  }
}

TEST_F(ExecutorTest, ReuseCacheHitsOnUnchangedPredicates) {
  const char* src = R"(
    prices(x, p) :- pages(x), extractPrice(x, p).
    q(x, p) :- prices(x, p), p > 500000.
    extractPrice(x, p) :- from(x, p), numeric(p) = yes, bold_font(p) = yes.
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok());
  prog->set_query("q");
  ReuseCache cache;
  Executor exec(*catalog_);
  ASSERT_TRUE(exec.Execute(*prog, &cache).ok());
  EXPECT_EQ(exec.stats().cache_hits, 0u);
  size_t misses = exec.stats().cache_misses;
  EXPECT_GT(misses, 0u);
  ASSERT_TRUE(exec.Execute(*prog, &cache).ok());
  EXPECT_EQ(exec.stats().cache_hits, misses);
}

TEST_F(ExecutorTest, StatsAccumulate) {
  const char* src = R"(
    q(x, p) :- pages(x), extractPrice(x, p).
    extractPrice(x, p) :- from(x, p), numeric(p) = yes.
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok());
  prog->set_query("q");
  Executor exec(*catalog_);
  ASSERT_TRUE(exec.Execute(*prog).ok());
  EXPECT_GT(exec.stats().rules_evaluated, 0u);
  EXPECT_GT(exec.stats().constraint_cells, 0u);
  exec.ClearStats();
  EXPECT_EQ(exec.stats().rules_evaluated, 0u);
}

TEST_F(ExecutorTest, RecursionRejected) {
  // Hand-build a recursive program (the parser allows it; the executor
  // must reject it).
  const char* src = R"(
    q(x) :- pages(x).
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok());
  Rule rec;
  rec.head.predicate = "q";
  rec.head.args = {"x"};
  rec.head.annotated = {false};
  Atom self;
  self.predicate = "q";
  self.args = {Term::Var("x")};
  rec.body.push_back(Literal::OfAtom(self));
  prog->AddRule(rec);
  prog->set_query("q");
  Executor exec(*catalog_);
  EXPECT_FALSE(exec.Execute(*prog).ok());
}

// ------------------------------------------------- observability counters

// Catalog with two small extensional tables whose join costs are exactly
// countable: r = {(1,10),(2,20),(3,30)}, s = {(10,100),(20,200)}.
class CounterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = std::make_unique<Catalog>(&corpus_);
    CompactTable r({"a", "b"});
    for (auto [a, b] : {std::pair{1, 10}, {2, 20}, {3, 30}}) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Num(a)));
      t.cells.push_back(Cell::Exact(Num(b)));
      r.Add(std::move(t));
    }
    ASSERT_TRUE(catalog_->AddTable("r", std::move(r)).ok());
    CompactTable st({"b", "c"});
    for (auto [b, c] : {std::pair{10, 100}, {20, 200}}) {
      CompactTuple t;
      t.cells.push_back(Cell::Exact(Num(b)));
      t.cells.push_back(Cell::Exact(Num(c)));
      st.Add(std::move(t));
    }
    ASSERT_TRUE(catalog_->AddTable("s", std::move(st)).ok());
    catalog_->RegisterBuiltinFunctions();
  }

  Corpus corpus_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(CounterTest, JoinCountersMatchGroundTruth) {
  auto prog = ParseProgram("q(a, c) :- r(a, b), s(b, c).", *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("q");
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 2u);  // (1,100), (2,200)

  const ExecStats& stats = exec.stats();
  EXPECT_EQ(stats.rules_evaluated, 1u);
  // Seed binding {()} x r -> 3 pairs; 3 bindings x s -> 6 pairs.
  EXPECT_EQ(stats.join_pairs, 9u);
  // Only the q projection emits: 2 result tuples.
  EXPECT_EQ(stats.tuples_emitted, 2u);
  EXPECT_EQ(stats.constraint_cells, 0u);
  EXPECT_EQ(stats.ppred_invocations, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);   // no cache wired in
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_GT(stats.process_assignments, 0u);
}

TEST_F(CounterTest, CountersAliasTheMetricRegistry) {
  auto prog = ParseProgram("q(a, c) :- r(a, b), s(b, c).", *catalog_);
  ASSERT_TRUE(prog.ok());
  prog->set_query("q");
  obs::MetricRegistry registry;
  ExecOptions options;
  options.metrics = &registry;
  Executor exec(*catalog_, options);
  ASSERT_TRUE(exec.Execute(*prog).ok());
  // ExecStats is a view over the named metrics in the caller's registry.
  EXPECT_EQ(registry.counter("exec.join_pairs")->value(),
            exec.stats().join_pairs);
  EXPECT_EQ(registry.counter("exec.tuples_emitted")->value(), 2u);
}

TEST_F(ExecutorTest, OperatorCountersMatchGroundTruth) {
  ASSERT_TRUE(catalog_
                  ->DeclarePPredicate(
                      "double_it", 1, 1,
                      [](const Corpus&, const std::vector<Value>& in)
                          -> Result<std::vector<std::vector<Value>>> {
                        auto n = in[0].AsNumber();
                        if (!n.has_value()) return std::vector<std::vector<Value>>{};
                        return std::vector<std::vector<Value>>{
                            {Value::Number(*n * 2)}};
                      })
                  .ok());
  const char* src = R"(
    q(x, p, d) :- pages(x), extractPrice(x, p), double_it(p, d).
    extractPrice(x, p) :- from(x, p), numeric(p) = yes, bold_font(p) = yes.
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok()) << prog.status();
  prog->set_query("q");
  Executor exec(*catalog_);
  auto result = exec.Execute(*prog);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 2u);

  const ExecStats& stats = exec.stats();
  // extractPrice is an IE predicate, so Unfold inlines it: one rule runs.
  EXPECT_EQ(stats.rules_evaluated, 1u);
  // `from` binds one p cell per page, then each of numeric/bold_font
  // visits both binding tuples.
  EXPECT_EQ(stats.constraint_cells, 4u);
  // One bold price per page after the constraints -> one p-predicate
  // call per page.
  EXPECT_EQ(stats.ppred_invocations, 2u);
  // The only join is seed x pages (1x2); `from` is not a join.
  EXPECT_EQ(stats.join_pairs, 2u);
  // The single unfolded rule emits the 2 result tuples.
  EXPECT_EQ(stats.tuples_emitted, 2u);
}

// ------------------------------------------- stats lifecycle regressions

TEST_F(ExecutorTest, CachedReexecutionDoesNotDoubleCountProcessSize) {
  const char* src = R"(
    q(x, p) :- pages(x), extractPrice(x, p).
    extractPrice(x, p) :- from(x, p), numeric(p) = yes, bold_font(p) = yes.
  )";
  auto prog = ParseProgram(src, *catalog_);
  ASSERT_TRUE(prog.ok());
  prog->set_query("q");
  ReuseCache cache;
  Executor exec(*catalog_);
  ASSERT_TRUE(exec.Execute(*prog, &cache).ok());
  size_t cold = exec.stats().process_assignments;
  double cold_values = exec.stats().process_values;
  EXPECT_GT(cold, 0u);
  // Second run is served from the cache; the process size of the run is
  // the same, not doubled (and not zero).
  ASSERT_TRUE(exec.Execute(*prog, &cache).ok());
  EXPECT_GT(exec.stats().cache_hits, 0u);
  EXPECT_EQ(exec.stats().process_assignments, cold);
  EXPECT_DOUBLE_EQ(exec.stats().process_values, cold_values);
}

TEST_F(ExecutorTest, FailedExecutionReportsZeroProcessSize) {
  const char* ok_src = R"(
    q(x, p) :- pages(x), extractPrice(x, p).
    extractPrice(x, p) :- from(x, p), numeric(p) = yes.
  )";
  auto ok_prog = ParseProgram(ok_src, *catalog_);
  ASSERT_TRUE(ok_prog.ok());
  ok_prog->set_query("q");
  Executor exec(*catalog_);
  ASSERT_TRUE(exec.Execute(*ok_prog).ok());
  EXPECT_GT(exec.stats().process_assignments, 0u);

  // A failing execution must not leave the previous run's process size
  // behind: the gauges reset at Execute start.
  auto bad_prog = ParseProgram("nope(x) :- pages(x).", *catalog_);
  ASSERT_TRUE(bad_prog.ok());
  bad_prog->set_query("q");  // no rule defines q here
  EXPECT_FALSE(exec.Execute(*bad_prog).ok());
  EXPECT_EQ(exec.stats().process_assignments, 0u);
  EXPECT_DOUBLE_EQ(exec.stats().process_values, 0.0);
}

}  // namespace
}  // namespace iflex
