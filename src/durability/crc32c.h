#ifndef IFLEX_DURABILITY_CRC32C_H_
#define IFLEX_DURABILITY_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace iflex {
namespace durability {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum used by the journal's record frames (the same polynomial
/// RocksDB/LevelDB logs and iSCSI use; better error-detection spread than
/// the zlib CRC-32). Software slicing-by-one table implementation: journal
/// records are command lines, far from any hot path.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view s, uint32_t seed = 0) {
  return Crc32c(s.data(), s.size(), seed);
}

/// Masked form stored in the frame (RocksDB idiom): a rotation + offset
/// so that a frame whose payload happens to itself contain framed records
/// (e.g. a journal journaled into a journal) cannot produce the same
/// stored checksum at a misaligned scan position.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace durability
}  // namespace iflex

#endif  // IFLEX_DURABILITY_CRC32C_H_
