#ifndef IFLEX_DURABILITY_JOURNAL_H_
#define IFLEX_DURABILITY_JOURNAL_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace iflex {
namespace durability {

/// When the journal forces bytes to stable storage (docs/ROBUSTNESS.md):
///   kEveryRecord — fdatasync after every append; an accepted command is
///                  durable before the client sees its response.
///   kInterval    — fdatasync at most once per fsync_interval_ms; a crash
///                  can lose the commands accepted inside the last window.
///   kOff         — never explicitly synced; durability is whatever the
///                  OS page cache got around to.
enum class FsyncPolicy { kEveryRecord, kInterval, kOff };

/// "every" / "interval" / "off".
const char* FsyncPolicyName(FsyncPolicy policy);

/// Largest payload a frame may carry. Commands are bounded by the wire
/// frame limit (64 KiB), so anything near this is corruption, not data.
inline constexpr uint32_t kMaxRecordBytes = 1u << 20;

/// Bytes of framing per record: u32 payload length + u32 masked CRC32C,
/// both little-endian, followed by the payload.
inline constexpr size_t kRecordHeaderBytes = 8;

/// Appends one framed record to `out`.
void EncodeRecord(std::string* out, std::string_view payload);

/// Outcome of scanning a journal (or snapshot) file front to back.
struct JournalScan {
  std::vector<std::string> records;  // valid payloads, in file order
  uint64_t valid_bytes = 0;  // offset one past the last valid record
  bool missing = false;      // file does not exist (empty journal, not damage)
  /// The final record ran past EOF (a write the crash cut short). Normal
  /// after SIGKILL; the tail is discarded and appends resume at
  /// valid_bytes.
  bool torn_tail = false;
  /// A structurally complete record failed its CRC (or carried an absurd
  /// length) before EOF — real corruption, not a torn write. Everything
  /// from it on is discarded; callers surface a warning.
  bool corrupt = false;
  std::string detail;  // one-line damage description for the event log
};

/// Scans framed records in `data` (e.g. a journal file read into memory).
JournalScan ScanBuffer(std::string_view data);

/// Reads and scans `path`. A missing file is an empty, healthy journal.
/// An unreadable file reports corrupt with zero records.
JournalScan ScanFile(const std::string& path);

/// Append-only writer over one framed-record file, with the configurable
/// fsync policy above and the serve.journal.* fail-point sites wired in:
///
///   serve.journal.append — an armed `error` clause makes the append a
///     torn write: roughly half the frame reaches the file, the append
///     reports a typed error, and the writer goes into the broken state
///     (every later append is rejected kUnavailable until the file is
///     re-opened or compacted). This models a crash mid-write whose
///     partial bytes survive — exactly what recovery must tolerate.
///   serve.journal.fsync — the post-write sync fails; the completed
///     frame is rolled back with a best-effort ftruncate (a rejected
///     command must not resurface as a ghost after a crash) and the
///     writer also breaks.
///
/// Not thread-safe: the owner serializes appends (iflexd holds the
/// session mutex).
class JournalWriter {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
    int64_t fsync_interval_ms = 25;
  };

  /// Opens `path` for appending at `valid_bytes` (from a prior scan),
  /// truncating any torn/corrupt tail beyond it. A file that ends up
  /// empty gets `header` written (and synced) as its first record —
  /// journal files always start with their self-describing header.
  static Result<std::unique_ptr<JournalWriter>> Open(
      const std::string& path, uint64_t valid_bytes,
      std::string_view header, Options options);

  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one record and applies the fsync policy. On any failure the
  /// writer breaks (see class comment) and the command must be reported
  /// rejected — accepted means durable, per policy.
  Status Append(std::string_view payload);

  /// Forces an fdatasync now (snapshot barriers use this).
  Status Sync();

  /// File offset past the last durable-accepted record.
  uint64_t offset() const { return offset_; }
  /// True after any append/sync failure; appends are rejected until the
  /// session's log is re-opened or compacted onto a fresh file.
  bool broken() const { return broken_; }

 private:
  JournalWriter(int fd, uint64_t offset, Options options)
      : fd_(fd), offset_(offset), options_(options),
        last_sync_(std::chrono::steady_clock::now()) {}

  Status WriteFully(const char* data, size_t n);
  Status MaybeSync(bool force);

  int fd_ = -1;
  uint64_t offset_ = 0;
  bool broken_ = false;
  Options options_;
  std::chrono::steady_clock::time_point last_sync_;
};

/// Writes `contents` to `path` atomically: <path>.tmp + fdatasync, then
/// rename over `path`, then fsync of the containing directory. The
/// serve.snapshot.write fail point turns this into a torn .tmp write
/// (typed error, no rename — the old file, if any, stays authoritative).
Status WriteFileDurably(const std::string& path, std::string_view contents,
                        std::string_view failpoint_site = {});

}  // namespace durability
}  // namespace iflex

#endif  // IFLEX_DURABILITY_JOURNAL_H_
