#ifndef IFLEX_DURABILITY_SESSION_LOG_H_
#define IFLEX_DURABILITY_SESSION_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "durability/journal.h"

namespace iflex {
namespace durability {

/// Durability knobs shared by iflexd and the recovery bench.
struct DurabilityOptions {
  FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
  int64_t fsync_interval_ms = 25;
  /// Auto-snapshot (and compact the journal) after this many journal
  /// records since the last snapshot; 0 disables auto-snapshots (the
  /// `persist` verb still works).
  size_t snapshot_every = 64;
};

/// What SessionLog::Open found on disk — the caller (iflexd recovery)
/// turns this into event-log entries and serve.* counters.
struct RecoveryReport {
  size_t commands = 0;       // effective recovered command count
  size_t from_snapshot = 0;  // of which came from the snapshot prefix
  bool torn_tail = false;    // journal tail cut short by a crash (normal)
  bool corrupt = false;      // mid-file damage; degraded to the valid prefix
  /// snapshot.dat existed but was unusable. With an uncompacted journal
  /// this costs nothing (the journal has everything); with a compacted
  /// one the pre-watermark prefix is gone and the session degrades to
  /// empty (prefix_lost).
  bool snapshot_ignored = false;
  bool prefix_lost = false;
  std::string detail;  // one-line damage description
};

/// The durable state of one iflexd session: an append-only write-ahead
/// journal of accepted state-mutating command lines plus a periodic
/// snapshot that rewrites the replayable prefix compactly and compacts
/// the journal behind a watermark.
///
/// Layout under the per-session directory:
///   journal.log   framed records; record 0 is "iflexjournal v1 base=<B>"
///                 where B is the absolute index of the first data record
///                 (0 for a fresh journal, the snapshot watermark after a
///                 compaction)
///   snapshot.dat  framed records; record 0 is "iflexsnap v1
///                 watermark=<W>", then the compacted command prefix that
///                 reproduces the state of the first W journaled commands
///   *.tmp         in-flight atomic writes; ignored by recovery
///
/// Recovery is deterministic replay: snapshot commands, then journal
/// records with absolute index >= W, fed through the session's
/// CommandInterpreter. Torn tails are truncated on open; mid-file
/// corruption degrades the session to the last valid prefix (the caller
/// logs a warning and bumps serve.journal_truncated).
///
/// Not thread-safe; iflexd serializes access under the session mutex.
class SessionLog {
 public:
  /// Opens (creating if needed) the session directory and scans its
  /// durable state. `report` (optional) receives what was found.
  static Result<std::unique_ptr<SessionLog>> Open(const std::string& dir,
                                                  const DurabilityOptions& options,
                                                  RecoveryReport* report);

  /// The effective command history: recovered commands followed by every
  /// command accepted through Append() since. Replaying these through a
  /// fresh CommandInterpreter reproduces the session byte-identically.
  const std::vector<std::string>& history() const { return history_; }

  /// Journals one accepted command (write-ahead: call before executing
  /// it). Non-OK means the command must be rejected — it is not durable.
  Status Append(const std::string& command);

  /// True when snapshot_every is configured and that many records have
  /// accumulated since the last snapshot.
  bool ShouldSnapshot() const;

  /// Writes a snapshot of the full history (compacted) and compacts the
  /// journal behind the new watermark. Also the repair path: a broken
  /// journal writer (failed append/sync) is replaced by a fresh clean
  /// journal, re-enabling mutations. Failure leaves the previous
  /// snapshot/journal authoritative.
  Status WriteSnapshot();

  /// Absolute journal record count (the index the next append gets).
  uint64_t records() const { return records_; }
  /// Watermark of the last successful snapshot (0 = none).
  uint64_t watermark() const { return watermark_; }
  /// Commands the last snapshot kept after compaction.
  size_t last_snapshot_commands() const { return last_snapshot_commands_; }
  /// True when the journal writer is in the broken state (appends are
  /// rejected until WriteSnapshot or a re-open repairs it).
  bool broken() const {
    return journal_ == nullptr || journal_->broken();
  }
  const std::string& dir() const { return dir_; }

  /// Rewrites `history` into the shortest command list that replays to
  /// the same session state:
  ///   - corpus/catalog mutations (gen, load, declare) are kept in order;
  ///   - program-text commands (rule, constrain) before the last `clear`
  ///     are dead, as is every `clear` itself (replay starts empty);
  ///   - only the last `query` survives (last one wins).
  /// Relative order of survivors is preserved, so commands whose effect
  /// depends on earlier state (constrain parses against the catalog and
  /// current program) replay identically.
  static std::vector<std::string> Compact(
      const std::vector<std::string>& history);

 private:
  SessionLog(std::string dir, DurabilityOptions options)
      : dir_(std::move(dir)), options_(options) {}

  std::string JournalPath() const { return dir_ + "/journal.log"; }
  std::string SnapshotPath() const { return dir_ + "/snapshot.dat"; }

  std::string dir_;
  DurabilityOptions options_;
  std::unique_ptr<JournalWriter> journal_;
  std::vector<std::string> history_;
  uint64_t records_ = 0;    // absolute: base + data records written
  uint64_t watermark_ = 0;  // absolute index covered by snapshot.dat
  size_t last_snapshot_commands_ = 0;
};

/// First-token classifier shared by journaling and compaction.
/// Mutating commands (journaled): gen, load, declare, rule, clear,
/// query, constrain. Everything else (run, tables, program, telemetry,
/// explain, trace, sleep, help, quit) is observational or reproducible
/// and is not journaled.
bool IsMutatingCommand(const std::string& command);

}  // namespace durability
}  // namespace iflex

#endif  // IFLEX_DURABILITY_SESSION_LOG_H_
