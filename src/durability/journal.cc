#include "durability/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/strutil.h"
#include "durability/crc32c.h"
#include "resilience/failpoint.h"

namespace iflex {
namespace durability {

namespace {

constexpr std::string_view kAppendSite = "serve.journal.append";
constexpr std::string_view kFsyncSite = "serve.journal.fsync";

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

Status Errno(const char* op, const std::string& path) {
  return Status::Internal(
      StringPrintf("%s %s: %s", op, path.c_str(), std::strerror(errno)));
}

Status SyncFd(int fd) {
  if (::fdatasync(fd) != 0) {
    return Status::Internal(
        StringPrintf("fdatasync: %s", std::strerror(errno)));
  }
  return Status::OK();
}

/// fsync of the directory holding `path`, making a rename/create durable.
Status SyncParentDir(const std::string& path) {
  std::string dir = path;
  size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  Status st = ::fsync(fd) == 0 ? Status::OK() : Errno("fsync dir", dir);
  ::close(fd);
  return st;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRecord: return "every";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kOff: return "off";
  }
  return "unknown";
}

void EncodeRecord(std::string* out, std::string_view payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, MaskCrc(Crc32c(payload)));
  out->append(payload);
}

JournalScan ScanBuffer(std::string_view data) {
  JournalScan scan;
  size_t off = 0;
  while (off < data.size()) {
    size_t remaining = data.size() - off;
    if (remaining < kRecordHeaderBytes) {
      scan.torn_tail = true;
      scan.detail = StringPrintf("torn record header at offset %zu (%zu byte tail)",
                                 off, remaining);
      break;
    }
    uint32_t len = GetU32(data.data() + off);
    uint32_t stored = GetU32(data.data() + off + 4);
    if (len == 0 || len > kMaxRecordBytes) {
      // A zeroed header is a preallocation/torn artifact when nothing but
      // zeros follows; any other bad length is corruption.
      bool all_zero = len == 0 && stored == 0;
      for (size_t i = off; all_zero && i < data.size(); ++i) {
        all_zero = data[i] == '\0';
      }
      if (all_zero) {
        scan.torn_tail = true;
        scan.detail = StringPrintf("zeroed tail at offset %zu", off);
      } else {
        scan.corrupt = true;
        scan.detail = StringPrintf(
            "record %zu at offset %zu: implausible length %u",
            scan.records.size(), off, len);
      }
      break;
    }
    if (remaining - kRecordHeaderBytes < len) {
      scan.torn_tail = true;
      scan.detail = StringPrintf(
          "torn record %zu at offset %zu (%u byte payload, %zu on disk)",
          scan.records.size(), off, len, remaining - kRecordHeaderBytes);
      break;
    }
    std::string_view payload = data.substr(off + kRecordHeaderBytes, len);
    if (MaskCrc(Crc32c(payload)) != stored) {
      scan.corrupt = true;
      scan.detail = StringPrintf("record %zu at offset %zu: CRC mismatch",
                                 scan.records.size(), off);
      break;
    }
    scan.records.emplace_back(payload);
    off += kRecordHeaderBytes + len;
    scan.valid_bytes = off;
  }
  return scan;
}

JournalScan ScanFile(const std::string& path) {
  JournalScan scan;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      scan.missing = true;
    } else {
      scan.corrupt = true;
      scan.detail =
          StringPrintf("cannot open %s: %s", path.c_str(), std::strerror(errno));
    }
    return scan;
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    scan.corrupt = true;
    scan.detail = StringPrintf("read error on %s", path.c_str());
    return scan;
  }
  return ScanBuffer(data);
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path, uint64_t valid_bytes, std::string_view header,
    Options options) {
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) return Errno("open", path);
  // Drop any torn/corrupt tail so the next append lands right after the
  // last valid record, never behind garbage the scanner would stop at.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    Status st = Errno("ftruncate", path);
    ::close(fd);
    return st;
  }
  if (::lseek(fd, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    Status st = Errno("lseek", path);
    ::close(fd);
    return st;
  }
  auto writer = std::unique_ptr<JournalWriter>(
      new JournalWriter(fd, valid_bytes, options));
  if (valid_bytes == 0 && !header.empty()) {
    std::string frame;
    EncodeRecord(&frame, header);
    IFLEX_RETURN_NOT_OK(writer->WriteFully(frame.data(), frame.size()));
    writer->offset_ = frame.size();
    // The header is metadata, not a client command: sync it regardless of
    // policy so a recovered file is never headerless.
    IFLEX_RETURN_NOT_OK(writer->Sync());
  }
  return writer;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status JournalWriter::WriteFully(const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd_, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StringPrintf("journal write: %s", std::strerror(errno)));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status JournalWriter::MaybeSync(bool force) {
  bool due = force;
  switch (options_.fsync) {
    case FsyncPolicy::kEveryRecord:
      due = true;
      break;
    case FsyncPolicy::kInterval: {
      auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration_cast<std::chrono::milliseconds>(
              now - last_sync_).count() >= options_.fsync_interval_ms) {
        due = true;
      }
      break;
    }
    case FsyncPolicy::kOff:
      break;
  }
  if (!due) return Status::OK();
  if (resilience::FailPointFired(kFsyncSite)) {
    broken_ = true;
    return Status::ExecutionError(
        "fail point 'serve.journal.fsync' fired: journal sync failed; "
        "record durability unknown");
  }
  Status st = SyncFd(fd_);
  if (!st.ok()) {
    broken_ = true;
    return st;
  }
  last_sync_ = std::chrono::steady_clock::now();
  return Status::OK();
}

Status JournalWriter::Sync() { return MaybeSync(/*force=*/true); }

Status JournalWriter::Append(std::string_view payload) {
  if (broken_) {
    return Status::Internal(
        "journal is failed (a previous append or sync did not complete); "
        "mutating commands are rejected until the session log is repaired "
        "by a snapshot (`persist`) or a restart");
  }
  std::string frame;
  EncodeRecord(&frame, payload);
  if (resilience::FailPointFired(kAppendSite)) {
    // Injected torn write: half the frame reaches the file and stays
    // there, exactly like a crash mid-write. No rollback — recovery must
    // discard the tail; meanwhile this writer is broken.
    (void)WriteFully(frame.data(), frame.size() / 2);
    broken_ = true;
    return Status::ExecutionError(
        "fail point 'serve.journal.append' fired (torn journal write)");
  }
  Status st = WriteFully(frame.data(), frame.size());
  if (!st.ok()) {
    // Best-effort rollback of a short write; whatever happens the writer
    // is broken — the bytes-on-disk vs accepted-commands accounting can
    // no longer be trusted without a rescan.
    (void)::ftruncate(fd_, static_cast<off_t>(offset_));
    broken_ = true;
    return st;
  }
  Status synced = MaybeSync(/*force=*/false);
  if (!synced.ok()) {
    // The frame is complete on disk but the client is told the command
    // was rejected; left in place, a post-crash scan would replay it as
    // a ghost command. Roll the file back to the pre-append offset
    // (best effort, mirroring the short-write path) before failing.
    (void)::ftruncate(fd_, static_cast<off_t>(offset_));
    return synced;
  }
  offset_ += frame.size();
  return Status::OK();
}

Status WriteFileDurably(const std::string& path, std::string_view contents,
                        std::string_view failpoint_site) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Errno("open", tmp);
  auto write_all = [fd](const char* data, size_t n) {
    size_t off = 0;
    while (off < n) {
      ssize_t w = ::write(fd, data + off, n - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(w);
    }
    return true;
  };
  if (!failpoint_site.empty() && resilience::FailPointFired(failpoint_site)) {
    // Injected torn snapshot: half the bytes land in the .tmp file and
    // the rename never happens — recovery ignores .tmp files, so the
    // previous snapshot (or none) stays authoritative.
    (void)write_all(contents.data(), contents.size() / 2);
    ::close(fd);
    return Status::ExecutionError("fail point '" +
                                  std::string(failpoint_site) +
                                  "' fired (torn snapshot write)");
  }
  if (!write_all(contents.data(), contents.size())) {
    Status st = Errno("write", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  Status st = SyncFd(fd);
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status rst = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return rst;
  }
  return SyncParentDir(path);
}

}  // namespace durability
}  // namespace iflex
