#include "durability/session_log.h"

#include <filesystem>
#include <sstream>

#include "common/strutil.h"

namespace iflex {
namespace durability {

namespace {

constexpr std::string_view kSnapshotSite = "serve.snapshot.write";

std::string FirstToken(const std::string& command) {
  size_t begin = command.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  size_t end = command.find_first_of(" \t", begin);
  return command.substr(begin, end == std::string::npos ? std::string::npos
                                                        : end - begin);
}

bool HasSecondToken(const std::string& command) {
  std::istringstream in(command);
  std::string a, b;
  return static_cast<bool>(in >> a >> b);
}

/// Parses "<tag> v1 <key>=<n>", the self-describing first record of both
/// durable files. Strict: any deviation means the file is from a future
/// version or damaged, and recovery must not guess.
bool ParseHeader(const std::string& payload, const char* tag, const char* key,
                 uint64_t* n) {
  std::istringstream in(payload);
  std::string got_tag, got_version, kv;
  if (!(in >> got_tag >> got_version >> kv)) return false;
  if (got_tag != tag || got_version != "v1") return false;
  std::string prefix = std::string(key) + "=";
  if (kv.rfind(prefix, 0) != 0) return false;
  const std::string digits = kv.substr(prefix.size());
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *n = value;
  std::string rest;
  return !(in >> rest);
}

std::string JournalHeader(uint64_t base) {
  return StringPrintf("iflexjournal v1 base=%llu",
                      static_cast<unsigned long long>(base));
}

std::string SnapshotHeader(uint64_t watermark) {
  return StringPrintf("iflexsnap v1 watermark=%llu",
                      static_cast<unsigned long long>(watermark));
}

void AppendDetail(std::string* detail, const std::string& piece) {
  if (!detail->empty()) detail->append("; ");
  detail->append(piece);
}

}  // namespace

bool IsMutatingCommand(const std::string& command) {
  const std::string verb = FirstToken(command);
  return verb == "gen" || verb == "load" || verb == "declare" ||
         verb == "rule" || verb == "clear" || verb == "query" ||
         verb == "constrain";
}

Result<std::unique_ptr<SessionLog>> SessionLog::Open(
    const std::string& dir, const DurabilityOptions& options,
    RecoveryReport* report) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal(StringPrintf("create session dir %s: %s",
                                         dir.c_str(), ec.message().c_str()));
  }
  auto log = std::unique_ptr<SessionLog>(new SessionLog(dir, options));
  RecoveryReport scratch;
  RecoveryReport* rep = report != nullptr ? report : &scratch;
  *rep = RecoveryReport{};

  // Snapshot first: it defines the watermark the journal scan is judged
  // against. A snapshot is all-or-nothing (written atomically), so any
  // damage — torn tail, CRC failure, unknown header — means "no snapshot".
  JournalScan snap = ScanFile(log->SnapshotPath());
  std::vector<std::string> snap_cmds;
  uint64_t watermark = 0;
  bool snap_usable = false;
  if (!snap.missing) {
    if (snap.corrupt || snap.torn_tail || snap.records.empty() ||
        !ParseHeader(snap.records[0], "iflexsnap", "watermark", &watermark)) {
      rep->snapshot_ignored = true;
      watermark = 0;
      AppendDetail(&rep->detail,
                   "snapshot unusable (" +
                       (snap.detail.empty() ? std::string("bad header")
                                            : snap.detail) +
                       ")");
    } else {
      snap_usable = true;
      snap_cmds.assign(snap.records.begin() + 1, snap.records.end());
    }
  }

  // Journal scan. The header record pins the absolute index of the first
  // data record, so indices survive compaction.
  JournalScan jrn = ScanFile(log->JournalPath());
  std::vector<std::string> jrn_cmds;
  uint64_t base = 0;
  uint64_t valid_bytes = 0;
  bool reset_journal = false;  // wipe the file; writer re-creates the header
  if (!jrn.missing && !jrn.records.empty() &&
      ParseHeader(jrn.records[0], "iflexjournal", "base", &base)) {
    jrn_cmds.assign(jrn.records.begin() + 1, jrn.records.end());
    valid_bytes = jrn.valid_bytes;
    rep->torn_tail = jrn.torn_tail;
    rep->corrupt = jrn.corrupt;
    if (jrn.torn_tail || jrn.corrupt) {
      AppendDetail(&rep->detail, "journal " + jrn.detail);
    }
  } else if (jrn.missing) {
    base = watermark;
    reset_journal = true;
  } else {
    // Exists but record 0 is unreadable: treat the whole file as damage.
    rep->corrupt = true;
    AppendDetail(&rep->detail,
                 "journal header unusable (" +
                     (jrn.detail.empty() ? std::string("bad header")
                                         : jrn.detail) +
                     ")");
    base = watermark;
    reset_journal = true;
  }

  // With a compacted journal (base > 0) the pre-base prefix only exists
  // in the snapshot; if that was missing or unusable, or the watermark
  // somehow fell behind the base, the replayable prefix is gone. Best
  // effort: the session comes back empty rather than replaying a suffix
  // against the wrong starting state.
  if (snap.missing && base > 0) {
    AppendDetail(&rep->detail, "snapshot missing despite compacted journal");
  }
  if ((!snap_usable && base > 0) || (snap_usable && base > watermark)) {
    rep->prefix_lost = true;
    AppendDetail(&rep->detail,
                 "replay prefix lost; session reset to empty");
    snap_cmds.clear();
    jrn_cmds.clear();
    snap_usable = false;
    watermark = 0;
    base = 0;
    valid_bytes = 0;
    reset_journal = true;
  }

  // Effective history: the snapshot's compacted prefix, then every
  // journal record whose absolute index is at or past the watermark.
  // (base < watermark happens when a crash hit between snapshot write
  // and journal compaction — the overlap is skipped here.)
  log->history_ = std::move(snap_cmds);
  rep->from_snapshot = log->history_.size();
  size_t skip = watermark > base ? static_cast<size_t>(watermark - base) : 0;
  if (skip > jrn_cmds.size()) skip = jrn_cmds.size();
  for (size_t i = skip; i < jrn_cmds.size(); ++i) {
    log->history_.push_back(std::move(jrn_cmds[i]));
  }
  log->records_ = base + jrn_cmds.size();
  if (log->records_ < watermark) log->records_ = watermark;
  log->watermark_ = snap_usable ? watermark : 0;
  log->last_snapshot_commands_ = rep->from_snapshot;
  rep->commands = log->history_.size();

  JournalWriter::Options wopts;
  wopts.fsync = options.fsync;
  wopts.fsync_interval_ms = options.fsync_interval_ms;
  IFLEX_ASSIGN_OR_RETURN(
      log->journal_,
      JournalWriter::Open(log->JournalPath(), reset_journal ? 0 : valid_bytes,
                          JournalHeader(base), wopts));
  return log;
}

Status SessionLog::Append(const std::string& command) {
  if (journal_ == nullptr) {
    return Status::Internal(
        "session journal is not open (a previous compaction failed); "
        "run `persist` or restart the server");
  }
  IFLEX_RETURN_NOT_OK(journal_->Append(command));
  ++records_;
  history_.push_back(command);
  return Status::OK();
}

bool SessionLog::ShouldSnapshot() const {
  return options_.snapshot_every > 0 &&
         records_ - watermark_ >= options_.snapshot_every;
}

Status SessionLog::WriteSnapshot() {
  const uint64_t watermark = records_;
  const std::vector<std::string> compacted = Compact(history_);
  std::string snapshot;
  EncodeRecord(&snapshot, SnapshotHeader(watermark));
  for (const std::string& command : compacted) {
    EncodeRecord(&snapshot, command);
  }
  IFLEX_RETURN_NOT_OK(
      WriteFileDurably(SnapshotPath(), snapshot, kSnapshotSite));

  // The snapshot now covers every record; replace the journal with a
  // fresh one based at the new watermark. Closing the old writer first
  // also discards any torn frame a failed append left behind — this is
  // the repair path for a broken journal. A crash (or failure) between
  // the two writes is safe: recovery skips journal records below the
  // watermark, so the stale journal merely overlaps the snapshot.
  journal_.reset();
  std::string fresh;
  EncodeRecord(&fresh, JournalHeader(watermark));
  IFLEX_RETURN_NOT_OK(WriteFileDurably(JournalPath(), fresh));
  JournalWriter::Options wopts;
  wopts.fsync = options_.fsync;
  wopts.fsync_interval_ms = options_.fsync_interval_ms;
  IFLEX_ASSIGN_OR_RETURN(
      journal_, JournalWriter::Open(JournalPath(), fresh.size(),
                                    /*header=*/"", wopts));
  records_ = watermark;
  watermark_ = watermark;
  last_snapshot_commands_ = compacted.size();
  return Status::OK();
}

std::vector<std::string> SessionLog::Compact(
    const std::vector<std::string>& history) {
  // Last `clear` kills every rule/constrain before it; replay starts
  // from an empty program, so the clears themselves are dead too.
  ptrdiff_t last_clear = -1;
  for (size_t i = 0; i < history.size(); ++i) {
    if (FirstToken(history[i]) == "clear") {
      last_clear = static_cast<ptrdiff_t>(i);
    }
  }
  // `query` is last-one-wins, with one trap: `constrain` rewrites the
  // program text via Program::ToString(), baking the query predicate in
  // force at that moment into the rules. A superseded query therefore
  // still matters if a constrain ran under it, so it is kept whenever a
  // constrain appears between it and the next query. (Argument-less
  // `query` is a no-op — the extraction fails and the predicate keeps
  // its old value — and is dropped outright.)
  std::vector<bool> keep(history.size(), false);
  ptrdiff_t last_query = -1;
  ptrdiff_t pending_query = -1;
  for (size_t i = 0; i < history.size(); ++i) {
    const std::string verb = FirstToken(history[i]);
    if (verb == "query" && HasSecondToken(history[i])) {
      last_query = static_cast<ptrdiff_t>(i);
      pending_query = last_query;
    } else if (verb == "constrain" && pending_query >= 0) {
      keep[pending_query] = true;
    }
  }
  if (last_query >= 0) keep[last_query] = true;

  std::vector<std::string> out;
  out.reserve(history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    const std::string verb = FirstToken(history[i]);
    if (verb == "gen" || verb == "load" || verb == "declare") {
      // Corpus/catalog mutations survive `clear` and are not idempotent
      // (a failed re-`gen` still grows the corpus): keep all, in order.
      out.push_back(history[i]);
    } else if (verb == "rule" || verb == "constrain") {
      if (static_cast<ptrdiff_t>(i) > last_clear) out.push_back(history[i]);
    } else if (verb == "query") {
      if (keep[i]) out.push_back(history[i]);
    } else if (verb == "clear") {
      // dropped
    } else {
      // Non-mutating verbs should never be journaled; if one slips in,
      // keeping it is the safe choice (replay is a no-op or the same
      // deterministic error).
      out.push_back(history[i]);
    }
  }
  return out;
}

}  // namespace durability
}  // namespace iflex
