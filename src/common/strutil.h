#ifndef IFLEX_COMMON_STRUTIL_H_
#define IFLEX_COMMON_STRUTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace iflex {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with / ends with `prefix` / `suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Case-insensitive substring test (ASCII).
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Parses `s` as a number, tolerating thousands separators (",") and a
/// leading currency symbol ("$"); the paper treats "price is numeric" as a
/// text feature over spans like "$351,000". Returns nullopt when `s` is not
/// numeric in that loose sense.
std::optional<double> ParseLooseNumber(std::string_view s);

/// True when the entire span is numeric in the loose sense above.
bool IsLooseNumber(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// 64-bit FNV-1a hash, used for cache keys and deterministic fingerprints.
uint64_t Fingerprint64(std::string_view s);

}  // namespace iflex

#endif  // IFLEX_COMMON_STRUTIL_H_
