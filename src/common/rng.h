#ifndef IFLEX_COMMON_RNG_H_
#define IFLEX_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iflex {

/// Deterministic xorshift64* generator. All randomized components (data
/// generators, subset sampling, the simulated developer) take an explicit
/// seed so experiments are reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) / static_cast<double>(1ULL << 53);
  }

  /// Bernoulli draw with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Samples `k` distinct indices from [0, n) (Floyd's algorithm order is
  /// not needed at this scale; uses partial Fisher-Yates). If k >= n,
  /// returns all indices.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

 private:
  uint64_t state_;
};

}  // namespace iflex

#endif  // IFLEX_COMMON_RNG_H_
