#include "common/strutil.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace iflex {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  std::string h = ToLower(haystack);
  std::string n = ToLower(needle);
  return h.find(n) != std::string::npos;
}

std::optional<double> ParseLooseNumber(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return std::nullopt;
  if (s.front() == '$') s.remove_prefix(1);
  if (s.empty()) return std::nullopt;
  std::string cleaned;
  cleaned.reserve(s.size());
  bool seen_digit = false;
  bool seen_dot = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      seen_digit = true;
      cleaned.push_back(c);
    } else if (c == ',') {
      // Thousands separator must sit between digits.
      if (!seen_digit || i + 1 >= s.size() ||
          !std::isdigit(static_cast<unsigned char>(s[i + 1]))) {
        return std::nullopt;
      }
    } else if (c == '.') {
      if (seen_dot) return std::nullopt;
      seen_dot = true;
      cleaned.push_back(c);
    } else if (c == '-' && i == 0) {
      cleaned.push_back(c);
    } else {
      return std::nullopt;
    }
  }
  if (!seen_digit) return std::nullopt;
  return std::strtod(cleaned.c_str(), nullptr);
}

bool IsLooseNumber(std::string_view s) {
  return ParseLooseNumber(s).has_value();
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

uint64_t Fingerprint64(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace iflex
