#include "common/intern.h"

#include <algorithm>
#include <cctype>
#include <mutex>

namespace iflex {

ValueId StringInterner::Intern(std::string_view s) {
  {
    std::shared_lock lock(mu_);
    auto it = ids_.find(s);
    if (it != ids_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  if (frozen()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return kInvalidValueId;
  }
  std::unique_lock lock(mu_);
  auto it = ids_.find(s);
  if (it != ids_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  arena_.emplace_back(s);
  arena_bytes_.fetch_add(s.size(), std::memory_order_relaxed);
  ValueId id = static_cast<ValueId>(arena_.size() - 1);
  ids_.emplace(std::string_view(arena_.back()), id);
  return id;
}

ValueId StringInterner::Find(std::string_view s) const {
  if (frozen()) {
    auto it = ids_.find(s);
    if (it != ids_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return kInvalidValueId;
  }
  std::shared_lock lock(mu_);
  auto it = ids_.find(s);
  if (it != ids_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return kInvalidValueId;
}

std::string_view StringInterner::TextOf(ValueId id) const {
  if (frozen()) return arena_[id];
  std::shared_lock lock(mu_);
  return arena_[id];
}

size_t StringInterner::size() const {
  if (frozen()) return arena_.size();
  std::shared_lock lock(mu_);
  return arena_.size();
}

const std::vector<ValueId>& TokenCache::TokensOf(std::string_view text) {
  {
    std::shared_lock lock(mu_);
    auto it = tokens_.find(text);
    if (it != tokens_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return *it->second;
    }
  }
  // Tokenize outside the lock: lowercased alphanumeric runs, deduplicated
  // (set semantics, as in TokenJaccard).
  auto ids = std::make_unique<std::vector<ValueId>>();
  std::string tok;
  auto flush = [&] {
    if (tok.empty()) return;
    ids->push_back(interner_->Intern(tok));
    tok.clear();
  };
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      tok.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      flush();
    }
  }
  flush();
  std::sort(ids->begin(), ids->end());
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());

  std::unique_lock lock(mu_);
  auto it = tokens_.find(text);
  if (it != tokens_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return *it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  keys_.emplace_back(text);
  auto [pos, inserted] =
      tokens_.emplace(std::string_view(keys_.back()), std::move(ids));
  return *pos->second;
}

double TokenIdJaccard(const std::vector<ValueId>& a,
                      const std::vector<ValueId>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace iflex
