#include "common/rng.h"

#include <algorithm>
#include <numeric>

namespace iflex {

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  if (k >= n) return all;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Uniform(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace iflex
