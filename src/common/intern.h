#ifndef IFLEX_COMMON_INTERN_H_
#define IFLEX_COMMON_INTERN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace iflex {

/// Identity of an interned string. Ids are dense, stable for the lifetime
/// of the interner, and 32-bit so join keys and token postings stay small.
using ValueId = uint32_t;
inline constexpr ValueId kInvalidValueId = 0xFFFFFFFFu;

/// Append-only string pool: each distinct string gets one ValueId and one
/// arena copy, so equality is an integer compare and callers can hold
/// string_views without owning storage.
///
/// Thread safety mirrors Corpus::Add: concurrent Intern/Find/TextOf are
/// safe (shared_mutex; lookups take the shared side). Freeze() makes the
/// pool read-only, after which TextOf/Find are lock-free; Intern of a
/// *new* string after Freeze returns kInvalidValueId rather than mutating.
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Id for `s`, inserting it if absent. After Freeze(), behaves like
  /// Find(): unseen strings yield kInvalidValueId.
  ValueId Intern(std::string_view s);

  /// Id for `s` if already interned, else kInvalidValueId. Never inserts.
  ValueId Find(std::string_view s) const;

  /// Text of an interned id; the view stays valid for the interner's
  /// lifetime (deque arena — no reallocation moves).
  std::string_view TextOf(ValueId id) const;

  size_t size() const;

  /// Makes the pool read-only; lookups become lock-free.
  void Freeze() { frozen_.store(true, std::memory_order_release); }
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  /// Lookup traffic, for the obs layer: a hit is an Intern/Find that found
  /// an existing entry, a miss is an insertion (or a failed Find).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Total bytes of interned text held in the arena (payload only, not
  /// map overhead). The attribution profiler charges deltas of this.
  uint64_t arena_bytes() const {
    return arena_bytes_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::shared_mutex mu_;
  std::atomic<bool> frozen_{false};
  std::deque<std::string> arena_;
  std::unordered_map<std::string_view, ValueId> ids_;  // keys view arena_
  // Every frozen-interner lookup still bumps a stat counter, so these
  // atomics are the hottest shared writes in the whole pipeline. Each one
  // gets its own cache line: packed next to mu_/ids_ they false-share with
  // the lock words and with each other, and 8 readers ping-pong the line
  // on every Find (measured by bench_scaling's intern contention rows).
  alignas(64) mutable std::atomic<uint64_t> hits_{0};
  alignas(64) mutable std::atomic<uint64_t> misses_{0};
  alignas(64) std::atomic<uint64_t> arena_bytes_{0};
};

/// Memoized tokenizer over an interner: text -> sorted unique ids of its
/// lowercased alphanumeric tokens. Backs token-similarity predicates and
/// the executor's sim-join token index, so each distinct value is
/// tokenized once per corpus instead of once per probe. Thread-safe; the
/// returned reference is stable for the cache's lifetime.
class TokenCache {
 public:
  explicit TokenCache(StringInterner* interner) : interner_(interner) {}
  TokenCache(const TokenCache&) = delete;
  TokenCache& operator=(const TokenCache&) = delete;

  const std::vector<ValueId>& TokensOf(std::string_view text);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  StringInterner* interner_;
  mutable std::shared_mutex mu_;
  std::deque<std::string> keys_;  // owns the map's key storage
  std::unordered_map<std::string_view, std::unique_ptr<std::vector<ValueId>>>
      tokens_;
  // Cache-line-isolated for the same reason as StringInterner's counters:
  // cache hits bump these under the shared lock from every worker.
  alignas(64) std::atomic<uint64_t> hits_{0};
  alignas(64) std::atomic<uint64_t> misses_{0};
};

/// Jaccard similarity of two token-id sets (sorted unique), matching
/// TokenJaccard's set semantics: both empty -> 1.0.
double TokenIdJaccard(const std::vector<ValueId>& a,
                      const std::vector<ValueId>& b);

}  // namespace iflex

#endif  // IFLEX_COMMON_INTERN_H_
