#ifndef IFLEX_COMMON_RESULT_H_
#define IFLEX_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace iflex {

/// Holds either a value of type T or a non-OK Status describing why the
/// value could not be produced (Arrow-style).
template <typename T>
class Result {
 public:
  /// Implicit from value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status; `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }

  /// The error status, or OK if a value is present.
  const Status& status() const { return status_; }

  /// Value accessors; only valid when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates the error of a Result expression, otherwise binds its value.
#define IFLEX_ASSIGN_OR_RETURN(lhs, expr)          \
  auto IFLEX_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!IFLEX_CONCAT_(_res_, __LINE__).ok())        \
    return IFLEX_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(IFLEX_CONCAT_(_res_, __LINE__)).value()

#define IFLEX_CONCAT_IMPL_(a, b) a##b
#define IFLEX_CONCAT_(a, b) IFLEX_CONCAT_IMPL_(a, b)

}  // namespace iflex

#endif  // IFLEX_COMMON_RESULT_H_
