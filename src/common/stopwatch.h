#ifndef IFLEX_COMMON_STOPWATCH_H_
#define IFLEX_COMMON_STOPWATCH_H_

#include <chrono>

namespace iflex {

/// Wall-clock stopwatch for measuring machine time in benches and the
/// multi-iteration optimizer.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace iflex

#endif  // IFLEX_COMMON_STOPWATCH_H_
