#ifndef IFLEX_COMMON_STATUS_H_
#define IFLEX_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace iflex {

/// Error categories used across the iFlex library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kUnsafeRule,
  kTypeError,
  kExecutionError,
  kUnimplemented,
  kInternal,
  /// A deadline attached to the operation expired before it finished.
  kDeadlineExceeded,
  /// The operation was cancelled through a CancellationToken.
  kCancelled,
  /// The server's admission limit is reached and its bounded queue is
  /// full; the request was rejected, not queued. Retry later.
  kOverloaded,
};

/// Number of StatusCode values; keep in sync with the enum. Tests assert
/// StatusCodeToString covers exactly this many codes.
inline constexpr int kNumStatusCodes =
    static_cast<int>(StatusCode::kOverloaded) + 1;

/// Returns a human-readable name for a status code (e.g. "ParseError").
const char* StatusCodeToString(StatusCode code);

/// Operation outcome carrying an error code and message; the library does
/// not throw exceptions across public API boundaries (RocksDB/Arrow idiom).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status UnsafeRule(std::string msg) {
    return Status(StatusCode::kUnsafeRule, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// True for the two cooperative-stop codes. Fault isolation must never
  /// swallow these: a deadline/cancel outcome propagates to the caller
  /// even in best-effort mode.
  bool IsStop() const {
    return code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kCancelled;
  }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller.
#define IFLEX_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::iflex::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace iflex

#endif  // IFLEX_COMMON_STATUS_H_
