#ifndef IFLEX_ASSISTANT_QUESTION_H_
#define IFLEX_ASSISTANT_QUESTION_H_

#include <optional>
#include <string>
#include <vector>

#include "alog/program.h"
#include "ctable/value.h"
#include "features/feature.h"

namespace iflex {

/// An extracted attribute: the `output_idx`-th output of an IE predicate.
/// `display_name` is the variable name the description rule binds it to.
struct AttributeRef {
  std::string ie_predicate;
  size_t output_idx = 0;
  std::string display_name;

  bool operator==(const AttributeRef& o) const {
    return ie_predicate == o.ie_predicate && output_idx == o.output_idx;
  }
  std::string ToString() const {
    return ie_predicate + "." + display_name;
  }
};

/// A question of the paper's question space (§5.1): "what is the value of
/// feature f for attribute a?".
struct Question {
  AttributeRef attr;
  std::string feature;

  bool operator==(const Question& o) const {
    return attr == o.attr && feature == o.feature;
  }
  std::string Key() const {
    return attr.ie_predicate + "#" +
           std::to_string(attr.output_idx) + "#" + feature;
  }
  std::string ToString() const {
    return feature + "(" + attr.ToString() + ")?";
  }
};

/// The developer's reply. `known == false` models "I do not know"; for
/// parameterized features the reply carries the parameter (e.g. the
/// maximal price), otherwise the FeatureValue.
struct Answer {
  bool known = false;
  FeatureValue value = FeatureValue::kYes;
  FeatureParam param;

  static Answer DontKnow() { return Answer{}; }
  static Answer Of(FeatureValue v) {
    Answer a;
    a.known = true;
    a.value = v;
    return a;
  }
  static Answer WithParam(FeatureParam p, FeatureValue v = FeatureValue::kYes) {
    Answer a;
    a.known = true;
    a.value = v;
    a.param = std::move(p);
    return a;
  }

  std::string ToString() const;
};

/// The entity that answers questions: a human in the paper, the
/// gold-standard-backed SimulatedDeveloper in this reproduction.
class DeveloperInterface {
 public:
  virtual ~DeveloperInterface() = default;

  /// Answers `question`; `feature` is the resolved feature object (so the
  /// developer knows the parameter kind expected).
  virtual Answer Ask(const Question& question, const Feature& feature) = 0;

  /// Seconds of (modelled) human effort the last Ask consumed; drives the
  /// developer-minutes columns of Tables 3-6.
  virtual double LastAnswerSeconds() const { return 0; }

  /// Optional richer feedback (paper §5.1.1): mark up one sample value of
  /// the attribute in the data. Default: the developer declines.
  virtual std::optional<Value> ProvideExample(const AttributeRef& attr) {
    (void)attr;
    return std::nullopt;
  }
};

/// All attributes extracted by `program` (every output of every IE atom in
/// non-description rules), with an importance score for the sequential
/// strategy: attributes participating in joins/comparisons/p-functions of
/// the consuming rule rank higher (paper §5.1).
std::vector<AttributeRef> EnumerateAttributes(const Program& program,
                                              const Catalog& catalog);

/// Importance-ordered copy of EnumerateAttributes (descending score,
/// stable).
std::vector<AttributeRef> RankAttributes(const Program& program,
                                         const Catalog& catalog);

}  // namespace iflex

#endif  // IFLEX_ASSISTANT_QUESTION_H_
