#ifndef IFLEX_ASSISTANT_EXAMPLE_FEEDBACK_H_
#define IFLEX_ASSISTANT_EXAMPLE_FEEDBACK_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "assistant/question.h"

namespace iflex {

/// Answer exclusions derived from marked-up examples (paper §5.1.1: "if
/// this title is bold, then ... the answer cannot be 'no'"). Keyed by
/// Question::Key(); the simulation strategy skips excluded answers, which
/// both avoids pointless simulations and prevents the developer from
/// being asked questions whose only plausible answers are already known.
using AnswerExclusions = std::map<std::string, std::set<FeatureValue>>;

/// Derives exclusions for one attribute from one example value: for every
/// enumerable feature, any answer the example *violates* is excluded (the
/// true answer must hold for every value of the attribute, including the
/// example). Span-less examples fall back to VerifyText where available.
AnswerExclusions DeriveExclusions(const Corpus& corpus,
                                  const FeatureRegistry& features,
                                  const AttributeRef& attr,
                                  const Value& example);

/// Merges `more` into `into`.
void MergeExclusions(AnswerExclusions* into, const AnswerExclusions& more);

}  // namespace iflex

#endif  // IFLEX_ASSISTANT_EXAMPLE_FEEDBACK_H_
