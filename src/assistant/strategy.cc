#include "assistant/strategy.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>

#include "common/strutil.h"
#include "obs/cost_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/task_pool.h"

namespace iflex {

Status ApplyAnswer(Program* program, const Catalog& catalog,
                   const Question& question, const Answer& answer) {
  if (!answer.known) return Status::OK();
  return program->AddConstraint(catalog, question.attr.ie_predicate,
                                question.attr.output_idx, question.feature,
                                answer.param, answer.value);
}

// ----------------------------------------------------------------- probing

std::vector<Value> ProbeAttributeValues(const StrategyContext& ctx,
                                        const AttributeRef& attr,
                                        size_t max_values) {
  obs::TraceSpan span(obs::TracerOrDefault(ctx.exec_options.tracer),
                      "strategy.probe", attr.ie_predicate);
  // Find a non-description rule whose body uses the IE predicate, and
  // re-head it to expose the attribute's variable.
  const Program& program = *ctx.program;
  for (const Rule& rule : program.rules()) {
    if (rule.is_description) continue;
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      if (lit.atom.predicate != attr.ie_predicate) continue;
      auto n_inputs = ctx.subset_catalog->InputArityOf(attr.ie_predicate);
      if (!n_inputs.ok()) return {};
      size_t pos = *n_inputs + attr.output_idx;
      if (pos >= lit.atom.args.size() || !lit.atom.args[pos].is_var()) {
        continue;
      }
      Program probe = program;
      Rule probe_rule = rule;
      probe_rule.head.predicate = "_probe_attr";
      probe_rule.head.args = {lit.atom.args[pos].var};
      probe_rule.head.annotated = {false};
      probe_rule.head.existence = false;
      probe.AddRule(std::move(probe_rule));
      probe.set_query("_probe_attr");
      if (!probe.Validate(*ctx.subset_catalog).ok()) return {};

      Executor exec(*ctx.subset_catalog, ctx.exec_options);
      Result<CompactTable> result = exec.Execute(probe, ctx.subset_cache);
      if (!result.ok()) return {};
      const Corpus& corpus = ctx.subset_catalog->corpus();
      std::vector<Value> values;
      for (const CompactTuple& t : result->tuples()) {
        if (t.cells.empty()) continue;
        // Sample value-shaped candidates: exact assignments as-is, and
        // for contain regions the individual tokens (where numbers and
        // labelled fields live) — a prefix of all sub-spans would be a
        // terrible sample.
        size_t per_cell = 0;
        for (const Assignment& a : t.cells[0].assignments) {
          if (per_cell >= 50 || values.size() >= max_values) break;
          if (a.is_exact()) {
            values.push_back(a.value);
            ++per_cell;
            continue;
          }
          const Document& doc = corpus.Get(a.span.doc);
          size_t first = doc.FirstTokenAtOrAfter(a.span.begin);
          size_t last = doc.TokensEndingBy(a.span.end);
          for (size_t i = first; i < last && per_cell < 50 &&
                                 values.size() < max_values;
               ++i, ++per_cell) {
            values.push_back(Value::OfSpan(
                corpus, Span(a.span.doc, doc.tokens()[i].begin,
                             doc.tokens()[i].end)));
          }
        }
        if (values.size() >= max_values) break;
      }
      return values;
    }
  }
  return {};
}

// ------------------------------------------------------ candidate answers

namespace {

double Quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  if (xs.empty()) return 0;
  double idx = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1 - frac) + xs[hi] * frac;
}

void AddNumParam(std::vector<Answer>* out, double v) {
  for (const Answer& a : *out) {
    if (a.param.num.has_value() && *a.param.num == v) return;
  }
  out->push_back(Answer::WithParam(FeatureParam::Num(v)));
}

void AddStrParam(std::vector<Answer>* out, const std::string& s) {
  if (s.empty()) return;
  for (const Answer& a : *out) {
    if (a.param.str.has_value() && *a.param.str == s) return;
  }
  out->push_back(Answer::WithParam(FeatureParam::Str(s)));
}

// The whitespace-delimited chunk immediately before/after a span on the
// same line ("Price:" before "$35.99").
std::string NeighbourChunk(const Corpus& corpus, const Span& span,
                           bool before) {
  const Document& doc = corpus.Get(span.doc);
  const std::string& text = doc.text();
  if (before) {
    size_t p = span.begin;
    while (p > 0 && (text[p - 1] == ' ' || text[p - 1] == '\t')) --p;
    size_t e = p;
    while (p > 0 && !std::isspace(static_cast<unsigned char>(text[p - 1]))) {
      --p;
    }
    return text.substr(p, e - p);
  }
  size_t p = span.end;
  while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
  size_t b = p;
  while (p < text.size() &&
         !std::isspace(static_cast<unsigned char>(text[p]))) {
    ++p;
  }
  return text.substr(b, p - b);
}

std::vector<std::string> TopFrequent(const std::map<std::string, int>& counts,
                                     size_t k, int min_count) {
  std::vector<std::pair<int, std::string>> sorted;
  for (const auto& [s, c] : counts) {
    if (c >= min_count) sorted.emplace_back(c, s);
  }
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<std::string> out;
  for (size_t i = 0; i < sorted.size() && i < k; ++i) {
    out.push_back(sorted[i].second);
  }
  return out;
}

}  // namespace

std::vector<Answer> CandidateAnswers(const Question& question,
                                     const Feature& feature,
                                     const Corpus& corpus,
                                     const std::vector<Value>& observed) {
  std::vector<Answer> out;
  std::vector<FeatureValue> space = feature.AnswerSpace();
  if (!space.empty()) {
    for (FeatureValue v : space) out.push_back(Answer::Of(v));
    return out;
  }
  // Parameterized features: derive candidates from the observed values.
  const std::string& f = question.feature;
  if (f == "min_value" || f == "max_value") {
    std::vector<double> nums;
    for (const Value& v : observed) {
      auto n = v.AsNumber();
      if (n.has_value()) nums.push_back(*n);
    }
    // Value bounds only make sense for numeric-looking attributes; a few
    // stray numbers among text candidates (years inside author lines) are
    // not the developer's attribute.
    if (nums.size() >= 2 && nums.size() * 3 >= observed.size()) {
      AddNumParam(&out, Quantile(nums, 0.25));
      AddNumParam(&out, Quantile(nums, 0.5));
      AddNumParam(&out, Quantile(nums, 0.75));
    }
  } else if (f == "max_length") {
    std::vector<double> lens;
    for (const Value& v : observed) {
      lens.push_back(static_cast<double>(v.AsText().size()));
    }
    if (!lens.empty()) {
      AddNumParam(&out, std::ceil(Quantile(lens, 0.5)));
      AddNumParam(&out, std::ceil(Quantile(lens, 0.9)));
    }
  } else if (f == "preceded_by" || f == "followed_by") {
    std::map<std::string, int> counts;
    for (const Value& v : observed) {
      if (!v.has_span()) continue;
      std::string chunk =
          NeighbourChunk(corpus, v.span(), /*before=*/f == "preceded_by");
      if (chunk.size() >= 1 && chunk.size() <= 24) ++counts[chunk];
    }
    for (const std::string& s : TopFrequent(counts, 4, 2)) {
      AddStrParam(&out, s);
    }
  } else if (f == "prec_label_contains") {
    std::map<std::string, int> counts;
    for (const Value& v : observed) {
      if (!v.has_span()) continue;
      const Document& doc = corpus.Get(v.span().doc);
      auto label = doc.PrecedingLabel(v.span().begin);
      if (!label.has_value()) continue;
      // Count each lowercase word of the label.
      std::string word;
      for (char c : std::string(doc.TextOf(*label)) + " ") {
        if (std::isalpha(static_cast<unsigned char>(c))) {
          word.push_back(static_cast<char>(
              std::tolower(static_cast<unsigned char>(c))));
        } else {
          if (word.size() >= 3) ++counts[word];
          word.clear();
        }
      }
    }
    for (const std::string& s : TopFrequent(counts, 2, 2)) {
      AddStrParam(&out, s);
    }
  } else if (f == "prec_label_max_dist") {
    std::vector<double> dists;
    for (const Value& v : observed) {
      if (!v.has_span()) continue;
      const Document& doc = corpus.Get(v.span().doc);
      auto label = doc.PrecedingLabel(v.span().begin);
      if (label.has_value()) {
        dists.push_back(static_cast<double>(v.span().begin - label->end));
      }
    }
    if (!dists.empty()) {
      AddNumParam(&out, std::ceil(Quantile(dists, 0.5) / 50.0) * 50.0);
      AddNumParam(&out, std::ceil(Quantile(dists, 0.95) / 100.0) * 100.0);
    }
  }
  // starts_with / ends_with / contains_str: no data-derived candidates
  // (regex synthesis is out of scope); the sequential strategy can still
  // ask them and take the developer's pattern.
  return out;
}

// --------------------------------------------------------------- strategies

Result<std::optional<Question>> SequentialStrategy::Next(
    const StrategyContext& ctx) {
  std::vector<AttributeRef> attrs = RankAttributes(*ctx.program, *ctx.full_catalog);
  const FeatureRegistry& registry = ctx.full_catalog->features();
  for (const AttributeRef& attr : attrs) {
    for (const std::string& fname : registry.names()) {
      Question q{attr, fname};
      if (ctx.asked->count(q.Key())) continue;
      return std::optional<Question>(q);
    }
  }
  return std::optional<Question>();
}

Result<std::optional<Question>> SimulationStrategy::Next(
    const StrategyContext& ctx) {
  obs::Tracer* tracer = obs::TracerOrDefault(ctx.exec_options.tracer);
  obs::TraceSpan span(tracer, "strategy.next");
  const FeatureRegistry& registry = ctx.full_catalog->features();
  const Corpus& corpus = ctx.subset_catalog->corpus();
  // Observability sinks the candidate simulations report back into: each
  // simulation runs with a private registry / cost model (concurrent
  // executors must not clobber shared gauges), then folds its numbers
  // into these parents when it ends — metrics under a "sim." prefix,
  // attribution as one ("sim.<feature>", candidate) row.
  obs::MetricRegistry* parent_metrics = ctx.exec_options.metrics != nullptr
                                            ? ctx.exec_options.metrics
                                            : &obs::DefaultMetrics();
  obs::CostModel* parent_cost =
      obs::CostModelOrDefault(ctx.exec_options.cost_model);
  const bool profiling = parent_cost->enabled();

  // Current subset result size plus the per-extractor coverage baseline:
  // the compact tuple count of each intensional predicate whose rule uses
  // an IE atom. A *correct* constraint never drops one of those tuples
  // (the attribute's true value always survives refinement), so any
  // simulated answer that does is a wrong guess, not a likely reply.
  Executor base_exec(*ctx.subset_catalog, ctx.exec_options);
  double current_size = 0;
  double current_values = 0;
  std::map<std::string, size_t> base_coverage;
  {
    Result<CompactTable> r = base_exec.Execute(*ctx.program, ctx.subset_cache);
    if (r.ok()) {
      current_size = ResultSize(*r, corpus);
      current_values = base_exec.stats().process_values;
    }
    for (const auto& [pred, table] : base_exec.last_idb()) {
      base_coverage[pred] = table.size();
    }
  }

  // Head predicate of the rule consuming each IE predicate.
  std::map<std::string, std::string> consuming_head;
  for (const Rule& rule : ctx.program->rules()) {
    if (rule.is_description) continue;
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      auto kind = ctx.full_catalog->KindOf(lit.atom.predicate);
      if (kind.ok() && *kind == PredicateKind::kIEPredicate) {
        consuming_head.emplace(lit.atom.predicate, rule.head.predicate);
      }
    }
  }

  std::optional<Question> best;
  double best_expected = std::numeric_limits<double>::infinity();
  double best_expected_values = std::numeric_limits<double>::infinity();

  for (const AttributeRef& attr :
       RankAttributes(*ctx.program, *ctx.full_catalog)) {
    std::vector<Value> observed;
    bool observed_ready = false;
    for (const std::string& fname : registry.names()) {
      Question q{attr, fname};
      if (ctx.asked->count(q.Key())) continue;
      IFLEX_ASSIGN_OR_RETURN(const Feature* feature, registry.Get(fname));
      if (!observed_ready && feature->AnswerSpace().empty()) {
        observed = ProbeAttributeValues(ctx, attr);
        observed_ready = true;
      }
      std::vector<Answer> answers =
          CandidateAnswers(q, *feature, corpus, observed);
      if (ctx.exclusions != nullptr) {
        auto ex = ctx.exclusions->find(q.Key());
        if (ex != ctx.exclusions->end()) {
          std::erase_if(answers, [&](const Answer& a) {
            return a.known && !a.param.has_value() &&
                   ex->second.count(a.value) > 0;
          });
        }
      }
      if (answers.empty()) continue;

      // Simulate each candidate answer. An answer that *empties* the
      // subset result is inconsistent with the data (the attribute's true
      // values are in there), so the developer will never give it; such
      // answers get probability ~0 rather than rewarding the question.
      std::vector<double> sizes;
      auto head_it = consuming_head.find(attr.ie_predicate);
      size_t base_cov = 0;
      if (head_it != consuming_head.end()) {
        auto cov_it = base_coverage.find(head_it->second);
        if (cov_it != base_coverage.end()) base_cov = cov_it->second;
      }
      std::vector<double> pvalues;
      // Candidate simulations are independent (each gets its own Executor
      // over the shared subset catalog/cache), so they fan out across the
      // pool; outcomes are folded serially in answer order below, which
      // keeps question selection identical to the serial run.
      struct SimOutcome {
        bool ran = false;
        bool keep = false;
        double size = 0;
        double pv = 0;
      };
      std::vector<SimOutcome> outcomes;
      try {
        outcomes = runtime::ParallelMap<SimOutcome>(
          ctx.exec_options.pool, answers.size(), [&](size_t ai) {
            const Answer& a = answers[ai];
            obs::TraceSpan sim_span(tracer, "strategy.simulate", fname);
            Program refined = *ctx.program;
            Status st = ApplyAnswer(&refined, *ctx.full_catalog, q, a);
            SimOutcome out;
            out.size = current_size;
            out.pv = current_values;
            bool coverage_ok = true;
            if (st.ok()) {
              // Each simulation reads its own process_values gauge back;
              // a shared registry would let concurrent simulations clobber
              // that gauge, so simulations always get a private one.
              ExecOptions sim_options = ctx.exec_options;
              sim_options.metrics = nullptr;
              obs::CostModel sim_cost;
              if (profiling) {
                sim_cost.set_enabled(true);
                sim_options.cost_model = &sim_cost;
              }
              Executor exec(*ctx.subset_catalog, sim_options);
              Result<CompactTable> r = exec.Execute(refined, ctx.subset_cache);
              out.ran = true;
              exec.metrics().MergeInto(parent_metrics, "sim.");
              if (profiling) {
                // The candidate's whole simulated execution collapses
                // into one parent row. Its Execute span joins the
                // parent's coverage denominator too, so attributed wall
                // stays a subset of accounted span time.
                parent_cost->Charge(
                    obs::CostKey{"sim." + fname,
                                 StringPrintf("cand%zu", ai),
                                 ctx.exec_options.cost_iteration},
                    sim_cost.Total());
                parent_cost->AddSpan(sim_cost.span_ns());
              }
              if (r.ok()) {
                out.size = ResultSize(*r, corpus);
                out.pv = exec.stats().process_values;
                if (head_it != consuming_head.end()) {
                  auto it = exec.last_idb().find(head_it->second);
                  // A correct constraint may legitimately drop records that
                  // simply lack the attribute (journal-year on conference
                  // entries), so require only that a reasonable share of the
                  // extractor's tuples survives; total annihilation marks a
                  // wrong guess.
                  coverage_ok = it != exec.last_idb().end() &&
                                static_cast<double>(it->second.size()) >=
                                    0.25 * static_cast<double>(base_cov);
                }
              }
            }
            out.keep = out.size > 0 && coverage_ok;
            return out;
          });
      } catch (const std::exception& e) {
        // A worker exception (simulation bug, injected task fault) aborts
        // question selection with a clean Status instead of crossing the
        // pool join unwound.
        return Status::Internal(
            std::string("worker exception in simulation: ") + e.what());
      }
      for (const SimOutcome& out : outcomes) {
        if (out.ran) ++simulations_run_;
        if (out.keep) {
          sizes.push_back(out.size);
          pvalues.push_back(out.pv);
        }
      }
      if (sizes.empty()) continue;  // no plausible answer: useless question
      double total = 0;
      double total_pv = 0;
      for (double s : sizes) total += s;
      for (double p : pvalues) total_pv += p;
      // Parameterized questions carry a high "I do not know" risk: their
      // candidate parameters are data-derived guesses, and a wrong guess
      // means the developer cannot confirm it. Weight the no-answer
      // branch (result unchanged) accordingly, so speculative parameter
      // questions do not crowd out reliable appearance questions.
      double alpha_eff =
          feature->AnswerSpace().empty() ? std::max(0.5, ctx.alpha) : ctx.alpha;
      double expected = alpha_eff * current_size +
                        (1.0 - alpha_eff) * total /
                            static_cast<double>(sizes.size());
      // Secondary objective: expected value-level narrowing, which breaks
      // the many ties among questions that cannot yet move the tuple
      // count (multi-constraint filters like lp < fp + 5 need several
      // attributes pinned before any tuple drops).
      double expected_values =
          alpha_eff * current_values +
          (1.0 - alpha_eff) * total_pv / static_cast<double>(pvalues.size());
      if (expected < best_expected - 1e-9 ||
          (expected < best_expected + 1e-9 &&
           expected_values < best_expected_values - 1e-9)) {
        best_expected = expected;
        best_expected_values = expected_values;
        best = q;
      }
    }
  }
  return best;
}

}  // namespace iflex
