#ifndef IFLEX_ASSISTANT_STRATEGY_H_
#define IFLEX_ASSISTANT_STRATEGY_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "assistant/example_feedback.h"
#include "assistant/question.h"
#include "exec/executor.h"

namespace iflex {

/// Shared context a strategy sees when picking the next question.
struct StrategyContext {
  const Program* program = nullptr;      // current Alog program
  const Catalog* full_catalog = nullptr; // full data
  const Catalog* subset_catalog = nullptr;  // sampled data (subset eval)
  ReuseCache* subset_cache = nullptr;    // reuse across simulations
  const std::set<std::string>* asked = nullptr;  // Question::Key()s consumed
  /// Answers ruled out by marked-up examples (paper §5.1.1); may be null.
  const AnswerExclusions* exclusions = nullptr;
  ExecOptions exec_options;
  /// Probability the developer answers "I do not know" (paper §5.1).
  double alpha = 0.0;
};

/// Question-selection strategy (paper §5.1).
class QuestionStrategy {
 public:
  virtual ~QuestionStrategy() = default;

  /// Next question to ask, or nullopt when the space is exhausted.
  virtual Result<std::optional<Question>> Next(const StrategyContext& ctx) = 0;

  virtual const char* name() const = 0;
};

/// Sequential strategy: attributes in decreasing importance, features in
/// registry order. No execution needed — fast but blind (paper Table 5).
class SequentialStrategy : public QuestionStrategy {
 public:
  Result<std::optional<Question>> Next(const StrategyContext& ctx) override;
  const char* name() const override { return "sequential"; }
};

/// Simulation strategy: for each candidate question d about feature f of
/// attribute a, simulate every answer v by executing the refined program
/// g(P,(a,f,v)) on the subset, and pick the question minimizing
///   sum_v (1-alpha)/|V| * |exec(g(P,(a,f,v)))|     (paper §5.1).
/// Candidate answers: the feature's AnswerSpace for enumerable features;
/// data-derived parameter candidates (quantiles of observed values,
/// frequent neighbouring tokens, ...) for parameterized features.
class SimulationStrategy : public QuestionStrategy {
 public:
  Result<std::optional<Question>> Next(const StrategyContext& ctx) override;
  const char* name() const override { return "simulation"; }

  /// Number of subset executions performed so far (reported by benches).
  size_t simulations_run() const { return simulations_run_; }

 private:
  size_t simulations_run_ = 0;
};

/// Candidate answers for `question` derived for simulation purposes:
/// enumerable features use their AnswerSpace; parameterized features get
/// up to 3 parameters derived from the attribute's current candidate
/// values on the subset (`observed`).
std::vector<Answer> CandidateAnswers(const Question& question,
                                     const Feature& feature,
                                     const Corpus& corpus,
                                     const std::vector<Value>& observed);

/// Samples current candidate values of an attribute by executing, over the
/// subset catalog, the consuming rule re-headed to expose the IE atom's
/// outputs. Best-effort: returns empty on execution failure.
std::vector<Value> ProbeAttributeValues(const StrategyContext& ctx,
                                        const AttributeRef& attr,
                                        size_t max_values = 500);

/// Applies an answer to a program: adds f(a)=v (with the answered
/// parameter, if any) to the description rules of the attribute's IE
/// predicate. "I do not know" answers leave the program unchanged.
Status ApplyAnswer(Program* program, const Catalog& catalog,
                   const Question& question, const Answer& answer);

}  // namespace iflex

#endif  // IFLEX_ASSISTANT_STRATEGY_H_
