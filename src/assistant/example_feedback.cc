#include "assistant/example_feedback.h"

namespace iflex {

AnswerExclusions DeriveExclusions(const Corpus& corpus,
                                  const FeatureRegistry& features,
                                  const AttributeRef& attr,
                                  const Value& example) {
  AnswerExclusions out;
  for (const std::string& fname : features.names()) {
    auto feature = features.Get(fname);
    if (!feature.ok()) continue;
    std::vector<FeatureValue> space = (*feature)->AnswerSpace();
    if (space.empty()) continue;  // parameterized: nothing to exclude
    Question q{attr, fname};
    for (FeatureValue v : space) {
      bool holds;
      if (example.has_span()) {
        holds = (*feature)->Verify(corpus.Get(example.span().doc),
                                   example.span(), FeatureParam::None(), v);
      } else {
        auto verdict =
            (*feature)->VerifyText(example.AsText(), FeatureParam::None(), v);
        if (!verdict.has_value()) continue;  // cannot judge: keep answer
        holds = *verdict;
      }
      if (!holds) out[q.Key()].insert(v);
    }
  }
  return out;
}

void MergeExclusions(AnswerExclusions* into, const AnswerExclusions& more) {
  for (const auto& [key, values] : more) {
    (*into)[key].insert(values.begin(), values.end());
  }
}

}  // namespace iflex
