#include "assistant/question.h"

#include <algorithm>
#include <map>

namespace iflex {

std::string Answer::ToString() const {
  if (!known) return "I do not know";
  if (param.has_value()) {
    std::string out = param.ToString();
    if (value != FeatureValue::kYes) {
      out += std::string(" (") + FeatureValueToString(value) + ")";
    }
    return out;
  }
  return FeatureValueToString(value);
}

namespace {

struct ScoredAttr {
  AttributeRef attr;
  int score = 0;
  size_t first_seen = 0;
};

}  // namespace

std::vector<AttributeRef> EnumerateAttributes(const Program& program,
                                              const Catalog& catalog) {
  std::vector<AttributeRef> out;
  for (const Rule& rule : program.rules()) {
    if (rule.is_description) continue;
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      auto kind = catalog.KindOf(lit.atom.predicate);
      if (!kind.ok() || *kind != PredicateKind::kIEPredicate) continue;
      size_t n_inputs = *catalog.InputArityOf(lit.atom.predicate);
      for (size_t i = n_inputs; i < lit.atom.args.size(); ++i) {
        if (!lit.atom.args[i].is_var()) continue;
        AttributeRef ref;
        ref.ie_predicate = lit.atom.predicate;
        ref.output_idx = i - n_inputs;
        ref.display_name = lit.atom.args[i].var;
        bool dup = false;
        for (const AttributeRef& r : out) dup = dup || r == ref;
        if (!dup) out.push_back(std::move(ref));
      }
    }
  }
  return out;
}

std::vector<AttributeRef> RankAttributes(const Program& program,
                                         const Catalog& catalog) {
  std::vector<AttributeRef> attrs = EnumerateAttributes(program, catalog);
  std::vector<ScoredAttr> scored;
  for (size_t i = 0; i < attrs.size(); ++i) {
    scored.push_back(ScoredAttr{attrs[i], 0, i});
  }

  // Pass 1: per rule, map variables to the attributes that IE atoms bind,
  // and record what each intensional head exports at which position.
  std::map<const Rule*, std::map<std::string, std::vector<size_t>>> rule_vars;
  std::map<std::pair<std::string, size_t>, std::vector<size_t>> exports;
  for (const Rule& rule : program.rules()) {
    if (rule.is_description) continue;
    auto& var_to_attr = rule_vars[&rule];
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      auto kind = catalog.KindOf(lit.atom.predicate);
      if (!kind.ok() || *kind != PredicateKind::kIEPredicate) continue;
      size_t n_inputs = *catalog.InputArityOf(lit.atom.predicate);
      for (size_t i = n_inputs; i < lit.atom.args.size(); ++i) {
        if (!lit.atom.args[i].is_var()) continue;
        for (size_t s = 0; s < scored.size(); ++s) {
          if (scored[s].attr.ie_predicate == lit.atom.predicate &&
              scored[s].attr.output_idx == i - n_inputs) {
            var_to_attr[lit.atom.args[i].var].push_back(s);
          }
        }
      }
    }
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      auto it = var_to_attr.find(rule.head.args[i]);
      if (it == var_to_attr.end()) continue;
      auto& ex = exports[{rule.head.predicate, i}];
      ex.insert(ex.end(), it->second.begin(), it->second.end());
    }
  }

  // Pass 2: propagate exports through intensional atoms, so "votes" still
  // scores for "votes < 25000" written in a downstream rule.
  for (const Rule& rule : program.rules()) {
    if (rule.is_description) continue;
    auto& var_to_attr = rule_vars[&rule];
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      for (size_t i = 0; i < lit.atom.args.size(); ++i) {
        if (!lit.atom.args[i].is_var()) continue;
        auto ex = exports.find({lit.atom.predicate, i});
        if (ex == exports.end()) continue;
        auto& v = var_to_attr[lit.atom.args[i].var];
        v.insert(v.end(), ex->second.begin(), ex->second.end());
      }
    }
  }

  // Pass 3: score. +2 per comparison / p-function mention, +1 per head
  // mention (part of the reported result).
  for (const Rule& rule : program.rules()) {
    if (rule.is_description) continue;
    auto& var_to_attr = rule_vars[&rule];
    auto bump = [&](const std::string& var, int by) {
      auto it = var_to_attr.find(var);
      if (it == var_to_attr.end()) return;
      for (size_t s : it->second) scored[s].score += by;
    };
    for (const Literal& lit : rule.body) {
      switch (lit.kind) {
        case Literal::Kind::kComparison:
          if (lit.cmp.lhs.is_var()) bump(lit.cmp.lhs.var, 2);
          if (lit.cmp.rhs.is_var()) bump(lit.cmp.rhs.var, 2);
          break;
        case Literal::Kind::kAtom: {
          auto kind = catalog.KindOf(lit.atom.predicate);
          if (kind.ok() && *kind == PredicateKind::kPFunction) {
            for (const Term& t : lit.atom.args) {
              if (t.is_var()) bump(t.var, 2);
            }
          }
          break;
        }
        case Literal::Kind::kConstraint:
          break;
      }
    }
    for (const std::string& var : rule.head.args) bump(var, 1);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ScoredAttr& a, const ScoredAttr& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.first_seen < b.first_seen;
                   });
  std::vector<AttributeRef> out;
  out.reserve(scored.size());
  for (auto& s : scored) out.push_back(std::move(s.attr));
  return out;
}

}  // namespace iflex
