#ifndef IFLEX_ASSISTANT_SESSION_H_
#define IFLEX_ASSISTANT_SESSION_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "assistant/convergence.h"
#include "assistant/question.h"
#include "assistant/strategy.h"
#include "exec/executor.h"

namespace iflex {

/// Which question-selection scheme a session uses (paper §5.1/Table 5).
enum class StrategyKind : uint8_t { kSequential, kSimulation };

struct SessionOptions {
  StrategyKind strategy = StrategyKind::kSimulation;
  /// Questions posed per develop/execute iteration.
  int questions_per_iteration = 2;
  /// k of the convergence detector (paper: 3).
  int convergence_k = 3;
  /// Probability the developer answers "I do not know".
  double alpha = 0.0;
  /// Ask the developer to mark up one sample value per attribute before
  /// the loop starts, and prune answers the samples rule out (paper
  /// §5.1.1, "more types of feedback").
  bool example_feedback = false;
  /// Subset-evaluation sampling fraction; <= 0 picks automatically from
  /// the data size (paper §5.2: 5-30% depending on size).
  double subset_fraction = 0.0;
  /// Hard cap on subset tuples per table (keeps simulation cost bounded
  /// at full data scale); 0 disables.
  size_t max_subset_docs = 48;
  uint64_t subset_seed = 42;
  int max_iterations = 40;
  ExecOptions exec_options;
  /// Convenience alias for exec_options.pool: a non-null pool here is
  /// copied over it at Run() start, parallelizing every execution and
  /// simulation of the session. Results are bit-identical either way.
  runtime::TaskPool* pool = nullptr;
  /// Time bound on the whole refinement loop. Combined with
  /// exec_options.deadline via Deadline::Sooner at Run() start, checked
  /// between iterations, and enforced inside every Execute — an expired
  /// session returns kDeadlineExceeded instead of starting more work.
  resilience::Deadline deadline;
  /// Cooperative cancellation for the whole session; the token must
  /// outlive Run(). Forwarded into exec_options when that has no token of
  /// its own.
  const resilience::CancellationToken* cancel = nullptr;
};

/// One row of the paper's Table 4: the per-iteration trace.
struct IterationRecord {
  int iteration = 0;
  double result_tuples = 0;
  /// Assignments produced by the whole extraction process.
  size_t assignments = 0;
  /// Total possible-value count across the process (convergence signal).
  double process_values = 0;
  /// false: subset-evaluation mode; true: reuse (full-data) mode — the
  /// bold/italic distinction of Table 4.
  bool full_data = false;
  std::vector<Question> questions;
  std::vector<Answer> answers;
  double machine_seconds = 0;
  double developer_seconds = 0;
};

struct SessionResult {
  CompactTable final_result;
  Program final_program;
  std::vector<IterationRecord> iterations;
  size_t questions_asked = 0;
  /// Marked-up examples collected when example feedback is on.
  size_t examples_collected = 0;
  bool converged = false;
  double machine_seconds = 0;
  double developer_seconds = 0;
  size_t simulations_run = 0;
  /// Degradation events accumulated across every execution of the session
  /// (subset evaluations and the final full-data pass). degraded == false
  /// means no fault was trapped anywhere — the result is exact.
  resilience::ExecReport report;
};

/// The develop/execute/refine loop of iFlex (paper §1, §5): execute the
/// current approximate program on a data subset, ask the developer the
/// next-effort questions, fold the answers in as domain constraints, and
/// repeat until the convergence detector fires; then compute the complete
/// result on the full data in reuse mode.
class RefinementSession {
 public:
  RefinementSession(const Catalog& catalog, Program initial_program,
                    DeveloperInterface* developer,
                    SessionOptions options = {});

  /// Runs the full loop. The catalog, developer and corpus must outlive
  /// the call.
  Result<SessionResult> Run();

  /// Picks the effective sampling fraction for `n` input tuples (paper:
  /// 5-30% of the original set, depending on how large it is).
  static double AutoSubsetFraction(size_t n);

 private:
  const Catalog& catalog_;
  Program program_;
  DeveloperInterface* developer_;
  SessionOptions options_;
};

}  // namespace iflex

#endif  // IFLEX_ASSISTANT_SESSION_H_
