#include "assistant/session.h"

#include <algorithm>
#include <cstdio>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace iflex {

RefinementSession::RefinementSession(const Catalog& catalog,
                                     Program initial_program,
                                     DeveloperInterface* developer,
                                     SessionOptions options)
    : catalog_(catalog),
      program_(std::move(initial_program)),
      developer_(developer),
      options_(options) {}

double RefinementSession::AutoSubsetFraction(size_t n) {
  // Paper §5.2: 5-30% of the original set, depending on its size.
  if (n <= 50) return 0.30;
  if (n <= 200) return 0.20;
  if (n <= 1000) return 0.10;
  return 0.05;
}

Result<SessionResult> RefinementSession::Run() {
  SessionResult out;
  Stopwatch total;
  if (options_.pool != nullptr) options_.exec_options.pool = options_.pool;
  // Session-level bounds flow down into every Execute (hierarchical: the
  // tighter of the session's and the caller's own exec deadline wins).
  options_.exec_options.deadline = resilience::Deadline::Sooner(
      options_.exec_options.deadline, options_.deadline);
  if (options_.exec_options.cancel == nullptr) {
    options_.exec_options.cancel = options_.cancel;
  }
  resilience::StopPoller session_stop(options_.exec_options.deadline,
                                      options_.exec_options.cancel);
  obs::Tracer* tracer = obs::TracerOrDefault(options_.exec_options.tracer);
  obs::MetricRegistry* metrics = options_.exec_options.metrics != nullptr
                                     ? options_.exec_options.metrics
                                     : &obs::DefaultMetrics();
  obs::TraceSpan run_span(tracer, "session.run");

  // Size the subset from the largest extensional table.
  size_t max_table = 1;
  for (const std::string& name : catalog_.TableNames()) {
    IFLEX_ASSIGN_OR_RETURN(const CompactTable* t, catalog_.Table(name));
    max_table = std::max(max_table, t->size());
  }
  double fraction = options_.subset_fraction > 0
                        ? options_.subset_fraction
                        : AutoSubsetFraction(max_table);
  if (options_.max_subset_docs > 0) {
    fraction = std::min(fraction, static_cast<double>(options_.max_subset_docs) /
                                      static_cast<double>(max_table));
  }
  Catalog subset =
      catalog_.CloneWithSampledTables(fraction, options_.subset_seed);
  ReuseCache subset_cache;
  // Session-scoped Verify memo, shared by every iteration's subset
  // executor, every candidate simulation, and the final full evaluation:
  // subset catalogs share the corpus, so interned keys — and therefore
  // cached verdicts — stay valid across all of them. Lives next to the
  // reuse caches and follows their lifecycle (see VerifyMemo docs for why
  // it needs no Clear on subset growth: verdicts are corpus-level facts,
  // not subset-dependent tables).
  VerifyMemo verify_memo;
  if (options_.exec_options.verify_memo == nullptr) {
    options_.exec_options.verify_memo = &verify_memo;
  }

  // Grows the subset when it stops carrying signal (zero-result subsets
  // make every question look useless). Returns true if it grew.
  auto grow_subset = [&]() {
    if (fraction >= 1.0) return false;
    fraction = std::min(1.0, fraction * 2);
    subset = catalog_.CloneWithSampledTables(fraction, options_.subset_seed);
    subset_cache.Clear();
    return true;
  };

  std::unique_ptr<QuestionStrategy> strategy;
  if (options_.strategy == StrategyKind::kSequential) {
    strategy = std::make_unique<SequentialStrategy>();
  } else {
    strategy = std::make_unique<SimulationStrategy>();
  }

  ReuseCache full_cache;
  std::set<std::string> asked;
  ConvergenceDetector detector(options_.convergence_k);

  // Example feedback (paper §5.1.1): collect one marked-up sample per
  // attribute up front and rule out the answers it contradicts.
  AnswerExclusions exclusions;
  if (options_.example_feedback) {
    obs::TraceSpan feedback_span(tracer, "session.example_feedback");
    for (const AttributeRef& attr :
         EnumerateAttributes(program_, catalog_)) {
      std::optional<Value> example = developer_->ProvideExample(attr);
      out.developer_seconds += developer_->LastAnswerSeconds();
      if (!example.has_value()) continue;
      ++out.examples_collected;
      MergeExclusions(&exclusions,
                      DeriveExclusions(catalog_.corpus(), catalog_.features(),
                                       attr, *example));
    }
  }

  StrategyContext ctx;
  ctx.exclusions = &exclusions;
  ctx.full_catalog = &catalog_;
  ctx.subset_catalog = &subset;
  ctx.subset_cache = &subset_cache;
  ctx.asked = &asked;
  ctx.exec_options = options_.exec_options;
  ctx.alpha = options_.alpha;

  bool space_exhausted = false;
  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    IFLEX_RETURN_NOT_OK(session_stop.Check("Session::Run"));
    IterationRecord rec;
    rec.iteration = iter;
    Stopwatch iter_watch;
    char iter_buf[16];
    std::snprintf(iter_buf, sizeof(iter_buf), "%d", iter);
    obs::TraceSpan iter_span(tracer, "session.iteration", iter_buf);
    metrics->counter("session.iterations")->Add();
    // Stamp this iteration into every CostKey its Executes charge — the
    // subset evaluation here and the candidate simulations below.
    options_.exec_options.cost_iteration = iter;
    ctx.exec_options.cost_iteration = iter;

    // Execute the current program on the subset; grow the subset while it
    // yields nothing (an empty sample cannot guide question selection).
    CompactTable result;
    size_t process_assignments = 0;
    double process_values = 0;
    {
      obs::TraceSpan subset_span(tracer, "session.subset_eval");
      while (true) {
        Executor exec(subset, options_.exec_options);
        IFLEX_ASSIGN_OR_RETURN(result, exec.Execute(program_, &subset_cache));
        out.report.Merge(exec.report());
        process_assignments = exec.stats().process_assignments;
        process_values = exec.stats().process_values;
        if (result.size() > 0 || !grow_subset()) break;
        metrics->counter("session.subset_grows")->Add();
      }
    }
    rec.result_tuples = ResultSize(result, catalog_.corpus());
    rec.assignments = process_assignments;
    rec.process_values = process_values;
    rec.full_data = false;

    bool converged;
    {
      obs::TraceSpan conv_span(tracer, "session.convergence_check");
      converged = detector.Observe(rec.result_tuples, rec.process_values);
    }

    if (!converged && !space_exhausted) {
      // Solicit the next-effort questions and fold the answers in.
      obs::TraceSpan questions_span(tracer, "session.questions");
      ctx.program = &program_;
      for (int qi = 0; qi < options_.questions_per_iteration; ++qi) {
        IFLEX_ASSIGN_OR_RETURN(std::optional<Question> q,
                               strategy->Next(ctx));
        if (!q.has_value() && grow_subset()) {
          // The sample may have gone dry under the latest constraints;
          // retry on the bigger subset before giving up.
          IFLEX_ASSIGN_OR_RETURN(q, strategy->Next(ctx));
        }
        if (!q.has_value()) {
          space_exhausted = true;
          break;
        }
        asked.insert(q->Key());
        IFLEX_ASSIGN_OR_RETURN(const Feature* feature,
                               catalog_.features().Get(q->feature));
        Answer a = developer_->Ask(*q, *feature);
        rec.developer_seconds += developer_->LastAnswerSeconds();
        IFLEX_RETURN_NOT_OK(ApplyAnswer(&program_, catalog_, *q, a));
        rec.questions.push_back(*q);
        rec.answers.push_back(a);
        ++out.questions_asked;
      }
    }

    rec.machine_seconds = iter_watch.ElapsedSeconds();
    metrics->histogram("session.iteration_seconds")
        ->Record(rec.machine_seconds);
    out.developer_seconds += rec.developer_seconds;
    out.iterations.push_back(rec);

    if (converged || space_exhausted ||
        iter == options_.max_iterations) {
      out.converged = converged;
      break;
    }
  }

  // Reuse mode: compute the complete result over the full data.
  {
    IFLEX_RETURN_NOT_OK(session_stop.Check("Session::Run"));
    obs::TraceSpan full_span(tracer, "session.full_eval");
    IterationRecord rec;
    rec.iteration = static_cast<int>(out.iterations.size()) + 1;
    Stopwatch iter_watch;
    options_.exec_options.cost_iteration = rec.iteration;
    Executor exec(catalog_, options_.exec_options);
    IFLEX_ASSIGN_OR_RETURN(CompactTable result,
                           exec.Execute(program_, &full_cache));
    out.report.Merge(exec.report());
    rec.result_tuples = ResultSize(result, catalog_.corpus());
    rec.assignments = exec.stats().process_assignments;
    rec.process_values = exec.stats().process_values;
    rec.full_data = true;
    rec.machine_seconds = iter_watch.ElapsedSeconds();
    out.iterations.push_back(rec);
    out.final_result = std::move(result);
  }

  if (auto* sim = dynamic_cast<SimulationStrategy*>(strategy.get())) {
    out.simulations_run = sim->simulations_run();
  }
  metrics->counter("session.questions_asked")->Add(out.questions_asked);
  metrics->counter("session.simulations")->Add(out.simulations_run);
  out.final_program = program_;
  out.machine_seconds = total.ElapsedSeconds() - out.developer_seconds;
  return out;
}

}  // namespace iflex
