#ifndef IFLEX_ASSISTANT_CONVERGENCE_H_
#define IFLEX_ASSISTANT_CONVERGENCE_H_

#include <cstddef>
#include <vector>

namespace iflex {

/// Convergence notification (paper §5.1): the assistant monitors both the
/// number of result tuples and the number of assignments produced by the
/// extraction; when both stay constant for k consecutive iterations
/// (k = 3 in the paper) it notifies the developer.
class ConvergenceDetector {
 public:
  explicit ConvergenceDetector(int k = 3) : k_(k) {}

  /// Records one iteration's counters — result tuples and a value-level
  /// ambiguity measure of the whole extraction process; returns true when
  /// convergence has been reached (the last k observations are identical).
  bool Observe(double result_tuples, double assignments) {
    observations_.push_back({result_tuples, assignments});
    if (observations_.size() < static_cast<size_t>(k_)) return false;
    const Obs& last = observations_.back();
    for (size_t i = observations_.size() - static_cast<size_t>(k_);
         i < observations_.size(); ++i) {
      if (observations_[i].tuples != last.tuples ||
          observations_[i].assignments != last.assignments) {
        return false;
      }
    }
    return true;
  }

  void Reset() { observations_.clear(); }

  int k() const { return k_; }

 private:
  struct Obs {
    double tuples;
    double assignments;
  };
  int k_;
  std::vector<Obs> observations_;
};

}  // namespace iflex

#endif  // IFLEX_ASSISTANT_CONVERGENCE_H_
