#ifndef IFLEX_FEATURES_FEATURE_H_
#define IFLEX_FEATURES_FEATURE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "text/document.h"

namespace iflex {

/// The value domain of text features (paper §2.2.2): a span can have a
/// feature, have it *distinctly* (the span has it but its immediate
/// surroundings do not), lack it, or the developer may not know.
enum class FeatureValue : uint8_t {
  kYes,
  kDistinctYes,
  kNo,
  kDistinctNo,
  kUnknown,
};

const char* FeatureValueToString(FeatureValue v);
/// Underscored form ("distinct_yes") that the Alog lexer round-trips.
const char* FeatureValueToToken(FeatureValue v);
Result<FeatureValue> FeatureValueFromString(const std::string& s);

/// Parameter of a parameterized feature, e.g. the "500000" in
/// min_value(p)=500000 or the "Price:" in preceded_by(p,"Price:")=yes.
struct FeatureParam {
  std::optional<std::string> str;
  std::optional<double> num;

  static FeatureParam None() { return {}; }
  static FeatureParam Str(std::string s) {
    FeatureParam p;
    p.str = std::move(s);
    return p;
  }
  static FeatureParam Num(double n) {
    FeatureParam p;
    p.num = n;
    return p;
  }

  bool has_value() const { return str.has_value() || num.has_value(); }
  std::string ToString() const;
  bool operator==(const FeatureParam& o) const {
    return str == o.str && num == o.num;
  }
};

/// What kind of parameter a feature expects.
enum class ParamKind : uint8_t { kNone, kString, kNumber };

/// One maximal region returned by Refine. When `exact` is true only the
/// region itself satisfies the constraint (paper: distinct-yes produces
/// exact("35.99")); otherwise every sub-span does too (contain).
struct RefinedRegion {
  Span span;
  bool exact = false;
};

/// A text feature with the two procedures the paper requires
/// (§2.2.2/§4.2): Verify(s,f,v) checks f(s)=v, Refine(s,f,v) returns all
/// maximal sub-spans t of s with f(t)=v. Adding a feature to iFlex means
/// subclassing this once; it is then usable from any Alog program.
class Feature {
 public:
  explicit Feature(std::string name) : name_(std::move(name)) {}
  virtual ~Feature() = default;

  const std::string& name() const { return name_; }

  virtual ParamKind param_kind() const { return ParamKind::kNone; }

  /// Does f(span) = v hold? `param` must match param_kind().
  virtual bool Verify(const Document& doc, const Span& span,
                      const FeatureParam& param, FeatureValue v) const = 0;

  /// All maximal sub-spans t of `span` with f(t) = v. Implementations may
  /// over-approximate (return regions whose sub-spans do not all satisfy
  /// the constraint) but must never under-approximate: every satisfying
  /// sub-span must be inside some returned region. This is what preserves
  /// the processor's superset semantics.
  virtual std::vector<RefinedRegion> Refine(const Document& doc,
                                            const Span& span,
                                            const FeatureParam& param,
                                            FeatureValue v) const = 0;

  /// Verify over bare text with no document context, for scalar values
  /// produced by p-predicates/cleanup procedures. Returns nullopt when the
  /// feature inherently needs document context (markup, labels, position);
  /// the constraint then cannot narrow such values.
  virtual std::optional<bool> VerifyText(std::string_view text,
                                         const FeatureParam& param,
                                         FeatureValue v) const {
    (void)text;
    (void)param;
    (void)v;
    return std::nullopt;
  }

  /// The answers the next-effort assistant may propose for a question
  /// about this feature. Parameterized features return an empty list; the
  /// assistant derives candidate parameters from the data instead.
  virtual std::vector<FeatureValue> AnswerSpace() const {
    return {FeatureValue::kYes, FeatureValue::kNo};
  }

  /// Human-readable question text, e.g. "is <attr> in bold font?".
  virtual std::string QuestionText(const std::string& attr) const;

 private:
  std::string name_;
};

}  // namespace iflex

#endif  // IFLEX_FEATURES_FEATURE_H_
