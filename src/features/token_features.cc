#include "features/token_features.h"

#include <cctype>

#include "common/strutil.h"

namespace iflex {

namespace {

bool IsCapitalizedWord(std::string_view w) {
  return !w.empty() && std::isupper(static_cast<unsigned char>(w.front()));
}

// "J." or "J" style middle initial.
bool IsInitial(std::string_view w) {
  if (w.empty() || w.size() > 2) return false;
  if (!std::isupper(static_cast<unsigned char>(w[0]))) return false;
  return w.size() == 1 || w[1] == '.';
}

// A full name word: capitalized, alphabetic, at least two letters — the
// shape required at the start and end of a person name ("M. Wu" is not a
// name, "Jane A. Smith" is).
bool IsFullNameWord(std::string_view w) {
  if (w.size() < 2 || !std::isupper(static_cast<unsigned char>(w[0]))) {
    return false;
  }
  for (char c : w) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

std::vector<RefinedRegion> RefineTokenRuns(
    const Document& doc, const Span& span,
    const std::function<bool(std::string_view)>& pred, bool exact_per_token) {
  std::vector<RefinedRegion> out;
  const auto& tokens = doc.tokens();
  size_t first = doc.FirstTokenAtOrAfter(span.begin);
  size_t last = doc.TokensEndingBy(span.end);
  size_t i = first;
  while (i < last) {
    std::string_view w = doc.TextOf(Span(span.doc, tokens[i].begin, tokens[i].end));
    if (!pred(w)) {
      ++i;
      continue;
    }
    if (exact_per_token) {
      out.push_back(RefinedRegion{Span(span.doc, tokens[i].begin, tokens[i].end),
                                  /*exact=*/true});
      ++i;
      continue;
    }
    size_t j = i;
    while (j + 1 < last) {
      std::string_view next = doc.TextOf(
          Span(span.doc, tokens[j + 1].begin, tokens[j + 1].end));
      if (!pred(next)) break;
      ++j;
    }
    out.push_back(RefinedRegion{
        Span(span.doc, tokens[i].begin, tokens[j].end), /*exact=*/false});
    i = j + 1;
  }
  return out;
}

// ---------------------------------------------------------------- numeric

bool NumericFeature::Verify(const Document& doc, const Span& span,
                            const FeatureParam& /*param*/,
                            FeatureValue v) const {
  bool numeric = IsLooseNumber(doc.TextOf(span));
  switch (v) {
    case FeatureValue::kYes:
    case FeatureValue::kDistinctYes:
      return numeric;
    case FeatureValue::kNo:
    case FeatureValue::kDistinctNo:
      return !numeric;
    case FeatureValue::kUnknown:
      return true;
  }
  return false;
}

std::vector<RefinedRegion> NumericFeature::Refine(const Document& doc,
                                                  const Span& span,
                                                  const FeatureParam& /*param*/,
                                                  FeatureValue v) const {
  if (v == FeatureValue::kNo || v == FeatureValue::kDistinctNo ||
      v == FeatureValue::kUnknown) {
    // Non-numeric sub-spans are nearly everything; no narrowing possible.
    return {RefinedRegion{span, /*exact=*/false}};
  }
  // A numeric value is a single numeric token ("$351,000"); multi-token
  // spans never parse as one number.
  return RefineTokenRuns(doc, span, [](std::string_view w) {
    return IsLooseNumber(w);
  }, /*exact_per_token=*/true);
}

std::optional<bool> NumericFeature::VerifyText(std::string_view text,
                                               const FeatureParam& /*param*/,
                                               FeatureValue v) const {
  bool numeric = IsLooseNumber(text);
  switch (v) {
    case FeatureValue::kYes:
    case FeatureValue::kDistinctYes:
      return numeric;
    case FeatureValue::kNo:
    case FeatureValue::kDistinctNo:
      return !numeric;
    case FeatureValue::kUnknown:
      return true;
  }
  return std::nullopt;
}

std::string NumericFeature::QuestionText(const std::string& attr) const {
  return StringPrintf("is %s numeric?", attr.c_str());
}

// ------------------------------------------------------------ capitalized

bool CapitalizedFeature::Verify(const Document& doc, const Span& span,
                                const FeatureParam& /*param*/,
                                FeatureValue v) const {
  const auto& tokens = doc.tokens();
  size_t first = doc.FirstTokenAtOrAfter(span.begin);
  size_t last = doc.TokensEndingBy(span.end);
  bool all_cap = first < last;
  for (size_t i = first; i < last && all_cap; ++i) {
    all_cap = IsCapitalizedWord(
        doc.TextOf(Span(span.doc, tokens[i].begin, tokens[i].end)));
  }
  switch (v) {
    case FeatureValue::kYes:
    case FeatureValue::kDistinctYes:
      return all_cap;
    case FeatureValue::kNo:
    case FeatureValue::kDistinctNo:
      return !all_cap;
    case FeatureValue::kUnknown:
      return true;
  }
  return false;
}

std::vector<RefinedRegion> CapitalizedFeature::Refine(
    const Document& doc, const Span& span, const FeatureParam& /*param*/,
    FeatureValue v) const {
  if (v != FeatureValue::kYes && v != FeatureValue::kDistinctYes) {
    return {RefinedRegion{span, /*exact=*/false}};
  }
  return RefineTokenRuns(doc, span, IsCapitalizedWord,
                         /*exact_per_token=*/false);
}

std::string CapitalizedFeature::QuestionText(const std::string& attr) const {
  return StringPrintf("is %s capitalized?", attr.c_str());
}

// ------------------------------------------------------------ person_name

bool PersonNameFeature::Verify(const Document& doc, const Span& span,
                               const FeatureParam& /*param*/,
                               FeatureValue v) const {
  const auto& tokens = doc.tokens();
  size_t first = doc.FirstTokenAtOrAfter(span.begin);
  size_t last = doc.TokensEndingBy(span.end);
  size_t n = last > first ? last - first : 0;
  bool looks = false;
  if (n >= 2 && n <= 4) {
    looks = true;
    for (size_t i = first; i < last; ++i) {
      std::string_view w =
          doc.TextOf(Span(span.doc, tokens[i].begin, tokens[i].end));
      bool inner = i > first && i + 1 < last;
      bool edge_ok = IsFullNameWord(w);
      if (!(edge_ok || (inner && IsInitial(w)))) {
        looks = false;
        break;
      }
      if (IsLooseNumber(w)) {
        looks = false;
        break;
      }
    }
    // The span must cover those tokens exactly (no stray leading text).
    if (looks) {
      Span aligned = doc.AlignToTokens(span);
      looks = aligned.begin == tokens[first].begin &&
              aligned.end == tokens[last - 1].end;
    }
  }
  switch (v) {
    case FeatureValue::kYes:
    case FeatureValue::kDistinctYes:
      return looks;
    case FeatureValue::kNo:
    case FeatureValue::kDistinctNo:
      return !looks;
    case FeatureValue::kUnknown:
      return true;
  }
  return false;
}

std::vector<RefinedRegion> PersonNameFeature::Refine(
    const Document& doc, const Span& span, const FeatureParam& param,
    FeatureValue v) const {
  if (v != FeatureValue::kYes && v != FeatureValue::kDistinctYes) {
    return {RefinedRegion{span, /*exact=*/false}};
  }
  // Slide over capitalized runs and emit every 2..4-token window as an
  // exact candidate; windows are re-verified by Verify so initials work.
  std::vector<RefinedRegion> out;
  const auto& tokens = doc.tokens();
  size_t first = doc.FirstTokenAtOrAfter(span.begin);
  size_t last = doc.TokensEndingBy(span.end);
  for (size_t i = first; i < last; ++i) {
    for (size_t n = 2; n <= 4 && i + n <= last; ++n) {
      Span cand(span.doc, tokens[i].begin, tokens[i + n - 1].end);
      if (Verify(doc, cand, param, FeatureValue::kYes)) {
        out.push_back(RefinedRegion{cand, /*exact=*/true});
      }
    }
  }
  return out;
}

std::string PersonNameFeature::QuestionText(const std::string& attr) const {
  return StringPrintf("does %s look like a person name?", attr.c_str());
}

// ---------------------------------------------------------- min/max value

bool ValueBoundFeature::Verify(const Document& doc, const Span& span,
                               const FeatureParam& param,
                               FeatureValue v) const {
  auto parsed = ParseLooseNumber(doc.TextOf(span));
  bool holds = parsed.has_value() && param.num.has_value() &&
               (is_min_ ? *parsed >= *param.num : *parsed <= *param.num);
  switch (v) {
    case FeatureValue::kYes:
    case FeatureValue::kDistinctYes:
      return holds;
    case FeatureValue::kNo:
    case FeatureValue::kDistinctNo:
      return !holds;
    case FeatureValue::kUnknown:
      return true;
  }
  return false;
}

std::optional<bool> ValueBoundFeature::VerifyText(std::string_view text,
                                                  const FeatureParam& param,
                                                  FeatureValue v) const {
  auto parsed = ParseLooseNumber(text);
  bool holds = parsed.has_value() && param.num.has_value() &&
               (is_min_ ? *parsed >= *param.num : *parsed <= *param.num);
  switch (v) {
    case FeatureValue::kYes:
    case FeatureValue::kDistinctYes:
      return holds;
    case FeatureValue::kNo:
    case FeatureValue::kDistinctNo:
      return !holds;
    case FeatureValue::kUnknown:
      return true;
  }
  return std::nullopt;
}

std::vector<RefinedRegion> ValueBoundFeature::Refine(
    const Document& doc, const Span& span, const FeatureParam& param,
    FeatureValue v) const {
  if (v != FeatureValue::kYes && v != FeatureValue::kDistinctYes) {
    return {RefinedRegion{span, /*exact=*/false}};
  }
  bool is_min = is_min_;
  double bound = param.num.value_or(is_min_ ? -1e300 : 1e300);
  return RefineTokenRuns(
      doc, span,
      [is_min, bound](std::string_view w) {
        auto p = ParseLooseNumber(w);
        return p.has_value() && (is_min ? *p >= bound : *p <= bound);
      },
      /*exact_per_token=*/true);
}

std::string ValueBoundFeature::QuestionText(const std::string& attr) const {
  return StringPrintf("what is a %s value for %s?",
                      is_min_ ? "minimal" : "maximal", attr.c_str());
}

// ------------------------------------------------------------- max_length

bool MaxLengthFeature::Verify(const Document& doc, const Span& span,
                              const FeatureParam& param,
                              FeatureValue v) const {
  (void)doc;
  bool holds =
      param.num.has_value() && span.length() <= static_cast<uint32_t>(*param.num);
  switch (v) {
    case FeatureValue::kYes:
    case FeatureValue::kDistinctYes:
      return holds;
    case FeatureValue::kNo:
    case FeatureValue::kDistinctNo:
      return !holds;
    case FeatureValue::kUnknown:
      return true;
  }
  return false;
}

std::optional<bool> MaxLengthFeature::VerifyText(std::string_view text,
                                                 const FeatureParam& param,
                                                 FeatureValue v) const {
  bool holds = param.num.has_value() &&
               text.size() <= static_cast<size_t>(*param.num);
  switch (v) {
    case FeatureValue::kYes:
    case FeatureValue::kDistinctYes:
      return holds;
    case FeatureValue::kNo:
    case FeatureValue::kDistinctNo:
      return !holds;
    case FeatureValue::kUnknown:
      return true;
  }
  return std::nullopt;
}

std::vector<RefinedRegion> MaxLengthFeature::Refine(const Document& doc,
                                                    const Span& span,
                                                    const FeatureParam& param,
                                                    FeatureValue v) const {
  if (v != FeatureValue::kYes && v != FeatureValue::kDistinctYes) {
    return {RefinedRegion{span, /*exact=*/false}};
  }
  uint32_t limit =
      param.num.has_value() ? static_cast<uint32_t>(*param.num) : span.length();
  // For each start token, the longest window of length <= limit. Windows
  // overlap, but V(cell) is a union so superset semantics is preserved and
  // the result is in fact exact: every sub-span of length <= limit lies in
  // the window anchored at its start token.
  std::vector<RefinedRegion> out;
  const auto& tokens = doc.tokens();
  size_t first = doc.FirstTokenAtOrAfter(span.begin);
  size_t last = doc.TokensEndingBy(span.end);
  size_t prev_end_tok = SIZE_MAX;
  for (size_t i = first; i < last; ++i) {
    if (tokens[i].end - tokens[i].begin > limit) continue;
    size_t j = i;
    while (j + 1 < last && tokens[j + 1].end - tokens[i].begin <= limit) ++j;
    if (j == prev_end_tok && !out.empty() &&
        out.back().span.begin <= tokens[i].begin) {
      // The window [i..j] is a sub-span of the previous window; skip it.
      continue;
    }
    prev_end_tok = j;
    out.push_back(RefinedRegion{Span(span.doc, tokens[i].begin, tokens[j].end),
                                /*exact=*/false});
  }
  return out;
}

std::string MaxLengthFeature::QuestionText(const std::string& attr) const {
  return StringPrintf("what is the maximal length (chars) of %s?",
                      attr.c_str());
}

// ---------------------------------------------------------- in_first_half

bool InFirstHalfFeature::Verify(const Document& doc, const Span& span,
                                const FeatureParam& /*param*/,
                                FeatureValue v) const {
  bool holds = span.end <= doc.size() / 2;
  switch (v) {
    case FeatureValue::kYes:
    case FeatureValue::kDistinctYes:
      return holds;
    case FeatureValue::kNo:
    case FeatureValue::kDistinctNo:
      return !holds;
    case FeatureValue::kUnknown:
      return true;
  }
  return false;
}

std::vector<RefinedRegion> InFirstHalfFeature::Refine(
    const Document& doc, const Span& span, const FeatureParam& /*param*/,
    FeatureValue v) const {
  uint32_t half = doc.size() / 2;
  std::vector<RefinedRegion> out;
  if (v == FeatureValue::kYes || v == FeatureValue::kDistinctYes) {
    if (span.begin < half) {
      out.push_back(RefinedRegion{
          Span(span.doc, span.begin, std::min(span.end, half)),
          /*exact=*/false});
    }
  } else if (v == FeatureValue::kNo || v == FeatureValue::kDistinctNo) {
    // A span fails in_first_half as soon as it *ends* past the midpoint,
    // so we can only prune spans entirely inside the first half; keep the
    // whole span when it straddles the midpoint (superset semantics).
    if (span.end > half) {
      out.push_back(RefinedRegion{span, /*exact=*/false});
    }
  } else {
    out.push_back(RefinedRegion{span, /*exact=*/false});
  }
  return out;
}

std::string InFirstHalfFeature::QuestionText(const std::string& attr) const {
  return StringPrintf("does %s lie entirely in the first half of the page?",
                      attr.c_str());
}

}  // namespace iflex
