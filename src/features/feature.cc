#include "features/feature.h"

#include "common/strutil.h"

namespace iflex {

const char* FeatureValueToString(FeatureValue v) {
  switch (v) {
    case FeatureValue::kYes:
      return "yes";
    case FeatureValue::kDistinctYes:
      return "distinct-yes";
    case FeatureValue::kNo:
      return "no";
    case FeatureValue::kDistinctNo:
      return "distinct-no";
    case FeatureValue::kUnknown:
      return "unknown";
  }
  return "?";
}

const char* FeatureValueToToken(FeatureValue v) {
  switch (v) {
    case FeatureValue::kDistinctYes:
      return "distinct_yes";
    case FeatureValue::kDistinctNo:
      return "distinct_no";
    default:
      return FeatureValueToString(v);
  }
}

Result<FeatureValue> FeatureValueFromString(const std::string& s) {
  if (s == "yes") return FeatureValue::kYes;
  if (s == "distinct-yes" || s == "distinct_yes")
    return FeatureValue::kDistinctYes;
  if (s == "no") return FeatureValue::kNo;
  if (s == "distinct-no" || s == "distinct_no") return FeatureValue::kDistinctNo;
  if (s == "unknown") return FeatureValue::kUnknown;
  return Status::ParseError("not a feature value: " + s);
}

std::string FeatureParam::ToString() const {
  if (str.has_value()) return "\"" + *str + "\"";
  if (num.has_value()) {
    double n = *num;
    if (n == static_cast<int64_t>(n)) {
      return StringPrintf("%lld", static_cast<long long>(n));
    }
    return StringPrintf("%g", n);
  }
  return "";
}

std::string Feature::QuestionText(const std::string& attr) const {
  return StringPrintf("what is the value of feature %s for attribute %s?",
                      name_.c_str(), attr.c_str());
}

}  // namespace iflex
