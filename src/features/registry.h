#ifndef IFLEX_FEATURES_REGISTRY_H_
#define IFLEX_FEATURES_REGISTRY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "features/feature.h"

namespace iflex {

/// Name -> Feature lookup used by the parser, the constraint-selection
/// operator and the next-effort assistant. iFlex ships a rich built-in set
/// (paper §2.2.2); new domain features plug in via Register().
class FeatureRegistry {
 public:
  FeatureRegistry() = default;
  FeatureRegistry(const FeatureRegistry&) = delete;
  FeatureRegistry& operator=(const FeatureRegistry&) = delete;
  FeatureRegistry(FeatureRegistry&&) = default;
  FeatureRegistry& operator=(FeatureRegistry&&) = default;

  /// Registers a feature under feature->name(); AlreadyExists on clash.
  Status Register(std::unique_ptr<Feature> feature);

  /// Feature by name, or NotFound.
  Result<const Feature*> Get(const std::string& name) const;

  bool Has(const std::string& name) const {
    return features_.count(name) > 0;
  }

  /// All registered names in registration order (stable for the
  /// sequential question strategy).
  const std::vector<std::string>& names() const { return order_; }

 private:
  std::unordered_map<std::string, std::unique_ptr<Feature>> features_;
  std::vector<std::string> order_;
};

/// Builds the registry with all built-in features, in the order the
/// sequential strategy asks about them: appearance features first (cheap
/// for a developer to eyeball), then location, then semantics — mirroring
/// the paper's question design (§5.1.1).
std::unique_ptr<FeatureRegistry> CreateDefaultRegistry();

}  // namespace iflex

#endif  // IFLEX_FEATURES_REGISTRY_H_
