#include "features/markup_features.h"

#include "common/strutil.h"

namespace iflex {

bool MarkupFeature::Verify(const Document& doc, const Span& span,
                           const FeatureParam& /*param*/,
                           FeatureValue v) const {
  const MarkupLayer& layer = doc.layer(kind_);
  switch (v) {
    case FeatureValue::kYes:
      return layer.Covers(span.begin, span.end);
    case FeatureValue::kDistinctYes:
      return layer.CoversDistinctly(span.begin, span.end);
    case FeatureValue::kNo:
      return !layer.Intersects(span.begin, span.end);
    case FeatureValue::kDistinctNo:
      // Span untouched by the layer but both neighbours covered; used
      // rarely, e.g. the gap between two bold fields.
      return !layer.Intersects(span.begin, span.end) &&
             (span.begin == 0 || layer.Covers(span.begin - 1, span.begin)) &&
             (span.end >= doc.size() || layer.Covers(span.end, span.end + 1));
    case FeatureValue::kUnknown:
      return true;
  }
  return false;
}

std::vector<RefinedRegion> MarkupFeature::Refine(const Document& doc,
                                                 const Span& span,
                                                 const FeatureParam& /*param*/,
                                                 FeatureValue v) const {
  const MarkupLayer& layer = doc.layer(kind_);
  std::vector<RefinedRegion> out;
  switch (v) {
    case FeatureValue::kYes: {
      for (const auto& [b, e] : layer.MaximalRunsWithin(span.begin, span.end)) {
        out.push_back(RefinedRegion{Span(span.doc, b, e), /*exact=*/false});
      }
      break;
    }
    case FeatureValue::kDistinctYes: {
      for (const auto& [b, e] : layer.DistinctRunsWithin(span.begin, span.end)) {
        out.push_back(RefinedRegion{Span(span.doc, b, e), /*exact=*/true});
      }
      break;
    }
    case FeatureValue::kNo: {
      // Complement of the covered runs within the span.
      uint32_t cursor = span.begin;
      for (const auto& [b, e] : layer.MaximalRunsWithin(span.begin, span.end)) {
        if (cursor < b) {
          out.push_back(
              RefinedRegion{Span(span.doc, cursor, b), /*exact=*/false});
        }
        cursor = e;
      }
      if (cursor < span.end) {
        out.push_back(
            RefinedRegion{Span(span.doc, cursor, span.end), /*exact=*/false});
      }
      break;
    }
    case FeatureValue::kDistinctNo:
    case FeatureValue::kUnknown: {
      out.push_back(RefinedRegion{span, /*exact=*/false});
      break;
    }
  }
  return out;
}

std::string MarkupFeature::QuestionText(const std::string& attr) const {
  return StringPrintf("is %s %s?", attr.c_str(), name().c_str());
}

}  // namespace iflex
