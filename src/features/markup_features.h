#ifndef IFLEX_FEATURES_MARKUP_FEATURES_H_
#define IFLEX_FEATURES_MARKUP_FEATURES_H_

#include <string>
#include <vector>

#include "features/feature.h"
#include "text/markup.h"

namespace iflex {

/// Feature backed by a document markup layer: bold_font, italic_font,
/// underlined, hyperlinked, in_list, in_title.
///
/// Semantics (paper §2.2.2): yes = the span is fully covered by the layer;
/// distinct-yes = covered, and the characters adjacent to the span are not
/// (e.g. "bold-font(s)=distinct-yes means s is set in bold font but the
/// text surrounding s is not"); no = the span does not intersect the layer.
class MarkupFeature : public Feature {
 public:
  MarkupFeature(std::string name, MarkupKind kind)
      : Feature(std::move(name)), kind_(kind) {}

  bool Verify(const Document& doc, const Span& span, const FeatureParam& param,
              FeatureValue v) const override;

  /// yes -> contain(run) per maximal covered run intersected with the span;
  /// distinct-yes -> exact(run) per maximal run lying fully inside the span;
  /// no -> contain(gap) per maximal uncovered gap.
  std::vector<RefinedRegion> Refine(const Document& doc, const Span& span,
                                    const FeatureParam& param,
                                    FeatureValue v) const override;

  std::vector<FeatureValue> AnswerSpace() const override {
    return {FeatureValue::kYes, FeatureValue::kDistinctYes, FeatureValue::kNo};
  }

  std::string QuestionText(const std::string& attr) const override;

 private:
  MarkupKind kind_;
};

}  // namespace iflex

#endif  // IFLEX_FEATURES_MARKUP_FEATURES_H_
