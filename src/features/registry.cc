#include "features/registry.h"

#include "features/context_features.h"
#include "features/markup_features.h"
#include "features/token_features.h"

namespace iflex {

Status FeatureRegistry::Register(std::unique_ptr<Feature> feature) {
  std::string name = feature->name();
  auto [it, inserted] = features_.emplace(name, std::move(feature));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("feature already registered: " + name);
  }
  order_.push_back(name);
  return Status::OK();
}

Result<const Feature*> FeatureRegistry::Get(const std::string& name) const {
  auto it = features_.find(name);
  if (it == features_.end()) {
    return Status::NotFound("no feature named " + name);
  }
  return it->second.get();
}

std::unique_ptr<FeatureRegistry> CreateDefaultRegistry() {
  auto reg = std::make_unique<FeatureRegistry>();
  // Appearance.
  (void)reg->Register(std::make_unique<NumericFeature>());
  (void)reg->Register(std::make_unique<MarkupFeature>("bold_font", MarkupKind::kBold));
  (void)reg->Register(std::make_unique<MarkupFeature>("italic_font", MarkupKind::kItalic));
  (void)reg->Register(std::make_unique<MarkupFeature>("underlined", MarkupKind::kUnderline));
  (void)reg->Register(std::make_unique<MarkupFeature>("hyperlinked", MarkupKind::kHyperlink));
  (void)reg->Register(std::make_unique<CapitalizedFeature>());
  // Location / structure.
  (void)reg->Register(std::make_unique<MarkupFeature>("in_list", MarkupKind::kListItem));
  (void)reg->Register(std::make_unique<MarkupFeature>("in_title", MarkupKind::kTitle));
  (void)reg->Register(std::make_unique<InFirstHalfFeature>());
  (void)reg->Register(std::make_unique<PrecLabelContainsFeature>());
  (void)reg->Register(std::make_unique<PrecLabelMaxDistFeature>());
  // Context.
  (void)reg->Register(std::make_unique<AdjacencyFeature>(/*before=*/true));
  (void)reg->Register(std::make_unique<AdjacencyFeature>(/*before=*/false));
  (void)reg->Register(std::make_unique<EdgeRegexFeature>(/*at_start=*/true));
  (void)reg->Register(std::make_unique<EdgeRegexFeature>(/*at_start=*/false));
  (void)reg->Register(std::make_unique<ContainsFeature>());
  // Semantics.
  (void)reg->Register(std::make_unique<ValueBoundFeature>(/*is_min=*/true));
  (void)reg->Register(std::make_unique<ValueBoundFeature>(/*is_min=*/false));
  (void)reg->Register(std::make_unique<MaxLengthFeature>());
  (void)reg->Register(std::make_unique<PersonNameFeature>());
  return reg;
}

}  // namespace iflex
