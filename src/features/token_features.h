#ifndef IFLEX_FEATURES_TOKEN_FEATURES_H_
#define IFLEX_FEATURES_TOKEN_FEATURES_H_

#include <functional>
#include <string>
#include <vector>

#include "features/feature.h"

namespace iflex {

/// Shared helper: maximal runs of consecutive tokens inside `span` that
/// satisfy `pred`; each run is emitted as one region.
std::vector<RefinedRegion> RefineTokenRuns(
    const Document& doc, const Span& span,
    const std::function<bool(std::string_view)>& pred, bool exact_per_token);

/// numeric: the span parses as a number ("$351,000" counts; the paper's
/// canonical first constraint is "price is numeric").
class NumericFeature : public Feature {
 public:
  NumericFeature() : Feature("numeric") {}
  bool Verify(const Document& doc, const Span& span, const FeatureParam& param,
              FeatureValue v) const override;
  std::optional<bool> VerifyText(std::string_view text,
                                 const FeatureParam& param,
                                 FeatureValue v) const override;
  std::vector<RefinedRegion> Refine(const Document& doc, const Span& span,
                                    const FeatureParam& param,
                                    FeatureValue v) const override;
  std::string QuestionText(const std::string& attr) const override;
};

/// capitalized: every token of the span starts with an uppercase letter.
class CapitalizedFeature : public Feature {
 public:
  CapitalizedFeature() : Feature("capitalized") {}
  bool Verify(const Document& doc, const Span& span, const FeatureParam& param,
              FeatureValue v) const override;
  std::vector<RefinedRegion> Refine(const Document& doc, const Span& span,
                                    const FeatureParam& param,
                                    FeatureValue v) const override;
  std::string QuestionText(const std::string& attr) const override;
};

/// person_name: the span looks like a person name (2-4 capitalized words,
/// optional middle initial). Used by the DBLife tasks, standing in for the
/// paper's personPattern dictionary predicate.
class PersonNameFeature : public Feature {
 public:
  PersonNameFeature() : Feature("person_name") {}
  bool Verify(const Document& doc, const Span& span, const FeatureParam& param,
              FeatureValue v) const override;
  std::vector<RefinedRegion> Refine(const Document& doc, const Span& span,
                                    const FeatureParam& param,
                                    FeatureValue v) const override;
  std::string QuestionText(const std::string& attr) const override;
};

/// min_value / max_value: the span is numeric and its value is >= / <= the
/// parameter. The assistant's question is "what is a minimal/maximal value
/// for <attr>?" (paper §5.1.1, "semantics" questions).
class ValueBoundFeature : public Feature {
 public:
  /// `is_min` selects min_value (>=) vs max_value (<=).
  explicit ValueBoundFeature(bool is_min)
      : Feature(is_min ? "min_value" : "max_value"), is_min_(is_min) {}
  ParamKind param_kind() const override { return ParamKind::kNumber; }
  bool Verify(const Document& doc, const Span& span, const FeatureParam& param,
              FeatureValue v) const override;
  std::optional<bool> VerifyText(std::string_view text,
                                 const FeatureParam& param,
                                 FeatureValue v) const override;
  std::vector<RefinedRegion> Refine(const Document& doc, const Span& span,
                                    const FeatureParam& param,
                                    FeatureValue v) const override;
  std::vector<FeatureValue> AnswerSpace() const override { return {}; }
  std::string QuestionText(const std::string& attr) const override;

 private:
  bool is_min_;
};

/// max_length: the span is at most `param` characters long (paper §6.3
/// uses max_length(y)=18 for conference names).
class MaxLengthFeature : public Feature {
 public:
  MaxLengthFeature() : Feature("max_length") {}
  ParamKind param_kind() const override { return ParamKind::kNumber; }
  bool Verify(const Document& doc, const Span& span, const FeatureParam& param,
              FeatureValue v) const override;
  std::optional<bool> VerifyText(std::string_view text,
                                 const FeatureParam& param,
                                 FeatureValue v) const override;
  std::vector<RefinedRegion> Refine(const Document& doc, const Span& span,
                                    const FeatureParam& param,
                                    FeatureValue v) const override;
  std::vector<FeatureValue> AnswerSpace() const override { return {}; }
  std::string QuestionText(const std::string& attr) const override;
};

/// in_first_half: the span lies entirely in the first half of the page
/// (paper §5.1.1: "does this attribute lie entirely in the first half of
/// the page?" — a "location" question).
class InFirstHalfFeature : public Feature {
 public:
  InFirstHalfFeature() : Feature("in_first_half") {}
  bool Verify(const Document& doc, const Span& span, const FeatureParam& param,
              FeatureValue v) const override;
  std::vector<RefinedRegion> Refine(const Document& doc, const Span& span,
                                    const FeatureParam& param,
                                    FeatureValue v) const override;
  std::string QuestionText(const std::string& attr) const override;
};

}  // namespace iflex

#endif  // IFLEX_FEATURES_TOKEN_FEATURES_H_
