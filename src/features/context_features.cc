#include "features/context_features.h"

#include <cctype>
#include <regex>

#include "common/strutil.h"

namespace iflex {

namespace {

// Positive polarity for a boolean-style verdict under a FeatureValue.
bool Polarity(bool holds, FeatureValue v) {
  switch (v) {
    case FeatureValue::kYes:
    case FeatureValue::kDistinctYes:
      return holds;
    case FeatureValue::kNo:
    case FeatureValue::kDistinctNo:
      return !holds;
    case FeatureValue::kUnknown:
      return true;
  }
  return false;
}

bool NegativeOrUnknown(FeatureValue v) {
  return v == FeatureValue::kNo || v == FeatureValue::kDistinctNo ||
         v == FeatureValue::kUnknown;
}

// End of the line containing `pos` (position of '\n' or doc end).
uint32_t LineEnd(const Document& doc, uint32_t pos) {
  size_t nl = doc.text().find('\n', pos);
  return nl == std::string::npos ? doc.size() : static_cast<uint32_t>(nl);
}

// Begin of the line containing `pos`.
uint32_t LineBegin(const Document& doc, uint32_t pos) {
  if (pos == 0) return 0;
  size_t nl = doc.text().rfind('\n', pos - 1);
  return nl == std::string::npos ? 0 : static_cast<uint32_t>(nl) + 1;
}

}  // namespace

// -------------------------------------------------- preceded_by/followed_by

namespace {

// Does the text just before `pos` (skipping spaces, same line) end with
// `needle`? The anchored-adjacency core of preceded_by, independent of
// any value span's extent.
bool AnchoredBefore(const Document& doc, uint32_t pos,
                    const std::string& needle) {
  const std::string& text = doc.text();
  uint32_t line_begin = LineBegin(doc, pos);
  uint32_t p = pos;
  while (p > line_begin && std::isspace(static_cast<unsigned char>(text[p - 1]))) {
    --p;
  }
  return p >= line_begin + needle.size() &&
         text.compare(p - needle.size(), needle.size(), needle) == 0;
}

// Does the text just after `pos` (skipping spaces, same line) start with
// `needle`?
bool AnchoredAfter(const Document& doc, uint32_t pos,
                   const std::string& needle) {
  const std::string& text = doc.text();
  uint32_t line_end = LineEnd(doc, pos);
  uint32_t p = pos;
  while (p < line_end && std::isspace(static_cast<unsigned char>(text[p]))) {
    ++p;
  }
  return p + needle.size() <= line_end &&
         text.compare(p, needle.size(), needle) == 0;
}

}  // namespace

bool AdjacencyFeature::Verify(const Document& doc, const Span& span,
                              const FeatureParam& param,
                              FeatureValue v) const {
  if (!param.str.has_value()) return NegativeOrUnknown(v);
  const std::string& needle = *param.str;
  // Adjacency features qualify single-line values only.
  bool single_line =
      doc.TextOf(span).find('\n') == std::string_view::npos;
  if (!single_line) {
    return Polarity(false, v);
  }
  bool holds = before_ ? AnchoredBefore(doc, span.begin, needle)
                       : AnchoredAfter(doc, span.end, needle);
  return Polarity(holds, v);
}

std::vector<RefinedRegion> AdjacencyFeature::Refine(const Document& doc,
                                                    const Span& span,
                                                    const FeatureParam& param,
                                                    FeatureValue v) const {
  if (NegativeOrUnknown(v) || !param.str.has_value()) {
    return {RefinedRegion{span, /*exact=*/false}};
  }
  const std::string& needle = *param.str;
  const std::string& text = doc.text();
  std::vector<RefinedRegion> out;
  // The marker may sit just *outside* the input span (a previous
  // constraint narrowed the cell to e.g. the capitalized run after
  // "chair:"): sub-spans anchored at the span edge still satisfy the
  // constraint. Probe the anchored condition at the boundary — the input
  // span itself may cross lines; the emitted region is line-clamped.
  if (before_) {
    if (AnchoredBefore(doc, span.begin, needle)) {
      uint32_t e = std::min(LineEnd(doc, span.begin), span.end);
      if (span.begin < e) {
        out.push_back(RefinedRegion{Span(span.doc, span.begin, e), false});
      }
    }
  } else {
    if (AnchoredAfter(doc, span.end, needle)) {
      uint32_t b = std::max(LineBegin(doc, span.end == 0 ? 0 : span.end - 1),
                            span.begin);
      if (b < span.end) {
        out.push_back(RefinedRegion{Span(span.doc, b, span.end), false});
      }
    }
  }
  size_t pos = text.find(needle, span.begin);
  while (pos != std::string::npos && pos < span.end) {
    if (before_) {
      // Values preceded by the needle live between the needle and the end
      // of its line. contain() over-approximates (sub-spans not anchored
      // right after the needle are re-checked by Verify later); this is
      // the superset-safe direction.
      uint32_t b = static_cast<uint32_t>(pos + needle.size());
      uint32_t e = std::min(LineEnd(doc, b), span.end);
      if (b < e) out.push_back(RefinedRegion{Span(span.doc, b, e), false});
    } else {
      uint32_t e = static_cast<uint32_t>(pos);
      uint32_t b = std::max(LineBegin(doc, e), span.begin);
      if (b < e) out.push_back(RefinedRegion{Span(span.doc, b, e), false});
    }
    pos = text.find(needle, pos + 1);
  }
  return out;
}

std::string AdjacencyFeature::QuestionText(const std::string& attr) const {
  return StringPrintf("what text immediately %s %s?",
                      before_ ? "precedes" : "follows", attr.c_str());
}

// ----------------------------------------------------- starts/ends_with

bool EdgeRegexFeature::Verify(const Document& doc, const Span& span,
                              const FeatureParam& param,
                              FeatureValue v) const {
  if (!param.str.has_value()) return NegativeOrUnknown(v);
  std::string s(doc.TextOf(span));
  // Like the adjacency features, edge-regex features qualify single-line
  // values (their Refine regions are line-clamped).
  if (s.find('\n') != std::string::npos) return Polarity(false, v);
  bool holds = false;
  try {
    std::regex re(*param.str);
    std::smatch m;
    if (at_start_) {
      holds = std::regex_search(s, m, re,
                                std::regex_constants::match_continuous);
    } else {
      // Any match that ends exactly at the span end.
      auto begin = std::sregex_iterator(s.begin(), s.end(), re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        if (static_cast<size_t>(it->position() + it->length()) == s.size()) {
          holds = true;
          break;
        }
      }
    }
  } catch (const std::regex_error&) {
    holds = false;
  }
  return Polarity(holds, v);
}

std::vector<RefinedRegion> EdgeRegexFeature::Refine(const Document& doc,
                                                    const Span& span,
                                                    const FeatureParam& param,
                                                    FeatureValue v) const {
  if (NegativeOrUnknown(v) || !param.str.has_value()) {
    return {RefinedRegion{span, /*exact=*/false}};
  }
  std::string s(doc.TextOf(span));
  std::vector<RefinedRegion> out;
  try {
    std::regex re(*param.str);
    for (auto it = std::sregex_iterator(s.begin(), s.end(), re);
         it != std::sregex_iterator(); ++it) {
      if (at_start_) {
        // Satisfying values begin at a match start; they extend at most to
        // the end of that line.
        uint32_t b = span.begin + static_cast<uint32_t>(it->position());
        uint32_t e = std::min(LineEnd(doc, b), span.end);
        if (b < e) out.push_back(RefinedRegion{Span(span.doc, b, e), false});
      } else {
        uint32_t e = span.begin +
                     static_cast<uint32_t>(it->position() + it->length());
        uint32_t b = std::max(LineBegin(doc, e == 0 ? 0 : e - 1), span.begin);
        if (b < e) out.push_back(RefinedRegion{Span(span.doc, b, e), false});
      }
    }
  } catch (const std::regex_error&) {
    // An invalid pattern matches nothing.
  }
  return out;
}

std::string EdgeRegexFeature::QuestionText(const std::string& attr) const {
  return StringPrintf("what pattern does %s %s with?", attr.c_str(),
                      at_start_ ? "start" : "end");
}

// ----------------------------------------------------------- contains_str

bool ContainsFeature::Verify(const Document& doc, const Span& span,
                             const FeatureParam& param, FeatureValue v) const {
  if (!param.str.has_value()) return NegativeOrUnknown(v);
  return Polarity(ContainsIgnoreCase(doc.TextOf(span), *param.str), v);
}

std::vector<RefinedRegion> ContainsFeature::Refine(const Document& doc,
                                                   const Span& span,
                                                   const FeatureParam& param,
                                                   FeatureValue v) const {
  if (NegativeOrUnknown(v) || !param.str.has_value()) {
    return {RefinedRegion{span, /*exact=*/false}};
  }
  // Every satisfying sub-span surrounds some occurrence; the maximal such
  // sub-span is the whole input whenever an occurrence exists.
  if (ContainsIgnoreCase(doc.TextOf(span), *param.str)) {
    return {RefinedRegion{span, /*exact=*/false}};
  }
  return {};
}

std::string ContainsFeature::QuestionText(const std::string& attr) const {
  return StringPrintf("what string does %s contain?", attr.c_str());
}

// --------------------------------------------------- prec_label_contains

bool PrecLabelContainsFeature::Verify(const Document& doc, const Span& span,
                                      const FeatureParam& param,
                                      FeatureValue v) const {
  if (!param.str.has_value()) return NegativeOrUnknown(v);
  auto label = doc.PrecedingLabel(span.begin);
  bool holds = label.has_value() &&
               ContainsIgnoreCase(doc.TextOf(*label), *param.str);
  return Polarity(holds, v);
}

std::vector<RefinedRegion> PrecLabelContainsFeature::Refine(
    const Document& doc, const Span& span, const FeatureParam& param,
    FeatureValue v) const {
  if (NegativeOrUnknown(v) || !param.str.has_value()) {
    return {RefinedRegion{span, /*exact=*/false}};
  }
  // For each matching label, the satisfying region runs from the label end
  // to the next label (no other label may intervene, or it would become
  // the preceding label).
  const auto& labels = doc.layer(MarkupKind::kLabel).ranges();
  std::vector<RefinedRegion> out;
  for (size_t i = 0; i < labels.size(); ++i) {
    Span label(span.doc, labels[i].first, labels[i].second);
    if (!ContainsIgnoreCase(doc.TextOf(label), *param.str)) continue;
    uint32_t region_begin = std::max(labels[i].second, span.begin);
    uint32_t region_end =
        i + 1 < labels.size() ? labels[i + 1].first : doc.size();
    region_end = std::min(region_end, span.end);
    if (region_begin < region_end) {
      out.push_back(
          RefinedRegion{Span(span.doc, region_begin, region_end), false});
    }
  }
  return out;
}

std::string PrecLabelContainsFeature::QuestionText(
    const std::string& attr) const {
  return StringPrintf("what does the label preceding %s contain?",
                      attr.c_str());
}

// --------------------------------------------------- prec_label_max_dist

bool PrecLabelMaxDistFeature::Verify(const Document& doc, const Span& span,
                                     const FeatureParam& param,
                                     FeatureValue v) const {
  if (!param.num.has_value()) return NegativeOrUnknown(v);
  auto label = doc.PrecedingLabel(span.begin);
  bool holds = label.has_value() &&
               span.begin - label->end <= static_cast<uint32_t>(*param.num);
  return Polarity(holds, v);
}

std::vector<RefinedRegion> PrecLabelMaxDistFeature::Refine(
    const Document& doc, const Span& span, const FeatureParam& param,
    FeatureValue v) const {
  if (NegativeOrUnknown(v) || !param.num.has_value()) {
    return {RefinedRegion{span, /*exact=*/false}};
  }
  // Satisfying sub-spans *begin* within `dist` of a label end. A region
  // keyed on begin-position cannot be expressed exactly with contain();
  // we keep the whole stretch from each label to the next label as a
  // superset and let Verify prune exact values downstream.
  const auto& labels = doc.layer(MarkupKind::kLabel).ranges();
  std::vector<RefinedRegion> out;
  for (size_t i = 0; i < labels.size(); ++i) {
    uint32_t region_begin = std::max(labels[i].second, span.begin);
    uint32_t region_end =
        i + 1 < labels.size() ? labels[i + 1].first : doc.size();
    region_end = std::min(region_end, span.end);
    if (region_begin < region_end) {
      out.push_back(
          RefinedRegion{Span(span.doc, region_begin, region_end), false});
    }
  }
  return out;
}

std::string PrecLabelMaxDistFeature::QuestionText(
    const std::string& attr) const {
  return StringPrintf(
      "at most how many characters can separate %s from its label?",
      attr.c_str());
}

}  // namespace iflex
