#ifndef IFLEX_FEATURES_CONTEXT_FEATURES_H_
#define IFLEX_FEATURES_CONTEXT_FEATURES_H_

#include <string>
#include <vector>

#include "features/feature.h"

namespace iflex {

/// preceded_by / followed_by: the span lies on a single line and the text
/// immediately before (after) it — skipping spaces, within that line —
/// ends (starts) with the string parameter. The classic "Price:" label
/// constraint. (Line-locality is part of the semantics: field labels
/// qualify values on their own line, and it keeps Refine's regions both
/// tight and sound.)
class AdjacencyFeature : public Feature {
 public:
  /// `before` selects preceded_by; otherwise followed_by.
  explicit AdjacencyFeature(bool before)
      : Feature(before ? "preceded_by" : "followed_by"), before_(before) {}
  ParamKind param_kind() const override { return ParamKind::kString; }
  bool Verify(const Document& doc, const Span& span, const FeatureParam& param,
              FeatureValue v) const override;
  std::vector<RefinedRegion> Refine(const Document& doc, const Span& span,
                                    const FeatureParam& param,
                                    FeatureValue v) const override;
  std::vector<FeatureValue> AnswerSpace() const override { return {}; }
  std::string QuestionText(const std::string& attr) const override;

 private:
  bool before_;
};

/// starts_with / ends_with: the span is single-line and its text matches
/// the regex parameter at its start (end). Paper §6.3 uses
/// starts_with(y,"[A-Z][A-Z]+") and ends_with(y,"19\d\d|20\d\d").
class EdgeRegexFeature : public Feature {
 public:
  explicit EdgeRegexFeature(bool at_start)
      : Feature(at_start ? "starts_with" : "ends_with"), at_start_(at_start) {}
  ParamKind param_kind() const override { return ParamKind::kString; }
  bool Verify(const Document& doc, const Span& span, const FeatureParam& param,
              FeatureValue v) const override;
  std::vector<RefinedRegion> Refine(const Document& doc, const Span& span,
                                    const FeatureParam& param,
                                    FeatureValue v) const override;
  std::vector<FeatureValue> AnswerSpace() const override { return {}; }
  std::string QuestionText(const std::string& attr) const override;

 private:
  bool at_start_;
};

/// contains_str: the span's text contains the string parameter
/// (case-insensitive).
class ContainsFeature : public Feature {
 public:
  ContainsFeature() : Feature("contains_str") {}
  ParamKind param_kind() const override { return ParamKind::kString; }
  bool Verify(const Document& doc, const Span& span, const FeatureParam& param,
              FeatureValue v) const override;
  std::vector<RefinedRegion> Refine(const Document& doc, const Span& span,
                                    const FeatureParam& param,
                                    FeatureValue v) const override;
  std::vector<FeatureValue> AnswerSpace() const override { return {}; }
  std::string QuestionText(const std::string& attr) const override;
};

/// prec_label_contains: the nearest preceding <label> span contains the
/// string parameter (case-insensitive). A "higher-level" feature the paper
/// highlights for DBLife (§6.3).
class PrecLabelContainsFeature : public Feature {
 public:
  PrecLabelContainsFeature() : Feature("prec_label_contains") {}
  ParamKind param_kind() const override { return ParamKind::kString; }
  bool Verify(const Document& doc, const Span& span, const FeatureParam& param,
              FeatureValue v) const override;
  std::vector<RefinedRegion> Refine(const Document& doc, const Span& span,
                                    const FeatureParam& param,
                                    FeatureValue v) const override;
  std::vector<FeatureValue> AnswerSpace() const override { return {}; }
  std::string QuestionText(const std::string& attr) const override;
};

/// prec_label_max_dist: the span starts at most `param` characters after
/// the end of its preceding label (paper §6.3: prec_label_max_dist(x)=700).
class PrecLabelMaxDistFeature : public Feature {
 public:
  PrecLabelMaxDistFeature() : Feature("prec_label_max_dist") {}
  ParamKind param_kind() const override { return ParamKind::kNumber; }
  bool Verify(const Document& doc, const Span& span, const FeatureParam& param,
              FeatureValue v) const override;
  std::vector<RefinedRegion> Refine(const Document& doc, const Span& span,
                                    const FeatureParam& param,
                                    FeatureValue v) const override;
  std::vector<FeatureValue> AnswerSpace() const override { return {}; }
  std::string QuestionText(const std::string& attr) const override;
};

}  // namespace iflex

#endif  // IFLEX_FEATURES_CONTEXT_FEATURES_H_
