#include "runtime/task_pool.h"

#include <algorithm>
#include <chrono>

#include "resilience/failpoint.h"

namespace iflex {
namespace runtime {

namespace {

/// Queue index owned by the current thread in its pool, SIZE_MAX outside.
/// Keyed by pool so helping threads of one pool never touch another's
/// deques (a test may run several pools at once).
thread_local const TaskPool* tls_pool = nullptr;
thread_local size_t tls_queue = SIZE_MAX;

}  // namespace

TaskPool::TaskPool(size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // threads == 1: no workers, every primitive runs inline on the caller.
  size_t n_workers = threads - 1;
  queues_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

TaskPool::~TaskPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

TaskPool* TaskPool::Default() {
  static TaskPool* pool = new TaskPool(0);
  return pool;
}

void TaskPool::Submit(std::function<void()> fn) {
  if (queues_.empty()) {  // single-threaded pool: run inline
    fn();
    return;
  }
  size_t q = tls_pool == this && tls_queue != SIZE_MAX
                 ? tls_queue
                 : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                       queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_front(std::move(fn));
  }
  pending_.fetch_add(1, std::memory_order_release);
  std::lock_guard<std::mutex> lock(wake_mu_);
  wake_cv_.notify_one();
}

bool TaskPool::TryRunOne(size_t self) {
  std::function<void()> task;
  // Own deque first (front: newest, cache-hot)...
  if (self != SIZE_MAX) {
    Worker& w = *queues_[self];
    std::lock_guard<std::mutex> lock(w.mu);
    if (!w.tasks.empty()) {
      task = std::move(w.tasks.front());
      w.tasks.pop_front();
    }
  }
  // ...then steal from the back of the fullest sibling deque, so one
  // worker stuck with a long queue of skewed tasks sheds its oldest work.
  if (!task) {
    size_t victim = SIZE_MAX;
    size_t victim_size = 0;
    for (size_t i = 0; i < queues_.size(); ++i) {
      if (i == self) continue;
      std::lock_guard<std::mutex> lock(queues_[i]->mu);
      if (queues_[i]->tasks.size() > victim_size) {
        victim_size = queues_[i]->tasks.size();
        victim = i;
      }
    }
    if (victim != SIZE_MAX) {
      Worker& w = *queues_[victim];
      std::lock_guard<std::mutex> lock(w.mu);
      if (!w.tasks.empty()) {
        task = std::move(w.tasks.back());
        w.tasks.pop_back();
      }
    }
  }
  if (!task) return false;
  task();
  pending_.fetch_sub(1, std::memory_order_release);
  {
    // A batch waiter may be asleep waiting for this completion.
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_all();
  }
  return true;
}

void TaskPool::WorkerMain(size_t index) {
  tls_pool = this;
  tls_queue = index;
  while (!stop_.load(std::memory_order_acquire)) {
    if (TryRunOne(index)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
  }
  tls_pool = nullptr;
  tls_queue = SIZE_MAX;
}

void TaskPool::HelpUntil(const std::function<bool()>& done) {
  size_t self = tls_pool == this ? tls_queue : SIZE_MAX;
  while (!done()) {
    if (TryRunOne(self)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void TaskPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForImpl(n, fn, nullptr);
}

void TaskPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                           const std::function<bool()>& stop) {
  ParallelForImpl(n, fn, &stop);
}

void TaskPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                           const std::function<bool()>& stop, size_t grain) {
  ParallelForImpl(n, fn, &stop, grain);
}

void TaskPool::ParallelForImpl(size_t n,
                               const std::function<void(size_t)>& fn,
                               const std::function<bool()>* stop,
                               size_t grain) {
  struct Batch {
    std::atomic<size_t> next{0};       // work cursor
    std::atomic<size_t> finished{0};   // indices completed or skipped
    std::atomic<bool> failed{false};
    std::atomic<bool> stopped{false};
    std::mutex mu;                     // guards error
    std::exception_ptr error;
  };
  auto batch = std::make_shared<Batch>();
  const size_t chunk =
      grain > 0 ? grain : std::max<size_t>(1, n / (thread_count() * 4));

  auto participate = [batch, n, chunk, &fn, stop] {
    while (true) {
      size_t begin = batch->next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      size_t end = std::min(n, begin + chunk);
      if (stop != nullptr &&
          !batch->stopped.load(std::memory_order_acquire) && (*stop)()) {
        batch->stopped.store(true, std::memory_order_release);
      }
      if (!batch->failed.load(std::memory_order_acquire) &&
          !batch->stopped.load(std::memory_order_acquire)) {
        try {
          // Fail-point site "runtime.task": injected task-level faults
          // travel the same exception channel real ones would.
          resilience::FailPointMaybeThrow("runtime.task");
          for (size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(batch->mu);
          if (!batch->error) batch->error = std::current_exception();
          batch->failed.store(true, std::memory_order_release);
        }
      }
      // Every claimed index settles exactly once — run, thrown, or
      // skipped after a failure — so the joining thread's "all n
      // settled" condition always becomes true.
      batch->finished.fetch_add(end - begin, std::memory_order_acq_rel);
    }
  };

  // One helper task per worker; the caller participates and then helps
  // until every claimed chunk has settled. Helpers that find the cursor
  // exhausted return immediately.
  size_t helpers = std::min(workers_.size(), n > 0 ? n - 1 : 0);
  for (size_t i = 0; i < helpers; ++i) Submit(participate);
  participate();
  HelpUntil([batch, n] {
    return batch->finished.load(std::memory_order_acquire) >= n;
  });
  // Move the error out before rethrowing: a helper task may still hold
  // the last Batch reference and destroy it at any point after bumping
  // `finished`, and the exception object must not be released on that
  // thread while the caller is reading it.
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(batch->mu);
    error = std::move(batch->error);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace runtime
}  // namespace iflex
