#ifndef IFLEX_RUNTIME_TASK_POOL_H_
#define IFLEX_RUNTIME_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "resilience/failpoint.h"

namespace iflex {
namespace runtime {

/// Zero-dependency work-stealing thread pool.
///
/// Design (see docs/RUNTIME.md):
///   - one deque per worker; the owner pushes/pops at the front (LIFO, keeps
///     nested subtasks cache-hot), thieves steal from the back (FIFO, grabs
///     the oldest — largest — pending work first, which is what balances
///     skewed task sizes);
///   - joins are *helping*: a thread that waits on a batch (ParallelFor,
///     Future::Wait) executes queued tasks instead of blocking, so nested
///     ParallelFor from inside a worker can never deadlock — worst case the
///     calling worker runs the whole inner batch itself;
///   - `threads == 1` (or a null pool passed to the free functions) runs
///     everything inline on the caller with no locking at all.
///
/// Determinism contract: the pool schedules *when* tasks run, never what
/// they compute or how results are combined. ParallelFor/ParallelMap index
/// the work items, and callers must combine results by index — every
/// integration in this repo does — so output is identical at any thread
/// count.
class TaskPool {
 public:
  /// `threads == 0` picks std::thread::hardware_concurrency(). The pool
  /// spawns `threads - 1` workers: the thread that joins a batch is itself
  /// the remaining executor.
  explicit TaskPool(size_t threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total execution width (workers + the joining caller).
  size_t thread_count() const { return workers_.size() + 1; }

  /// Process-wide pool sized to the hardware; created on first use.
  static TaskPool* Default();

  /// Enqueues one fire-and-forget task. Prefer ParallelFor/ParallelMap /
  /// Async — they own completion tracking and exception propagation.
  void Submit(std::function<void()> fn);

  /// Runs queued tasks on the calling thread until `done()` returns true;
  /// sleeps briefly only when the queues are empty. This is the helping
  /// join every blocking primitive is built on.
  void HelpUntil(const std::function<bool()>& done);

  /// Calls fn(i) for every i in [0, n), distributed over the pool; the
  /// calling thread participates. Work is handed out in contiguous chunks
  /// through a shared cursor, so skewed per-index costs rebalance
  /// automatically. The first exception thrown by any fn(i) is rethrown on
  /// the calling thread after the batch drains (remaining indices are
  /// skipped, already-running ones finish).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Same, with a cooperative stop predicate polled before every chunk on
  /// every participating thread. Once `stop()` returns true, remaining
  /// chunks are skipped (their indices settle without running fn), so a
  /// deadline or cancellation drains the batch promptly at any thread
  /// count. Callers must treat the batch as aborted when stop() fired —
  /// skipped indices produced no results.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const std::function<bool()>& stop);

  /// Same, with an explicit pull granularity: each cursor claim takes
  /// `grain` consecutive indices (0 = the automatic n/(threads*4) chunk).
  /// Morsel-driven callers pass grain = 1 so every index — already a
  /// batch of work in the caller's units — is handed out individually and
  /// stragglers never serialize a contiguous run of siblings.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const std::function<bool()>& stop, size_t grain);

 private:
  void ParallelForImpl(size_t n, const std::function<void(size_t)>& fn,
                       const std::function<bool()>* stop, size_t grain = 0);
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerMain(size_t index);
  /// Pops one task (own deque front, else steal from the back of the
  /// busiest sibling); returns false when every deque is empty.
  bool TryRunOne(size_t self);

  std::vector<std::unique_ptr<Worker>> queues_;  // one per worker thread
  std::vector<std::thread> workers_;
  std::atomic<size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<size_t> next_queue_{0};  // round-robin for external submits
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
};

namespace internal {

template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  std::optional<T> value;
  std::exception_ptr error;
};

}  // namespace internal

/// Join handle for one Async task. Get() helps the pool while waiting (so
/// it is safe to call from inside another pool task) and rethrows the
/// task's exception, if any.
template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  T Get() {
    auto* s = state_.get();
    if (pool_ != nullptr) {
      pool_->HelpUntil([s] {
        std::lock_guard<std::mutex> lock(s->mu);
        return s->ready;
      });
    } else {
      // Null-pool Async ran inline; the state is already ready.
      std::unique_lock<std::mutex> lock(s->mu);
      s->cv.wait(lock, [s] { return s->ready; });
    }
    if (s->error) std::rethrow_exception(s->error);
    return std::move(*s->value);
  }

 private:
  template <typename U, typename Fn>
  friend Future<U> Async(TaskPool* pool, Fn&& fn);

  TaskPool* pool_ = nullptr;
  std::shared_ptr<internal::FutureState<T>> state_;
};

/// Spawns fn() on the pool and returns its join handle. A null pool runs
/// fn inline (the handle is already ready).
template <typename T, typename Fn>
Future<T> Async(TaskPool* pool, Fn&& fn) {
  Future<T> out;
  out.state_ = std::make_shared<internal::FutureState<T>>();
  auto state = out.state_;
  auto run = [state, fn = std::forward<Fn>(fn)]() mutable {
    std::exception_ptr error;
    std::optional<T> value;
    try {
      // Fail-point site "runtime.task" (also armed in ParallelFor chunks).
      resilience::FailPointMaybeThrow("runtime.task");
      value.emplace(fn());
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(state->mu);
    state->value = std::move(value);
    state->error = error;
    state->ready = true;
    state->cv.notify_all();
  };
  if (pool == nullptr || pool->thread_count() == 1) {
    out.pool_ = pool;
    run();
    if (pool == nullptr) {
      // No pool to help: surface errors eagerly so Get() never blocks.
      if (state->error) std::rethrow_exception(state->error);
    }
    return out;
  }
  out.pool_ = pool;
  pool->Submit(std::move(run));
  return out;
}

/// ParallelFor over a null pool degrades to a plain serial loop.
inline void ParallelFor(TaskPool* pool, size_t n,
                        const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->thread_count() == 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->ParallelFor(n, fn);
}

/// Stop-aware variant; the serial degradation polls `stop` before every
/// index, matching the pooled per-chunk polling.
inline void ParallelFor(TaskPool* pool, size_t n,
                        const std::function<void(size_t)>& fn,
                        const std::function<bool()>& stop) {
  if (pool == nullptr || pool->thread_count() == 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      if (stop()) return;
      fn(i);
    }
    return;
  }
  pool->ParallelFor(n, fn, stop);
}

/// Stop-aware variant with an explicit pull granularity (see the member
/// overload). A null or single-threaded pool degrades to the same serial
/// loop — grain only affects how a real pool hands out indices, never
/// what they compute.
inline void ParallelFor(TaskPool* pool, size_t n,
                        const std::function<void(size_t)>& fn,
                        const std::function<bool()>& stop, size_t grain) {
  if (pool == nullptr || pool->thread_count() == 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      if (stop()) return;
      fn(i);
    }
    return;
  }
  pool->ParallelFor(n, fn, stop, grain);
}

/// out[i] = fn(i) for i in [0, n), in index order regardless of execution
/// order — the deterministic-merge primitive the executor and the
/// simulation strategy build on. T needs no default constructor.
template <typename T, typename Fn>
std::vector<T> ParallelMap(TaskPool* pool, size_t n, const Fn& fn) {
  std::vector<std::optional<T>> slots(n);
  ParallelFor(pool, n, [&](size_t i) { slots[i].emplace(fn(i)); });
  std::vector<T> out;
  out.reserve(n);
  for (auto& s : slots) out.push_back(std::move(*s));
  return out;
}

}  // namespace runtime
}  // namespace iflex

#endif  // IFLEX_RUNTIME_TASK_POOL_H_
