#include "oracle/developer.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <set>

#include "common/strutil.h"

namespace iflex {

namespace {

// The whitespace-delimited chunk immediately before/after a span on its
// line — what a developer reads off as the field label.
std::string NeighbourChunk(const Corpus& corpus, const Span& span,
                           bool before) {
  const Document& doc = corpus.Get(span.doc);
  const std::string& text = doc.text();
  if (before) {
    size_t p = span.begin;
    while (p > 0 && (text[p - 1] == ' ' || text[p - 1] == '\t')) --p;
    size_t e = p;
    while (p > 0 && !std::isspace(static_cast<unsigned char>(text[p - 1]))) {
      --p;
    }
    return text.substr(p, e - p);
  }
  size_t p = span.end;
  while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
  size_t b = p;
  while (p < text.size() && !std::isspace(static_cast<unsigned char>(text[p]))) {
    ++p;
  }
  return text.substr(b, p - b);
}

std::set<std::string> LabelWords(const Document& doc, const Span& label) {
  std::set<std::string> words;
  std::string word;
  for (char c : std::string(doc.TextOf(label)) + " ") {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      word.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      if (word.size() >= 3) words.insert(word);
      word.clear();
    }
  }
  return words;
}

}  // namespace

SimulatedDeveloper::SimulatedDeveloper(const Corpus* corpus,
                                       const GoldStandard* gold,
                                       DeveloperTimeModel time_model,
                                       double alpha, uint64_t seed)
    : corpus_(corpus),
      gold_(gold),
      time_model_(time_model),
      alpha_(alpha),
      rng_(seed) {}

void SimulatedDeveloper::Script(const Question& question, Answer answer) {
  scripted_[question.Key()] = std::move(answer);
}

Answer SimulatedDeveloper::Ask(const Question& question,
                               const Feature& feature) {
  last_seconds_ = time_model_.seconds_per_question;
  ++questions_answered_;
  auto it = scripted_.find(question.Key());
  Answer a;
  if (it != scripted_.end()) {
    a = it->second;
  } else if (alpha_ > 0 && rng_.Bernoulli(alpha_)) {
    a = Answer::DontKnow();
  } else {
    a = Derive(question, feature);
  }
  if (!a.known) ++dont_knows_;
  return a;
}

std::optional<Value> SimulatedDeveloper::ProvideExample(
    const AttributeRef& attr) {
  last_seconds_ = time_model_.seconds_per_example;
  std::vector<Value> gold =
      gold_->AttributeValues(attr.ie_predicate, attr.output_idx);
  if (gold.empty()) {
    return std::nullopt;
  }
  return gold.front();
}

Answer SimulatedDeveloper::Derive(const Question& question,
                                  const Feature& feature) const {
  std::vector<Value> gold = gold_->AttributeValues(
      question.attr.ie_predicate, question.attr.output_idx);
  if (gold.empty()) return Answer::DontKnow();

  // Enumerable features: the strongest value every gold span satisfies.
  std::vector<FeatureValue> space = feature.AnswerSpace();
  if (!space.empty()) {
    // Prefer distinct-yes over yes over no: a stronger answer narrows more.
    std::vector<FeatureValue> order;
    for (FeatureValue v :
         {FeatureValue::kDistinctYes, FeatureValue::kYes, FeatureValue::kNo}) {
      if (std::find(space.begin(), space.end(), v) != space.end()) {
        order.push_back(v);
      }
    }
    for (FeatureValue v : order) {
      bool all = true;
      for (const Value& g : gold) {
        bool holds;
        if (g.has_span()) {
          holds = feature.Verify(corpus_->Get(g.span().doc), g.span(),
                                 FeatureParam::None(), v);
        } else {
          auto verdict = feature.VerifyText(g.AsText(), FeatureParam::None(), v);
          if (!verdict.has_value()) {
            all = false;
            break;
          }
          holds = *verdict;
        }
        if (!holds) {
          all = false;
          break;
        }
      }
      if (all) return Answer::Of(v);
    }
    return Answer::DontKnow();
  }

  // Parameterized features: read the parameter off the gold spans.
  const std::string& f = question.feature;
  if (f == "min_value" || f == "max_value") {
    bool is_min = f == "min_value";
    double best = is_min ? 1e300 : -1e300;
    for (const Value& g : gold) {
      auto n = g.AsNumber();
      if (!n.has_value()) return Answer::DontKnow();
      best = is_min ? std::min(best, *n) : std::max(best, *n);
    }
    return Answer::WithParam(FeatureParam::Num(best));
  }
  if (f == "max_length") {
    size_t longest = 0;
    for (const Value& g : gold) longest = std::max(longest, g.AsText().size());
    return Answer::WithParam(
        FeatureParam::Num(static_cast<double>(longest)));
  }
  if (f == "preceded_by" || f == "followed_by") {
    std::string common;
    bool first = true;
    for (const Value& g : gold) {
      if (!g.has_span()) return Answer::DontKnow();
      std::string chunk =
          NeighbourChunk(*corpus_, g.span(), /*before=*/f == "preceded_by");
      if (first) {
        common = chunk;
        first = false;
      } else if (chunk != common) {
        return Answer::DontKnow();
      }
    }
    if (common.empty()) return Answer::DontKnow();
    return Answer::WithParam(FeatureParam::Str(common));
  }
  if (f == "prec_label_contains") {
    std::set<std::string> common;
    bool first = true;
    for (const Value& g : gold) {
      if (!g.has_span()) return Answer::DontKnow();
      const Document& doc = corpus_->Get(g.span().doc);
      auto label = doc.PrecedingLabel(g.span().begin);
      if (!label.has_value()) return Answer::DontKnow();
      std::set<std::string> words = LabelWords(doc, *label);
      if (first) {
        common = std::move(words);
        first = false;
      } else {
        std::set<std::string> inter;
        std::set_intersection(common.begin(), common.end(), words.begin(),
                              words.end(),
                              std::inserter(inter, inter.begin()));
        common = std::move(inter);
      }
      if (common.empty()) return Answer::DontKnow();
    }
    // Longest shared word is the most specific label cue.
    std::string best;
    for (const std::string& w : common) {
      if (w.size() > best.size()) best = w;
    }
    if (best.empty()) return Answer::DontKnow();
    return Answer::WithParam(FeatureParam::Str(best));
  }
  if (f == "prec_label_max_dist") {
    double max_dist = 0;
    for (const Value& g : gold) {
      if (!g.has_span()) return Answer::DontKnow();
      const Document& doc = corpus_->Get(g.span().doc);
      auto label = doc.PrecedingLabel(g.span().begin);
      if (!label.has_value()) return Answer::DontKnow();
      max_dist =
          std::max(max_dist, static_cast<double>(g.span().begin - label->end));
    }
    // Developers answer round figures ("700 characters"), not exact ones.
    return Answer::WithParam(
        FeatureParam::Num(std::ceil((max_dist + 1) / 50.0) * 50.0));
  }
  // starts_with / ends_with / contains_str need a pattern no one can read
  // off mechanically; tasks script those answers when the developer is
  // supposed to know them.
  return Answer::DontKnow();
}

}  // namespace iflex
