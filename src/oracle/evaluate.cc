#include "oracle/evaluate.h"

#include "common/strutil.h"

namespace iflex {

std::string EvalReport::ToString() const {
  return StringPrintf(
      "%.0f tuples vs %zu gold (superset %.0f%%, covered %zu/%zu%s)",
      result_tuples, gold_tuples, superset_pct, gold_covered, gold_tuples,
      exact ? ", exact" : "");
}

EvalReport EvaluateResult(const Corpus& corpus, const CompactTable& result,
                          const std::vector<std::vector<Value>>& gold,
                          const CellOpLimits& limits) {
  EvalReport report;
  report.result_tuples = result.ExpandedTupleCount(corpus);
  report.certain_tuples = result.CertainTupleCount(corpus);
  report.gold_tuples = gold.size();
  report.superset_pct =
      gold.empty() ? (report.result_tuples == 0 ? 100.0 : 0.0)
                   : 100.0 * report.result_tuples /
                         static_cast<double>(gold.size());
  for (const auto& g : gold) {
    bool covered = false;
    for (const CompactTuple& t : result.tuples()) {
      if (t.cells.size() < g.size()) continue;
      bool all = true;
      for (size_t i = 0; i < g.size() && all; ++i) {
        Cell gc = Cell::Exact(g[i]);
        all = CellsEqual(corpus, t.cells[i], gc, limits) != SatResult::kNone;
      }
      if (all) {
        covered = true;
        break;
      }
    }
    if (covered) ++report.gold_covered;
  }
  report.covers_all_gold = report.gold_covered == report.gold_tuples;
  report.exact = report.covers_all_gold &&
                 report.result_tuples == static_cast<double>(report.gold_tuples);
  return report;
}

}  // namespace iflex
