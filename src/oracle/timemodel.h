#ifndef IFLEX_ORACLE_TIMEMODEL_H_
#define IFLEX_ORACLE_TIMEMODEL_H_

#include <cstddef>
#include <optional>

namespace iflex {

/// Models the human developer minutes the paper measures in Tables 3-6.
/// The paper timed 1-3 volunteers; reproducing that offline requires a
/// cost model. Constants are calibrated so the Xlog column of Table 3
/// lands where the paper reports it (e.g. T1 ~28 min with one extraction
/// procedure over two attributes; T3 ~58 min with three procedures), and
/// the *shape* — Manual blowing up with data size, Xlog flat, iFlex lowest
/// — is what the benches verify.
struct DeveloperTimeModel {
  // --- iFlex developer actions -------------------------------------------
  /// Answering one next-effort question after visual inspection (§5.1.1:
  /// "developers were able to answer these questions quickly").
  double seconds_per_question = 18.0;
  /// Writing one skeleton/description rule of the initial program.
  double seconds_per_skeleton_rule = 60.0;
  /// Marking up one sample value in a page (example feedback, §5.1.1).
  double seconds_per_example = 25.0;

  // --- Xlog baseline (writing precise procedures, Perl in the paper) ----
  double xlog_minutes_per_procedure = 6.0;
  double xlog_minutes_per_attribute = 8.0;
  double xlog_minutes_per_rule = 4.0;

  // --- Manual baseline ---------------------------------------------------
  /// Seconds to eyeball one record of a single-table task.
  double manual_seconds_per_record = 0.7;
  /// Seconds per record *pair* examined in a cross-table (join) task.
  double manual_seconds_per_pair = 0.45;
  /// Beyond this the method "does not scale" (the paper's "—" entries).
  double manual_cutoff_minutes = 150.0;

  /// Developer minutes to write the initial iFlex program.
  double IFlexSkeletonMinutes(size_t n_rules) const {
    return seconds_per_skeleton_rule * static_cast<double>(n_rules) / 60.0;
  }

  /// Developer minutes for a precise Xlog solution.
  double XlogMinutes(size_t n_procedures, size_t n_attributes,
                     size_t n_rules) const {
    return xlog_minutes_per_procedure * static_cast<double>(n_procedures) +
           xlog_minutes_per_attribute * static_cast<double>(n_attributes) +
           xlog_minutes_per_rule * static_cast<double>(n_rules);
  }

  /// Manual minutes, or nullopt for "—" (does not scale). `n_pairs` is 0
  /// for single-table tasks.
  std::optional<double> ManualMinutes(size_t n_records,
                                      size_t n_pairs) const {
    double mins = manual_seconds_per_record * static_cast<double>(n_records) / 60.0 +
                  manual_seconds_per_pair * static_cast<double>(n_pairs) / 60.0;
    if (mins > manual_cutoff_minutes) return std::nullopt;
    return mins;
  }
};

}  // namespace iflex

#endif  // IFLEX_ORACLE_TIMEMODEL_H_
