#ifndef IFLEX_ORACLE_DEVELOPER_H_
#define IFLEX_ORACLE_DEVELOPER_H_

#include <map>
#include <memory>
#include <string>

#include "assistant/question.h"
#include "common/rng.h"
#include "oracle/gold.h"
#include "oracle/timemodel.h"
#include "text/corpus.h"

namespace iflex {

/// Stands in for the human developer U: answers the next-effort
/// assistant's questions by inspecting the gold spans of the asked
/// attribute — exactly the way the paper's volunteers derived answers by
/// visually inspecting pages. Enumerable features are answered with the
/// strongest FeatureValue consistent with *all* gold spans ("I do not
/// know" when they disagree); parameterized features are answered with
/// bounds/labels read off the gold spans (the observed min price, the
/// common "Price:" chunk, ...). With probability `alpha` the developer
/// declines to answer (paper §5.1).
class SimulatedDeveloper : public DeveloperInterface {
 public:
  SimulatedDeveloper(const Corpus* corpus, const GoldStandard* gold,
                     DeveloperTimeModel time_model = {}, double alpha = 0.0,
                     uint64_t seed = 7);

  /// Overrides the derived answer for one (attribute, feature) question —
  /// used by tasks whose developers "know" a regex (starts_with /
  /// ends_with) that cannot be derived mechanically from spans.
  void Script(const Question& question, Answer answer);

  Answer Ask(const Question& question, const Feature& feature) override;

  /// Marks up the first gold value of the attribute (paper §5.1.1).
  std::optional<Value> ProvideExample(const AttributeRef& attr) override;

  double LastAnswerSeconds() const override { return last_seconds_; }

  size_t questions_answered() const { return questions_answered_; }
  size_t dont_knows() const { return dont_knows_; }

 private:
  Answer Derive(const Question& question, const Feature& feature) const;

  const Corpus* corpus_;
  const GoldStandard* gold_;
  DeveloperTimeModel time_model_;
  double alpha_;
  Rng rng_;
  std::map<std::string, Answer> scripted_;
  double last_seconds_ = 0;
  size_t questions_answered_ = 0;
  size_t dont_knows_ = 0;
};

}  // namespace iflex

#endif  // IFLEX_ORACLE_DEVELOPER_H_
