#ifndef IFLEX_ORACLE_EVALUATE_H_
#define IFLEX_ORACLE_EVALUATE_H_

#include <string>
#include <vector>

#include "ctable/compact_table.h"
#include "exec/cell_ops.h"
#include "oracle/gold.h"

namespace iflex {

/// Comparison of an extraction result against the gold query result — the
/// paper's accuracy lens (§6.2 reports results as "superset size", e.g.
/// converging to 161% of the correct result set).
struct EvalReport {
  double result_tuples = 0;  // expanded count (expansion cells multiply)
  /// Non-maybe tuples: the certain lower bound of the result.
  double certain_tuples = 0;
  size_t gold_tuples = 0;
  /// 100 * result_tuples / gold_tuples (the paper's "Superset Size").
  double superset_pct = 0;
  /// Gold tuples that some result tuple can represent.
  size_t gold_covered = 0;
  /// True when every gold tuple is covered — what superset execution
  /// semantics guarantees.
  bool covers_all_gold = false;
  /// True when the result is exactly the gold set: 100% superset with full
  /// coverage.
  bool exact = false;

  std::string ToString() const;
};

/// Evaluates `result` against `gold` tuples. A gold tuple is covered when
/// some result tuple's cells can each take the corresponding gold value.
/// Only the first `gold[i].size()` columns of the result are compared
/// (task queries put the reported attributes first).
EvalReport EvaluateResult(const Corpus& corpus, const CompactTable& result,
                          const std::vector<std::vector<Value>>& gold,
                          const CellOpLimits& limits = {});

}  // namespace iflex

#endif  // IFLEX_ORACLE_EVALUATE_H_
