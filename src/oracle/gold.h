#ifndef IFLEX_ORACLE_GOLD_H_
#define IFLEX_ORACLE_GOLD_H_

#include <map>
#include <string>
#include <vector>

#include "ctable/value.h"

namespace iflex {

/// Ground truth for one extraction task: what each IE predicate should
/// extract from each record, plus the correct final query result. The
/// synthetic page generators produce this alongside the pages; it powers
/// the SimulatedDeveloper (answers are derived from the gold spans, the
/// way a human derives them by inspecting the data) and the evaluation
/// metrics (the paper's "superset size").
struct GoldStandard {
  struct Extraction {
    DocId doc = kInvalidDocId;
    std::vector<Value> outputs;  // one per IE-predicate output argument
  };

  /// Per IE predicate: the gold extractions, one entry per record that
  /// yields a tuple (records yielding nothing are simply absent).
  std::map<std::string, std::vector<Extraction>> extractions;

  /// The correct result of the task's query, as concrete tuples in head
  /// order.
  std::vector<std::vector<Value>> query_result;

  /// All gold values of one attribute (output `out_idx` of `predicate`).
  std::vector<Value> AttributeValues(const std::string& predicate,
                                     size_t out_idx) const {
    std::vector<Value> out;
    auto it = extractions.find(predicate);
    if (it == extractions.end()) return out;
    for (const Extraction& e : it->second) {
      if (out_idx < e.outputs.size() && !e.outputs[out_idx].is_null()) {
        out.push_back(e.outputs[out_idx]);
      }
    }
    return out;
  }
};

}  // namespace iflex

#endif  // IFLEX_ORACLE_GOLD_H_
