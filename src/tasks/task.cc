#include "tasks/task.h"

namespace iflex {

CompactTable DocTable(const std::vector<DocId>& docs) {
  CompactTable table({"x"});
  for (DocId d : docs) {
    CompactTuple t;
    t.cells.push_back(Cell::Exact(Value::Doc(d)));
    table.Add(std::move(t));
  }
  return table;
}

std::vector<std::string> AllTaskIds() {
  return {"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9"};
}

std::vector<std::string> DblifeTaskIds() {
  return {"Panel", "Project", "Chair"};
}

std::vector<size_t> ScenarioSizes(const std::string& id) {
  // Table 3's three scenarios per task; the last entry is the paper's
  // full size (0 = "full" sentinel resolved by the task builders).
  if (id == "T1") return {10, 100, 250};
  if (id == "T2") return {10, 100, 242};
  if (id == "T3") return {10, 100, 517};
  if (id == "T4") return {10, 100, 312};
  if (id == "T5") return {100, 500, 2136};
  if (id == "T6") return {100, 500, 1798};
  if (id == "T7") return {100, 500, 5000};
  if (id == "T8") return {100, 500, 2490};
  if (id == "T9") return {100, 500, 5000};
  return {0};
}

Result<std::unique_ptr<TaskInstance>> MakeTask(const std::string& id,
                                               size_t scale, uint64_t seed) {
  if (id == "T1" || id == "T2" || id == "T3") {
    return MakeMovieTask(id, scale, seed);
  }
  if (id == "T4" || id == "T5" || id == "T6") {
    return MakeDblpTask(id, scale, seed);
  }
  if (id == "T7" || id == "T8" || id == "T9") {
    return MakeBookTask(id, scale, seed);
  }
  if (id == "Panel" || id == "Project" || id == "Chair") {
    return MakeDblifeTask(id, scale, seed);
  }
  return Status::NotFound("unknown task id: " + id);
}

}  // namespace iflex
