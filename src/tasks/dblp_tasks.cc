#include <algorithm>
#include <set>

#include "datagen/dblp.h"
#include "tasks/task.h"

namespace iflex {

namespace {

std::vector<DocId> Docs(const std::vector<PubRecord>& records) {
  std::vector<DocId> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.doc);
  return out;
}

}  // namespace

Result<std::unique_ptr<TaskInstance>> MakeDblpTask(const std::string& id,
                                                   size_t scale,
                                                   uint64_t seed) {
  auto task = std::make_unique<TaskInstance>();
  task->id = id;
  task->corpus = std::make_unique<Corpus>();

  DblpSpec spec;
  spec.seed = seed;
  if (id == "T4") {
    spec.n_garcia = scale ? scale : 312;
    spec.n_vldb = spec.n_sigmod = spec.n_icde = 0;
    spec.n_shared_teams = 0;
  } else if (id == "T5") {
    spec.n_garcia = spec.n_sigmod = spec.n_icde = 0;
    spec.n_vldb = scale ? scale : 2136;
    spec.n_shared_teams = 0;
  } else {  // T6
    spec.n_garcia = spec.n_vldb = 0;
    spec.n_sigmod = scale ? scale : 1787;
    spec.n_icde = scale ? scale : 1798;
    spec.n_shared_teams =
        std::max<size_t>(2, std::min(spec.n_sigmod, spec.n_icde) / 6);
  }
  DblpData data = GenerateDblp(task->corpus.get(), spec);
  task->catalog = std::make_unique<Catalog>(task->corpus.get());
  task->catalog->RegisterBuiltinFunctions(/*similarity_threshold=*/0.75);

  const Corpus& corpus = *task->corpus;

  if (id == "T4") {
    task->description = "Garcia-Molina journal publications";
    IFLEX_RETURN_NOT_OK(
        task->catalog->AddTable("garciaPages", DocTable(Docs(data.garcia))));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractGarciaPub", 1, 2));
    IFLEX_ASSIGN_OR_RETURN(task->initial_program, ParseProgram(R"(
      pubs(x, <title>, <jy>) :- garciaPages(x),
                                extractGarciaPub(x, title, jy).
      t4(title) :- pubs(x, title, jy), jy != null.
      extractGarciaPub(x, title, jy) :- from(x, title), from(x, jy).
    )", *task->catalog));
    task->initial_program.set_query("t4");
    for (const PubRecord& p : data.garcia) {
      if (!p.is_journal) continue;  // records without a journal year yield
                                    // no gold tuple
      task->gold.extractions["extractGarciaPub"].push_back(
          GoldStandard::Extraction{
              p.doc,
              {Value::OfSpan(corpus, p.title_span),
               Value::OfSpan(corpus, p.journal_year_span)}});
      task->gold.query_result.push_back({Value::String(p.title)});
    }
    task->tuples_per_table = data.garcia.size();
    task->n_procedures = 1;
    task->n_attributes = 2;
    task->n_rules = 3;
    task->manual_records = data.garcia.size();
  } else if (id == "T5") {
    task->description = "VLDB short publications of 5 or fewer pages";
    IFLEX_RETURN_NOT_OK(
        task->catalog->AddTable("vldbPages", DocTable(Docs(data.vldb))));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractVLDB", 1, 3));
    IFLEX_ASSIGN_OR_RETURN(task->initial_program, ParseProgram(R"(
      vpubs(x, <title>, <fp>, <lp>) :- vldbPages(x),
                                       extractVLDB(x, title, fp, lp).
      t5(title) :- vpubs(x, title, fp, lp), lp < fp + 5.
      extractVLDB(x, title, fp, lp) :- from(x, title), from(x, fp),
                                       from(x, lp).
    )", *task->catalog));
    task->initial_program.set_query("t5");
    for (const PubRecord& p : data.vldb) {
      task->gold.extractions["extractVLDB"].push_back(GoldStandard::Extraction{
          p.doc,
          {Value::OfSpan(corpus, p.title_span),
           Value::OfSpan(corpus, p.first_page_span),
           Value::OfSpan(corpus, p.last_page_span)}});
      if (p.last_page < p.first_page + 5) {
        task->gold.query_result.push_back({Value::String(p.title)});
      }
    }
    task->tuples_per_table = data.vldb.size();
    task->n_procedures = 1;
    task->n_attributes = 3;
    task->n_rules = 3;
    task->manual_records = data.vldb.size();
  } else {  // T6
    task->description = "SIGMOD/ICDE publications sharing authors";
    IFLEX_RETURN_NOT_OK(
        task->catalog->AddTable("sigmodPages", DocTable(Docs(data.sigmod))));
    IFLEX_RETURN_NOT_OK(
        task->catalog->AddTable("icdePages", DocTable(Docs(data.icde))));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractSIGMOD", 1, 2));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractICDE", 1, 2));
    IFLEX_ASSIGN_OR_RETURN(task->initial_program, ParseProgram(R"(
      sig(x, <title>, <a1>) :- sigmodPages(x),
                               extractSIGMOD(x, title, a1).
      ic(y, <a2>) :- icdePages(y), extractICDE(y, t2, a2).
      t6(title) :- sig(x, title, a1), ic(y, a2), similar(a1, a2).
      extractSIGMOD(x, title, a1) :- from(x, title), from(x, a1).
      extractICDE(y, t2, a2) :- from(y, t2), from(y, a2).
    )", *task->catalog));
    task->initial_program.set_query("t6");
    std::set<std::string> icde_teams;
    for (const PubRecord& p : data.icde) icde_teams.insert(p.authors);
    for (const PubRecord& p : data.sigmod) {
      task->gold.extractions["extractSIGMOD"].push_back(
          GoldStandard::Extraction{
              p.doc,
              {Value::OfSpan(corpus, p.title_span),
               Value::OfSpan(corpus, p.authors_span)}});
      if (icde_teams.count(p.authors)) {
        task->gold.query_result.push_back({Value::String(p.title)});
      }
    }
    for (const PubRecord& p : data.icde) {
      task->gold.extractions["extractICDE"].push_back(GoldStandard::Extraction{
          p.doc,
          {Value::OfSpan(corpus, p.title_span),
           Value::OfSpan(corpus, p.authors_span)}});
    }
    task->tuples_per_table = std::max(data.sigmod.size(), data.icde.size());
    task->n_procedures = 2;
    task->n_attributes = 4;
    task->n_rules = 5;
    task->manual_records = data.sigmod.size();
    task->manual_pairs = data.sigmod.size() * data.icde.size() / 8;
    task->cleanup_minutes = 8;
  }

  task->developer = std::make_unique<SimulatedDeveloper>(
      task->corpus.get(), &task->gold);
  return task;
}

}  // namespace iflex
