#include <algorithm>
#include <set>

#include "datagen/movies.h"
#include "tasks/task.h"

namespace iflex {

namespace {

std::vector<DocId> Docs(const std::vector<MovieRecord>& records) {
  std::vector<DocId> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.doc);
  return out;
}

}  // namespace

Result<std::unique_ptr<TaskInstance>> MakeMovieTask(const std::string& id,
                                                    size_t scale,
                                                    uint64_t seed) {
  auto task = std::make_unique<TaskInstance>();
  task->id = id;
  task->corpus = std::make_unique<Corpus>();

  MoviesSpec spec;
  spec.seed = seed;
  if (id == "T1") {
    spec.n_imdb = scale ? scale : 250;
    spec.n_ebert = 0;
    spec.n_prasanna = 0;
    spec.n_shared = 0;
  } else if (id == "T2") {
    spec.n_imdb = 0;
    spec.n_ebert = scale ? scale : 242;
    spec.n_prasanna = 0;
    spec.n_shared = 0;
  } else {  // T3
    size_t n = scale ? scale : 517;
    spec.n_imdb = std::min<size_t>(n, 250);
    spec.n_ebert = std::min<size_t>(n, 242);
    spec.n_prasanna = n;
    spec.n_shared = std::max<size_t>(2, std::min<size_t>(40, n / 6));
  }
  MoviesData data = GenerateMovies(task->corpus.get(), spec);
  task->catalog = std::make_unique<Catalog>(task->corpus.get());
  task->catalog->RegisterBuiltinFunctions(/*similarity_threshold=*/0.75);

  const Corpus& corpus = *task->corpus;

  if (id == "T1") {
    task->description = "IMDB top movies with fewer than 25,000 votes";
    IFLEX_RETURN_NOT_OK(
        task->catalog->AddTable("imdbPages", DocTable(Docs(data.imdb))));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractIMDB", 1, 2));
    IFLEX_ASSIGN_OR_RETURN(task->initial_program, ParseProgram(R"(
      imdbMovies(x, <title>, <votes>) :- imdbPages(x),
                                         extractIMDB(x, title, votes).
      t1(title) :- imdbMovies(x, title, votes), votes < 25000.
      extractIMDB(x, title, votes) :- from(x, title), from(x, votes).
    )", *task->catalog));
    task->initial_program.set_query("t1");
    for (const MovieRecord& m : data.imdb) {
      task->gold.extractions["extractIMDB"].push_back(GoldStandard::Extraction{
          m.doc,
          {Value::OfSpan(corpus, m.title_span),
           Value::OfSpan(corpus, m.votes_span)}});
      if (m.votes < 25000) {
        task->gold.query_result.push_back({Value::String(m.title)});
      }
    }
    task->tuples_per_table = data.imdb.size();
    task->n_procedures = 1;
    task->n_attributes = 2;
    task->n_rules = 3;
    task->manual_records = data.imdb.size();
  } else if (id == "T2") {
    task->description = "Ebert top movies made between 1950 and 1970";
    IFLEX_RETURN_NOT_OK(
        task->catalog->AddTable("ebertPages", DocTable(Docs(data.ebert))));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractEbert", 1, 2));
    IFLEX_ASSIGN_OR_RETURN(task->initial_program, ParseProgram(R"(
      ebertMovies(y, <title>, <yr>) :- ebertPages(y),
                                       extractEbert(y, title, yr).
      t2(title) :- ebertMovies(y, title, yr), yr >= 1950, yr < 1970.
      extractEbert(y, title, yr) :- from(y, title), from(y, yr).
    )", *task->catalog));
    task->initial_program.set_query("t2");
    for (const MovieRecord& m : data.ebert) {
      task->gold.extractions["extractEbert"].push_back(GoldStandard::Extraction{
          m.doc,
          {Value::OfSpan(corpus, m.title_span),
           Value::OfSpan(corpus, m.year_span)}});
      if (m.year >= 1950 && m.year < 1970) {
        task->gold.query_result.push_back({Value::String(m.title)});
      }
    }
    task->tuples_per_table = data.ebert.size();
    task->n_procedures = 1;
    task->n_attributes = 2;
    task->n_rules = 3;
    task->manual_records = data.ebert.size();
  } else {  // T3
    task->description =
        "Movie titles that occur in IMDB, Ebert, and Prasanna's top movies";
    IFLEX_RETURN_NOT_OK(
        task->catalog->AddTable("imdbPages", DocTable(Docs(data.imdb))));
    IFLEX_RETURN_NOT_OK(
        task->catalog->AddTable("ebertPages", DocTable(Docs(data.ebert))));
    IFLEX_RETURN_NOT_OK(task->catalog->AddTable(
        "prasannaPages", DocTable(Docs(data.prasanna))));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractIMDBTitle", 1, 1));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractEbertTitle", 1, 1));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractPrasannaTitle", 1, 1));
    IFLEX_ASSIGN_OR_RETURN(task->initial_program, ParseProgram(R"(
      it(x, <t1>) :- imdbPages(x), extractIMDBTitle(x, t1).
      et(y, <t2>) :- ebertPages(y), extractEbertTitle(y, t2).
      pt(z, <t3>) :- prasannaPages(z), extractPrasannaTitle(z, t3).
      t3(t1) :- it(x, t1), et(y, t2), similar(t1, t2),
                pt(z, t3), similar(t2, t3).
      extractIMDBTitle(x, t1) :- from(x, t1).
      extractEbertTitle(y, t2) :- from(y, t2).
      extractPrasannaTitle(z, t3) :- from(z, t3).
    )", *task->catalog));
    task->initial_program.set_query("t3");
    std::set<std::string> ebert_titles;
    std::set<std::string> prasanna_titles;
    for (const MovieRecord& m : data.ebert) ebert_titles.insert(m.title);
    for (const MovieRecord& m : data.prasanna) prasanna_titles.insert(m.title);
    for (const MovieRecord& m : data.imdb) {
      task->gold.extractions["extractIMDBTitle"].push_back(
          GoldStandard::Extraction{m.doc, {Value::OfSpan(corpus, m.title_span)}});
      if (ebert_titles.count(m.title) && prasanna_titles.count(m.title)) {
        task->gold.query_result.push_back({Value::String(m.title)});
      }
    }
    for (const MovieRecord& m : data.ebert) {
      task->gold.extractions["extractEbertTitle"].push_back(
          GoldStandard::Extraction{m.doc, {Value::OfSpan(corpus, m.title_span)}});
    }
    for (const MovieRecord& m : data.prasanna) {
      task->gold.extractions["extractPrasannaTitle"].push_back(
          GoldStandard::Extraction{m.doc, {Value::OfSpan(corpus, m.title_span)}});
    }
    task->tuples_per_table =
        std::max({data.imdb.size(), data.ebert.size(), data.prasanna.size()});
    task->n_procedures = 3;
    task->n_attributes = 3;
    task->n_rules = 7;
    task->manual_records = data.imdb.size();
    task->manual_pairs = data.imdb.size() * data.ebert.size() / 8 +
                         data.ebert.size() * data.prasanna.size() / 8;
    task->cleanup_minutes = 8;
  }

  task->developer = std::make_unique<SimulatedDeveloper>(
      task->corpus.get(), &task->gold);
  return task;
}

}  // namespace iflex
