#include <algorithm>
#include <cctype>

#include "common/strutil.h"
#include "datagen/dblife.h"
#include "tasks/task.h"

namespace iflex {

namespace {

// The Chair cleanup procedure (paper §2.2.4 / Table 6): given a chair-name
// span, read the chair type off the text immediately before it
// ("pc chair: Alice M. Wu" -> "pc"). Registered as a p-predicate.
Result<std::vector<std::vector<Value>>> ChairTypeProc(
    const Corpus& corpus, const std::vector<Value>& in) {
  std::vector<std::vector<Value>> out;
  if (in.size() != 1 || !in[0].has_span()) return out;
  const Span& span = in[0].span();
  const Document& doc = corpus.Get(span.doc);
  const std::string& text = doc.text();
  // Scan left to the line start for "<word> chair:".
  size_t line_begin = span.begin;
  while (line_begin > 0 && text[line_begin - 1] != '\n') --line_begin;
  std::string prefix = text.substr(line_begin, span.begin - line_begin);
  size_t marker = prefix.rfind(" chair:");
  if (marker == std::string::npos) return out;
  size_t word_end = marker;
  size_t word_begin = word_end;
  while (word_begin > 0 &&
         std::isalpha(static_cast<unsigned char>(prefix[word_begin - 1]))) {
    --word_begin;
  }
  if (word_begin == word_end) return out;
  out.push_back({Value::String(prefix.substr(word_begin, word_end - word_begin))});
  return out;
}

}  // namespace

Result<std::unique_ptr<TaskInstance>> MakeDblifeTask(const std::string& id,
                                                     size_t scale,
                                                     uint64_t seed) {
  auto task = std::make_unique<TaskInstance>();
  task->id = id;
  task->corpus = std::make_unique<Corpus>();

  DblifeSpec spec;
  spec.seed = seed;
  if (scale) {
    // `scale` is the total page count, split 20/27/53 like the default mix.
    spec.n_conferences = std::max<size_t>(2, scale / 5);
    spec.n_homepages = std::max<size_t>(2, scale * 27 / 100);
    spec.n_distractors = scale - spec.n_conferences - spec.n_homepages;
  }
  DblifeData data = GenerateDblife(task->corpus.get(), spec);
  task->catalog = std::make_unique<Catalog>(task->corpus.get());
  task->catalog->RegisterBuiltinFunctions(/*similarity_threshold=*/0.75);
  IFLEX_RETURN_NOT_OK(
      task->catalog->AddTable("docs", DocTable(data.all_docs)));

  const Corpus& corpus = *task->corpus;
  task->tuples_per_table = data.all_docs.size();
  task->manual_records = data.all_docs.size();

  if (id == "Panel") {
    task->description =
        "Find (x, y) where person x is a panelist at conference y";
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractPanelist", 1, 1));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractConf", 1, 1));
    IFLEX_ASSIGN_OR_RETURN(task->initial_program, ParseProgram(R"(
      onPanel(x, y, d) :- docs(d), extractPanelist(d, x),
                          extractConf(d, y).
      extractPanelist(d, x) :- from(d, x).
      extractConf(d, y) :- from(d, y).
    )", *task->catalog));
    task->initial_program.set_query("onPanel");
    for (const ConferencePage& page : data.conferences) {
      for (const auto& p : page.panelists) {
        task->gold.extractions["extractPanelist"].push_back(
            GoldStandard::Extraction{page.doc,
                                     {Value::OfSpan(corpus, p.span)}});
        task->gold.query_result.push_back(
            {Value::String(p.name), Value::String(page.conference)});
      }
      task->gold.extractions["extractConf"].push_back(GoldStandard::Extraction{
          page.doc, {Value::OfSpan(corpus, page.conf_span)}});
    }
    task->n_procedures = 2;
    task->n_attributes = 2;
    task->n_rules = 3;
    task->cleanup_minutes = 5;
  } else if (id == "Project") {
    task->description = "Find (x, y) where person x works on project y";
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractOwner", 1, 1));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractProject", 1, 1));
    IFLEX_ASSIGN_OR_RETURN(task->initial_program, ParseProgram(R"(
      worksOn(x, y, d) :- docs(d), extractOwner(d, x),
                          extractProject(d, y).
      extractOwner(d, x) :- from(d, x).
      extractProject(d, y) :- from(d, y).
    )", *task->catalog));
    task->initial_program.set_query("worksOn");
    for (const HomePage& page : data.homepages) {
      task->gold.extractions["extractOwner"].push_back(
          GoldStandard::Extraction{page.doc,
                                   {Value::OfSpan(corpus, page.owner_span)}});
      for (const auto& p : page.projects) {
        task->gold.extractions["extractProject"].push_back(
            GoldStandard::Extraction{page.doc,
                                     {Value::OfSpan(corpus, p.span)}});
        task->gold.query_result.push_back(
            {Value::String(page.owner), Value::String(p.name)});
      }
    }
    task->n_procedures = 2;
    task->n_attributes = 2;
    task->n_rules = 3;
    task->cleanup_minutes = 6;
  } else if (id == "Chair") {
    task->description =
        "Find (x, z, y) where person x is a chair of type z at conference y";
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractChair", 1, 1));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractConf", 1, 1));
    IFLEX_RETURN_NOT_OK(task->catalog->DeclarePPredicate(
        "chairType", 1, 1, ChairTypeProc));
    // The refinement session runs without the cleanup stage (paper
    // §2.2.4: cleanup code is written after declarative refinement).
    IFLEX_ASSIGN_OR_RETURN(task->initial_program, ParseProgram(R"(
      chairx(x, y, d) :- docs(d), extractChair(d, x), extractConf(d, y).
      extractChair(d, x) :- from(d, x).
      extractConf(d, y) :- from(d, y).
    )", *task->catalog));
    task->initial_program.set_query("chairx");
    for (const ConferencePage& page : data.conferences) {
      for (const auto& c : page.chairs) {
        task->gold.extractions["extractChair"].push_back(
            GoldStandard::Extraction{page.doc,
                                     {Value::OfSpan(corpus, c.span)}});
        task->gold.query_result.push_back(
            {Value::String(c.name), Value::String(page.conference)});
        task->cleanup_gold.push_back({Value::String(c.name),
                                      Value::String(c.type),
                                      Value::String(page.conference)});
      }
      task->gold.extractions["extractConf"].push_back(GoldStandard::Extraction{
          page.doc, {Value::OfSpan(corpus, page.conf_span)}});
    }
    task->n_procedures = 3;
    task->n_attributes = 3;
    task->n_rules = 4;
    task->cleanup_minutes = 11;
    const Catalog* catalog = task->catalog.get();
    task->apply_cleanup = [catalog](const Program& refined) -> Result<Program> {
      Program with_cleanup = refined;
      // chair(x, z, y, d) :- chairx(x, y, d), chairType(x, z).
      Rule rule;
      rule.head.predicate = "chair";
      rule.head.args = {"x", "z", "y", "d"};
      rule.head.annotated = {false, false, false, false};
      Atom body1;
      body1.predicate = "chairx";
      body1.args = {Term::Var("x"), Term::Var("y"), Term::Var("d")};
      rule.body.push_back(Literal::OfAtom(std::move(body1)));
      Atom body2;
      body2.predicate = "chairType";
      body2.args = {Term::Var("x"), Term::Var("z")};
      rule.body.push_back(Literal::OfAtom(std::move(body2)));
      with_cleanup.AddRule(std::move(rule));
      with_cleanup.set_query("chair");
      IFLEX_RETURN_NOT_OK(with_cleanup.Validate(*catalog));
      return with_cleanup;
    };
  } else {
    return Status::NotFound("unknown DBLife task " + id);
  }

  task->developer = std::make_unique<SimulatedDeveloper>(
      task->corpus.get(), &task->gold);
  return task;
}

}  // namespace iflex
