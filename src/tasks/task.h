#ifndef IFLEX_TASKS_TASK_H_
#define IFLEX_TASKS_TASK_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "alog/program.h"
#include "oracle/developer.h"
#include "oracle/gold.h"
#include "text/corpus.h"

namespace iflex {

/// One fully-assembled IE task (paper Table 2: T1-T9; Table 6: Panel /
/// Project / Chair): synthetic corpus, catalog with extensional tables and
/// declared IE predicates, the initial Alog program, the gold standard,
/// and a simulated developer wired to it.
struct TaskInstance {
  std::string id;
  std::string description;

  std::unique_ptr<Corpus> corpus;
  std::unique_ptr<Catalog> catalog;
  Program initial_program;
  GoldStandard gold;
  std::unique_ptr<SimulatedDeveloper> developer;

  /// Scenario size: tuples in the largest extensional table.
  size_t tuples_per_table = 0;

  // ---- cost-model inputs (Table 3) --------------------------------------
  /// IE predicates a precise Xlog implementation must hand-code.
  size_t n_procedures = 0;
  /// Attributes across those procedures.
  size_t n_attributes = 0;
  /// Rules in the initial program.
  size_t n_rules = 0;
  /// Records / record-pairs a Manual solution must inspect.
  size_t manual_records = 0;
  size_t manual_pairs = 0;

  // ---- cleanup stage (paper §2.2.4) --------------------------------------
  /// Developer minutes to write the task's cleanup procedure, when one is
  /// needed (the parenthesized entries of Tables 3/6).
  double cleanup_minutes = 0;
  /// When set, transforms the refined program into the post-cleanup
  /// program (e.g. Chair adds the chairType p-predicate); the result is
  /// evaluated against `cleanup_gold`.
  std::function<Result<Program>(const Program&)> apply_cleanup;
  std::vector<std::vector<Value>> cleanup_gold;

  /// Precise Xlog baseline program; filled in by AddPreciseBaseline()
  /// (src/xlog). Empty until then.
  Program precise_program;
};

/// Builds a task. `scale` is the Table 3 scenario size (tuples per table);
/// 0 selects the paper's full size. Known ids: T1..T9, Panel, Project,
/// Chair.
Result<std::unique_ptr<TaskInstance>> MakeTask(const std::string& id,
                                               size_t scale,
                                               uint64_t seed = 11);

/// The nine Table 2 task ids.
std::vector<std::string> AllTaskIds();
/// The three DBLife task ids (Table 6).
std::vector<std::string> DblifeTaskIds();
/// The paper's three scenario sizes for a task (Table 3 rows).
std::vector<size_t> ScenarioSizes(const std::string& id);

// ---- shared helpers for the per-domain builders (internal use) ----------

/// One-column table of document values.
CompactTable DocTable(const std::vector<DocId>& docs);

// Per-domain builders (defined in *_tasks.cc).
Result<std::unique_ptr<TaskInstance>> MakeMovieTask(const std::string& id,
                                                    size_t scale,
                                                    uint64_t seed);
Result<std::unique_ptr<TaskInstance>> MakeDblpTask(const std::string& id,
                                                   size_t scale,
                                                   uint64_t seed);
Result<std::unique_ptr<TaskInstance>> MakeBookTask(const std::string& id,
                                                   size_t scale,
                                                   uint64_t seed);
Result<std::unique_ptr<TaskInstance>> MakeDblifeTask(const std::string& id,
                                                     size_t scale,
                                                     uint64_t seed);

}  // namespace iflex

#endif  // IFLEX_TASKS_TASK_H_
