#include <algorithm>
#include <map>

#include "datagen/books.h"
#include "tasks/task.h"

namespace iflex {

namespace {

std::vector<DocId> Docs(const std::vector<BookRecord>& records) {
  std::vector<DocId> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.doc);
  return out;
}

}  // namespace

Result<std::unique_ptr<TaskInstance>> MakeBookTask(const std::string& id,
                                                   size_t scale,
                                                   uint64_t seed) {
  auto task = std::make_unique<TaskInstance>();
  task->id = id;
  task->corpus = std::make_unique<Corpus>();

  BooksSpec spec;
  spec.seed = seed;
  if (id == "T7") {
    spec.n_amazon = 0;
    spec.n_barnes = scale ? scale : 5000;
    spec.n_shared = 0;
  } else if (id == "T8") {
    spec.n_amazon = scale ? scale : 2490;
    spec.n_barnes = 0;
    spec.n_shared = 0;
  } else {  // T9
    size_t n = scale ? scale : 5000;
    spec.n_amazon = std::min<size_t>(n, 2490);
    spec.n_barnes = n;
    spec.n_shared = std::max<size_t>(2, std::min(spec.n_amazon, spec.n_barnes) / 6);
  }
  BooksData data = GenerateBooks(task->corpus.get(), spec);
  task->catalog = std::make_unique<Catalog>(task->corpus.get());
  task->catalog->RegisterBuiltinFunctions(/*similarity_threshold=*/0.75);

  const Corpus& corpus = *task->corpus;

  if (id == "T7") {
    task->description = "B&N books with price over $100";
    IFLEX_RETURN_NOT_OK(
        task->catalog->AddTable("barnesPages", DocTable(Docs(data.barnes))));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractBarnes", 1, 2));
    IFLEX_ASSIGN_OR_RETURN(task->initial_program, ParseProgram(R"(
      bbooks(x, <title>, <price>) :- barnesPages(x),
                                     extractBarnes(x, title, price).
      t7(title) :- bbooks(x, title, price), price > 100.
      extractBarnes(x, title, price) :- from(x, title), from(x, price).
    )", *task->catalog));
    task->initial_program.set_query("t7");
    for (const BookRecord& b : data.barnes) {
      task->gold.extractions["extractBarnes"].push_back(
          GoldStandard::Extraction{
              b.doc,
              {Value::OfSpan(corpus, b.title_span),
               Value::OfSpan(corpus, b.bn_price_span)}});
      if (b.bn_price > 100) {
        task->gold.query_result.push_back({Value::String(b.title)});
      }
    }
    task->tuples_per_table = data.barnes.size();
    task->n_procedures = 1;
    task->n_attributes = 2;
    task->n_rules = 3;
    task->manual_records = data.barnes.size();
  } else if (id == "T8") {
    task->description =
        "Amazon books with list price equal to the new price and a used "
        "price below the new price";
    IFLEX_RETURN_NOT_OK(
        task->catalog->AddTable("amazonPages", DocTable(Docs(data.amazon))));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractAmazon", 1, 4));
    IFLEX_ASSIGN_OR_RETURN(task->initial_program, ParseProgram(R"(
      abooks(x, <t>, <lp>, <np>, <up>) :- amazonPages(x),
                                          extractAmazon(x, t, lp, np, up).
      t8(t) :- abooks(x, t, lp, np, up), lp = np, up < np.
      extractAmazon(x, t, lp, np, up) :- from(x, t), from(x, lp),
                                         from(x, np), from(x, up).
    )", *task->catalog));
    task->initial_program.set_query("t8");
    for (const BookRecord& b : data.amazon) {
      task->gold.extractions["extractAmazon"].push_back(
          GoldStandard::Extraction{
              b.doc,
              {Value::OfSpan(corpus, b.title_span),
               Value::OfSpan(corpus, b.list_price_span),
               Value::OfSpan(corpus, b.new_price_span),
               Value::OfSpan(corpus, b.used_price_span)}});
      if (b.list_price == b.new_price && b.used_price < b.new_price) {
        task->gold.query_result.push_back({Value::String(b.title)});
      }
    }
    task->tuples_per_table = data.amazon.size();
    task->n_procedures = 1;
    task->n_attributes = 4;
    task->n_rules = 3;
    task->manual_records = data.amazon.size();
  } else {  // T9
    task->description = "Books cheaper at Amazon than at Barnes & Noble";
    IFLEX_RETURN_NOT_OK(
        task->catalog->AddTable("amazonPages", DocTable(Docs(data.amazon))));
    IFLEX_RETURN_NOT_OK(
        task->catalog->AddTable("barnesPages", DocTable(Docs(data.barnes))));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractAmazonTN", 1, 2));
    IFLEX_RETURN_NOT_OK(
        task->catalog->DeclareIEPredicate("extractBarnes", 1, 2));
    IFLEX_ASSIGN_OR_RETURN(task->initial_program, ParseProgram(R"(
      an(x, <t1>, <np>) :- amazonPages(x), extractAmazonTN(x, t1, np).
      bn(y, <t2>, <bp>) :- barnesPages(y), extractBarnes(y, t2, bp).
      t9(t1) :- an(x, t1, np), bn(y, t2, bp), similar(t1, t2), np < bp.
      extractAmazonTN(x, t1, np) :- from(x, t1), from(x, np).
      extractBarnes(y, t2, bp) :- from(y, t2), from(y, bp).
    )", *task->catalog));
    task->initial_program.set_query("t9");
    std::map<std::string, double> barnes_price;
    for (const BookRecord& b : data.barnes) {
      barnes_price[b.title] = b.bn_price;
      task->gold.extractions["extractBarnes"].push_back(
          GoldStandard::Extraction{
              b.doc,
              {Value::OfSpan(corpus, b.title_span),
               Value::OfSpan(corpus, b.bn_price_span)}});
    }
    for (const BookRecord& b : data.amazon) {
      task->gold.extractions["extractAmazonTN"].push_back(
          GoldStandard::Extraction{
              b.doc,
              {Value::OfSpan(corpus, b.title_span),
               Value::OfSpan(corpus, b.new_price_span)}});
      auto it = barnes_price.find(b.title);
      if (it != barnes_price.end() && b.new_price < it->second) {
        task->gold.query_result.push_back({Value::String(b.title)});
      }
    }
    task->tuples_per_table = std::max(data.amazon.size(), data.barnes.size());
    task->n_procedures = 2;
    task->n_attributes = 4;
    task->n_rules = 5;
    task->manual_records = data.amazon.size();
    task->manual_pairs = data.amazon.size() * data.barnes.size() / 8;
    task->cleanup_minutes = 6;
  }

  task->developer = std::make_unique<SimulatedDeveloper>(
      task->corpus.get(), &task->gold);
  return task;
}

}  // namespace iflex
