#ifndef IFLEX_CTABLE_VALUE_H_
#define IFLEX_CTABLE_VALUE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/intern.h"
#include "text/corpus.h"
#include "text/span.h"

namespace iflex {

/// A concrete attribute value in a (possible) relation: a document
/// reference, an extracted text span, or a scalar produced by a
/// p-function / cleanup procedure.
///
/// Values are cheap to copy: the textual form is a string_view into
/// either the owning document's frozen text (span values — zero-copy) or
/// a refcounted string (scalars), and the loose numeric cast is computed
/// once at construction instead of on every comparison.
class Value {
 public:
  enum class Kind : uint8_t { kNull, kDoc, kSpan, kString, kNumber, kBool };

  Value() : kind_(Kind::kNull) {}

  static Value Null() { return Value(); }
  static Value Doc(DocId id);
  /// Span value; the text is a view into `corpus`'s document storage,
  /// which is frozen on Corpus::Add and must outlive the value (true for
  /// every table in a session — tables never outlive their corpus).
  static Value OfSpan(const Corpus& corpus, const Span& span);
  static Value String(std::string s);
  static Value Number(double n);
  static Value Bool(bool b);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Document id for kDoc values (also the doc of a span value).
  DocId doc() const { return kind_ == Kind::kDoc ? doc_ : span_.doc; }
  const Span& span() const { return span_; }
  bool has_span() const { return kind_ == Kind::kSpan; }

  /// The textual form: span/string text, number formatting, document name
  /// placeholder for kDoc.
  std::string_view AsText() const { return text_; }

  /// Numeric view — a kNumber's value, or a loose parse of the text
  /// ("$351,000" -> 351000). This realizes the paper's "optional cast from
  /// string to numeric" on exact assignments. Parsed at construction.
  std::optional<double> AsNumber() const {
    if (has_num_) return num_;
    return std::nullopt;
  }

  bool AsBool() const { return kind_ == Kind::kBool && num_ != 0; }

  /// Value equality used for grouping and joins: numeric when both sides
  /// are numeric (92 == "92"), textual otherwise; kDoc compares ids.
  bool Equals(const Value& other) const;

  /// Hash consistent with Equals.
  size_t Hash() const;

  /// Ordering for deterministic output (kind, then content).
  bool Less(const Value& other) const;

  std::string ToString() const;

 private:
  Kind kind_;
  bool has_num_ = false;
  DocId doc_ = kInvalidDocId;
  Span span_;
  std::string_view text_;
  double num_ = 0;
  std::shared_ptr<const std::string> owned_;  // backs text_ for scalars
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
};

}  // namespace iflex

#endif  // IFLEX_CTABLE_VALUE_H_
