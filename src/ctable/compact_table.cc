#include "ctable/compact_table.h"

#include <algorithm>

#include "common/strutil.h"

namespace iflex {

// ------------------------------------------------------------- Assignment

size_t Assignment::ValueCount(const Corpus& corpus) const {
  if (is_exact()) return 1;
  return corpus.Get(span.doc).CountSubSpans(span);
}

bool Assignment::EnumerateValues(const Corpus& corpus, size_t max_values,
                                 std::vector<Value>* out) const {
  if (is_exact()) {
    if (out->size() >= max_values) return false;
    out->push_back(value);
    return true;
  }
  std::vector<Span> spans;
  size_t budget = max_values > out->size() ? max_values - out->size() : 0;
  bool complete =
      corpus.Get(span.doc).EnumerateSubSpans(span, budget, &spans);
  for (const Span& s : spans) out->push_back(Value::OfSpan(corpus, s));
  return complete;
}

std::string Assignment::ToString(const Corpus* corpus) const {
  if (is_exact()) return "exact(" + value.ToString() + ")";
  if (corpus != nullptr) {
    return "contain(\"" + std::string(corpus->TextOf(span)) + "\")";
  }
  return "contain(" + span.ToString() + ")";
}

// ------------------------------------------------------------------- Cell

size_t Cell::ValueCount(const Corpus& corpus) const {
  size_t n = 0;
  for (const auto& a : assignments) n += a.ValueCount(corpus);
  return n;
}

bool Cell::EnumerateValues(const Corpus& corpus, size_t max_values,
                           std::vector<Value>* out) const {
  for (const auto& a : assignments) {
    if (!a.EnumerateValues(corpus, max_values, out)) return false;
  }
  return true;
}

bool Cell::IsSingleton(const Corpus& corpus) const {
  if (assignments.size() == 1 && assignments[0].is_exact()) return true;
  return ValueCount(corpus) == 1;
}

std::string Cell::ToString(const Corpus* corpus) const {
  std::string out = is_expansion ? "expand({" : "{";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += assignments[i].ToString(corpus);
  }
  out += is_expansion ? "})" : "}";
  return out;
}

// ----------------------------------------------------------- CompactTuple

std::string CompactTuple::ToString(const Corpus* corpus) const {
  std::string out = "(";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ", ";
    out += cells[i].ToString(corpus);
  }
  out += ")";
  if (maybe) out += "?";
  return out;
}

// ----------------------------------------------------------- CompactTable

Result<size_t> CompactTable::AttrIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i] == name) return i;
  }
  return Status::NotFound("no attribute named " + name);
}

size_t CompactTable::AssignmentCount() const {
  size_t n = 0;
  for (const auto& t : tuples_) {
    for (const auto& c : t.cells) n += c.assignments.size();
  }
  return n;
}

double CompactTable::PossibleTupleCount(const Corpus& corpus,
                                        double cap) const {
  double total = 0;
  for (const auto& t : tuples_) {
    double prod = 1;
    for (const auto& c : t.cells) {
      prod *= static_cast<double>(c.ValueCount(corpus));
      if (prod > cap) {
        prod = cap;
        break;
      }
    }
    total += prod;
    if (total > cap) return cap;
  }
  return total;
}

double CompactTable::ExpandedTupleCount(const Corpus& corpus,
                                        double cap) const {
  double total = 0;
  for (const auto& t : tuples_) {
    double prod = 1;
    for (const auto& c : t.cells) {
      if (!c.is_expansion) continue;
      prod *= static_cast<double>(c.ValueCount(corpus));
      if (prod > cap) {
        prod = cap;
        break;
      }
    }
    total += prod;
    if (total > cap) return cap;
  }
  return total;
}

double CompactTable::CertainTupleCount(const Corpus& corpus,
                                       double cap) const {
  double total = 0;
  for (const auto& t : tuples_) {
    if (t.maybe) continue;
    double prod = 1;
    for (const auto& c : t.cells) {
      if (!c.is_expansion) continue;
      prod *= static_cast<double>(c.ValueCount(corpus));
      if (prod > cap) {
        prod = cap;
        break;
      }
    }
    total += prod;
    if (total > cap) return cap;
  }
  return total;
}

double CompactTable::TotalValueCount(const Corpus& corpus, double cap) const {
  double total = 0;
  for (const auto& t : tuples_) {
    for (const auto& c : t.cells) {
      total += static_cast<double>(c.ValueCount(corpus));
      if (total > cap) return cap;
    }
  }
  return total;
}

Result<CompactTable> CompactTable::ExpandExpansionCells(
    const Corpus& corpus, size_t max_tuples) const {
  CompactTable out(schema_);
  // Worklist expansion: each tuple may have several expansion cells.
  std::vector<CompactTuple> work(tuples_.begin(), tuples_.end());
  while (!work.empty()) {
    CompactTuple t = std::move(work.back());
    work.pop_back();
    size_t exp_idx = SIZE_MAX;
    for (size_t i = 0; i < t.cells.size(); ++i) {
      if (t.cells[i].is_expansion) {
        exp_idx = i;
        break;
      }
    }
    if (exp_idx == SIZE_MAX) {
      out.Add(std::move(t));
      if (out.size() > max_tuples) {
        return Status::ExecutionError(StringPrintf(
            "expansion exceeds %zu tuples", max_tuples));
      }
      continue;
    }
    std::vector<Value> values;
    if (!t.cells[exp_idx].EnumerateValues(corpus, max_tuples + 1, &values) ||
        values.size() + out.size() > max_tuples) {
      return Status::ExecutionError(
          StringPrintf("expansion exceeds %zu tuples", max_tuples));
    }
    for (Value& v : values) {
      CompactTuple u = t;
      u.cells[exp_idx] = Cell::Exact(std::move(v));
      work.push_back(std::move(u));
    }
  }
  return out;
}

std::string CompactTable::ToString(const Corpus* corpus) const {
  std::string out = "[" + Join(schema_, ", ") + "]\n";
  for (const auto& t : tuples_) {
    out += "  " + t.ToString(corpus) + "\n";
  }
  return out;
}

}  // namespace iflex
