#ifndef IFLEX_CTABLE_COMPACT_TABLE_H_
#define IFLEX_CTABLE_COMPACT_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "ctable/value.h"
#include "text/corpus.h"

namespace iflex {

/// An assignment encodes a set of attribute values (paper §3):
/// exact(v) encodes exactly v (with an optional string->numeric cast);
/// contain(s) encodes s and every (token-aligned) sub-span of s.
struct Assignment {
  enum class Kind : uint8_t { kExact, kContain };

  Kind kind = Kind::kExact;
  Value value;  // kExact payload
  Span span;    // kContain payload

  static Assignment Exact(Value v) {
    Assignment a;
    a.kind = Kind::kExact;
    a.value = std::move(v);
    return a;
  }
  static Assignment Contain(Span s) {
    Assignment a;
    a.kind = Kind::kContain;
    a.span = s;
    return a;
  }

  bool is_exact() const { return kind == Kind::kExact; }
  bool is_contain() const { return kind == Kind::kContain; }

  /// |V(m(s))| — 1 for exact, the number of token-aligned sub-spans for
  /// contain.
  size_t ValueCount(const Corpus& corpus) const;

  /// Appends V(m(s)) to `out`, stopping at `max_values` total size of
  /// `out`. Returns false when truncated.
  bool EnumerateValues(const Corpus& corpus, size_t max_values,
                       std::vector<Value>* out) const;

  std::string ToString(const Corpus* corpus = nullptr) const;
};

/// A cell: a multiset of assignments, or an *expansion cell* (paper §3),
/// which turns each encoded value into its own tuple when expanded.
struct Cell {
  std::vector<Assignment> assignments;
  bool is_expansion = false;

  static Cell Exact(Value v) {
    Cell c;
    c.assignments.push_back(Assignment::Exact(std::move(v)));
    return c;
  }
  static Cell Expansion(std::vector<Assignment> as) {
    Cell c;
    c.assignments = std::move(as);
    c.is_expansion = true;
    return c;
  }

  /// |V(c)|.
  size_t ValueCount(const Corpus& corpus) const;
  bool EnumerateValues(const Corpus& corpus, size_t max_values,
                       std::vector<Value>* out) const;

  /// True when the cell encodes exactly one value.
  bool IsSingleton(const Corpus& corpus) const;

  std::string ToString(const Corpus* corpus = nullptr) const;
};

/// A compact tuple; `maybe` marks tuples that may not exist in every
/// possible relation.
struct CompactTuple {
  std::vector<Cell> cells;
  bool maybe = false;

  std::string ToString(const Corpus* corpus = nullptr) const;
};

/// A compact table: schema + multiset of compact tuples. The central data
/// structure of the approximate query processor.
class CompactTable {
 public:
  CompactTable() = default;
  explicit CompactTable(std::vector<std::string> schema)
      : schema_(std::move(schema)) {}

  const std::vector<std::string>& schema() const { return schema_; }
  size_t arity() const { return schema_.size(); }

  /// Index of attribute `name`, or NotFound.
  Result<size_t> AttrIndex(const std::string& name) const;

  std::vector<CompactTuple>& tuples() { return tuples_; }
  const std::vector<CompactTuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }

  void Add(CompactTuple t) { tuples_.push_back(std::move(t)); }

  /// Total number of assignments across all cells — the paper's
  /// convergence monitor tracks this alongside the tuple count.
  size_t AssignmentCount() const;

  /// Sum over tuples of the product of per-cell |V(c)| (capped): how many
  /// concrete tuples this table could expand to. Used by benches to show
  /// the compact-table compression factor.
  double PossibleTupleCount(const Corpus& corpus, double cap = 1e18) const;

  /// Number of tuples after expanding expansion cells only (each encoded
  /// value of an expansion cell is its own tuple; a plain multi-assignment
  /// cell is still one tuple with an uncertain value). This is the result
  /// size the paper reports ("Num Tuples" in Table 4).
  double ExpandedTupleCount(const Corpus& corpus, double cap = 1e18) const;

  /// Like ExpandedTupleCount but over non-maybe tuples only: the tuples
  /// that exist in *every* possible relation — the certain lower bound
  /// paired with the superset upper bound.
  double CertainTupleCount(const Corpus& corpus, double cap = 1e18) const;

  /// Sum of |V(c)| over every cell of every tuple (capped): the total
  /// amount of value-level ambiguity the table carries. Shrinks whenever a
  /// constraint narrows any cell — the fine-grained progress signal the
  /// convergence detector watches.
  double TotalValueCount(const Corpus& corpus, double cap = 1e18) const;

  /// Replaces every expansion-cell tuple by its expanded tuples (one per
  /// encoded value, paper §3); tuples expanded from a multi-value cell
  /// keep/inherit the maybe flag of the source tuple.
  /// NOTE: expansion preserves the represented set of possible relations.
  Result<CompactTable> ExpandExpansionCells(const Corpus& corpus,
                                            size_t max_tuples) const;

  std::string ToString(const Corpus* corpus = nullptr) const;

 private:
  std::vector<std::string> schema_;
  std::vector<CompactTuple> tuples_;
};

}  // namespace iflex

#endif  // IFLEX_CTABLE_COMPACT_TABLE_H_
