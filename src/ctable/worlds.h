#ifndef IFLEX_CTABLE_WORLDS_H_
#define IFLEX_CTABLE_WORLDS_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "ctable/atable.h"

namespace iflex {

/// One possible relation: a set of concrete tuples.
using World = std::vector<std::vector<Value>>;

/// Canonical string form of a world, treating the relation as a set (the
/// paper's possible relations are duplicate-insensitive for comparison
/// purposes). Two worlds with equal canonical forms are the same relation.
std::string CanonicalWorld(const World& world);

/// Brute-force enumeration of every possible relation an a-table
/// represents (paper §3): choose a subset of the maybe tuples plus all
/// non-maybe tuples, then one value per cell. Exponential — test-scale
/// only; fails beyond `max_worlds`.
Result<std::vector<World>> EnumerateWorlds(const ATable& table,
                                           size_t max_worlds = 1 << 20);

/// Canonical world set of an a-table. The key primitive behind the
/// superset-semantics property tests: `Represents(result) ⊇
/// Represents(spec)` becomes set containment of these.
Result<std::set<std::string>> WorldSet(const ATable& table,
                                       size_t max_worlds = 1 << 20);

/// True when every world in `spec` is also a world of `result` — the
/// paper's superset execution guarantee (§4).
Result<bool> RepresentsSuperset(const ATable& result, const ATable& spec,
                                size_t max_worlds = 1 << 20);

}  // namespace iflex

#endif  // IFLEX_CTABLE_WORLDS_H_
