#ifndef IFLEX_CTABLE_ATABLE_H_
#define IFLEX_CTABLE_ATABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ctable/compact_table.h"
#include "ctable/value.h"

namespace iflex {

/// An a-tuple (paper §3, after [19]): each cell is an explicit multiset of
/// possible values; '?' marks maybe a-tuples.
struct ATuple {
  std::vector<std::vector<Value>> cells;
  bool maybe = false;

  std::string ToString() const;
};

/// An a-table: the non-compact representation of approximate data.
/// Compact tables convert to a-tables for the BAnnotate algorithm and for
/// the brute-force possible-worlds checks in tests.
class ATable {
 public:
  ATable() = default;
  explicit ATable(std::vector<std::string> schema)
      : schema_(std::move(schema)) {}

  const std::vector<std::string>& schema() const { return schema_; }
  size_t arity() const { return schema_.size(); }

  std::vector<ATuple>& tuples() { return tuples_; }
  const std::vector<ATuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  void Add(ATuple t) { tuples_.push_back(std::move(t)); }

  std::string ToString() const;

 private:
  std::vector<std::string> schema_;
  std::vector<ATuple> tuples_;
};

/// Converts a compact table to an a-table: expansion cells become one
/// tuple per encoded value, then every cell's assignments are enumerated
/// into a deduplicated value set. Fails when the expansion exceeds
/// `max_tuples` tuples or any cell exceeds `max_values_per_cell` values.
Result<ATable> CompactToATable(const Corpus& corpus, const CompactTable& ct,
                               size_t max_tuples = 100000,
                               size_t max_values_per_cell = 100000);

/// Converts an a-table back to a compact table (each value becomes one
/// exact assignment). Lossless.
CompactTable ATableToCompact(const ATable& at,
                             std::vector<std::string> schema);

}  // namespace iflex

#endif  // IFLEX_CTABLE_ATABLE_H_
