#include "ctable/atable.h"

#include "common/strutil.h"

namespace iflex {

std::string ATuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{";
    for (size_t j = 0; j < cells[i].size(); ++j) {
      if (j > 0) out += ", ";
      out += cells[i][j].ToString();
    }
    out += "}";
  }
  out += ")";
  if (maybe) out += "?";
  return out;
}

std::string ATable::ToString() const {
  std::string out = "[" + Join(schema_, ", ") + "]\n";
  for (const auto& t : tuples_) out += "  " + t.ToString() + "\n";
  return out;
}

Result<ATable> CompactToATable(const Corpus& corpus, const CompactTable& ct,
                               size_t max_tuples,
                               size_t max_values_per_cell) {
  IFLEX_ASSIGN_OR_RETURN(CompactTable expanded,
                         ct.ExpandExpansionCells(corpus, max_tuples));
  ATable out(ct.schema());
  for (const auto& t : expanded.tuples()) {
    ATuple at;
    at.maybe = t.maybe;
    at.cells.reserve(t.cells.size());
    for (const auto& c : t.cells) {
      std::vector<Value> raw;
      if (!c.EnumerateValues(corpus, max_values_per_cell, &raw)) {
        return Status::ExecutionError(StringPrintf(
            "cell exceeds %zu possible values", max_values_per_cell));
      }
      // Deduplicate under Value::Equals (quadratic, but cells are small
      // after refinement; the enumeration cap bounds the worst case).
      std::vector<Value> dedup;
      for (Value& v : raw) {
        bool found = false;
        for (const Value& d : dedup) {
          if (d.Equals(v)) {
            found = true;
            break;
          }
        }
        if (!found) dedup.push_back(std::move(v));
      }
      at.cells.push_back(std::move(dedup));
    }
    out.Add(std::move(at));
  }
  return out;
}

CompactTable ATableToCompact(const ATable& at,
                             std::vector<std::string> schema) {
  CompactTable out(std::move(schema));
  for (const auto& t : at.tuples()) {
    CompactTuple ct;
    ct.maybe = t.maybe;
    for (const auto& values : t.cells) {
      Cell c;
      for (const Value& v : values) {
        c.assignments.push_back(Assignment::Exact(v));
      }
      ct.cells.push_back(std::move(c));
    }
    out.Add(std::move(ct));
  }
  return out;
}

}  // namespace iflex
