#include "ctable/worlds.h"

#include <algorithm>

#include "common/strutil.h"

namespace iflex {

std::string CanonicalWorld(const World& world) {
  std::vector<std::string> tuples;
  tuples.reserve(world.size());
  for (const auto& t : world) {
    std::string s = "(";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) s += ",";
      // Normalize through AsNumber so "92" and 92 canonicalize equally.
      auto n = t[i].AsNumber();
      if (n.has_value() && t[i].kind() != Value::Kind::kDoc) {
        s += StringPrintf("#%.17g", *n);
      } else {
        s += t[i].ToString();
      }
    }
    s += ")";
    tuples.push_back(std::move(s));
  }
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  return Join(tuples, "|");
}

namespace {

// Recursively fixes a value for each cell of each chosen tuple.
Status FillValues(const std::vector<const ATuple*>& chosen, size_t tuple_idx,
                  size_t cell_idx, World* current, size_t max_worlds,
                  std::vector<World>* out) {
  if (tuple_idx == chosen.size()) {
    if (out->size() >= max_worlds) {
      return Status::ExecutionError("world enumeration exceeds cap");
    }
    out->push_back(*current);
    return Status::OK();
  }
  const ATuple& t = *chosen[tuple_idx];
  if (cell_idx == t.cells.size()) {
    return FillValues(chosen, tuple_idx + 1, 0, current, max_worlds, out);
  }
  if (t.cells[cell_idx].empty()) {
    // A cell with no possible values kills the tuple; the paper's a-tables
    // never produce this, but be defensive: no world from this branch.
    return Status::OK();
  }
  for (const Value& v : t.cells[cell_idx]) {
    (*current)[tuple_idx][cell_idx] = v;
    IFLEX_RETURN_NOT_OK(
        FillValues(chosen, tuple_idx, cell_idx + 1, current, max_worlds, out));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<World>> EnumerateWorlds(const ATable& table,
                                           size_t max_worlds) {
  std::vector<const ATuple*> fixed;
  std::vector<const ATuple*> maybes;
  for (const auto& t : table.tuples()) {
    (t.maybe ? maybes : fixed).push_back(&t);
  }
  if (maybes.size() > 24) {
    return Status::ExecutionError("too many maybe tuples to enumerate");
  }
  std::vector<World> out;
  size_t subsets = 1ULL << maybes.size();
  for (size_t mask = 0; mask < subsets; ++mask) {
    std::vector<const ATuple*> chosen = fixed;
    for (size_t i = 0; i < maybes.size(); ++i) {
      if (mask & (1ULL << i)) chosen.push_back(maybes[i]);
    }
    World current(chosen.size());
    for (size_t i = 0; i < chosen.size(); ++i) {
      current[i].resize(chosen[i]->cells.size());
    }
    IFLEX_RETURN_NOT_OK(
        FillValues(chosen, 0, 0, &current, max_worlds, &out));
  }
  return out;
}

Result<std::set<std::string>> WorldSet(const ATable& table,
                                       size_t max_worlds) {
  IFLEX_ASSIGN_OR_RETURN(std::vector<World> worlds,
                         EnumerateWorlds(table, max_worlds));
  std::set<std::string> out;
  for (const auto& w : worlds) out.insert(CanonicalWorld(w));
  return out;
}

Result<bool> RepresentsSuperset(const ATable& result, const ATable& spec,
                                size_t max_worlds) {
  IFLEX_ASSIGN_OR_RETURN(std::set<std::string> result_set,
                         WorldSet(result, max_worlds));
  IFLEX_ASSIGN_OR_RETURN(std::set<std::string> spec_set,
                         WorldSet(spec, max_worlds));
  return std::includes(result_set.begin(), result_set.end(), spec_set.begin(),
                       spec_set.end());
}

}  // namespace iflex
