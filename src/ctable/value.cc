#include "ctable/value.h"

#include "common/strutil.h"

namespace iflex {

namespace {
const std::string& TrueText() {
  static const std::string* t = new std::string("true");
  return *t;
}
const std::string& FalseText() {
  static const std::string* f = new std::string("false");
  return *f;
}
}  // namespace

Value Value::Doc(DocId id) {
  Value v;
  v.kind_ = Kind::kDoc;
  v.doc_ = id;
  v.owned_ =
      std::make_shared<const std::string>(StringPrintf("<doc %u>", id));
  v.text_ = *v.owned_;
  return v;
}

Value Value::OfSpan(const Corpus& corpus, const Span& span) {
  Value v;
  v.kind_ = Kind::kSpan;
  v.span_ = span;
  v.text_ = corpus.TextOf(span);  // document text is frozen: view is stable
  if (auto n = ParseLooseNumber(v.text_)) {
    v.has_num_ = true;
    v.num_ = *n;
  }
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.owned_ = std::make_shared<const std::string>(std::move(s));
  v.text_ = *v.owned_;
  if (auto n = ParseLooseNumber(v.text_)) {
    v.has_num_ = true;
    v.num_ = *n;
  }
  return v;
}

Value Value::Number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.has_num_ = true;
  v.num_ = n;
  if (n == static_cast<int64_t>(n)) {
    v.owned_ = std::make_shared<const std::string>(
        StringPrintf("%lld", static_cast<long long>(n)));
  } else {
    v.owned_ = std::make_shared<const std::string>(StringPrintf("%g", n));
  }
  v.text_ = *v.owned_;
  return v;
}

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.num_ = b ? 1 : 0;
  v.text_ = b ? TrueText() : FalseText();
  return v;
}

bool Value::Equals(const Value& other) const {
  if (kind_ == Kind::kDoc || other.kind_ == Kind::kDoc) {
    return kind_ == other.kind_ && doc_ == other.doc_;
  }
  if (kind_ == Kind::kNull || other.kind_ == Kind::kNull) {
    return kind_ == other.kind_;
  }
  if (has_num_ && other.has_num_) return num_ == other.num_;
  return text_ == other.text_;
}

size_t Value::Hash() const {
  switch (kind_) {
    case Kind::kNull:
      return 0x9b1;
    case Kind::kDoc:
      return 0xd0c ^ (static_cast<size_t>(doc_) * 0x9e3779b97f4a7c15ULL);
    default: {
      if (has_num_) {
        // Hash the numeric value so "92" and 92 collide (Equals-consistent).
        double d = num_;
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return static_cast<size_t>(bits * 0x9e3779b97f4a7c15ULL);
      }
      return static_cast<size_t>(Fingerprint64(text_));
    }
  }
}

bool Value::Less(const Value& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case Kind::kDoc:
      return doc_ < other.doc_;
    case Kind::kNumber:
      return num_ < other.num_;
    case Kind::kSpan:
      if (!(span_ == other.span_)) return span_ < other.span_;
      return false;
    default:
      return text_ < other.text_;
  }
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kDoc:
      return std::string(text_);
    case Kind::kSpan:
    case Kind::kString:
      return "\"" + std::string(text_) + "\"";
    case Kind::kNumber:
    case Kind::kBool:
      return std::string(text_);
  }
  return "?";
}

}  // namespace iflex
