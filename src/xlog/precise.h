#ifndef IFLEX_XLOG_PRECISE_H_
#define IFLEX_XLOG_PRECISE_H_

#include "tasks/task.h"

namespace iflex {

/// Installs the precise-Xlog baseline for a task (paper §6: the "Xlog"
/// method, where a developer hand-writes Perl extraction procedures):
/// registers hand-coded extraction p-predicates ("px_*") on the task's
/// catalog and fills task->precise_program with the equivalent precise
/// program. The procedures parse the page structure (markup runs, field
/// labels) — they never peek at the gold standard.
Status AddPreciseBaseline(TaskInstance* task);

}  // namespace iflex

#endif  // IFLEX_XLOG_PRECISE_H_
