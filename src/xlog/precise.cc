#include "xlog/precise.h"

#include <cctype>
#include <optional>

#include "common/strutil.h"

namespace iflex {

namespace {

using Row = std::vector<Value>;
using Rows = std::vector<Row>;

// First markup run of `kind`, as a value.
std::optional<Value> FirstRun(const Corpus& corpus, const Document& doc,
                              MarkupKind kind) {
  const auto& ranges = doc.layer(kind).ranges();
  if (ranges.empty()) return std::nullopt;
  return Value::OfSpan(corpus,
                       Span(doc.id(), ranges[0].first, ranges[0].second));
}

// All markup runs of `kind`.
std::vector<Value> AllRuns(const Corpus& corpus, const Document& doc,
                           MarkupKind kind) {
  std::vector<Value> out;
  for (const auto& [b, e] : doc.layer(kind).ranges()) {
    out.push_back(Value::OfSpan(corpus, Span(doc.id(), b, e)));
  }
  return out;
}

// The first token after an occurrence of `marker`, starting the search at
// `*pos`; advances `*pos` past the match.
std::optional<Value> TokenAfter(const Corpus& corpus, const Document& doc,
                                std::string_view marker, size_t* pos) {
  size_t at = doc.text().find(marker, *pos);
  if (at == std::string::npos) return std::nullopt;
  *pos = at + marker.size();
  size_t tok = doc.FirstTokenAtOrAfter(static_cast<uint32_t>(*pos));
  if (tok >= doc.tokens().size()) return std::nullopt;
  const Token& t = doc.tokens()[tok];
  return Value::OfSpan(corpus, Span(doc.id(), t.begin, t.end));
}

std::optional<Value> TokenAfter(const Corpus& corpus, const Document& doc,
                                std::string_view marker) {
  size_t pos = 0;
  return TokenAfter(corpus, doc, marker, &pos);
}

const Document& DocOf(const Corpus& corpus, const Value& v) {
  return corpus.Get(v.doc());
}

// Runs of `kind` lying after a label containing `label_word` and before
// the next label.
std::vector<Value> RunsUnderLabel(const Corpus& corpus, const Document& doc,
                                  MarkupKind kind,
                                  std::string_view label_word) {
  std::vector<Value> out;
  const auto& labels = doc.layer(MarkupKind::kLabel).ranges();
  for (size_t i = 0; i < labels.size(); ++i) {
    Span label(doc.id(), labels[i].first, labels[i].second);
    if (!ContainsIgnoreCase(doc.TextOf(label), label_word)) continue;
    uint32_t begin = labels[i].second;
    uint32_t end = i + 1 < labels.size() ? labels[i + 1].first : doc.size();
    for (const auto& [b, e] : doc.layer(kind).MaximalRunsWithin(begin, end)) {
      out.push_back(Value::OfSpan(corpus, Span(doc.id(), b, e)));
    }
  }
  return out;
}

Status Declare(Catalog* catalog, const std::string& name, size_t n_in,
               size_t n_out, PPredicateFn fn) {
  // Idempotent: tasks sharing extractors may install twice.
  if (catalog->Has(name)) return Status::OK();
  return catalog->DeclarePPredicate(name, n_in, n_out, std::move(fn));
}

// ---------------------------------------------------------------- Movies

Rows ImdbRows(const Corpus& corpus, const std::vector<Value>& in) {
  Rows rows;
  const Document& doc = DocOf(corpus, in[0]);
  auto title = FirstRun(corpus, doc, MarkupKind::kItalic);
  auto votes = TokenAfter(corpus, doc, "Votes: ");
  if (title && votes) rows.push_back({*title, *votes});
  return rows;
}

Rows EbertRows(const Corpus& corpus, const std::vector<Value>& in) {
  Rows rows;
  const Document& doc = DocOf(corpus, in[0]);
  auto title = FirstRun(corpus, doc, MarkupKind::kBold);
  auto year = TokenAfter(corpus, doc, " (");
  if (title && year) rows.push_back({*title, *year});
  return rows;
}

// --------------------------------------------------------------- DBLP

Rows GarciaRows(const Corpus& corpus, const std::vector<Value>& in) {
  Rows rows;
  const Document& doc = DocOf(corpus, in[0]);
  auto title = FirstRun(corpus, doc, MarkupKind::kItalic);
  auto year = TokenAfter(corpus, doc, "Journal Year: ");
  if (title) {
    rows.push_back({*title, year ? *year : Value::Null()});
  }
  return rows;
}

Rows VldbRows(const Corpus& corpus, const std::vector<Value>& in) {
  Rows rows;
  const Document& doc = DocOf(corpus, in[0]);
  auto title = FirstRun(corpus, doc, MarkupKind::kItalic);
  size_t pos = 0;
  auto first = TokenAfter(corpus, doc, "pp. ", &pos);
  auto last = TokenAfter(corpus, doc, "- ", &pos);
  if (title && first && last) rows.push_back({*title, *first, *last});
  return rows;
}

Rows VenueRows(const Corpus& corpus, const std::vector<Value>& in) {
  Rows rows;
  const Document& doc = DocOf(corpus, in[0]);
  auto title = FirstRun(corpus, doc, MarkupKind::kItalic);
  auto authors = FirstRun(corpus, doc, MarkupKind::kUnderline);
  if (title && authors) rows.push_back({*title, *authors});
  return rows;
}

// --------------------------------------------------------------- Books

Rows BarnesRows(const Corpus& corpus, const std::vector<Value>& in) {
  Rows rows;
  const Document& doc = DocOf(corpus, in[0]);
  auto title = FirstRun(corpus, doc, MarkupKind::kBold);
  auto price = FirstRun(corpus, doc, MarkupKind::kItalic);
  if (title && price) rows.push_back({*title, *price});
  return rows;
}

Rows AmazonRows(const Corpus& corpus, const std::vector<Value>& in) {
  Rows rows;
  const Document& doc = DocOf(corpus, in[0]);
  auto title = FirstRun(corpus, doc, MarkupKind::kBold);
  auto list = TokenAfter(corpus, doc, "List Price: ");
  auto newp = TokenAfter(corpus, doc, "New: ");
  auto used = TokenAfter(corpus, doc, "Used: ");
  if (title && list && newp && used) {
    rows.push_back({*title, *list, *newp, *used});
  }
  return rows;
}

Rows AmazonTNRows(const Corpus& corpus, const std::vector<Value>& in) {
  Rows rows;
  for (Row& r : AmazonRows(corpus, in)) {
    rows.push_back({r[0], r[2]});
  }
  return rows;
}

// --------------------------------------------------------------- DBLife

bool LooksLikePersonLine(std::string_view s) {
  // At least two capitalized words.
  int caps = 0;
  bool at_word_start = true;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      at_word_start = true;
    } else {
      if (at_word_start && std::isupper(static_cast<unsigned char>(c))) {
        ++caps;
      }
      at_word_start = false;
    }
  }
  return caps >= 2;
}

Rows PanelistRows(const Corpus& corpus, const std::vector<Value>& in) {
  Rows rows;
  const Document& doc = DocOf(corpus, in[0]);
  for (Value& v : RunsUnderLabel(corpus, doc, MarkupKind::kListItem,
                                 "panelists")) {
    if (LooksLikePersonLine(v.AsText())) rows.push_back({std::move(v)});
  }
  return rows;
}

Rows ConfRows(const Corpus& corpus, const std::vector<Value>& in) {
  Rows rows;
  const Document& doc = DocOf(corpus, in[0]);
  // Conference name: the styled (bold) part of the page title that ends
  // with a year.
  const auto& titles = doc.layer(MarkupKind::kTitle).ranges();
  if (titles.empty()) return rows;
  for (const auto& [b, e] : doc.layer(MarkupKind::kBold)
                                .MaximalRunsWithin(titles[0].first,
                                                   titles[0].second)) {
    Value v = Value::OfSpan(corpus, Span(doc.id(), b, e));
    std::string_view s = v.AsText();
    if (s.size() >= 4 &&
        std::isdigit(static_cast<unsigned char>(s[s.size() - 1]))) {
      rows.push_back({std::move(v)});
    }
  }
  return rows;
}

Rows OwnerRows(const Corpus& corpus, const std::vector<Value>& in) {
  Rows rows;
  const Document& doc = DocOf(corpus, in[0]);
  auto title = FirstRun(corpus, doc, MarkupKind::kTitle);
  if (title && LooksLikePersonLine(title->AsText())) {
    rows.push_back({*title});
  }
  return rows;
}

Rows ProjectRows(const Corpus& corpus, const std::vector<Value>& in) {
  Rows rows;
  const Document& doc = DocOf(corpus, in[0]);
  for (Value& v :
       RunsUnderLabel(corpus, doc, MarkupKind::kListItem, "projects")) {
    rows.push_back({std::move(v)});
  }
  return rows;
}

Rows ChairRows(const Corpus& corpus, const std::vector<Value>& in) {
  Rows rows;
  const Document& doc = DocOf(corpus, in[0]);
  const std::string& text = doc.text();
  size_t pos = 0;
  while (true) {
    size_t at = text.find(" chair: ", pos);
    if (at == std::string::npos) break;
    pos = at + 8;
    size_t line_end = text.find('\n', pos);
    if (line_end == std::string::npos) line_end = text.size();
    Span name = doc.AlignToTokens(Span(
        doc.id(), static_cast<uint32_t>(pos), static_cast<uint32_t>(line_end)));
    if (!name.empty()) rows.push_back({Value::OfSpan(corpus, name)});
  }
  return rows;
}

}  // namespace

Status AddPreciseBaseline(TaskInstance* task) {
  Catalog* catalog = task->catalog.get();
  const std::string& id = task->id;
  std::string src;

  if (id == "T1") {
    IFLEX_RETURN_NOT_OK(Declare(catalog, "px_extractIMDB", 1, 2, ImdbRows));
    src = R"(
      t1p(title) :- imdbPages(x), px_extractIMDB(x, title, votes),
                    votes < 25000.
    )";
  } else if (id == "T2") {
    IFLEX_RETURN_NOT_OK(Declare(catalog, "px_extractEbert", 1, 2, EbertRows));
    src = R"(
      t2p(title) :- ebertPages(y), px_extractEbert(y, title, yr),
                    yr >= 1950, yr < 1970.
    )";
  } else if (id == "T3") {
    IFLEX_RETURN_NOT_OK(Declare(catalog, "px_extractIMDB", 1, 2, ImdbRows));
    IFLEX_RETURN_NOT_OK(Declare(catalog, "px_extractEbert", 1, 2, EbertRows));
    IFLEX_RETURN_NOT_OK(Declare(catalog, "px_extractPrasanna", 1, 1,
                                [](const Corpus& corpus,
                                   const std::vector<Value>& in) -> Result<Rows> {
                                  Rows rows;
                                  const Document& doc = DocOf(corpus, in[0]);
                                  auto t = FirstRun(corpus, doc,
                                                    MarkupKind::kHyperlink);
                                  if (t) rows.push_back({*t});
                                  return rows;
                                }));
    src = R"(
      itp(x, t1) :- imdbPages(x), px_extractIMDB(x, t1, votes).
      etp(y, t2) :- ebertPages(y), px_extractEbert(y, t2, yr).
      ptp(z, t3) :- prasannaPages(z), px_extractPrasanna(z, t3).
      t3p(t1) :- itp(x, t1), etp(y, t2), similar(t1, t2),
                 ptp(z, t3), similar(t2, t3).
    )";
  } else if (id == "T4") {
    IFLEX_RETURN_NOT_OK(
        Declare(catalog, "px_extractGarcia", 1, 2, GarciaRows));
    src = R"(
      t4p(title) :- garciaPages(x), px_extractGarcia(x, title, jy),
                    jy != null.
    )";
  } else if (id == "T5") {
    IFLEX_RETURN_NOT_OK(Declare(catalog, "px_extractVLDB", 1, 3, VldbRows));
    src = R"(
      t5p(title) :- vldbPages(x), px_extractVLDB(x, title, fp, lp),
                    lp < fp + 5.
    )";
  } else if (id == "T6") {
    IFLEX_RETURN_NOT_OK(Declare(catalog, "px_extractSIGMOD", 1, 2, VenueRows));
    IFLEX_RETURN_NOT_OK(Declare(catalog, "px_extractICDE", 1, 2, VenueRows));
    src = R"(
      sigp(x, title, a1) :- sigmodPages(x), px_extractSIGMOD(x, title, a1).
      icp(y, a2) :- icdePages(y), px_extractICDE(y, t2, a2).
      t6p(title) :- sigp(x, title, a1), icp(y, a2), similar(a1, a2).
    )";
  } else if (id == "T7") {
    IFLEX_RETURN_NOT_OK(
        Declare(catalog, "px_extractBarnes", 1, 2, BarnesRows));
    src = R"(
      t7p(title) :- barnesPages(x), px_extractBarnes(x, title, price),
                    price > 100.
    )";
  } else if (id == "T8") {
    IFLEX_RETURN_NOT_OK(
        Declare(catalog, "px_extractAmazon", 1, 4, AmazonRows));
    src = R"(
      t8p(t) :- amazonPages(x), px_extractAmazon(x, t, lp, np, up),
                lp = np, up < np.
    )";
  } else if (id == "T9") {
    IFLEX_RETURN_NOT_OK(
        Declare(catalog, "px_extractAmazonTN", 1, 2, AmazonTNRows));
    IFLEX_RETURN_NOT_OK(
        Declare(catalog, "px_extractBarnes", 1, 2, BarnesRows));
    src = R"(
      anp(x, t1, np) :- amazonPages(x), px_extractAmazonTN(x, t1, np).
      bnp(y, t2, bp) :- barnesPages(y), px_extractBarnes(y, t2, bp).
      t9p(t1) :- anp(x, t1, np), bnp(y, t2, bp), similar(t1, t2), np < bp.
    )";
  } else if (id == "Panel") {
    IFLEX_RETURN_NOT_OK(
        Declare(catalog, "px_extractPanelist", 1, 1, PanelistRows));
    IFLEX_RETURN_NOT_OK(Declare(catalog, "px_extractConf", 1, 1, ConfRows));
    src = R"(
      onPanelP(x, y, d) :- docs(d), px_extractPanelist(d, x),
                           px_extractConf(d, y).
    )";
  } else if (id == "Project") {
    IFLEX_RETURN_NOT_OK(Declare(catalog, "px_extractOwner", 1, 1, OwnerRows));
    IFLEX_RETURN_NOT_OK(
        Declare(catalog, "px_extractProject", 1, 1, ProjectRows));
    src = R"(
      worksOnP(x, y, d) :- docs(d), px_extractOwner(d, x),
                           px_extractProject(d, y).
    )";
  } else if (id == "Chair") {
    IFLEX_RETURN_NOT_OK(Declare(catalog, "px_extractChair", 1, 1, ChairRows));
    IFLEX_RETURN_NOT_OK(Declare(catalog, "px_extractConf", 1, 1, ConfRows));
    if (!catalog->Has("chairType")) {
      return Status::Internal("Chair task must declare chairType");
    }
    src = R"(
      chairP(x, z, y, d) :- docs(d), px_extractChair(d, x),
                            chairType(x, z), px_extractConf(d, y).
    )";
  } else {
    return Status::NotFound("no precise baseline for task " + id);
  }

  IFLEX_ASSIGN_OR_RETURN(task->precise_program, ParseProgram(src, *catalog));
  // The query is the last rule's head (the join rule in multi-rule tasks).
  task->precise_program.set_query(
      task->precise_program.rules().back().head.predicate);
  return Status::OK();
}

}  // namespace iflex
