#include "datagen/dblp.h"

#include <algorithm>

#include "common/strutil.h"
#include "datagen/builder.h"
#include "datagen/names.h"
#include "obs/trace.h"

namespace iflex {

namespace {

Span ToSpan(DocId doc, std::pair<uint32_t, uint32_t> range) {
  return Span(doc, range.first, range.second);
}

PubRecord MakeGarciaRecord(Corpus* corpus, Rng* rng, const std::string& title,
                           bool is_journal, size_t idx) {
  PubRecord p;
  p.title = title;
  p.is_journal = is_journal;
  p.year = static_cast<int>(rng->UniformRange(1975, 2005));
  int pages = static_cast<int>(rng->UniformRange(6, 40));

  PageBuilder page(StringPrintf("garcia/%zu", idx));
  page.Append("- ");
  auto title_range = page.AppendMarked(title, MarkupKind::kItalic);
  if (is_journal) {
    page.Append(". Journal Year: ");
    auto year_range = page.Append(StringPrintf("%d", p.year));
    page.Append(StringPrintf(". %d pages.", pages));
    p.doc = page.Finish(corpus);
    p.journal_year_span = ToSpan(p.doc, year_range);
  } else {
    page.Append(StringPrintf(". In %s Proceedings. %d pages.",
                             MakeConferenceAcronym(rng).c_str(), pages));
    p.doc = page.Finish(corpus);
  }
  p.title_span = ToSpan(p.doc, title_range);
  return p;
}

PubRecord MakeVldbRecord(Corpus* corpus, Rng* rng, const std::string& title,
                         bool is_short, size_t idx) {
  PubRecord p;
  p.title = title;
  p.year = static_cast<int>(rng->UniformRange(1975, 2005));
  p.first_page = static_cast<int>(rng->UniformRange(1, 1200));
  int diff = is_short ? static_cast<int>(rng->UniformRange(0, 4))
                      : static_cast<int>(rng->UniformRange(5, 30));
  p.last_page = p.first_page + diff;

  PageBuilder page(StringPrintf("vldb/%zu", idx));
  page.Append("- ");
  auto title_range = page.AppendMarked(title, MarkupKind::kItalic);
  page.Append(". pp. ");
  auto first_range = page.Append(StringPrintf("%d", p.first_page));
  page.Append(" - ");
  auto last_range = page.Append(StringPrintf("%d", p.last_page));
  page.Append(StringPrintf(". VLDB %d.", p.year));
  p.doc = page.Finish(corpus);
  p.title_span = ToSpan(p.doc, title_range);
  p.first_page_span = ToSpan(p.doc, first_range);
  p.last_page_span = ToSpan(p.doc, last_range);
  return p;
}

PubRecord MakeVenueRecord(Corpus* corpus, Rng* rng, const char* venue,
                          const std::string& title,
                          const std::string& authors, size_t idx) {
  PubRecord p;
  p.title = title;
  p.authors = authors;
  p.year = static_cast<int>(rng->UniformRange(1984, 2005));

  PageBuilder page(StringPrintf("%s/%zu", ToLower(venue).c_str(), idx));
  page.Append("- ");
  auto title_range = page.AppendMarked(title, MarkupKind::kItalic);
  page.Append(". ");
  auto authors_range = page.AppendMarked(authors, MarkupKind::kUnderline);
  page.Append(StringPrintf(". %s %d.", venue, p.year));
  p.doc = page.Finish(corpus);
  p.title_span = ToSpan(p.doc, title_range);
  p.authors_span = ToSpan(p.doc, authors_range);
  return p;
}

}  // namespace

DblpData GenerateDblp(Corpus* corpus, const DblpSpec& spec) {
  obs::TraceSpan span(obs::DefaultTracer(), "datagen.dblp");
  Rng rng(spec.seed);
  DblpData data;

  size_t total_titles =
      spec.n_garcia + spec.n_vldb + spec.n_sigmod + spec.n_icde;
  std::vector<std::string> titles =
      DistinctStrings(&rng, total_titles, MakePaperTitle);
  size_t title_cursor = 0;
  auto next_title = [&]() -> std::string {
    if (title_cursor < titles.size()) return titles[title_cursor++];
    // Pool exhausted (huge specs): suffix with a counter to stay distinct.
    return StringPrintf("%s %zu", MakePaperTitle(&rng).c_str(),
                        title_cursor++);
  };

  // Garcia-Molina list (T4): journal vs conference entries.
  size_t n_journal = static_cast<size_t>(
      static_cast<double>(spec.n_garcia) * spec.journal_fraction);
  for (size_t i = 0; i < spec.n_garcia; ++i) {
    data.garcia.push_back(MakeGarciaRecord(corpus, &rng, next_title(),
                                           /*is_journal=*/i < n_journal, i));
  }

  // VLDB list (T5): a fraction of short papers.
  size_t n_short = static_cast<size_t>(
      static_cast<double>(spec.n_vldb) * spec.short_fraction);
  for (size_t i = 0; i < spec.n_vldb; ++i) {
    data.vldb.push_back(
        MakeVldbRecord(corpus, &rng, next_title(), /*is_short=*/i < n_short, i));
  }

  // SIGMOD/ICDE (T6): disjoint author teams built from distinct persons,
  // except the first n_shared_teams teams, which publish in both venues.
  size_t n_teams_needed =
      spec.n_sigmod + spec.n_icde - spec.n_shared_teams;
  std::vector<std::string> persons =
      DistinctStrings(&rng, n_teams_needed * 2 + 4, MakePersonName);
  std::vector<std::string> teams;
  teams.reserve(n_teams_needed);
  for (size_t i = 0; i + 1 < persons.size() && teams.size() < n_teams_needed;
       i += 2) {
    teams.push_back(persons[i] + ", " + persons[i + 1]);
  }
  // teams[0 .. n_shared) appear in both venues.
  size_t shared = std::min(spec.n_shared_teams, teams.size());
  size_t team_cursor = shared;
  auto next_team = [&]() -> const std::string& {
    static const std::string kFallback = "Anonymous Author, Second Author";
    if (team_cursor < teams.size()) return teams[team_cursor++];
    return kFallback;
  };
  for (size_t i = 0; i < spec.n_sigmod; ++i) {
    const std::string& team = i < shared ? teams[i] : next_team();
    data.sigmod.push_back(
        MakeVenueRecord(corpus, &rng, "SIGMOD", next_title(), team, i));
  }
  for (size_t i = 0; i < spec.n_icde; ++i) {
    const std::string& team = i < shared ? teams[i] : next_team();
    data.icde.push_back(
        MakeVenueRecord(corpus, &rng, "ICDE", next_title(), team, i));
  }
  return data;
}

}  // namespace iflex
