#ifndef IFLEX_DATAGEN_DBLIFE_H_
#define IFLEX_DATAGEN_DBLIFE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "text/corpus.h"

namespace iflex {

/// Synthetic DBLife crawl (paper §6.3): a heterogeneous mix of conference
/// pages, researcher homepages, and mailing-list style distractor pages.
/// The real crawl (10,007 pages, 198 MB) is unavailable offline; this
/// generator produces the same *kinds* of signal the paper's higher-level
/// features key on (labels like "Panelists:"/"Chairs:", list structure,
/// names in titles), at a configurable page count.

struct ConferencePage {
  DocId doc = kInvalidDocId;
  std::string conference;  // "SIGMOD 2007"
  Span conf_span;

  struct Panelist {
    std::string name;
    Span span;
  };
  std::vector<Panelist> panelists;

  struct Chair {
    std::string name;
    std::string type;  // "pc" / "general" / "program"
    Span span;
  };
  std::vector<Chair> chairs;
};

struct HomePage {
  DocId doc = kInvalidDocId;
  std::string owner;
  Span owner_span;

  struct Project {
    std::string name;
    Span span;
  };
  std::vector<Project> projects;
};

struct DblifeSpec {
  size_t n_conferences = 60;
  size_t n_homepages = 80;
  size_t n_distractors = 160;  // mailing-list posts, misc pages
  uint64_t seed = 4;
};

struct DblifeData {
  std::vector<ConferencePage> conferences;
  std::vector<HomePage> homepages;
  std::vector<DocId> distractors;
  /// Every generated page, shuffled — the docs(d) table.
  std::vector<DocId> all_docs;
};

DblifeData GenerateDblife(Corpus* corpus, const DblifeSpec& spec);

}  // namespace iflex

#endif  // IFLEX_DATAGEN_DBLIFE_H_
