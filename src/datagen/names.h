#ifndef IFLEX_DATAGEN_NAMES_H_
#define IFLEX_DATAGEN_NAMES_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace iflex {

/// Deterministic synthetic vocabulary for the generated domains. All
/// generators draw through an explicit Rng, so a (spec, seed) pair always
/// produces the same corpus.

/// "The Silent Mountain" style movie title; `uniq` can be mixed in to
/// force distinctness beyond the pool size.
std::string MakeMovieTitle(Rng* rng);

/// "Adaptive Query Processing over Streaming Data" style paper title.
std::string MakePaperTitle(Rng* rng);

/// "Principles of Distributed Database Systems" style book title.
std::string MakeBookTitle(Rng* rng);

/// "Jane A. Smith" style person name (sometimes with middle initial).
std::string MakePersonName(Rng* rng);

/// Capitalized single-word system/project name ("Cimple").
std::string MakeProjectName(Rng* rng);

/// Lowercase filler prose of `words` words (never capitalized, never
/// numeric — it must not collide with any extraction feature).
std::string MakeProse(Rng* rng, int words);

/// Conference series acronym ("SIGMOD").
std::string MakeConferenceAcronym(Rng* rng);

/// Draws `n` *distinct* strings using `make` (retries on collision).
std::vector<std::string> DistinctStrings(Rng* rng, size_t n,
                                         std::string (*make)(Rng*));

}  // namespace iflex

#endif  // IFLEX_DATAGEN_NAMES_H_
