#include "datagen/books.h"

#include <algorithm>

#include "common/strutil.h"
#include "datagen/builder.h"
#include "datagen/names.h"
#include "obs/trace.h"

namespace iflex {

namespace {

Span ToSpan(DocId doc, std::pair<uint32_t, uint32_t> range) {
  return Span(doc, range.first, range.second);
}

std::string Money(double v) { return StringPrintf("$%.2f", v); }

std::string MakeIsbn(Rng* rng) {
  std::string out;
  for (int i = 0; i < 10; ++i) {
    out += static_cast<char>('0' + rng->Uniform(10));
  }
  return out;
}

double RoundCents(double v) {
  return static_cast<double>(static_cast<int>(v * 100 + 0.5)) / 100.0;
}

BookRecord MakeBarnesRecord(Corpus* corpus, Rng* rng,
                            const std::string& title, double price,
                            size_t idx) {
  BookRecord b;
  b.title = title;
  b.bn_price = price;
  b.isbn = MakeIsbn(rng);

  PageBuilder page(StringPrintf("barnes/%zu", idx));
  auto title_range = page.AppendMarked(title, MarkupKind::kBold);
  page.Newline();
  page.Append("Our Price: ");
  auto price_range = page.AppendMarked(Money(price), MarkupKind::kItalic);
  page.Newline();
  page.Append("ISBN: " + b.isbn);
  page.Newline();
  page.Append(MakeProse(rng, 6 + static_cast<int>(rng->Uniform(6))));
  b.doc = page.Finish(corpus);
  b.title_span = ToSpan(b.doc, title_range);
  b.bn_price_span = ToSpan(b.doc, price_range);
  return b;
}

BookRecord MakeAmazonRecord(Corpus* corpus, Rng* rng,
                            const std::string& title, double new_price,
                            bool is_deal, size_t idx) {
  BookRecord b;
  b.title = title;
  b.new_price = new_price;
  b.list_price = is_deal
                     ? new_price
                     : RoundCents(new_price * (1.1 + rng->NextDouble() * 0.4));
  b.used_price = RoundCents(new_price * (0.4 + rng->NextDouble() * 0.5));
  b.isbn = MakeIsbn(rng);

  PageBuilder page(StringPrintf("amazon/%zu", idx));
  auto title_range = page.AppendMarked(title, MarkupKind::kBold);
  page.Newline();
  page.Append("List Price: ");
  auto list_range =
      page.AppendMarked(Money(b.list_price), MarkupKind::kItalic);
  page.Newline();
  page.Append("New: ");
  auto new_range = page.Append(Money(b.new_price));
  page.Newline();
  page.Append("Used: ");
  auto used_range = page.Append(Money(b.used_price));
  page.Newline();
  page.Append("ISBN: " + b.isbn);
  b.doc = page.Finish(corpus);
  b.title_span = ToSpan(b.doc, title_range);
  b.list_price_span = ToSpan(b.doc, list_range);
  b.new_price_span = ToSpan(b.doc, new_range);
  b.used_price_span = ToSpan(b.doc, used_range);
  return b;
}

}  // namespace

BooksData GenerateBooks(Corpus* corpus, const BooksSpec& spec) {
  obs::TraceSpan span(obs::DefaultTracer(), "datagen.books");
  Rng rng(spec.seed);
  BooksData data;

  size_t shared = std::min({spec.n_shared, spec.n_amazon, spec.n_barnes});
  size_t total = spec.n_amazon + spec.n_barnes - shared;
  std::vector<std::string> titles =
      DistinctStrings(&rng, total, MakeBookTitle);
  size_t cursor = 0;
  auto next_title = [&]() -> std::string {
    if (cursor < titles.size()) return titles[cursor++];
    return StringPrintf("%s %zu", MakeBookTitle(&rng).c_str(), cursor++);
  };

  // Shared titles come first in both stores, with controlled price deltas
  // for T9.
  std::vector<std::string> shared_titles;
  for (size_t i = 0; i < shared; ++i) shared_titles.push_back(next_title());

  auto base_price = [&](bool expensive) {
    return expensive ? RoundCents(101.0 + rng.NextDouble() * 380.0)
                     : RoundCents(8.0 + rng.NextDouble() * 85.0);
  };

  size_t n_cheaper =
      shared == 0
          ? 0
          : std::max<size_t>(1, static_cast<size_t>(static_cast<double>(shared) *
                                                    spec.cheaper_at_amazon_fraction));
  size_t n_expensive = static_cast<size_t>(
      static_cast<double>(spec.n_barnes) * spec.expensive_fraction);
  size_t n_deals = static_cast<size_t>(
      static_cast<double>(spec.n_amazon) * spec.deal_fraction);

  // Barnes: shared titles first, then its own. Exactly n_expensive records
  // spread evenly get a price above $100.
  for (size_t i = 0; i < spec.n_barnes; ++i) {
    bool expensive =
        ((i + 1) * n_expensive) / spec.n_barnes !=
        (i * n_expensive) / spec.n_barnes;
    std::string title = i < shared ? shared_titles[i] : next_title();
    data.barnes.push_back(
        MakeBarnesRecord(corpus, &rng, title, base_price(expensive), i));
  }

  // Amazon: shared titles priced relative to Barnes for T9.
  for (size_t i = 0; i < spec.n_amazon; ++i) {
    std::string title;
    double new_price;
    if (i < shared) {
      title = shared_titles[i];
      double pb = data.barnes[i].bn_price;
      if (i < n_cheaper) {
        new_price = RoundCents(std::max(1.0, pb * (0.6 + rng.NextDouble() * 0.3)));
      } else {
        new_price = RoundCents(pb * (1.05 + rng.NextDouble() * 0.4));
      }
    } else {
      title = next_title();
      new_price = base_price(false);
    }
    bool is_deal = i >= shared && (i - shared) < n_deals;
    data.amazon.push_back(
        MakeAmazonRecord(corpus, &rng, title, new_price, is_deal, i));
  }
  return data;
}

}  // namespace iflex
