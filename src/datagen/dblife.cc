#include "datagen/dblife.h"

#include <algorithm>
#include <set>

#include "common/strutil.h"
#include "datagen/builder.h"
#include "datagen/names.h"
#include "obs/trace.h"

namespace iflex {

namespace {

Span ToSpan(DocId doc, std::pair<uint32_t, uint32_t> range) {
  return Span(doc, range.first, range.second);
}

const char* const kChairTypes[] = {"pc", "general", "program"};
const char* const kAffiliations[] = {
    "univ of wisconsin", "y labs",          "state college",
    "institute of data", "river university", "tech campus",
    "north lab",         "city institute"};

ConferencePage MakeConferencePage(Corpus* corpus, Rng* rng,
                                  const std::string& conference,
                                  size_t idx) {
  ConferencePage page;
  page.conference = conference;

  PageBuilder b(StringPrintf("conf/%zu", idx));
  // Conference name is a styled (bold) span inside the page title line
  // "<conference> Conference".
  uint32_t title_begin = b.size();
  auto conf_range = b.AppendMarked(conference, MarkupKind::kBold);
  auto rest = b.Append(" Conference");
  b.Mark(MarkupKind::kTitle, title_begin, rest.second);
  b.Newline();
  b.Append("welcome to the annual meeting on ");
  b.Append(MakeProse(rng, 5));
  b.Newline();

  b.AppendMarked("Panelists:", MarkupKind::kLabel);
  b.Newline();
  size_t n_panel = 2 + rng->Uniform(3);
  std::set<std::string> used;
  for (size_t i = 0; i < n_panel; ++i) {
    std::string name = MakePersonName(rng);
    if (!used.insert(name).second) continue;
    auto li_begin = b.Append("* ");
    (void)li_begin;
    auto name_range = b.AppendMarked(name, MarkupKind::kListItem);
    b.Append(" - ");
    b.Append(kAffiliations[rng->Uniform(std::size(kAffiliations))]);
    b.Newline();
    page.panelists.push_back(
        ConferencePage::Panelist{name, ToSpan(kInvalidDocId, name_range)});
  }

  b.AppendMarked("Chairs:", MarkupKind::kLabel);
  b.Newline();
  size_t n_chairs = 1 + rng->Uniform(2);
  for (size_t i = 0; i < n_chairs; ++i) {
    std::string name = MakePersonName(rng);
    if (!used.insert(name).second) continue;
    const char* type = kChairTypes[rng->Uniform(std::size(kChairTypes))];
    b.Append(StringPrintf("%s chair: ", type));
    auto name_range = b.Append(name);
    b.Newline();
    page.chairs.push_back(
        ConferencePage::Chair{name, type, ToSpan(kInvalidDocId, name_range)});
  }

  b.AppendMarked("Important Dates:", MarkupKind::kLabel);
  b.Newline();
  b.Append("submissions due soon, notifications to follow, ");
  b.Append(MakeProse(rng, 6));
  b.Newline();

  page.doc = b.Finish(corpus);
  page.conf_span = ToSpan(page.doc, conf_range);
  for (auto& p : page.panelists) p.span.doc = page.doc;
  for (auto& c : page.chairs) c.span.doc = page.doc;
  return page;
}

HomePage MakeHomePage(Corpus* corpus, Rng* rng, const std::string& owner,
                      size_t idx, std::set<std::string>* project_pool) {
  HomePage page;
  page.owner = owner;

  PageBuilder b(StringPrintf("home/%zu", idx));
  auto owner_range = b.AppendMarked(owner, MarkupKind::kTitle);
  b.Newline();
  b.Append("i am a researcher working on ");
  b.Append(MakeProse(rng, 4));
  b.Newline();

  b.AppendMarked("Projects:", MarkupKind::kLabel);
  b.Newline();
  size_t n_projects = 1 + rng->Uniform(3);
  for (size_t i = 0; i < n_projects; ++i) {
    std::string name = MakeProjectName(rng);
    if (!project_pool->insert(name + "@" + owner).second) continue;
    b.Append("* ");
    auto name_range = b.AppendMarked(name, MarkupKind::kListItem);
    b.Append(" - ");
    b.Append(MakeProse(rng, 3));
    b.Newline();
    page.projects.push_back(
        HomePage::Project{name, ToSpan(kInvalidDocId, name_range)});
  }

  b.AppendMarked("Publications:", MarkupKind::kLabel);
  b.Newline();
  b.Append("several papers about ");
  b.Append(MakeProse(rng, 5));
  b.Newline();

  page.doc = b.Finish(corpus);
  page.owner_span = ToSpan(page.doc, owner_range);
  for (auto& p : page.projects) p.span.doc = page.doc;
  return page;
}

DocId MakeDistractorPage(Corpus* corpus, Rng* rng, size_t idx) {
  PageBuilder b(StringPrintf("misc/%zu", idx));
  if (rng->Bernoulli(0.5)) {
    // Mailing-list post: mentions people but has no labels.
    b.Append("posted by ");
    b.Append(MakePersonName(rng));
    b.Newline();
    b.Append("regarding the workshop, ");
    b.Append(MakeProse(rng, 10));
  } else {
    b.AppendMarked("News:", MarkupKind::kLabel);
    b.Newline();
    b.Append(MakeProse(rng, 12));
  }
  b.Newline();
  return b.Finish(corpus);
}

}  // namespace

DblifeData GenerateDblife(Corpus* corpus, const DblifeSpec& spec) {
  obs::TraceSpan span(obs::DefaultTracer(), "datagen.dblife");
  Rng rng(spec.seed);
  DblifeData data;

  // Distinct conference names: acronym + year.
  std::set<std::string> conf_names;
  while (conf_names.size() < spec.n_conferences) {
    conf_names.insert(StringPrintf(
        "%s %d", MakeConferenceAcronym(&rng).c_str(),
        static_cast<int>(rng.UniformRange(1998, 2008))));
    if (conf_names.size() >= 10ull * 11ull) break;  // pool capacity
  }
  size_t idx = 0;
  for (const std::string& name : conf_names) {
    data.conferences.push_back(MakeConferencePage(corpus, &rng, name, idx++));
  }

  std::vector<std::string> owners =
      DistinctStrings(&rng, spec.n_homepages, MakePersonName);
  std::set<std::string> project_pool;
  for (size_t i = 0; i < owners.size(); ++i) {
    data.homepages.push_back(
        MakeHomePage(corpus, &rng, owners[i], i, &project_pool));
  }

  for (size_t i = 0; i < spec.n_distractors; ++i) {
    data.distractors.push_back(MakeDistractorPage(corpus, &rng, i));
  }

  for (const auto& c : data.conferences) data.all_docs.push_back(c.doc);
  for (const auto& h : data.homepages) data.all_docs.push_back(h.doc);
  for (DocId d : data.distractors) data.all_docs.push_back(d);
  // Shuffle deterministically for heterogeneity.
  for (size_t i = data.all_docs.size(); i > 1; --i) {
    std::swap(data.all_docs[i - 1], data.all_docs[rng.Uniform(i)]);
  }
  return data;
}

}  // namespace iflex
