#include "datagen/movies.h"

#include "common/strutil.h"
#include "datagen/builder.h"
#include "datagen/names.h"
#include "obs/trace.h"

namespace iflex {

namespace {

Span ToSpan(DocId doc, std::pair<uint32_t, uint32_t> range) {
  return Span(doc, range.first, range.second);
}

MovieRecord MakeImdbRecord(Corpus* corpus, Rng* rng, const std::string& title,
                           int rank, size_t idx) {
  MovieRecord m;
  m.title = title;
  m.rank = rank;
  m.year = static_cast<int>(rng->UniformRange(1950, 2007));
  m.rating = static_cast<double>(rng->UniformRange(60, 95)) / 10.0;
  // Always above any year (<= 2007), rating, or rank distractor. Skewed
  // low so a meaningful fraction of movies sits under T1's 25,000-vote
  // threshold.
  double u = rng->NextDouble();
  m.votes = 3100 + static_cast<int>(476900.0 * u * u * u);

  PageBuilder page(StringPrintf("imdb/%zu", idx));
  page.AppendMarked(StringPrintf("#%d", rank), MarkupKind::kBold);
  page.Append(" ");
  auto title_range = page.AppendMarked(title, MarkupKind::kItalic);
  page.Newline();
  page.Append(StringPrintf("Year: %d  Rating: %.1f", m.year, m.rating));
  page.Newline();
  page.Append("Votes: ");
  auto votes_range = page.Append(StringPrintf("%d", m.votes));
  m.doc = page.Finish(corpus);
  m.title_span = ToSpan(m.doc, title_range);
  m.votes_span = ToSpan(m.doc, votes_range);
  return m;
}

MovieRecord MakeEbertRecord(Corpus* corpus, Rng* rng, const std::string& title,
                            size_t idx) {
  MovieRecord m;
  m.title = title;
  m.year = static_cast<int>(rng->UniformRange(1940, 2007));

  PageBuilder page(StringPrintf("ebert/%zu", idx));
  auto title_range = page.AppendMarked(title, MarkupKind::kBold);
  page.Append(" (");
  auto year_range = page.Append(StringPrintf("%d", m.year));
  page.Append(")");
  page.Newline();
  page.Append(MakeProse(rng, 8 + static_cast<int>(rng->Uniform(8))));
  m.doc = page.Finish(corpus);
  m.title_span = ToSpan(m.doc, title_range);
  m.year_span = ToSpan(m.doc, year_range);
  return m;
}

MovieRecord MakePrasannaRecord(Corpus* corpus, Rng* rng,
                               const std::string& title, size_t idx) {
  MovieRecord m;
  m.title = title;
  PageBuilder page(StringPrintf("prasanna/%zu", idx));
  auto title_range = page.AppendMarked(title, MarkupKind::kHyperlink);
  page.Append(" - ");
  page.Append(MakeProse(rng, 4 + static_cast<int>(rng->Uniform(6))));
  m.doc = page.Finish(corpus);
  m.title_span = ToSpan(m.doc, title_range);
  return m;
}

}  // namespace

MoviesData GenerateMovies(Corpus* corpus, const MoviesSpec& spec) {
  obs::TraceSpan span(obs::DefaultTracer(), "datagen.movies");
  Rng rng(spec.seed);
  size_t shared = std::min({spec.n_shared, spec.n_imdb, spec.n_ebert,
                            spec.n_prasanna});
  // One distinct title universe; the first `shared` titles appear in all
  // three lists, the rest are disjoint per list.
  size_t total =
      shared + (spec.n_imdb - shared) + (spec.n_ebert - shared) +
      (spec.n_prasanna - shared);
  std::vector<std::string> titles =
      DistinctStrings(&rng, total, MakeMovieTitle);
  // Pool capacity may bound `titles`; recompute shares proportionally.
  size_t cursor = shared;

  MoviesData data;
  auto take_unique = [&](size_t n) {
    std::vector<std::string> out;
    for (size_t i = 0; i < n && cursor < titles.size(); ++i) {
      out.push_back(titles[cursor++]);
    }
    return out;
  };
  std::vector<std::string> imdb_unique = take_unique(spec.n_imdb - shared);
  std::vector<std::string> ebert_unique = take_unique(spec.n_ebert - shared);
  std::vector<std::string> prasanna_unique =
      take_unique(spec.n_prasanna - shared);

  size_t idx = 0;
  int rank = 1;
  for (size_t i = 0; i < shared; ++i) {
    data.imdb.push_back(
        MakeImdbRecord(corpus, &rng, titles[i], rank++, idx++));
  }
  for (const std::string& t : imdb_unique) {
    data.imdb.push_back(MakeImdbRecord(corpus, &rng, t, rank++, idx++));
  }
  idx = 0;
  for (size_t i = 0; i < shared; ++i) {
    data.ebert.push_back(MakeEbertRecord(corpus, &rng, titles[i], idx++));
  }
  for (const std::string& t : ebert_unique) {
    data.ebert.push_back(MakeEbertRecord(corpus, &rng, t, idx++));
  }
  idx = 0;
  for (size_t i = 0; i < shared; ++i) {
    data.prasanna.push_back(
        MakePrasannaRecord(corpus, &rng, titles[i], idx++));
  }
  for (const std::string& t : prasanna_unique) {
    data.prasanna.push_back(MakePrasannaRecord(corpus, &rng, t, idx++));
  }
  return data;
}

}  // namespace iflex
