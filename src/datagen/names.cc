#include "datagen/names.h"

#include <set>

namespace iflex {

namespace {

// Pool sizes bound the number of distinct strings each maker can produce;
// generators request fewer than the cartesian capacity.
const char* const kAdjectives[] = {
    "Silent",  "Broken",   "Golden",  "Crimson", "Hidden",  "Endless",
    "Savage",  "Gentle",   "Distant", "Burning", "Frozen",  "Electric",
    "Hollow",  "Radiant",  "Wicked",  "Quiet",   "Iron",    "Scarlet",
    "Velvet",  "Thunder",  "Winter",  "Summer",  "Ancient", "Modern",
    "Lonely",  "Brave",    "Bitter",  "Sweet",   "Rapid",   "Slow",
    "Shining", "Forgotten", "Secret", "Final",   "First",   "Lost",
    "Sacred",  "Stolen",   "Wild",    "Patient"};

const char* const kNouns[] = {
    "Mountain", "River",   "Harbor",  "Empire",  "Garden",  "Mirror",
    "Shadow",   "Horizon", "Station", "Cathedral", "Meadow", "Canyon",
    "Lantern",  "Compass", "Voyage",  "Fortress", "Island", "Temple",
    "Orchard",  "Bridge",  "Tower",   "Valley",  "Desert",  "Glacier",
    "Falcon",   "Tiger",   "Raven",   "Salmon",  "Panther", "Sparrow",
    "Engine",   "Archive", "Theater", "Museum",  "Library", "Factory",
    "Carnival", "Railway", "Lighthouse", "Observatory"};

const char* const kTopics[] = {
    "Databases",    "Systems",     "Networks",   "Algorithms",
    "Optimization", "Indexing",    "Extraction", "Integration",
    "Transactions", "Replication", "Streams",    "Warehousing",
    "Mining",       "Crawling",    "Ranking",    "Caching",
    "Recovery",     "Concurrency", "Storage",    "Queries",
    "Schemas",      "Provenance",  "Sampling",   "Clustering",
    "Partitioning", "Compression", "Encryption", "Sharding",
    "Modeling",     "Profiling"};

const char* const kVerbsGerund[] = {
    "Managing",  "Optimizing", "Indexing",  "Extracting", "Integrating",
    "Querying",  "Mining",     "Crawling",  "Ranking",    "Caching",
    "Scaling",   "Sampling",   "Profiling", "Replicating", "Sharding"};

const char* const kFirstNames[] = {
    "Jane",   "Robert", "Alice",  "David",  "Maria",  "Kevin",  "Laura",
    "Brian",  "Susan",  "Peter",  "Nancy",  "George", "Karen",  "Thomas",
    "Linda",  "Steven", "Carol",  "Edward", "Helen",  "Frank",  "Diane",
    "Walter", "Joyce",  "Arthur", "Gloria", "Henry",  "Ruth",   "Victor",
    "Emma",   "Oscar",  "Clara",  "Hugo",   "Irene",  "Felix",  "Nora",
    "Simon",  "Paula",  "Martin", "Vera",   "Leon"};

const char* const kLastNames[] = {
    "Smith",    "Johnson",  "Williams", "Jones",    "Miller",  "Davis",
    "Garcia",   "Wilson",   "Anderson", "Taylor",   "Thomas",  "Moore",
    "Martin",   "Jackson",  "Thompson", "White",    "Harris",  "Clark",
    "Lewis",    "Walker",   "Hall",     "Young",    "King",    "Wright",
    "Lopez",    "Hill",     "Scott",    "Green",    "Adams",   "Baker",
    "Nelson",   "Carter",   "Mitchell", "Perez",    "Roberts", "Turner",
    "Phillips", "Campbell", "Parker",   "Evans",    "Edwards", "Collins",
    "Stewart",  "Morris",   "Rogers",   "Reed",     "Cook",    "Morgan",
    "Bell",     "Murphy"};

const char* const kProse[] = {
    "a",      "quiet",  "story",   "about",  "memory",   "and",
    "light",  "with",   "careful", "pacing", "that",     "lingers",
    "on",     "small",  "moments", "of",     "grace",    "under",
    "wide",   "skies",  "where",   "time",   "moves",    "slowly",
    "toward", "an",     "uncertain", "end",  "beautifully", "told"};

const char* const kAcronyms[] = {"SIGMOD", "VLDB",  "ICDE",  "EDBT",
                                 "CIDR",   "PODS",  "KDD",   "WSDM",
                                 "WWW",    "CIKM"};

template <size_t N>
const char* Pick(Rng* rng, const char* const (&pool)[N]) {
  return pool[rng->Uniform(N)];
}

}  // namespace

std::string MakeMovieTitle(Rng* rng) {
  // Fixed 3-token shape: two distinct titles share at most 2 of 4 distinct
  // tokens, keeping token Jaccard <= 0.5 — strictly below the similarity
  // join threshold, so only identical titles join.
  return std::string("The ") + Pick(rng, kAdjectives) + " " +
         Pick(rng, kNouns);
}

std::string MakePaperTitle(Rng* rng) {
  return std::string(Pick(rng, kVerbsGerund)) + " " + Pick(rng, kAdjectives) +
         " " + Pick(rng, kTopics);
}

std::string MakeBookTitle(Rng* rng) {
  return std::string(Pick(rng, kAdjectives)) + " " + Pick(rng, kNouns) + " " +
         Pick(rng, kTopics);
}

std::string MakePersonName(Rng* rng) {
  std::string name = Pick(rng, kFirstNames);
  if (rng->Bernoulli(0.3)) {
    name += " ";
    name += static_cast<char>('A' + rng->Uniform(26));
    name += ".";
  }
  name += " ";
  name += Pick(rng, kLastNames);
  return name;
}

std::string MakeProjectName(Rng* rng) {
  // Capitalized single word, never colliding with the title pools.
  static const char* const kStems[] = {
      "Cimp",  "Racc",  "Quer",  "Dext", "Flux", "Grid", "Hive",  "Kite",
      "Lyra",  "Nimb",  "Onyx",  "Pika", "Rune", "Sage", "Tern",  "Vega",
      "Wren",  "Zephyr", "Acorn", "Brio"};
  static const char* const kSuffix[] = {"le", "oon", "ix", "ara", "on",
                                        "io", "us",  "a",  "or",  "em"};
  return std::string(Pick(rng, kStems)) + Pick(rng, kSuffix);
}

std::string MakeProse(Rng* rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out += " ";
    out += Pick(rng, kProse);
  }
  return out;
}

std::string MakeConferenceAcronym(Rng* rng) { return Pick(rng, kAcronyms); }

std::vector<std::string> DistinctStrings(Rng* rng, size_t n,
                                         std::string (*make)(Rng*)) {
  std::set<std::string> seen;
  std::vector<std::string> out;
  size_t attempts = 0;
  while (out.size() < n && attempts < n * 2000) {
    ++attempts;
    std::string s = make(rng);
    if (seen.insert(s).second) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace iflex
