#include "datagen/builder.h"

namespace iflex {

std::pair<uint32_t, uint32_t> PageBuilder::Append(std::string_view text) {
  uint32_t b = static_cast<uint32_t>(text_.size());
  text_.append(text);
  return {b, static_cast<uint32_t>(text_.size())};
}

std::pair<uint32_t, uint32_t> PageBuilder::AppendMarked(std::string_view text,
                                                        MarkupKind kind) {
  auto range = Append(text);
  ranges_.emplace_back(kind, range.first, range.second);
  return range;
}

DocId PageBuilder::Finish(Corpus* corpus) {
  Document doc(std::move(name_), std::move(text_));
  for (const auto& [kind, b, e] : ranges_) {
    doc.mutable_layer(kind).Add(b, e);
  }
  return corpus->Add(std::move(doc));
}

}  // namespace iflex
