#ifndef IFLEX_DATAGEN_BUILDER_H_
#define IFLEX_DATAGEN_BUILDER_H_

#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "text/corpus.h"

namespace iflex {

/// Builds one synthetic page/record with exact span bookkeeping: every
/// Append* returns the [begin, end) character range of what it wrote, so
/// generators can hand precise gold spans to the tasks without re-parsing
/// their own output.
class PageBuilder {
 public:
  explicit PageBuilder(std::string name) : name_(std::move(name)) {}

  /// Appends plain text; returns its range.
  std::pair<uint32_t, uint32_t> Append(std::string_view text);

  /// Appends text covered by one markup layer.
  std::pair<uint32_t, uint32_t> AppendMarked(std::string_view text,
                                             MarkupKind kind);

  /// Appends a newline.
  void Newline() { Append("\n"); }

  /// Marks an already-appended range with a layer (e.g. a page title that
  /// wraps several separately-appended pieces).
  void Mark(MarkupKind kind, uint32_t begin, uint32_t end) {
    ranges_.emplace_back(kind, begin, end);
  }

  /// Current length of the text written so far.
  uint32_t size() const { return static_cast<uint32_t>(text_.size()); }

  /// Finalizes the document and registers it with `corpus`.
  DocId Finish(Corpus* corpus);

 private:
  std::string name_;
  std::string text_;
  std::vector<std::tuple<MarkupKind, uint32_t, uint32_t>> ranges_;
};

}  // namespace iflex

#endif  // IFLEX_DATAGEN_BUILDER_H_
