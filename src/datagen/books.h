#ifndef IFLEX_DATAGEN_BOOKS_H_
#define IFLEX_DATAGEN_BOOKS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "text/corpus.h"

namespace iflex {

/// One book result record (paper Table 1: Amazon / Barnes & Noble query
/// results on 'Database').
struct BookRecord {
  std::string title;
  double list_price = 0;  // Amazon
  double new_price = 0;   // Amazon
  double used_price = 0;  // Amazon
  double bn_price = 0;    // Barnes & Noble
  std::string isbn;

  DocId doc = kInvalidDocId;
  Span title_span;
  Span list_price_span;
  Span new_price_span;
  Span used_price_span;
  Span bn_price_span;
};

struct BooksSpec {
  size_t n_amazon = 2490;  // paper T8: 2490 tuples
  size_t n_barnes = 5000;  // paper T7: 5000 tuples
  /// Titles sold in both stores (drives T9).
  size_t n_shared = 400;
  /// Fraction of B&N books priced above $100 (T7).
  double expensive_fraction = 0.2;
  /// Fraction of Amazon books with list == new and used < new (T8).
  double deal_fraction = 0.2;
  /// Among shared titles, fraction cheaper at Amazon (T9).
  double cheaper_at_amazon_fraction = 0.45;
  uint64_t seed = 3;
};

/// Record layouts:
///   Barnes: "<b>Title</b>\nOur Price: <i>$123.45</i>\nISBN: 0131873253\n
///            <prose>"
///   Amazon: "<b>Title</b>\nList Price: <i>$49.99</i>\nNew: $39.99\n
///            Used: $21.50"
/// Prices carry '$' and cents; the 10-digit ISBN is the numeric distractor
/// that forces price questions (italic/preceded-by/max-value) before T7's
/// "> 100" filter can work.
struct BooksData {
  std::vector<BookRecord> amazon;
  std::vector<BookRecord> barnes;
};

BooksData GenerateBooks(Corpus* corpus, const BooksSpec& spec);

}  // namespace iflex

#endif  // IFLEX_DATAGEN_BOOKS_H_
