#ifndef IFLEX_DATAGEN_DBLP_H_
#define IFLEX_DATAGEN_DBLP_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "text/corpus.h"

namespace iflex {

/// One publication record (paper Table 1: Garcia-Molina / SIGMOD / ICDE /
/// VLDB publication lists).
struct PubRecord {
  std::string title;
  std::string authors;    // rendered author list "Jane Smith, Bob K. Lee"
  int year = 0;
  bool is_journal = false;  // Garcia-Molina list only
  int first_page = 0;       // VLDB list only
  int last_page = 0;

  DocId doc = kInvalidDocId;
  Span title_span;
  Span authors_span;
  Span journal_year_span;  // valid iff is_journal
  Span first_page_span;
  Span last_page_span;
};

struct DblpSpec {
  size_t n_garcia = 312;   // paper T4: 312 tuples
  size_t n_vldb = 2136;    // paper T5: 2136 tuples
  size_t n_sigmod = 1787;  // paper T6: 1787-1798 tuples
  size_t n_icde = 1798;
  /// Author teams publishing in both SIGMOD and ICDE (drives T6).
  size_t n_shared_teams = 320;
  /// Fraction of Garcia-Molina entries that are journal papers (T4).
  double journal_fraction = 0.35;
  /// Fraction of VLDB papers at most 5 pages long (T5).
  double short_fraction = 0.2;
  uint64_t seed = 2;
};

/// Record layouts:
///   Garcia journal: "<li><i>Title</i>. Journal Year: 1999. 24 pages.</li>"
///   Garcia conf:    "<li><i>Title</i>. In SIGMOD Proceedings. 12 pages.</li>"
///   VLDB:           "<li><i>Title</i>. pp. 233 - 239. VLDB 1988.</li>"
///   SIGMOD/ICDE:    "<li><i>Title</i>. <u>Jane Smith, Bob K. Lee</u>.
///                    SIGMOD 1997.</li>"
struct DblpData {
  std::vector<PubRecord> garcia;
  std::vector<PubRecord> vldb;
  std::vector<PubRecord> sigmod;
  std::vector<PubRecord> icde;
};

DblpData GenerateDblp(Corpus* corpus, const DblpSpec& spec);

}  // namespace iflex

#endif  // IFLEX_DATAGEN_DBLP_H_
