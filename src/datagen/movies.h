#ifndef IFLEX_DATAGEN_MOVIES_H_
#define IFLEX_DATAGEN_MOVIES_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "text/corpus.h"

namespace iflex {

/// One movie record as rendered into a page fragment, with gold spans for
/// the attributes the Movies tasks extract (paper Table 1: Ebert / IMDB /
/// Prasanna top-movie lists).
struct MovieRecord {
  std::string title;
  int year = 0;
  int votes = 0;    // IMDB only
  double rating = 0;
  int rank = 0;

  DocId doc = kInvalidDocId;
  Span title_span;
  Span year_span;   // Ebert only
  Span votes_span;  // IMDB only
};

struct MoviesSpec {
  size_t n_imdb = 250;     // paper: IMDB Top 250
  size_t n_ebert = 242;    // paper: T2 runs over 242 tuples
  size_t n_prasanna = 517; // paper: T3 runs over 242-517 tuples
  /// Number of titles present in all three lists (drives T3).
  size_t n_shared = 40;
  uint64_t seed = 1;
};

/// The three movie tables. Record layouts:
///   IMDB:     "<b>#12</b> <i>The Silent Mountain</i>\n
///              Year: 1984  Rating: 8.7\nVotes: 52701"
///   Ebert:    "<b>The Silent Mountain</b> (1962)\n<prose>"
///   Prasanna: "<a>The Silent Mountain</a> - <prose>"
/// IMDB votes are drawn from [3100, 480000] so they always exceed any
/// year/rating/rank distractor; titles are italic (IMDB), bold (Ebert), or
/// hyperlinked (Prasanna), each distinctly.
struct MoviesData {
  std::vector<MovieRecord> imdb;
  std::vector<MovieRecord> ebert;
  std::vector<MovieRecord> prasanna;
};

MoviesData GenerateMovies(Corpus* corpus, const MoviesSpec& spec);

}  // namespace iflex

#endif  // IFLEX_DATAGEN_MOVIES_H_
