#include "exec/executor.h"

#include <algorithm>
#include <cctype>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "common/intern.h"
#include "common/strutil.h"
#include "exec/annotate.h"
#include "runtime/task_pool.h"

namespace iflex {

namespace {

// True once the options' deadline/cancel pair demands a cooperative stop.
bool StopRequested(const ExecOptions& options) {
  return (options.cancel != nullptr && options.cancel->Cancelled()) ||
         options.deadline.Expired();
}

// The Status a stopped execution reports; cancellation wins over deadline
// so an explicit cancel is never misattributed to timing.
Status StopStatus(const ExecOptions& options) {
  if (options.cancel != nullptr && options.cancel->Cancelled()) {
    return Status::Cancelled("Execute cancelled");
  }
  return Status::DeadlineExceeded("Execute exceeded its deadline");
}

// Document id a seed tuple is derived from, for fault-isolation
// bookkeeping: the first cell holding exactly one doc-provenance value.
// kInvalidDocId when the tuple has no document provenance.
DocId TupleDocId(const CompactTuple& tuple) {
  for (const Cell& cell : tuple.cells) {
    if (cell.assignments.size() != 1) continue;
    const Assignment& a = cell.assignments[0];
    if (a.is_contain()) return a.span.doc;
    if (a.value.kind() == Value::Kind::kDoc) return a.value.doc();
    if (a.value.has_span()) return a.value.span().doc;
  }
  return kInvalidDocId;
}

// Kill switch for the interned fast paths (hash equi-join, Verify memo):
// any non-empty IFLEX_DISABLE_FASTPATH forces the legacy scan, which the
// differential determinism tests compare against byte for byte.
bool FastPathDisabledByEnv() {
  static const bool disabled = [] {
    const char* v = std::getenv("IFLEX_DISABLE_FASTPATH");
    return v != nullptr && *v != '\0';
  }();
  return disabled;
}

// Kill switch for the rule-compilation layer alone: any non-empty
// IFLEX_DISABLE_RULE_COMPILE routes every rule through the interpreter
// while keeping the other fast paths on — the escape hatch when a compiled
// plan is suspected, and the differential baseline for the compile
// determinism suite.
bool RuleCompileDisabledByEnv() {
  static const bool disabled = [] {
    const char* v = std::getenv("IFLEX_DISABLE_RULE_COMPILE");
    return v != nullptr && *v != '\0';
  }();
  return disabled;
}

// Appends the equi-join key of a singleton-exact cell to `out`, tagged so
// two keys collide exactly when CompareValues(kEq) holds for the values:
// NULL matches only NULL, two numeric-castable values match on the number
// ("92" joins 92), everything else matches on interned text. Returns
// false when the cell cannot be hashed — contain/expansion or multi-value
// cells (tri-state outcomes), NaN (never equal to itself) — and the row
// or probe must take the legacy scan. Probes pass intern_new = false: a
// text the build side never interned matches nothing, which the sentinel
// tag encodes (build keys never contain it).
bool AppendCellKey(const Cell& cell, StringInterner& interner, bool intern_new,
                   std::string* out) {
  if (cell.is_expansion || cell.assignments.size() != 1 ||
      !cell.assignments[0].is_exact()) {
    return false;
  }
  const Value& v = cell.assignments[0].value;
  if (v.is_null()) {
    out->push_back('n');
    return true;
  }
  if (auto n = v.AsNumber()) {
    if (std::isnan(*n)) return false;
    double d = *n == 0.0 ? 0.0 : *n;  // -0.0 and +0.0 compare equal
    out->push_back('#');
    out->append(reinterpret_cast<const char*>(&d), sizeof(d));
    return true;
  }
  // Text tag; covers kDoc and kBool too — CompareValues falls through to
  // a text compare for them, and their placeholder texts are injective.
  ValueId id = intern_new ? interner.Intern(v.AsText())
                          : interner.Find(v.AsText());
  if (id == kInvalidValueId) {
    if (intern_new) return false;  // frozen interner: keep the scan
    out->push_back('m');           // probe-only miss sentinel
    return true;
  }
  out->push_back('t');
  out->append(reinterpret_cast<const char*>(&id), sizeof(id));
  return true;
}

// ----------------------------------------------------------- RuleEvaluator
//
// Evaluates one unfolded rule bottom-up over a growing "binding table":
// a compact table whose columns are the variables bound so far. Literals
// are consumed in priority order: constraints as soon as their variable is
// bound (cheap cell narrowing), then connected stored-table joins, then
// from / p-predicates / cheap filters, and *unconnected* joins last — with
// every filter that becomes evaluable at join time pushed down into the
// join loop, so similarity joins never materialize a raw cross product.
class RuleEvaluator {
 public:
  RuleEvaluator(const Catalog& catalog, const ExecOptions& options,
                const std::unordered_map<std::string, CompactTable>* idb,
                const ExecCounters* stats, obs::Tracer* tracer,
                resilience::ExecReport* report,
                WorkerContextPool* contexts = nullptr)
      : catalog_(catalog),
        options_(options),
        idb_(idb),
        stats_(stats),
        tracer_(tracer),
        report_(report),
        contexts_(contexts),
        cost_model_(obs::CostModelOrDefault(options.cost_model)),
        event_log_(obs::EventLogOrDefault(options.event_log)),
        stop_(options.deadline, options.cancel) {}

  /// Attaches a compiled plan for the next Evaluate; null (the default)
  /// runs the interpreter. The plan must outlive the evaluation — the
  /// executor's RuleCompileCache guarantees it.
  void set_plan(const CompiledRule* plan) { plan_ = plan; }

  Result<CompactTable> Evaluate(const Rule& rule) {
    // Top-level evaluation leases its own worker context for the whole
    // rule (morsel sub-evaluators run with the context of the worker
    // executing the morsel instead — see TryMorselBody). The release at
    // return is the rule-level flush barrier for the memo L1.
    if (ctx_ != nullptr || contexts_ == nullptr) {
      return EvaluateWithContext(rule);
    }
    WorkerContextLease lease(contexts_);
    ctx_ = lease.get();
    Result<CompactTable> out = EvaluateWithContext(rule);
    ctx_ = nullptr;
    return out;
  }

 private:
  Result<CompactTable> EvaluateWithContext(const Rule& rule) {
    obs::TraceSpan span(tracer_, "exec.rule", rule.head.predicate);
    scope_ = rule.head.predicate;
    stats_->rules_evaluated->Add();
    binding_ = CompactTable(std::vector<std::string>{});
    binding_.Add(CompactTuple{});
    columns_.clear();
    history_.clear();
    budget_exhausted_ = false;

    if (plan_ != nullptr) {
      // Compiled fast path (docs/PERFORMANCE.md, "Rule compilation"): the
      // plan replays the interpreter's exact operator sequence with name
      // resolution hoisted out of the per-tuple loops, constraints fused
      // into chains, and filters run columnar.
      stats_->rules_compiled->Add();
      IFLEX_ASSIGN_OR_RETURN(bool sharded, TryMorselPlan(rule));
      if (!sharded) {
        IFLEX_RETURN_NOT_OK(RunPlan(0));
      }
    } else {
      std::vector<Literal> pending;
      for (const Literal& lit : rule.body) pending.push_back(lit);

      IFLEX_ASSIGN_OR_RETURN(bool sharded, TryMorselBody(rule, &pending));
      if (!sharded) {
        IFLEX_RETURN_NOT_OK(RunPipeline(rule, &pending));
      }
    }

    IFLEX_ASSIGN_OR_RETURN(CompactTable projected, Project(rule.head));

    AnnotationSpec spec;
    spec.existence = rule.head.existence;
    for (size_t i = 0; i < rule.head.annotated.size(); ++i) {
      if (rule.head.annotated[i]) spec.annotated.push_back(i);
    }
    if (spec.empty()) return projected;
    obs::CostScope cost(cost_model_, scope_, "annotate",
                        options_.cost_iteration);
    Result<CompactTable> annotated = ApplyAnnotations(
        catalog_.corpus(), projected, spec, options_.compact_annotate,
        options_.max_table_tuples, tracer_);
    if (cost.active() && annotated.ok()) {
      cost.cost()->rows = annotated->size();
    }
    return annotated;
  }

 private:
  // Index of the lowest-priority evaluable pending literal, SIZE_MAX when
  // none is evaluable. Depends only on the bound-column set, so every
  // shard of a sharded body makes the same sequence of choices.
  size_t SelectBest(const std::vector<Literal>& pending) const {
    size_t best = SIZE_MAX;
    int best_prio = INT_MAX;
    for (size_t i = 0; i < pending.size(); ++i) {
      int prio = Priority(pending[i]);
      if (prio >= 0 && prio < best_prio) {
        best_prio = prio;
        best = i;
      }
    }
    return best;
  }

  // Consumes every pending literal in priority order against binding_.
  Status RunPipeline(const Rule& rule, std::vector<Literal>* pending) {
    while (!pending->empty()) {
      IFLEX_RETURN_NOT_OK(stop_.Check("Execute"));
      size_t best = SelectBest(*pending);
      if (best == SIZE_MAX) {
        return Status::Internal("no evaluable literal left in rule " +
                                rule.ToString());
      }
      Literal lit = std::move((*pending)[best]);
      pending->erase(pending->begin() + static_cast<ptrdiff_t>(best));
      IFLEX_RETURN_NOT_OK(Apply(lit, pending));
      if (binding_.size() > options_.max_table_tuples) {
        IFLEX_RETURN_NOT_OK(OverBudget(&binding_, "intermediate table"));
      }
    }
    return Status::OK();
  }

  // Applies the intermediate-tuple budget to an overflowing `table`.
  // Best-effort mode truncates to the cap, records the event once, and
  // latches budget_exhausted_ so enumeration loops stop growing tables;
  // otherwise the legacy hard error aborts the rule.
  Status OverBudget(CompactTable* table, const char* what) {
    if (!options_.best_effort) {
      return Status::ExecutionError(std::string(what) +
                                    " exceeds max_table_tuples");
    }
    if (!budget_exhausted_) {
      report_->AddTruncation(
          StringPrintf("%s truncated to %zu tuples", what,
                       options_.max_table_tuples));
      if (event_log_->ShouldLog(obs::LogLevel::kWarn)) {
        event_log_->Warn(
            "exec.budget",
            StringPrintf("%s in rule %s truncated to %zu tuples", what,
                         scope_.c_str(), options_.max_table_tuples));
      }
      budget_exhausted_ = true;
    }
    table->tuples().resize(options_.max_table_tuples);
    return Status::OK();
  }

  // Morsel-driven body evaluation (docs/RUNTIME.md). When a pool is
  // available and the first literal the planner would pick is a
  // stored/intensional join seeding the empty binding, carve that table
  // into small fixed-size morsels (ExecOptions::morsel_docs seed tuples
  // each) and let TaskPool participants pull them one at a time from the
  // shared batch cursor: a straggler morsel (huge document, irregular
  // cells) delays only itself, never a coarse shard's worth of siblings.
  // Each morsel runs "seed join + remaining pipeline" with a leased
  // WorkerContext (warm scratch buffers + memo L1, flushed at the morsel
  // boundary), and the morsel bindings are concatenated in morsel order.
  // Every later operator is per-tuple and literal selection depends only
  // on the bound-column set (identical across morsels), so the
  // concatenation equals the serial binding table tuple for tuple;
  // Project and ψ then run once on the merged table, because cross-tuple
  // deduplication must see all tuples. Morsel boundaries depend only on
  // table size and morsel_docs — never on timing or thread count — so any
  // thread count and any morsel size produce a bit-identical result.
  // Returns false when the body is not morsel-able (pending is left
  // untouched and the serial pipeline runs).
  Result<bool> TryMorselBody(const Rule& rule, std::vector<Literal>* pending) {
    runtime::TaskPool* pool = options_.pool;
    // Engage whenever a pool exists — even a 1-thread pool — so the
    // morsel path's overhead vs the pool-less serial pipeline is directly
    // measurable (bench_scaling's morsel_overhead_x row) and a 1-thread
    // pool exercises the exact code path production runs at N threads.
    if (pool == nullptr) return false;
    if (!columns_.empty() || pending->size() < 2) return false;
    size_t best = SelectBest(*pending);
    if (best == SIZE_MAX) return false;  // serial path reports the error
    const Literal& lit = (*pending)[best];
    if (lit.kind != Literal::Kind::kAtom) return false;
    auto kind = catalog_.KindOf(lit.atom.predicate);
    PredicateKind k = kind.ok() ? *kind : PredicateKind::kIntensional;
    const CompactTable* table = nullptr;
    if (k == PredicateKind::kExtensional) {
      IFLEX_ASSIGN_OR_RETURN(table, catalog_.Table(lit.atom.predicate));
    } else if (k == PredicateKind::kIntensional) {
      auto it = idb_->find(lit.atom.predicate);
      if (it == idb_->end()) return false;  // serial path reports the error
      table = &it->second;
    } else {
      return false;
    }
    if (table->size() < 2) return false;

    Atom seed = lit.atom;
    pending->erase(pending->begin() + static_cast<ptrdiff_t>(best));
    IFLEX_RETURN_NOT_OK(RunMorsels(rule, seed, *table, pending));
    pending->clear();
    return true;
  }

  // Morsel eligibility for the compiled path, mirroring TryMorselBody
  // condition for condition: a pool exists, the plan has a seed join over
  // a stored/intensional table of 2+ tuples, and at least one more op
  // follows it. The morsel machinery itself is shared (RunMorsels), so
  // compiled and interpreted runs carve identical morsels and merge in
  // identical order at any thread count.
  Result<bool> TryMorselPlan(const Rule& rule) {
    if (options_.pool == nullptr) return false;
    if (!columns_.empty() || plan_->ops.size() < 2 || !plan_->seed_join) {
      return false;
    }
    const Atom& seed = plan_->ops.front().atom;
    auto kind = catalog_.KindOf(seed.predicate);
    PredicateKind k = kind.ok() ? *kind : PredicateKind::kIntensional;
    const CompactTable* table = nullptr;
    if (k == PredicateKind::kExtensional) {
      IFLEX_ASSIGN_OR_RETURN(table, catalog_.Table(seed.predicate));
    } else if (k == PredicateKind::kIntensional) {
      auto it = idb_->find(seed.predicate);
      if (it == idb_->end()) return false;  // serial path reports the error
      table = &it->second;
    } else {
      return false;  // unreachable: seed_join implies a stored join
    }
    if (table->size() < 2) return false;
    IFLEX_RETURN_NOT_OK(RunMorsels(rule, seed, *table, nullptr));
    return true;
  }

  // The morsel loop proper, shared by the interpreted and compiled paths:
  // carves `table` into morsels, evaluates "seed join + rest of the body"
  // per morsel, and merges bindings in morsel order. "Rest" is the
  // remaining `pending` literals for the interpreter, or the plan's ops
  // after the seed when this evaluator carries a compiled plan (`pending`
  // is null then — connected joins never consume pending filters).
  Status RunMorsels(const Rule& rule, const Atom& seed,
                    const CompactTable& table,
                    const std::vector<Literal>* pending) {
    runtime::TaskPool* pool = options_.pool;
    size_t n = table.size();
    const size_t morsel_docs = std::max<size_t>(1, options_.morsel_docs);
    const size_t morsels = (n + morsel_docs - 1) / morsel_docs;
    obs::TraceSpan span(tracer_, "exec.morsel_body", rule.head.predicate);

    struct MorselOut {
      Status status = Status::OK();
      // False when fault isolation salvaged nothing from the range, so
      // the columns/binding below carry no schema to merge from.
      bool valid = false;
      CompactTable binding;
      std::unordered_map<std::string, size_t> columns;
      resilience::ExecReport report;
    };

    // Seed-join + remaining pipeline (or plan suffix) over the seed
    // tuples in [lo, hi), running with the worker's leased context (warm
    // scratch + memo L1).
    auto eval_range = [&](size_t lo, size_t hi, WorkerContext* ctx) {
      MorselOut out;
      out.status = resilience::FailPointStatus("exec.shard");
      if (!out.status.ok()) return out;
      CompactTable slice(table.schema());
      for (size_t j = lo; j < hi; ++j) slice.Add(table.tuples()[j]);
      RuleEvaluator sub(catalog_, options_, idb_, stats_, tracer_,
                        &out.report, contexts_);
      sub.scope_ = scope_;  // morsels charge the same rule
      sub.ctx_ = ctx;
      sub.plan_ = plan_;
      sub.binding_ = CompactTable(std::vector<std::string>{});
      sub.binding_.Add(CompactTuple{});
      std::vector<Literal> sub_pending;
      if (pending != nullptr) sub_pending = *pending;
      out.status = sub.JoinAtom(seed, slice, &sub_pending);
      if (out.status.ok()) {
        out.status = plan_ != nullptr ? sub.RunPlan(1)
                                      : sub.RunPipeline(rule, &sub_pending);
      }
      out.valid = out.status.ok();
      out.binding = std::move(sub.binding_);
      out.columns = std::move(sub.columns_);
      return out;
    };

    // One morsel; under best-effort a failing morsel is retried seed
    // tuple by seed tuple, so a single poisoned document drops only
    // itself (recorded in the report) instead of its whole morsel. The
    // lease's release is the morsel-boundary flush of the memo L1.
    auto eval_morsel = [&](size_t mi) {
      WorkerContextLease lease(contexts_);
      size_t lo = mi * morsel_docs;
      size_t hi = std::min(n, lo + morsel_docs);
      MorselOut out = eval_range(lo, hi, lease.get());
      if (out.status.ok() || !options_.best_effort || out.status.IsStop()) {
        return out;
      }
      MorselOut iso;
      iso.status = Status::OK();
      for (size_t j = lo; j < hi; ++j) {
        MorselOut one = eval_range(j, j + 1, lease.get());
        iso.report.Merge(one.report);
        if (one.status.IsStop()) {
          iso.status = one.status;
          break;
        }
        if (!one.status.ok()) {
          DocId doc = TupleDocId(table.tuples()[j]);
          if (doc != kInvalidDocId) {
            iso.report.AddFailedDoc(doc);
          } else {
            iso.report.AddFailedInput();
          }
          continue;
        }
        if (!iso.valid) {
          iso.valid = true;
          iso.binding = std::move(one.binding);
          iso.columns = std::move(one.columns);
        } else {
          for (CompactTuple& t : one.binding.tuples()) {
            iso.binding.Add(std::move(t));
          }
        }
      }
      return iso;
    };

    std::vector<std::optional<MorselOut>> slots(morsels);
    auto stop = [this] { return StopRequested(options_); };
    try {
      // grain = 1: each morsel is claimed individually from the shared
      // cursor — the chunking that balances skew already happened when
      // the table was carved into morsels.
      runtime::ParallelFor(
          pool, morsels, [&](size_t mi) { slots[mi].emplace(eval_morsel(mi)); },
          stop, /*grain=*/1);
    } catch (const std::exception& e) {
      return Status::Internal(
          std::string("worker exception in morsel evaluation: ") + e.what());
    }
    for (const auto& slot : slots) {
      // Unfilled slots mean the pool skipped work on a stop request.
      if (!slot.has_value()) return StopStatus(options_);
    }
    // Errors and degradation records surface in morsel order, so a
    // failing program fails on the same morsel regardless of thread count.
    size_t first = SIZE_MAX;
    for (size_t mi = 0; mi < morsels; ++mi) {
      MorselOut& o = *slots[mi];
      report_->Merge(o.report);
      IFLEX_RETURN_NOT_OK(o.status);
      if (first == SIZE_MAX && o.valid) first = mi;
    }
    if (first == SIZE_MAX) {
      // Best-effort isolation salvaged no seed tuple at all; the rule has
      // no surviving binding to project. Report it as a rule-level error
      // (the caller's per-rule isolation records it).
      return Status::ExecutionError("no seed document survived in rule " +
                                    rule.ToString());
    }
    columns_ = std::move(slots[first]->columns);
    binding_ = std::move(slots[first]->binding);
    for (size_t mi = first + 1; mi < morsels; ++mi) {
      for (CompactTuple& t : slots[mi]->binding.tuples()) {
        binding_.Add(std::move(t));
      }
    }
    if (binding_.size() > options_.max_table_tuples) {
      IFLEX_RETURN_NOT_OK(OverBudget(&binding_, "intermediate table"));
    }
    return Status::OK();
  }

  bool Bound(const std::string& var) const { return columns_.count(var) > 0; }

  bool AtomIsConnected(const Atom& atom) const {
    if (columns_.empty()) return true;  // first join is free
    for (const Term& t : atom.args) {
      if (!t.is_var() || Bound(t.var)) return true;  // shared var / constant
    }
    return false;
  }

  // Evaluation priority; -1 when not yet evaluable. Lower runs earlier.
  // The policy itself lives in LiteralPriority (compile.h), shared with
  // the rule compiler so compiled plans replay exactly these choices.
  int Priority(const Literal& lit) const {
    return LiteralPriority(catalog_, lit, !columns_.empty(),
                           [this](const std::string& v) { return Bound(v); });
  }

  Status Apply(const Literal& lit, std::vector<Literal>* pending) {
    switch (lit.kind) {
      case Literal::Kind::kConstraint: {
        obs::TraceSpan span(tracer_, "exec.constraint", lit.constraint.var);
        return ApplyConstraint(lit.constraint);
      }
      case Literal::Kind::kComparison: {
        obs::TraceSpan span(tracer_, "exec.comparison");
        return ApplyComparison(lit.cmp);
      }
      case Literal::Kind::kAtom: {
        PredicateKind k = catalog_.Has(lit.atom.predicate)
                              ? *catalog_.KindOf(lit.atom.predicate)
                              : PredicateKind::kIntensional;
        switch (k) {
          case PredicateKind::kExtensional: {
            obs::TraceSpan span(tracer_, "exec.join", lit.atom.predicate);
            IFLEX_ASSIGN_OR_RETURN(const CompactTable* t,
                                   catalog_.Table(lit.atom.predicate));
            return JoinAtom(lit.atom, *t, pending);
          }
          case PredicateKind::kIntensional: {
            obs::TraceSpan span(tracer_, "exec.join", lit.atom.predicate);
            auto it = idb_->find(lit.atom.predicate);
            if (it == idb_->end()) {
              return Status::Internal("intensional table not yet computed: " +
                                      lit.atom.predicate);
            }
            return JoinAtom(lit.atom, it->second, pending);
          }
          case PredicateKind::kBuiltinFrom: {
            obs::TraceSpan span(tracer_, "exec.from");
            return ApplyFrom(lit.atom);
          }
          case PredicateKind::kPPredicate: {
            obs::TraceSpan span(tracer_, "exec.ppred", lit.atom.predicate);
            return ApplyPPredicate(lit.atom);
          }
          case PredicateKind::kPFunction: {
            obs::TraceSpan span(tracer_, "exec.pfunction", lit.atom.predicate);
            return ApplyPFunction(lit.atom);
          }
          default:
            return Status::Internal("unexpected IE predicate at execution: " +
                                    lit.atom.predicate);
        }
      }
    }
    return Status::Internal("bad literal");
  }

  // ---- Compiled-plan execution (docs/PERFORMANCE.md, "Rule compilation").

  // Runs plan_->ops[start..): the exact operator sequence RunPipeline
  // would choose (the compiler replayed the selection policy), with
  // consecutive constraints fused into one pass and filters run columnar.
  // `start` is 1 on the morsel path, where the seed join already ran.
  Status RunPlan(size_t start) {
    for (size_t oi = start; oi < plan_->ops.size(); ++oi) {
      IFLEX_RETURN_NOT_OK(stop_.Check("Execute"));
      const CompiledOp& op = plan_->ops[oi];
      switch (op.kind) {
        case CompiledOp::Kind::kJoin: {
          obs::TraceSpan span(tracer_, "exec.join", op.atom.predicate);
          IFLEX_ASSIGN_OR_RETURN(const CompactTable* t,
                                 ResolveJoinTable(op.atom.predicate));
          // Compiled plans carry connected joins only, and connected
          // joins never consume pending filters (pushdown is for
          // unconnected joins, which stay on the interpreter).
          std::vector<Literal> no_pending;
          IFLEX_RETURN_NOT_OK(JoinAtom(op.atom, *t, &no_pending));
          break;
        }
        case CompiledOp::Kind::kFrom: {
          obs::TraceSpan span(tracer_, "exec.from");
          IFLEX_RETURN_NOT_OK(ApplyFrom(op.atom));
          break;
        }
        case CompiledOp::Kind::kPPredicate: {
          obs::TraceSpan span(tracer_, "exec.ppred", op.atom.predicate);
          IFLEX_RETURN_NOT_OK(ApplyPPredicate(op.atom));
          break;
        }
        case CompiledOp::Kind::kConstraintChain:
          IFLEX_RETURN_NOT_OK(RunConstraintChain(op));
          break;
        case CompiledOp::Kind::kFilterBlock:
          IFLEX_RETURN_NOT_OK(RunFilterBlock(op));
          break;
      }
      // Same budget point RunPipeline applies after each literal. Chains
      // and blocks only shrink the table, so checking once per op is
      // equivalent to the interpreter's once per pass.
      if (binding_.size() > options_.max_table_tuples) {
        IFLEX_RETURN_NOT_OK(OverBudget(&binding_, "intermediate table"));
      }
    }
    return Status::OK();
  }

  Result<const CompactTable*> ResolveJoinTable(const std::string& pred) {
    auto kind = catalog_.KindOf(pred);
    PredicateKind k = kind.ok() ? *kind : PredicateKind::kIntensional;
    if (k == PredicateKind::kExtensional) return catalog_.Table(pred);
    auto it = idb_->find(pred);
    if (it == idb_->end()) {
      return Status::Internal("intensional table not yet computed: " + pred);
    }
    return &it->second;
  }

  // Fused verify pass: one traversal of the binding table applies a whole
  // run of consecutive constraints to each tuple, dropping dead tuples at
  // the first failing step — the interpreter's per-constraint table
  // materializations collapse into one. Constraint application is
  // per-tuple independent and the chain order equals the interpreter's
  // pass order, so surviving tuples, their narrowed cells, and the memo
  // hit/miss totals are byte-identical; per-step charges reconstruct the
  // interpreter's explain rows (rows = step survivors, verify_calls =
  // step entrants), keeping the stable explain columns exact.
  Status RunConstraintChain(const CompiledOp& op) {
    obs::TraceSpan span(tracer_, "exec.constraint_chain");
    const Corpus& corpus = catalog_.corpus();
    VerifyMemoL1* memo = ctx_ != nullptr ? ctx_->memo() : nullptr;
    const size_t n = op.chain.size();
    std::vector<size_t> cols(n);
    for (size_t i = 0; i < n; ++i) {
      cols[i] = columns_.at(op.chain[i].k.lit.var);
    }
    const bool profiling = cost_model_->enabled();
    const uint64_t t0 = profiling ? obs::Tracer::NowNs() : 0;
    std::vector<uint64_t> entered(n, 0);
    std::vector<uint64_t> survived(n, 0);
    std::vector<std::unordered_set<DocId>> docs(profiling ? n : 0);
    CompactTable out(binding_.schema());
    for (const CompactTuple& b : binding_.tuples()) {
      CompactTuple merged = b;
      bool dead = false;
      for (size_t i = 0; i < n; ++i) {
        stats_->constraint_cells->Add();
        ++entered[i];
        if (profiling) {
          DocId d = TupleDocId(merged);
          if (d != kInvalidDocId) docs[i].insert(d);
        }
        IFLEX_RETURN_NOT_OK(stop_.Poll("Execute"));
        Cell cell = ApplyPreparedConstraintToCell(
            corpus, op.chain[i].k, op.chain[i].history, merged.cells[cols[i]],
            memo);
        if (cell.assignments.empty()) {
          dead = true;  // no value can satisfy this constraint
          break;
        }
        merged.cells[cols[i]] = std::move(cell);
        ++survived[i];
      }
      if (!dead) out.Add(std::move(merged));
    }
    binding_ = std::move(out);
    if (profiling) {
      // One charge per fused step, mirroring the interpreter's one
      // CostScope per constraint pass; the chain's wall time is split
      // evenly with the remainder on the first step.
      const uint64_t wall = obs::Tracer::NowNs() - t0;
      for (size_t i = 0; i < n; ++i) {
        obs::Cost c;
        c.count = 1;
        c.wall_ns = wall / n + (i == 0 ? wall % n : 0);
        c.rows = survived[i];
        c.verify_calls = entered[i];
        c.docs = docs[i].size();
        cost_model_->Charge(
            obs::CostKey{scope_, "constraint", options_.cost_iteration}, c);
      }
    }
    return Status::OK();
  }

  // A cell a columnar filter can read as one scalar: a single exact
  // assignment (constant cells and refined attribute cells qualify).
  static bool SimpleCell(const Cell& c) {
    return !c.is_expansion && c.assignments.size() == 1 &&
           c.assignments[0].is_exact();
  }

  // CompareValues under the comparison's rhs offset, matching
  // NarrowCellByComparison / CompareCells: a non-numeric shifted value
  // becomes NULL (which satisfies only NULL = NULL).
  static bool CompareValuesOffset(const Value& lhs, CmpOp op, const Value& rhs,
                                  double off) {
    if (off == 0) return CompareValues(lhs, op, rhs);
    auto n = rhs.AsNumber();
    return CompareValues(lhs, op,
                         n.has_value() ? Value::Number(*n + off)
                                       : Value::Null());
  }

  // Columnar filter pass: batches the binding table into fixed-width
  // blocks, runs each filter over a block with an early-out selection
  // vector, and reads singleton-exact cells as flat scalar columns —
  // one CompareValues (or one p-function call) per surviving row instead
  // of the interpreter's per-tuple cell machinery. Irregular rows
  // (expansion / multi-value / contain cells) take the interpreter's
  // exact per-tuple evaluation, so the pass is byte-identical: same
  // survivors in the same order, same narrowed cells, same maybe flags.
  Status RunFilterBlock(const CompiledOp& op) {
    obs::TraceSpan span(tracer_, "exec.filter_block");
    const Corpus& corpus = catalog_.corpus();
    const size_t nf = op.filters.size();
    // Column indices per filter: comparison lhs/rhs or p-function args;
    // SIZE_MAX marks a constant term (cell pre-built at compile time).
    std::vector<std::vector<size_t>> fcols(nf);
    for (size_t fi = 0; fi < nf; ++fi) {
      const CompiledFilter& f = op.filters[fi];
      if (f.kind == CompiledFilter::Kind::kComparison) {
        const Comparison& cmp = f.lit.cmp;
        fcols[fi] = {
            cmp.lhs.is_var() ? columns_.at(cmp.lhs.var) : SIZE_MAX,
            cmp.rhs.is_var() ? columns_.at(cmp.rhs.var) : SIZE_MAX};
      } else {
        for (const Term& t : f.lit.atom.args) {
          fcols[fi].push_back(t.is_var() ? columns_.at(t.var) : SIZE_MAX);
        }
      }
    }
    const bool profiling = cost_model_->enabled();
    const uint64_t t0 = profiling ? obs::Tracer::NowNs() : 0;
    std::vector<uint64_t> survivors(nf, 0);

    constexpr size_t kBlockRows = 256;
    std::vector<CompactTuple>& tuples = binding_.tuples();
    CompactTable out(binding_.schema());
    std::vector<size_t> sel(kBlockRows);
    std::vector<const Value*> lcol(kBlockRows);
    std::vector<const Value*> rcol(kBlockRows);
    std::vector<Value> args;
    for (size_t base = 0; base < tuples.size(); base += kBlockRows) {
      const size_t rows = std::min(kBlockRows, tuples.size() - base);
      size_t live = rows;
      for (size_t i = 0; i < rows; ++i) sel[i] = base + i;
      for (size_t fi = 0; fi < nf && live > 0; ++fi) {
        const CompiledFilter& f = op.filters[fi];
        size_t kept = 0;
        if (f.kind == CompiledFilter::Kind::kComparison) {
          const Comparison& cmp = f.lit.cmp;
          const size_t lhs_col = fcols[fi][0];
          const size_t rhs_col = fcols[fi][1];
          // Gather scalar views; nullptr marks an irregular row.
          for (size_t i = 0; i < live; ++i) {
            const CompactTuple& t = tuples[sel[i]];
            const Cell& lc =
                lhs_col != SIZE_MAX ? t.cells[lhs_col] : f.const_cells[0];
            const Cell& rc =
                rhs_col != SIZE_MAX ? t.cells[rhs_col] : f.const_cells[1];
            const bool simple = SimpleCell(lc) && SimpleCell(rc);
            lcol[i] = simple ? &lc.assignments[0].value : nullptr;
            rcol[i] = simple ? &rc.assignments[0].value : nullptr;
          }
          for (size_t i = 0; i < live; ++i) {
            IFLEX_RETURN_NOT_OK(stop_.Poll("Execute"));
            bool keep;
            if (lcol[i] != nullptr) {
              // Singleton-exact fast path: narrowing keeps the assignment
              // unchanged and never sets maybe, so the pass reduces to
              // the forward check plus the flipped rhs check (the latter
              // can differ when the offset lands on a non-numeric value).
              keep = CompareValuesOffset(*lcol[i], cmp.op, *rcol[i],
                                         cmp.rhs_offset) &&
                     (!cmp.rhs.is_var() ||
                      CompareValuesOffset(*rcol[i], FlipOp(cmp.op), *lcol[i],
                                          -cmp.rhs_offset));
            } else {
              keep = ComparisonOnTuple(cmp, lhs_col, rhs_col, &tuples[sel[i]]);
            }
            if (keep) sel[kept++] = sel[i];
          }
        } else {
          for (size_t i = 0; i < live; ++i) {
            IFLEX_RETURN_NOT_OK(stop_.Poll("Execute"));
            CompactTuple& t = tuples[sel[i]];
            bool simple = true;
            for (size_t ai = 0; ai < fcols[fi].size() && simple; ++ai) {
              if (fcols[fi][ai] != SIZE_MAX) {
                simple = SimpleCell(t.cells[fcols[fi][ai]]);
              }
            }
            bool keep;
            if (simple) {
              // All-singleton rows have exactly one input combination, so
              // EvalFilter would make exactly this one call and return
              // kAll or kNone — never a maybe change.
              args.clear();
              for (size_t ai = 0; ai < fcols[fi].size(); ++ai) {
                const Cell& c = fcols[fi][ai] != SIZE_MAX
                                    ? t.cells[fcols[fi][ai]]
                                    : f.const_cells[ai];
                args.push_back(c.assignments[0].value);
              }
              Result<Value> r = (*f.fn)(corpus, args);
              if (!r.ok()) return r.status();
              keep = r->AsBool();
            } else {
              IFLEX_ASSIGN_OR_RETURN(SatResult r,
                                     EvalFilter(f.lit, t, columns_));
              keep = r != SatResult::kNone;
              if (keep) t.maybe = t.maybe || r == SatResult::kSome;
            }
            if (keep) sel[kept++] = sel[i];
          }
        }
        live = kept;
        survivors[fi] += live;
      }
      for (size_t i = 0; i < live; ++i) {
        out.Add(std::move(tuples[sel[i]]));
      }
    }
    binding_ = std::move(out);
    if (profiling) {
      const uint64_t wall = obs::Tracer::NowNs() - t0;
      for (size_t fi = 0; fi < nf; ++fi) {
        obs::Cost c;
        c.count = 1;
        c.wall_ns = wall / nf + (fi == 0 ? wall % nf : 0);
        c.rows = survivors[fi];
        cost_model_->Charge(
            obs::CostKey{scope_,
                         op.filters[fi].kind == CompiledFilter::Kind::kComparison
                             ? "comparison"
                             : "pfunction",
                         options_.cost_iteration},
            c);
      }
    }
    return Status::OK();
  }

  // Tri-state evaluation of a filter literal against a tuple whose columns
  // are described by `cols`.
  Result<SatResult> EvalFilter(const Literal& lit, const CompactTuple& tuple,
                               const std::unordered_map<std::string, size_t>& cols) {
    const Corpus& corpus = catalog_.corpus();
    auto cell_for = [&](const Term& t) -> Cell {
      if (t.is_var()) return tuple.cells[cols.at(t.var)];
      return ConstantCell(t);
    };
    if (lit.kind == Literal::Kind::kComparison) {
      return CompareCells(corpus, cell_for(lit.cmp.lhs), lit.cmp.op,
                          cell_for(lit.cmp.rhs), options_.limits,
                          lit.cmp.rhs_offset);
    }
    if (lit.kind != Literal::Kind::kAtom) {
      return Status::Internal("EvalFilter expects a comparison or p-function");
    }
    const Atom& atom = lit.atom;
    IFLEX_ASSIGN_OR_RETURN(const PFunctionFn* fn,
                           catalog_.PFunction(atom.predicate));
    const size_t n_args = atom.args.size();
    // Enumeration buffers come from the worker context when one is leased
    // (warm across every tuple of a morsel); local_scratch_ otherwise.
    // Only the first n_args entries of arg_values are live this call.
    EvalScratch* scratch = ctx_ != nullptr ? &ctx_->scratch : &local_scratch_;
    scratch->Prepare(n_args);
    std::vector<std::vector<Value>>& arg_values = scratch->arg_values;
    bool complete = true;
    for (size_t i = 0; i < n_args; ++i) {
      Cell c = cell_for(atom.args[i]);
      complete = c.EnumerateValues(corpus, options_.limits.max_cell_enum,
                                   &arg_values[i]) &&
                 complete;
      if (arg_values[i].empty()) return SatResult::kNone;
    }
    size_t combos = 1;
    for (size_t i = 0; i < n_args; ++i) combos *= arg_values[i].size();
    if (combos > options_.limits.max_filter_combos || !complete) {
      return SatResult::kSome;  // sound: keep as maybe
    }
    bool any = false;
    bool all = true;
    std::vector<size_t>& idx = scratch->idx;
    std::vector<Value>& args = scratch->args;
    while (true) {
      args.clear();
      for (size_t i = 0; i < n_args; ++i) {
        args.push_back(arg_values[i][idx[i]]);
      }
      Result<Value> r = (*fn)(corpus, args);
      if (!r.ok()) return r.status();
      if (r->AsBool()) {
        any = true;
      } else {
        all = false;
      }
      if (any && !all) return SatResult::kSome;
      size_t k = 0;
      for (; k < n_args; ++k) {
        if (++idx[k] < arg_values[k].size()) break;
        idx[k] = 0;
      }
      if (k == n_args) break;
    }
    if (!any) return SatResult::kNone;
    return all ? SatResult::kAll : SatResult::kSome;
  }

  // Natural join of the binding table with a stored/intensional table,
  // with pushdown of every pending filter that becomes evaluable once the
  // atom's new columns exist.
  Status JoinAtom(const Atom& atom, const CompactTable& table,
                  std::vector<Literal>* pending) {
    obs::CostScope cost(cost_model_, scope_, "join", options_.cost_iteration);
    const Corpus& corpus = catalog_.corpus();
    struct NewCol {
      size_t table_col;
      std::string var;
    };
    struct EqCond {
      size_t table_col;
      enum { kVsBinding, kVsConstant, kVsTableCol } kind;
      size_t other = 0;  // binding col or table col
      Cell constant;
    };
    std::vector<NewCol> new_cols;
    std::vector<EqCond> conds;
    std::unordered_map<std::string, size_t> seen_in_atom;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      if (!t.is_var()) {
        conds.push_back(EqCond{i, EqCond::kVsConstant, 0, ConstantCell(t)});
        continue;
      }
      auto bit = columns_.find(t.var);
      if (bit != columns_.end()) {
        conds.push_back(EqCond{i, EqCond::kVsBinding, bit->second, Cell{}});
        continue;
      }
      auto sit = seen_in_atom.find(t.var);
      if (sit != seen_in_atom.end()) {
        conds.push_back(EqCond{i, EqCond::kVsTableCol, sit->second, Cell{}});
        continue;
      }
      seen_in_atom.emplace(t.var, i);
      new_cols.push_back(NewCol{i, t.var});
    }

    // Tentative column map for the merged tuples.
    std::unordered_map<std::string, size_t> merged_cols = columns_;
    for (const NewCol& nc : new_cols) {
      merged_cols.emplace(nc.var, merged_cols.size());
    }

    // Pull pending filters that become evaluable exactly now — but only
    // for *unconnected* joins, where the filter is what keeps the cross
    // product from materializing. Connected joins leave filters to the
    // dedicated operators, which also narrow cells.
    std::vector<Literal> filters;
    bool connected = AtomIsConnected(atom);
    for (size_t i = 0; !connected && i < pending->size();) {
      const Literal& lit = (*pending)[i];
      bool filterable = false;
      if (lit.kind == Literal::Kind::kComparison) {
        filterable = true;
      } else if (lit.kind == Literal::Kind::kAtom) {
        auto k = catalog_.KindOf(lit.atom.predicate);
        filterable = k.ok() && *k == PredicateKind::kPFunction;
      }
      if (filterable && !LiteralEvaluable(lit, columns_) &&
          LiteralEvaluable(lit, merged_cols)) {
        filters.push_back(lit);
        pending->erase(pending->begin() + static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    // Inverted-index blocking for a token-similarity filter joining one
    // binding column to one new table column (the approximate string join
    // of the paper's TR): only table tuples sharing a token with the probe
    // can satisfy the predicate.
    int sim_filter_idx = -1;
    size_t sim_binding_col = 0;
    size_t sim_table_col = 0;
    for (size_t i = 0; i < filters.size(); ++i) {
      const Literal& lit = filters[i];
      if (lit.kind != Literal::Kind::kAtom) continue;
      if (!catalog_.IsTokenSimilarity(lit.atom.predicate)) continue;
      if (lit.atom.args.size() != 2) continue;
      const Term& a = lit.atom.args[0];
      const Term& b = lit.atom.args[1];
      if (!a.is_var() || !b.is_var()) continue;
      bool a_old = columns_.count(a.var) > 0;
      bool b_old = columns_.count(b.var) > 0;
      const Term* old_term = a_old && !b_old ? &a : (!a_old && b_old ? &b : nullptr);
      const Term* new_term = old_term == &a ? &b : (old_term == &b ? &a : nullptr);
      if (old_term == nullptr || new_term == nullptr) continue;
      size_t tcol = SIZE_MAX;
      for (const NewCol& nc : new_cols) {
        if (nc.var == new_term->var) tcol = nc.table_col;
      }
      if (tcol == SIZE_MAX) continue;
      sim_filter_idx = static_cast<int>(i);
      sim_binding_col = columns_.at(old_term->var);
      sim_table_col = tcol;
      break;
    }

    // Build the token index when the fast path applies. Every value a
    // table cell can take is tokenized (bounded enumeration); a probe
    // tuple then only needs to test candidates sharing a token — lossless
    // for token-similarity predicates, whatever shape the cells are in.
    // Token sets come from the corpus token cache, so each distinct value
    // text is tokenized once per session, not once per probe.
    TokenCache& token_cache = corpus.tokens();
    std::unordered_map<ValueId, std::vector<size_t>> token_index;
    bool use_index = sim_filter_idx >= 0 && conds.empty() && table.size() > 32;
    if (use_index) {
      std::vector<ValueId> seen;
      for (size_t ti = 0; ti < table.tuples().size() && use_index; ++ti) {
        const Cell& c = table.tuples()[ti].cells[sim_table_col];
        std::vector<Value> values;
        if (!c.EnumerateValues(corpus, 512, &values)) {
          use_index = false;  // too wide to index: fall back to full scan
          break;
        }
        seen.clear();
        for (const Value& v : values) {
          for (ValueId tok : token_cache.TokensOf(v.AsText())) {
            if (std::find(seen.begin(), seen.end(), tok) == seen.end()) {
              seen.push_back(tok);
              token_index[tok].push_back(ti);
            }
          }
        }
      }
      if (!use_index) token_index.clear();
    }

    // Hash equi-join fast path: for joins carrying equality conditions,
    // key the build side by interned singleton-exact values instead of
    // scanning binding × table with a tri-state compare per pair.
    // Constant / intra-table conditions resolve once at build time; rows
    // whose join cells cannot be hashed (contain/expansion, multi-value,
    // NaN) go to an `irregular` list that every probe still scans
    // tri-state, and a probe whose own cells cannot be hashed falls back
    // to the full scan — so the fast path is byte-identical to the legacy
    // join (candidates are visited in ascending table order either way).
    StringInterner& interner = corpus.interner();
    const bool hash_eligible = options_.enable_fast_path && !conds.empty() &&
                               table.size() >= 8;
    // Fail-point site "exec.joinindex": an injected fault degrades to the
    // legacy scan — slower, never wrong.
    bool use_hash =
        hash_eligible && !resilience::FailPointFired("exec.joinindex");
    std::unordered_map<std::string, std::vector<size_t>> hash_index;
    std::vector<size_t> irregular;     // rows the index cannot cover
    std::vector<char> row_some;        // build-time kSome per indexed row
    std::vector<const EqCond*> probe_conds;  // kVsBinding, in cond order
    if (use_hash) {
      for (const EqCond& c : conds) {
        if (c.kind == EqCond::kVsBinding) probe_conds.push_back(&c);
      }
      row_some.assign(table.size(), 0);
      std::string key;
      for (size_t ti = 0; ti < table.tuples().size(); ++ti) {
        const CompactTuple& t = table.tuples()[ti];
        bool dead = false;
        bool some = false;
        for (const EqCond& c : conds) {
          if (c.kind == EqCond::kVsBinding) continue;
          const Cell& rhs =
              c.kind == EqCond::kVsConstant ? c.constant : t.cells[c.other];
          SatResult r =
              CellsEqual(corpus, t.cells[c.table_col], rhs, options_.limits);
          if (r == SatResult::kNone) {
            dead = true;
            break;
          }
          if (r == SatResult::kSome) some = true;
        }
        if (dead) continue;  // dead against every probe
        row_some[ti] = some ? 1 : 0;
        key.clear();
        bool hashable = true;
        for (const EqCond* c : probe_conds) {
          if (!AppendCellKey(t.cells[c->table_col], interner,
                             /*intern_new=*/true, &key)) {
            hashable = false;
            break;
          }
        }
        if (hashable) {
          hash_index[key].push_back(ti);
        } else {
          irregular.push_back(ti);
        }
      }
      stats_->join_build_rows->Add(table.size());
    }

    CompactTable out(NewSchema(new_cols));
    std::vector<size_t> candidates;
    std::vector<char> cand_prechecked;  // conds resolved via the hash key
    std::string probe_key;
    for (const CompactTuple& b : binding_.tuples()) {
      if (budget_exhausted_) break;
      const std::vector<CompactTuple>& ttuples = table.tuples();
      candidates.clear();
      cand_prechecked.clear();
      bool indexed_probe = false;
      if (use_index) {
        const Cell& probe = b.cells[sim_binding_col];
        std::vector<Value> probe_values;
        if (probe.EnumerateValues(corpus, 512, &probe_values)) {
          std::vector<size_t> cand_set;
          for (const Value& v : probe_values) {
            for (ValueId tok : token_cache.TokensOf(v.AsText())) {
              auto it = token_index.find(tok);
              if (it == token_index.end()) continue;
              cand_set.insert(cand_set.end(), it->second.begin(),
                              it->second.end());
            }
          }
          std::sort(cand_set.begin(), cand_set.end());
          cand_set.erase(std::unique(cand_set.begin(), cand_set.end()),
                         cand_set.end());
          candidates = std::move(cand_set);
          indexed_probe = true;
        }
      } else if (use_hash) {
        probe_key.clear();
        bool hashable = true;
        for (const EqCond* c : probe_conds) {
          if (!AppendCellKey(b.cells[c->other], interner,
                             /*intern_new=*/false, &probe_key)) {
            hashable = false;  // tri-state probe: full legacy scan
            break;
          }
        }
        if (hashable) {
          stats_->join_probes->Add();
          if (cost.active()) ++cost.cost()->join_probes;
          static const std::vector<size_t> kNoRows;
          auto it = hash_index.find(probe_key);
          const std::vector<size_t>& bucket =
              it == hash_index.end() ? kNoRows : it->second;
          // Merge bucket and irregular rows in ascending table order so
          // the output order matches the legacy scan exactly.
          candidates.reserve(bucket.size() + irregular.size());
          cand_prechecked.reserve(bucket.size() + irregular.size());
          size_t bi = 0, ii = 0;
          while (bi < bucket.size() || ii < irregular.size()) {
            bool take_bucket =
                ii >= irregular.size() ||
                (bi < bucket.size() && bucket[bi] < irregular[ii]);
            candidates.push_back(take_bucket ? bucket[bi++]
                                             : irregular[ii++]);
            cand_prechecked.push_back(take_bucket ? 1 : 0);
          }
          indexed_probe = true;
        }
      }
      size_t n_candidates = indexed_probe ? candidates.size() : ttuples.size();

      for (size_t ci = 0; ci < n_candidates; ++ci) {
        size_t ti = indexed_probe ? candidates[ci] : ci;
        const CompactTuple& t = ttuples[ti];
        stats_->join_pairs->Add();
        IFLEX_RETURN_NOT_OK(stop_.Poll("Execute"));
        bool dead = false;
        bool some = false;
        if (ci < cand_prechecked.size() && cand_prechecked[ci]) {
          // Equality held by key identity; singleton-exact cells compare
          // kAll, so only the build-time conds can contribute kSome.
          some = row_some[ti] != 0;
        } else {
          for (const EqCond& c : conds) {
            const Cell& lhs = t.cells[c.table_col];
            const Cell* rhs = nullptr;
            switch (c.kind) {
              case EqCond::kVsBinding:
                rhs = &b.cells[c.other];
                break;
              case EqCond::kVsConstant:
                rhs = &c.constant;
                break;
              case EqCond::kVsTableCol:
                rhs = &t.cells[c.other];
                break;
            }
            SatResult r = CellsEqual(corpus, lhs, *rhs, options_.limits);
            if (r == SatResult::kNone) {
              dead = true;
              break;
            }
            if (r == SatResult::kSome) some = true;
          }
        }
        if (dead) continue;
        CompactTuple merged = b;
        for (const NewCol& nc : new_cols) {
          merged.cells.push_back(t.cells[nc.table_col]);
        }
        // Pushed-down filters.
        for (const Literal& f : filters) {
          IFLEX_ASSIGN_OR_RETURN(SatResult r,
                                 EvalFilter(f, merged, merged_cols));
          if (r == SatResult::kNone) {
            dead = true;
            break;
          }
          if (r == SatResult::kSome) some = true;
        }
        if (dead) continue;
        merged.maybe = b.maybe || t.maybe || some;
        out.Add(std::move(merged));
        if (out.size() > options_.max_table_tuples) {
          IFLEX_RETURN_NOT_OK(OverBudget(&out, "join output"));
          break;  // best-effort: stop enumerating candidates
        }
      }
    }
    columns_ = std::move(merged_cols);
    binding_ = std::move(out);
    if (cost.active()) {
      cost.cost()->rows = binding_.size();
      cost.cost()->docs = DistinctDocs();
    }
    return Status::OK();
  }

  static bool LiteralEvaluable(
      const Literal& lit,
      const std::unordered_map<std::string, size_t>& cols) {
    auto bound = [&](const Term& t) {
      return !t.is_var() || cols.count(t.var) > 0;
    };
    if (lit.kind == Literal::Kind::kComparison) {
      return bound(lit.cmp.lhs) && bound(lit.cmp.rhs);
    }
    if (lit.kind == Literal::Kind::kAtom) {
      for (const Term& t : lit.atom.args) {
        if (!bound(t)) return false;
      }
      return true;
    }
    return false;
  }

  template <typename NewColVec>
  std::vector<std::string> NewSchema(const NewColVec& new_cols) {
    std::vector<std::string> schema = binding_.schema();
    for (const auto& nc : new_cols) schema.push_back(nc.var);
    return schema;
  }

  // Distinct source documents among the current binding tuples. Only
  // computed when the profiler is on — it walks the whole table.
  uint64_t DistinctDocs() const {
    std::unordered_set<DocId> docs;
    for (const CompactTuple& t : binding_.tuples()) {
      DocId d = TupleDocId(t);
      if (d != kInvalidDocId) docs.insert(d);
    }
    return docs.size();
  }

  // from(x, y): appends column y = expand({contain(s) per assignment of x}).
  Status ApplyFrom(const Atom& atom) {
    obs::CostScope cost(cost_model_, scope_, "from", options_.cost_iteration);
    if (cost.active()) cost.cost()->docs = DistinctDocs();
    const Corpus& corpus = catalog_.corpus();
    if (!atom.args[0].is_var() || !atom.args[1].is_var()) {
      return Status::InvalidArgument("from() arguments must be variables");
    }
    const std::string& in_var = atom.args[0].var;
    const std::string& out_var = atom.args[1].var;
    if (Bound(out_var)) {
      return Status::InvalidArgument("from() output already bound: " +
                                     out_var);
    }
    size_t in_col = columns_.at(in_var);
    CompactTable out(AppendSchema(out_var));
    for (const CompactTuple& b : binding_.tuples()) {
      std::vector<Assignment> spans;
      for (const Assignment& a : b.cells[in_col].assignments) {
        if (a.is_contain()) {
          spans.push_back(Assignment::Contain(a.span));
        } else if (a.value.has_span()) {
          spans.push_back(Assignment::Contain(a.value.span()));
        } else if (a.value.kind() == Value::Kind::kDoc) {
          spans.push_back(
              Assignment::Contain(corpus.Get(a.value.doc()).FullSpan()));
        } else {
          return Status::ExecutionError(
              "from() applied to a value with no document provenance");
        }
      }
      CompactTuple merged = b;
      merged.cells.push_back(Cell::Expansion(std::move(spans)));
      out.Add(std::move(merged));
    }
    columns_.emplace(out_var, columns_.size());
    binding_ = std::move(out);
    if (cost.active()) cost.cost()->rows = binding_.size();
    return Status::OK();
  }

  std::vector<std::string> AppendSchema(const std::string& var) {
    std::vector<std::string> schema = binding_.schema();
    schema.push_back(var);
    return schema;
  }

  Status ApplyConstraint(const ConstraintLit& k) {
    obs::CostScope cost(cost_model_, scope_, "constraint",
                        options_.cost_iteration);
    if (cost.active()) cost.cost()->docs = DistinctDocs();
    const Corpus& corpus = catalog_.corpus();
    size_t col = columns_.at(k.var);
    std::vector<ConstraintLit>& hist = history_[k.var];
    CompactTable out(binding_.schema());
    for (const CompactTuple& b : binding_.tuples()) {
      stats_->constraint_cells->Add();
      if (cost.active()) ++cost.cost()->verify_calls;
      IFLEX_RETURN_NOT_OK(stop_.Poll("Execute"));
      IFLEX_ASSIGN_OR_RETURN(
          Cell cell,
          ApplyConstraintToCell(corpus, catalog_.features(), b.cells[col], k,
                                hist,
                                ctx_ != nullptr ? ctx_->memo() : nullptr));
      if (cell.assignments.empty()) continue;  // no value can satisfy k
      CompactTuple merged = b;
      merged.cells[col] = std::move(cell);
      out.Add(std::move(merged));
    }
    hist.push_back(k);
    binding_ = std::move(out);
    if (cost.active()) cost.cost()->rows = binding_.size();
    return Status::OK();
  }

  Status ApplyComparison(const Comparison& cmp) {
    obs::CostScope cost(cost_model_, scope_, "comparison",
                        options_.cost_iteration);
    size_t lhs_col = cmp.lhs.is_var() ? columns_.at(cmp.lhs.var) : SIZE_MAX;
    size_t rhs_col = cmp.rhs.is_var() ? columns_.at(cmp.rhs.var) : SIZE_MAX;
    CompactTable out(binding_.schema());
    for (const CompactTuple& b : binding_.tuples()) {
      IFLEX_RETURN_NOT_OK(stop_.Poll("Execute"));
      CompactTuple merged = b;
      if (ComparisonOnTuple(cmp, lhs_col, rhs_col, &merged)) {
        out.Add(std::move(merged));
      }
    }
    binding_ = std::move(out);
    if (cost.active()) cost.cost()->rows = binding_.size();
    return Status::OK();
  }

  // One tuple of ApplyComparison, shared between the interpreter pass and
  // the compiled filter block's irregular rows: narrow the lhs cell (or
  // tri-state compare when the lhs is a constant), then narrow the rhs
  // cell against the narrowed lhs. Column indices are SIZE_MAX for
  // constant sides. On true, *merged holds the narrowed tuple with its
  // maybe flag updated; false drops the tuple (a partially narrowed
  // *merged is then discarded by the caller).
  bool ComparisonOnTuple(const Comparison& cmp, size_t lhs_col,
                         size_t rhs_col, CompactTuple* merged) {
    const Corpus& corpus = catalog_.corpus();
    Cell lhs =
        lhs_col != SIZE_MAX ? merged->cells[lhs_col] : ConstantCell(cmp.lhs);
    Cell rhs =
        rhs_col != SIZE_MAX ? merged->cells[rhs_col] : ConstantCell(cmp.rhs);
    bool maybe = merged->maybe;
    bool keep;
    if (cmp.lhs.is_var()) {
      bool partial = false;
      Cell narrowed = NarrowCellByComparison(
          corpus, lhs, cmp.op, rhs, options_.limits, &partial, cmp.rhs_offset);
      keep = !narrowed.assignments.empty();
      if (keep) {
        merged->cells[lhs_col] = narrowed;
        maybe = maybe || partial;
      }
    } else {
      SatResult r = CompareCells(corpus, lhs, cmp.op, rhs, options_.limits,
                                 cmp.rhs_offset);
      keep = r != SatResult::kNone;
      maybe = maybe || r == SatResult::kSome;
    }
    if (!keep) return false;
    // Also narrow the right side when it is a variable (correlation with
    // the narrowed left side is lost, but the result stays a superset).
    if (cmp.rhs.is_var()) {
      // lhs op rhs+off  <=>  rhs flip(op) lhs-off.
      bool partial = false;
      CmpOp flipped = FlipOp(cmp.op);
      Cell narrowed = NarrowCellByComparison(
          corpus, merged->cells[rhs_col], flipped,
          cmp.lhs.is_var() ? merged->cells[lhs_col] : lhs, options_.limits,
          &partial, -cmp.rhs_offset);
      if (narrowed.assignments.empty()) return false;
      merged->cells[rhs_col] = narrowed;
      maybe = maybe || partial;
    }
    merged->maybe = maybe;
    return true;
  }

  static CmpOp FlipOp(CmpOp op) {
    switch (op) {
      case CmpOp::kLt:
        return CmpOp::kGt;
      case CmpOp::kLe:
        return CmpOp::kGe;
      case CmpOp::kGt:
        return CmpOp::kLt;
      case CmpOp::kGe:
        return CmpOp::kLe;
      case CmpOp::kEq:
      case CmpOp::kNe:
        return op;
    }
    return op;
  }

  Cell CellForTerm(const Term& t, const CompactTuple& b) const {
    if (t.is_var()) return b.cells[columns_.at(t.var)];
    return ConstantCell(t);
  }

  Status ApplyPFunction(const Atom& atom) {
    obs::CostScope cost(cost_model_, scope_, "pfunction",
                        options_.cost_iteration);
    Literal lit = Literal::OfAtom(atom);
    CompactTable out(binding_.schema());
    for (const CompactTuple& b : binding_.tuples()) {
      IFLEX_RETURN_NOT_OK(stop_.Poll("Execute"));
      IFLEX_ASSIGN_OR_RETURN(SatResult r, EvalFilter(lit, b, columns_));
      if (r == SatResult::kNone) continue;
      CompactTuple merged = b;
      merged.maybe = b.maybe || r == SatResult::kSome;
      out.Add(std::move(merged));
    }
    binding_ = std::move(out);
    if (cost.active()) cost.cost()->rows = binding_.size();
    return Status::OK();
  }

  Status ApplyPPredicate(const Atom& atom) {
    obs::CostScope cost(cost_model_, scope_, "ppred", options_.cost_iteration);
    const Corpus& corpus = catalog_.corpus();
    IFLEX_ASSIGN_OR_RETURN(const PPredicateFn* fn,
                           catalog_.PPredicate(atom.predicate));
    size_t n_inputs = *catalog_.InputArityOf(atom.predicate);

    struct OutCol {
      size_t arg_idx;
      std::string var;
    };
    std::vector<OutCol> new_cols;
    for (size_t i = n_inputs; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      if (t.is_var() && !Bound(t.var)) {
        bool dup = false;
        for (const auto& nc : new_cols) dup = dup || nc.var == t.var;
        if (!dup) new_cols.push_back(OutCol{i, t.var});
      }
    }

    std::vector<std::string> schema = binding_.schema();
    for (const auto& nc : new_cols) schema.push_back(nc.var);
    CompactTable out(std::move(schema));

    for (const CompactTuple& b : binding_.tuples()) {
      if (budget_exhausted_) break;
      IFLEX_RETURN_NOT_OK(stop_.Poll("Execute"));
      // Enumerate the possible input tuples (paper §4.1), capped. An
      // expansion cell expands into *certain* separate tuples; only a
      // plain multi-value cell (one tuple, uncertain value) makes the
      // outputs maybe. Overflowing the enumeration cap is a hard error by
      // default; best-effort mode drops just this tuple and records the
      // truncation, so the rest of the binding table still contributes.
      std::vector<std::vector<Value>> in_values(n_inputs);
      size_t combos = 1;
      bool uncertain_multi = false;
      bool drop_tuple = false;
      for (size_t i = 0; i < n_inputs && !drop_tuple; ++i) {
        Cell c = CellForTerm(atom.args[i], b);
        if (!c.EnumerateValues(corpus, options_.limits.max_ppred_combos,
                               &in_values[i])) {
          if (options_.best_effort) {
            report_->AddTruncation(StringPrintf(
                "p-predicate %s: input enumeration capped; tuple dropped",
                atom.predicate.c_str()));
            drop_tuple = true;
            break;
          }
          return Status::ExecutionError(StringPrintf(
              "p-predicate %s: too many possible input values; add "
              "constraints first",
              atom.predicate.c_str()));
        }
        if (!c.is_expansion && in_values[i].size() > 1) {
          uncertain_multi = true;
        }
        combos *= std::max<size_t>(1, in_values[i].size());
        if (combos > options_.limits.max_ppred_combos) {
          if (options_.best_effort) {
            report_->AddTruncation(StringPrintf(
                "p-predicate %s: input combinations capped; tuple dropped",
                atom.predicate.c_str()));
            drop_tuple = true;
            break;
          }
          return Status::ExecutionError(StringPrintf(
              "p-predicate %s: more than %zu input combinations",
              atom.predicate.c_str(), options_.limits.max_ppred_combos));
        }
        if (in_values[i].empty()) combos = 0;
      }
      if (drop_tuple || combos == 0) continue;
      bool multi = uncertain_multi;

      std::vector<size_t> idx(n_inputs, 0);
      while (true) {
        std::vector<Value> args;
        args.reserve(n_inputs);
        for (size_t i = 0; i < n_inputs; ++i) {
          args.push_back(in_values[i][idx[i]]);
        }
        stats_->ppred_invocations->Add();
        Result<std::vector<std::vector<Value>>> rows = (*fn)(corpus, args);
        if (!rows.ok()) return rows.status();
        for (const auto& row : *rows) {
          if (row.size() != atom.args.size() - n_inputs) {
            return Status::ExecutionError(
                "p-predicate returned a row of wrong arity: " +
                atom.predicate);
          }
          bool dead = false;
          bool some = false;
          for (size_t i = n_inputs; i < atom.args.size(); ++i) {
            const Term& t = atom.args[i];
            bool is_new = false;
            for (const auto& nc : new_cols) is_new = is_new || nc.arg_idx == i;
            if (is_new) continue;
            Cell lhs = Cell::Exact(row[i - n_inputs]);
            Cell rhs = CellForTerm(t, b);
            SatResult r = CellsEqual(corpus, lhs, rhs, options_.limits);
            if (r == SatResult::kNone) {
              dead = true;
              break;
            }
            if (r == SatResult::kSome) some = true;
          }
          if (!dead) {
            CompactTuple merged = b;
            // Pin the input cells to this concrete combination to keep the
            // input/output correlation.
            for (size_t i = 0; i < n_inputs; ++i) {
              if (atom.args[i].is_var()) {
                merged.cells[columns_.at(atom.args[i].var)] =
                    Cell::Exact(args[i]);
              }
            }
            for (const auto& nc : new_cols) {
              merged.cells.push_back(Cell::Exact(row[nc.arg_idx - n_inputs]));
            }
            merged.maybe = b.maybe || multi || some;
            out.Add(std::move(merged));
          }
        }
        size_t k = 0;
        for (; k < n_inputs; ++k) {
          if (++idx[k] < in_values[k].size()) break;
          idx[k] = 0;
        }
        if (k == n_inputs) break;
      }
      if (out.size() > options_.max_table_tuples) {
        IFLEX_RETURN_NOT_OK(OverBudget(&out, "p-predicate output"));
      }
    }
    for (const auto& nc : new_cols) columns_.emplace(nc.var, columns_.size());
    binding_ = std::move(out);
    if (cost.active()) cost.cost()->rows = binding_.size();
    return Status::OK();
  }

  Result<CompactTable> Project(const RuleHead& head) {
    obs::CostScope cost(cost_model_, scope_, "project",
                        options_.cost_iteration);
    CompactTable out(
        std::vector<std::string>(head.args.begin(), head.args.end()));
    std::vector<size_t> cols;
    for (const std::string& var : head.args) {
      auto it = columns_.find(var);
      if (it == columns_.end()) {
        return Status::Internal("unbound head variable " + var);
      }
      cols.push_back(it->second);
    }
    // Deduplicate tuples whose cells are all single exact assignments
    // (multiset -> set is world-preserving); prefer the non-maybe copy.
    std::unordered_map<std::string, size_t> seen;
    for (const CompactTuple& b : binding_.tuples()) {
      CompactTuple t;
      t.maybe = b.maybe;
      bool all_exact = true;
      std::string key;
      for (size_t c : cols) {
        t.cells.push_back(b.cells[c]);
        const Cell& cell = b.cells[c];
        if (cell.is_expansion || cell.assignments.size() != 1 ||
            !cell.assignments[0].is_exact()) {
          all_exact = false;
        } else {
          auto n = cell.assignments[0].value.AsNumber();
          if (n.has_value() &&
              cell.assignments[0].value.kind() != Value::Kind::kDoc) {
            key += StringPrintf("#%.17g|", *n);
          } else {
            key += cell.assignments[0].value.ToString() + "|";
          }
        }
      }
      if (all_exact) {
        auto it = seen.find(key);
        if (it != seen.end()) {
          if (!t.maybe) out.tuples()[it->second].maybe = false;
          continue;
        }
        seen.emplace(std::move(key), out.size());
      }
      out.Add(std::move(t));
    }
    stats_->tuples_emitted->Add(out.size());
    if (cost.active()) cost.cost()->rows = out.size();
    return out;
  }

  const Catalog& catalog_;
  const ExecOptions& options_;
  const std::unordered_map<std::string, CompactTable>* idb_;
  const ExecCounters* stats_;
  obs::Tracer* tracer_;
  resilience::ExecReport* report_;
  // Shared freelist of per-worker state (owned by the Executor) and the
  // context this evaluation runs with: leased by Evaluate for a whole
  // top-level rule, or assigned by TryMorselBody per morsel. Null context
  // falls back to local_scratch_ and the no-memo path.
  WorkerContextPool* contexts_ = nullptr;
  WorkerContext* ctx_ = nullptr;
  EvalScratch local_scratch_;
  obs::CostModel* cost_model_;
  obs::EventLog* event_log_;
  // Attribution scope: the head predicate of the rule being evaluated.
  // Shard sub-evaluators inherit it so shards charge the same rule.
  std::string scope_;
  resilience::StopPoller stop_;

  CompactTable binding_;
  std::unordered_map<std::string, size_t> columns_;
  std::unordered_map<std::string, std::vector<ConstraintLit>> history_;
  // Latched by OverBudget in best-effort mode: once an output table hit
  // the cap, enumeration loops stop adding to it.
  bool budget_exhausted_ = false;
  // Compiled plan for the rule under evaluation (owned by the Executor's
  // RuleCompileCache), or null to interpret. Morsel sub-evaluators inherit
  // it so every shard runs the same path as the whole-table run.
  const CompiledRule* plan_ = nullptr;
};

// Dependency-ordered list of intensional predicates needed for the query.
Result<std::vector<std::string>> TopoOrder(
    const std::unordered_map<std::string, std::vector<const Rule*>>& by_head,
    const std::string& query) {
  std::vector<std::string> order;
  std::unordered_set<std::string> done;
  std::unordered_set<std::string> visiting;

  struct Visitor {
    const std::unordered_map<std::string, std::vector<const Rule*>>& by_head;
    std::vector<std::string>& order;
    std::unordered_set<std::string>& done;
    std::unordered_set<std::string>& visiting;

    Status Visit(const std::string& pred) {
      if (done.count(pred)) return Status::OK();
      if (visiting.count(pred)) {
        return Status::InvalidArgument("recursive predicate: " + pred);
      }
      visiting.insert(pred);
      auto it = by_head.find(pred);
      if (it != by_head.end()) {
        for (const Rule* r : it->second) {
          for (const Literal& lit : r->body) {
            if (lit.kind != Literal::Kind::kAtom) continue;
            if (by_head.count(lit.atom.predicate) &&
                lit.atom.predicate != pred) {
              IFLEX_RETURN_NOT_OK(Visit(lit.atom.predicate));
            } else if (lit.atom.predicate == pred) {
              return Status::InvalidArgument("recursive predicate: " + pred);
            }
          }
        }
      }
      visiting.erase(pred);
      done.insert(pred);
      order.push_back(pred);
      return Status::OK();
    }
  };
  Visitor v{by_head, order, done, visiting};
  IFLEX_RETURN_NOT_OK(v.Visit(query));
  return order;
}

// Fingerprint of everything that determines a predicate's table: its rules
// and (transitively) its dependencies' fingerprints.
uint64_t PredicateFingerprint(
    const std::string& pred,
    const std::unordered_map<std::string, std::vector<const Rule*>>& by_head,
    std::unordered_map<std::string, uint64_t>* memo) {
  auto it = memo->find(pred);
  if (it != memo->end()) return it->second;
  std::string blob = "pred:" + pred + "\n";
  auto rit = by_head.find(pred);
  if (rit != by_head.end()) {
    for (const Rule* r : rit->second) {
      blob += r->ToString() + "\n";
      for (const Literal& lit : r->body) {
        if (lit.kind == Literal::Kind::kAtom &&
            by_head.count(lit.atom.predicate) &&
            lit.atom.predicate != pred) {
          blob += StringPrintf(
              "dep:%016llx\n",
              static_cast<unsigned long long>(
                  PredicateFingerprint(lit.atom.predicate, by_head, memo)));
        }
      }
    }
  }
  uint64_t fp = Fingerprint64(blob);
  memo->emplace(pred, fp);
  return fp;
}

}  // namespace

void ExecCounters::BindTo(obs::MetricRegistry* registry) {
  rules_evaluated = registry->counter("exec.rules_evaluated");
  rules_compiled = registry->counter("exec.rules_compiled");
  tuples_emitted = registry->counter("exec.tuples_emitted");
  join_pairs = registry->counter("exec.join_pairs");
  join_probes = registry->counter("exec.join_probes");
  join_build_rows = registry->counter("exec.join_build_rows");
  constraint_cells = registry->counter("exec.constraint_cells");
  ppred_invocations = registry->counter("exec.ppred_invocations");
  cache_hits = registry->counter("exec.cache_hits");
  cache_misses = registry->counter("exec.cache_misses");
  process_assignments = registry->counter("exec.process_assignments");
  process_values = registry->gauge("exec.process_values");
  intern_hits = registry->counter("exec.intern_hits");
  intern_misses = registry->counter("exec.intern_misses");
  verify_memo_hits = registry->counter("exec.verify_memo_hits");
  verify_memo_misses = registry->counter("exec.verify_memo_misses");
}

Executor::Executor(const Catalog& catalog, ExecOptions options)
    : catalog_(catalog),
      options_(options),
      tracer_(obs::TracerOrDefault(options.tracer)),
      cost_model_(obs::CostModelOrDefault(options.cost_model)),
      event_log_(obs::EventLogOrDefault(options.event_log)) {
  if (FastPathDisabledByEnv()) options_.enable_fast_path = false;
  // Rule compilation is part of the fast path: disabling the fast path
  // (option or IFLEX_DISABLE_FASTPATH) must also disable the compiled
  // path, and IFLEX_DISABLE_RULE_COMPILE is the targeted escape hatch.
  if (!options_.enable_fast_path || RuleCompileDisabledByEnv()) {
    options_.enable_rule_compile = false;
  }
  if (!options_.enable_fast_path) {
    options_.verify_memo = nullptr;
  } else if (options_.verify_memo == nullptr) {
    // No session-scoped memo supplied: a private one still pays off
    // within one Execute (history re-checks) and across Executes of this
    // executor.
    owned_verify_memo_ = std::make_unique<VerifyMemo>();
    options_.verify_memo = owned_verify_memo_.get();
  }
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics_ = owned_metrics_.get();
  }
  counters_.BindTo(metrics_);
  report_ = options_.report != nullptr ? options_.report : &owned_report_;
}

const ExecStats& Executor::stats() const {
  stats_.rules_evaluated = counters_.rules_evaluated->value();
  stats_.rules_compiled = counters_.rules_compiled->value();
  stats_.tuples_emitted = counters_.tuples_emitted->value();
  stats_.join_pairs = counters_.join_pairs->value();
  stats_.join_probes = counters_.join_probes->value();
  stats_.join_build_rows = counters_.join_build_rows->value();
  stats_.intern_hits = counters_.intern_hits->value();
  stats_.verify_memo_hits = counters_.verify_memo_hits->value();
  stats_.constraint_cells = counters_.constraint_cells->value();
  stats_.ppred_invocations = counters_.ppred_invocations->value();
  stats_.cache_hits = counters_.cache_hits->value();
  stats_.cache_misses = counters_.cache_misses->value();
  stats_.process_assignments = counters_.process_assignments->value();
  stats_.process_values = counters_.process_values->value();
  return stats_;
}

void Executor::ClearStats() {
  counters_.rules_evaluated->Reset();
  counters_.rules_compiled->Reset();
  counters_.tuples_emitted->Reset();
  counters_.join_pairs->Reset();
  counters_.join_probes->Reset();
  counters_.join_build_rows->Reset();
  counters_.intern_hits->Reset();
  counters_.intern_misses->Reset();
  counters_.verify_memo_hits->Reset();
  counters_.verify_memo_misses->Reset();
  counters_.constraint_cells->Reset();
  counters_.ppred_invocations->Reset();
  counters_.cache_hits->Reset();
  counters_.cache_misses->Reset();
  counters_.process_assignments->Reset();
  counters_.process_values->Reset();
}

Result<CompactTable> Executor::Execute(const Program& program) {
  return Execute(program, nullptr);
}

Result<CompactTable> Executor::Execute(const Program& program,
                                       ReuseCache* cache) {
  report_->Clear();
  // Reset up front so an execution failing before the GaugeFinalizer is
  // even constructed (parse/topo-order errors) still reports 0, never the
  // previous run's stale numbers.
  counters_.process_assignments->Set(0);
  counters_.process_values->Set(0);
  if (event_log_->ShouldLog(obs::LogLevel::kInfo)) {
    event_log_->Info("exec",
                     StringPrintf("execute begin: query=%s",
                                  program.query().c_str()));
  }
  // Baselines for the execute-level "caches" charge and the fail-point
  // trip detector: deltas across this Execute, not process totals.
  const bool profiling = cost_model_->enabled();
  const uint64_t span_start_ns = obs::Tracer::NowNs();
  const uint64_t memo_hits_before =
      options_.verify_memo != nullptr ? options_.verify_memo->hits() : 0;
  const uint64_t arena_before = catalog_.corpus().interner().arena_bytes();
  std::vector<std::pair<std::string, uint64_t>> failpoint_hits_before;
  if (resilience::FailPoints::Active()) {
    for (std::string& site : resilience::FailPoints::Instance().ArmedSites()) {
      uint64_t hits = resilience::FailPoints::Instance().HitCount(site);
      failpoint_hits_before.emplace_back(std::move(site), hits);
    }
  }
  Result<CompactTable> result = [&]() -> Result<CompactTable> {
    try {
      return ExecuteInternal(program, cache);
    } catch (const std::exception& e) {
      // Worker exceptions that escape the join-level traps (or a throw on
      // the calling thread itself) degrade to a clean error, never a
      // process abort.
      return Status::Internal(std::string("uncaught worker exception: ") +
                              e.what());
    }
  }();
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      metrics_->counter("resilience.deadline_exceeded")->Add();
    } else if (result.status().code() == StatusCode::kCancelled) {
      metrics_->counter("resilience.cancelled")->Add();
    }
  }
  // Publish the cumulative totals of the session-shared caches. These are
  // Set, not Add: interner/token-cache/memo outlive any one executor, so
  // the totals are session-wide by construction.
  const StringInterner& interner = catalog_.corpus().interner();
  const TokenCache& token_cache = catalog_.corpus().tokens();
  counters_.intern_hits->Set(interner.hits() + token_cache.hits());
  counters_.intern_misses->Set(interner.misses() + token_cache.misses());
  if (options_.verify_memo != nullptr) {
    counters_.verify_memo_hits->Set(options_.verify_memo->hits());
    counters_.verify_memo_misses->Set(options_.verify_memo->misses());
  }
  if (report_->degraded) {
    metrics_->counter("resilience.degraded_runs")->Add();
    metrics_->counter("resilience.docs_failed")
        ->Add(report_->failed_docs.size());
    metrics_->counter("resilience.inputs_failed")->Add(report_->failed_inputs);
    metrics_->counter("resilience.rules_skipped")
        ->Add(report_->skipped_rules.size());
    metrics_->counter("resilience.truncations")
        ->Add(report_->truncations.size());
  }
  const uint64_t span_ns = obs::Tracer::NowNs() - span_start_ns;
  if (profiling) {
    cost_model_->AddSpan(span_ns);
    // Execute-level charge for the session-shared caches: memo hits and
    // interner growth are not observable per operator (the memo is shared
    // and hits happen deep inside cell ops), so their deltas land on one
    // row per Execute. wall_ns stays 0 — the leaf operators already
    // account for this time, and the coverage ratio must not double-count.
    obs::Cost caches;
    caches.count = 1;
    if (options_.verify_memo != nullptr) {
      caches.memo_hits = options_.verify_memo->hits() - memo_hits_before;
    }
    caches.arena_bytes =
        catalog_.corpus().interner().arena_bytes() - arena_before;
    cost_model_->Charge(
        obs::CostKey{program.query(), "caches", options_.cost_iteration},
        caches);
    report_->explain = cost_model_->Report().ToText();
  }
  if (event_log_->ShouldLog(obs::LogLevel::kInfo)) {
    event_log_->Info(
        "exec",
        StringPrintf("execute end: query=%s status=%s report=%s wall_ms=%.3f",
                     program.query().c_str(),
                     result.ok() ? "ok" : result.status().message().c_str(),
                     report_->ToString().c_str(),
                     static_cast<double>(span_ns) / 1e6));
  }
  // Flight recorder: a run that ended degraded, hit its deadline, was
  // cancelled, or tripped a fail point dumps the event-log tail into the
  // report so the context survives for post-mortems.
  const bool stopped =
      !result.ok() &&
      (result.status().code() == StatusCode::kDeadlineExceeded ||
       result.status().code() == StatusCode::kCancelled);
  bool failpoint_tripped = false;
  for (const auto& [site, before] : failpoint_hits_before) {
    if (resilience::FailPoints::Instance().HitCount(site) > before) {
      failpoint_tripped = true;
      break;
    }
  }
  if (report_->degraded || stopped || failpoint_tripped) {
    event_log_->Warn(
        "exec",
        StringPrintf("dumping flight recorder: degraded=%d stopped=%d "
                     "failpoint=%d",
                     report_->degraded ? 1 : 0, stopped ? 1 : 0,
                     failpoint_tripped ? 1 : 0));
    report_->flight_recorder = event_log_->FormatRecent();
  }
  return result;
}

namespace {

// RAII finalizer for the per-execution process gauges: whatever path
// ExecuteInternal exits through — success, error, deadline, or an
// exception unwinding to the Execute wrapper — the gauges reflect exactly
// the tables in `idb` at that moment, never a previous run's stale values
// and never a torn half-update.
class GaugeFinalizer {
 public:
  GaugeFinalizer(const std::unordered_map<std::string, CompactTable>* idb,
                 const Corpus* corpus, const ExecCounters* counters)
      : idb_(idb), corpus_(corpus), counters_(counters) {
    counters_->process_assignments->Set(0);
    counters_->process_values->Set(0);
  }

  ~GaugeFinalizer() { Finalize(); }

  /// Idempotent; the success path calls it explicitly before moving the
  /// idb map out, the destructor covers every early-exit path.
  void Finalize() {
    if (done_) return;
    done_ = true;
    size_t assignments = 0;
    double values = 0;
    for (const auto& [pred, table] : *idb_) {
      (void)pred;
      assignments += table.AssignmentCount();
      values += table.TotalValueCount(*corpus_);
    }
    counters_->process_assignments->Set(assignments);
    counters_->process_values->Set(values);
  }

 private:
  const std::unordered_map<std::string, CompactTable>* idb_;
  const Corpus* corpus_;
  const ExecCounters* counters_;
  bool done_ = false;
};

}  // namespace

Result<CompactTable> Executor::ExecuteInternal(const Program& program,
                                               ReuseCache* cache) {
  obs::TraceSpan exec_span(tracer_, "exec.execute", program.query());

  // New execution epoch: worker contexts acquired during this Execute bind
  // their memo L1s to the session memo and drop any state cached from a
  // previous Execute (the memo may have been cleared in between).
  contexts_.BeginEpoch(options_.verify_memo);
  // Write-back front for the shared reuse cache: lookups check the
  // pending batch then the striped cache; inserts buffer locally and
  // publish once at the end of this Execute (one lock pass per stripe).
  ReuseCacheL1 cache_l1(cache);

  IFLEX_ASSIGN_OR_RETURN(Program unfolded, program.Unfold(catalog_));
  std::unordered_map<std::string, std::vector<const Rule*>> by_head;
  for (const Rule& r : unfolded.rules()) {
    by_head[r.head.predicate].push_back(&r);
  }
  const std::string& query = unfolded.query();
  if (!by_head.count(query)) {
    return Status::InvalidArgument("no rule defines the query predicate " +
                                   query);
  }
  IFLEX_ASSIGN_OR_RETURN(std::vector<std::string> order,
                         TopoOrder(by_head, query));

  std::unordered_map<std::string, uint64_t> fp_memo;
  std::unordered_map<std::string, CompactTable> idb;
  // Gauges finalize on every exit path — success, error, early stop —
  // from exactly the tables computed so far (satisfies the "no torn
  // metrics on early exit" contract in docs/ROBUSTNESS.md).
  GaugeFinalizer gauges(&idb, &catalog_.corpus(), &counters_);
  for (const std::string& pred : order) {
    obs::TraceSpan pred_span(tracer_, "exec.predicate", pred);
    resilience::StopPoller stop(options_.deadline, options_.cancel);
    IFLEX_RETURN_NOT_OK(stop.Check("Execute"));
    uint64_t fp = PredicateFingerprint(pred, by_head, &fp_memo);
    if (cache != nullptr) {
      const CompactTable* hit = cache_l1.Lookup(fp);
      if (hit != nullptr) {
        counters_.cache_hits->Add();
        idb.emplace(pred, *hit);
        continue;
      }
      counters_.cache_misses->Add();
    }
    const std::vector<const Rule*>& rules = by_head[pred];
    // Events already in the report before this predicate ran; used below
    // to keep degraded tables out of the reuse cache.
    const size_t report_events_before = report_->EventCount();
    CompactTable result;
    bool first = true;
    // Folds one rule's outcome into `result`. Per-rule fault isolation:
    // under best_effort a failing rule is skipped and recorded — its
    // siblings' tuples still answer the query (superset semantics over
    // the surviving rules). Stop codes always propagate.
    auto merge_rule = [&](const Rule& rule,
                          Result<CompactTable> part) -> Status {
      if (!part.ok()) {
        if (options_.best_effort && !part.status().IsStop()) {
          report_->AddSkippedRule(pred + ": " + part.status().ToString());
          if (event_log_->ShouldLog(obs::LogLevel::kWarn)) {
            event_log_->Warn("exec.rule",
                             StringPrintf("rule for %s skipped: %s",
                                          pred.c_str(),
                                          part.status().ToString().c_str()));
          }
          return Status::OK();
        }
        return part.status();
      }
      (void)rule;
      if (first) {
        result = std::move(*part);
        first = false;
      } else {
        for (CompactTuple& tup : part->tuples()) {
          result.Add(std::move(tup));
        }
      }
      return Status::OK();
    };
    // Compiled plans, looked up (and lowered on first sight) before the
    // rule fan-out so plan pointers are fixed while workers run. A null
    // plan interprets the rule. Fail-point site "exec.compile": an
    // injected fault degrades that rule to the interpreter — slower,
    // never wrong.
    std::vector<const CompiledRule*> plans(rules.size(), nullptr);
    if (options_.enable_rule_compile) {
      for (size_t i = 0; i < rules.size(); ++i) {
        if (resilience::FailPointFired("exec.compile")) continue;
        plans[i] = compile_cache_.Get(catalog_, *rules[i]);
      }
    }
    if (options_.pool != nullptr && rules.size() > 1) {
      // Rule-per-task fan-out; merging in rule order reproduces the
      // serial append exactly, and a failing rule reports the same error
      // the serial loop would (the first failure in rule order). Each
      // task gets its own report shard, merged in rule order too.
      std::vector<resilience::ExecReport> reports(rules.size());
      std::vector<Result<CompactTable>> parts =
          runtime::ParallelMap<Result<CompactTable>>(
              options_.pool, rules.size(), [&](size_t i) {
                RuleEvaluator eval(catalog_, options_, &idb, &counters_,
                                   tracer_, &reports[i], &contexts_);
                eval.set_plan(plans[i]);
                return eval.Evaluate(*rules[i]);
              });
      for (size_t i = 0; i < rules.size(); ++i) {
        report_->Merge(reports[i]);
        IFLEX_RETURN_NOT_OK(merge_rule(*rules[i], std::move(parts[i])));
      }
    } else {
      for (size_t i = 0; i < rules.size(); ++i) {
        RuleEvaluator eval(catalog_, options_, &idb, &counters_, tracer_,
                           report_, &contexts_);
        eval.set_plan(plans[i]);
        IFLEX_RETURN_NOT_OK(merge_rule(*rules[i], eval.Evaluate(*rules[i])));
      }
    }
    if (first) {
      // Every rule of this predicate was skipped: degrade to an empty
      // table with the head schema so downstream joins stay well-formed.
      result = CompactTable(std::vector<std::string>(
          rules.front()->head.args.begin(), rules.front()->head.args.end()));
    }
    // A table assembled with faults trapped is incomplete for *this* run
    // only — caching it would silently degrade future fault-free
    // iterations, so degraded predicates never enter the cache.
    const bool clean = report_->EventCount() == report_events_before;
    if (cache != nullptr && clean) cache_l1.Insert(fp, result);
    idb.emplace(pred, std::move(result));
  }
  gauges.Finalize();
  CompactTable out = idb.at(query);
  last_idb_ = std::move(idb);
  return out;
}

double ResultSize(const CompactTable& table, const Corpus& corpus) {
  return table.ExpandedTupleCount(corpus);
}

}  // namespace iflex
