#include "exec/cell_ops.h"

#include <algorithm>

#include "common/strutil.h"

namespace iflex {

namespace {

// Memoized f(span) = v; Verify is a pure function of the key over the
// frozen corpus, so a cached verdict is exact.
bool VerifySpan(const Corpus& corpus, const PreparedConstraint& k,
                const Span& span, VerifyMemoL1* memo) {
  if (memo == nullptr || !k.base_usable) {
    return k.feature->Verify(corpus.Get(span.doc), span, k.lit.param,
                             k.lit.value);
  }
  VerifyMemo::Key key = k.base_key;
  key.target_kind = 0;
  key.doc = span.doc;
  key.begin = span.begin;
  key.end = span.end;
  if (auto cached = memo->Lookup(key)) return *cached != 0;
  bool holds =
      k.feature->Verify(corpus.Get(span.doc), span, k.lit.param, k.lit.value);
  memo->Insert(key, holds ? 1 : 0);
  return holds;
}

// Memoized VerifyText; the tri-state verdict (holds / fails / needs
// document context) is keyed by the interned scalar text.
std::optional<bool> VerifyScalar(const Corpus& corpus,
                                 const PreparedConstraint& k,
                                 std::string_view text, VerifyMemoL1* memo) {
  if (memo == nullptr || !k.base_usable) {
    return k.feature->VerifyText(text, k.lit.param, k.lit.value);
  }
  VerifyMemo::Key key = k.base_key;
  key.target_kind = 1;
  key.text = corpus.interner().Intern(text);
  if (key.text == kInvalidValueId) {  // frozen interner refused the text
    return k.feature->VerifyText(text, k.lit.param, k.lit.value);
  }
  if (auto cached = memo->Lookup(key)) {
    if (*cached < 0) return std::nullopt;
    return *cached != 0;
  }
  std::optional<bool> verdict =
      k.feature->VerifyText(text, k.lit.param, k.lit.value);
  memo->Insert(key, !verdict.has_value() ? int8_t{-1}
                                         : (*verdict ? int8_t{1} : int8_t{0}));
  return verdict;
}

// A(k, m(s)) of paper §4.2: the assignments resulting from applying
// constraint `k` to one assignment.
std::vector<Assignment> ApplyOne(const Corpus& corpus,
                                 const PreparedConstraint& k,
                                 const Assignment& a, VerifyMemoL1* memo) {
  std::vector<Assignment> out;
  if (a.is_exact()) {
    const Value& v = a.value;
    if (v.has_span()) {
      if (VerifySpan(corpus, k, v.span(), memo)) {
        out.push_back(a);
      }
    } else {
      // Scalar value: fall back to text-only verification; features that
      // need document context keep the value (no narrowing, still sound).
      auto verdict = VerifyScalar(corpus, k, v.AsText(), memo);
      if (!verdict.has_value() || *verdict) out.push_back(a);
    }
    return out;
  }
  // Contain assignment: refine into maximal satisfying regions.
  const Document& doc = corpus.Get(a.span.doc);
  for (const RefinedRegion& r :
       k.feature->Refine(doc, a.span, k.lit.param, k.lit.value)) {
    if (r.span.empty()) continue;
    if (r.exact) {
      out.push_back(Assignment::Exact(Value::OfSpan(corpus, r.span)));
    } else {
      out.push_back(Assignment::Contain(r.span));
    }
  }
  return out;
}

bool AssignmentsIdentical(const Assignment& a, const Assignment& b) {
  if (a.kind != b.kind) return false;
  if (a.is_contain()) return a.span == b.span;
  return a.value.Equals(b.value) &&
         a.value.has_span() == b.value.has_span() &&
         (!a.value.has_span() || a.value.span() == b.value.span());
}

void DedupAssignments(std::vector<Assignment>* as) {
  std::vector<Assignment> out;
  for (auto& a : *as) {
    bool dup = false;
    for (const auto& o : out) {
      if (AssignmentsIdentical(a, o)) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(std::move(a));
  }
  *as = std::move(out);
}

}  // namespace

Result<PreparedConstraint> PrepareConstraint(const Corpus& corpus,
                                             const FeatureRegistry& features,
                                             const ConstraintLit& k,
                                             bool want_memo) {
  PreparedConstraint pk;
  pk.lit = k;
  IFLEX_ASSIGN_OR_RETURN(pk.feature, features.Get(k.feature));
  if (!want_memo) return pk;
  pk.base_usable = true;
  pk.base_key.feature = corpus.interner().Intern(pk.feature->name());
  if (pk.base_key.feature == kInvalidValueId) pk.base_usable = false;
  pk.base_key.value = static_cast<uint8_t>(k.value);
  if (k.param.str.has_value()) {
    pk.base_key.param_kind = 1;
    pk.base_key.param_str = corpus.interner().Intern(*k.param.str);
    // A frozen interner can refuse new strings; keys must never collide,
    // so such constraints just go unmemoized.
    if (pk.base_key.param_str == kInvalidValueId) pk.base_usable = false;
  } else if (k.param.num.has_value()) {
    pk.base_key.param_kind = 2;
    double d = *k.param.num;
    __builtin_memcpy(&pk.base_key.param_num, &d, sizeof(d));
  }
  return pk;
}

Cell ApplyPreparedConstraintToCell(
    const Corpus& corpus, const PreparedConstraint& k,
    const std::vector<PreparedConstraint>& history, const Cell& cell,
    VerifyMemoL1* memo) {
  Cell out;
  out.is_expansion = cell.is_expansion;
  for (const Assignment& a : cell.assignments) {
    std::vector<Assignment> current = ApplyOne(corpus, k, a, memo);
    // Re-check newly created assignments against the constraints applied
    // earlier for this attribute (paper §4.2: sub-spans created with k_j
    // are checked for violation of k_1..k_{j-1}).
    for (const PreparedConstraint& prior : history) {
      std::vector<Assignment> next;
      for (const Assignment& cur : current) {
        std::vector<Assignment> rechecked = ApplyOne(corpus, prior, cur, memo);
        next.insert(next.end(), rechecked.begin(), rechecked.end());
      }
      current = std::move(next);
    }
    out.assignments.insert(out.assignments.end(), current.begin(),
                           current.end());
  }
  DedupAssignments(&out.assignments);
  return out;
}

Result<Cell> ApplyConstraintToCell(const Corpus& corpus,
                                   const FeatureRegistry& features,
                                   const Cell& cell, const ConstraintLit& k,
                                   const std::vector<ConstraintLit>& history,
                                   VerifyMemoL1* memo) {
  const bool want_memo = memo != nullptr;
  IFLEX_ASSIGN_OR_RETURN(PreparedConstraint pk,
                         PrepareConstraint(corpus, features, k, want_memo));
  std::vector<PreparedConstraint> prior;
  prior.reserve(history.size());
  for (const ConstraintLit& h : history) {
    IFLEX_ASSIGN_OR_RETURN(
        PreparedConstraint ph,
        PrepareConstraint(corpus, features, h, want_memo));
    prior.push_back(std::move(ph));
  }
  return ApplyPreparedConstraintToCell(corpus, pk, prior, cell, memo);
}

bool CompareValues(const Value& lhs, CmpOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) {
    bool both_null = lhs.is_null() && rhs.is_null();
    switch (op) {
      case CmpOp::kEq:
        return both_null;
      case CmpOp::kNe:
        return !both_null;
      default:
        return false;
    }
  }
  auto ln = lhs.AsNumber();
  auto rn = rhs.AsNumber();
  // A genuine number never matches non-numeric text: "Sqft" > 500000 must
  // be false, not a lexicographic accident.
  bool lhs_is_number = lhs.kind() == Value::Kind::kNumber;
  bool rhs_is_number = rhs.kind() == Value::Kind::kNumber;
  if ((lhs_is_number || rhs_is_number) &&
      !(ln.has_value() && rn.has_value())) {
    return op == CmpOp::kNe;
  }
  if (ln.has_value() && rn.has_value()) {
    switch (op) {
      case CmpOp::kLt:
        return *ln < *rn;
      case CmpOp::kLe:
        return *ln <= *rn;
      case CmpOp::kGt:
        return *ln > *rn;
      case CmpOp::kGe:
        return *ln >= *rn;
      case CmpOp::kEq:
        return *ln == *rn;
      case CmpOp::kNe:
        return *ln != *rn;
    }
  }
  int c = lhs.AsText().compare(rhs.AsText());
  switch (op) {
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
  }
  return false;
}

namespace {

// Enumerates a cell's values up to the cap. `complete` reports whether the
// enumeration covered every value.
std::vector<Value> EnumerateCapped(const Corpus& corpus, const Cell& cell,
                                   size_t cap, bool* complete) {
  std::vector<Value> out;
  *complete = cell.EnumerateValues(corpus, cap, &out);
  return out;
}

SatResult Combine(bool any, bool all, bool complete) {
  if (!complete) {
    // Unknown tail of values: cannot claim kNone or kAll.
    return SatResult::kSome;
  }
  if (all) return SatResult::kAll;
  if (any) return SatResult::kSome;
  return SatResult::kNone;
}

}  // namespace

namespace {

// Applies the additive comparison offset: numeric values shift, anything
// else becomes incomparable (NULL).
void ApplyOffset(std::vector<Value>* values, double offset) {
  if (offset == 0) return;
  for (Value& v : *values) {
    auto n = v.AsNumber();
    v = n.has_value() ? Value::Number(*n + offset) : Value::Null();
  }
}

}  // namespace

SatResult CompareCells(const Corpus& corpus, const Cell& lhs, CmpOp op,
                       const Cell& rhs, const CellOpLimits& limits,
                       double rhs_offset) {
  bool lc = false;
  bool rc = false;
  std::vector<Value> lv = EnumerateCapped(corpus, lhs, limits.max_cell_enum, &lc);
  std::vector<Value> rv = EnumerateCapped(corpus, rhs, limits.max_cell_enum, &rc);
  ApplyOffset(&rv, rhs_offset);
  if (lv.empty() || rv.empty()) return SatResult::kNone;
  bool any = false;
  bool all = true;
  for (const Value& a : lv) {
    for (const Value& b : rv) {
      if (CompareValues(a, op, b)) {
        any = true;
      } else {
        all = false;
      }
      if (any && !all) return SatResult::kSome;  // early out
    }
  }
  return Combine(any, all, lc && rc);
}

SatResult CellsEqual(const Corpus& corpus, const Cell& a, const Cell& b,
                     const CellOpLimits& limits) {
  return CompareCells(corpus, a, CmpOp::kEq, b, limits);
}

Cell NarrowCellByComparison(const Corpus& corpus, const Cell& cell, CmpOp op,
                            const Cell& other, const CellOpLimits& limits,
                            bool* partial, double other_offset) {
  *partial = false;
  bool oc = false;
  std::vector<Value> ov =
      EnumerateCapped(corpus, other, limits.max_cell_enum, &oc);
  ApplyOffset(&ov, other_offset);
  Cell out;
  out.is_expansion = cell.is_expansion;
  if (!oc) {
    // Other side too large to enumerate: keep everything, flag partial.
    *partial = true;
    out.assignments = cell.assignments;
    return out;
  }
  for (const Assignment& a : cell.assignments) {
    bool complete = false;
    std::vector<Value> values;
    Cell single;
    single.assignments.push_back(a);
    values = EnumerateCapped(corpus, single, limits.max_cell_enum, &complete);
    if (!complete) {
      *partial = true;
      out.assignments.push_back(a);
      continue;
    }
    bool any = false;
    bool all = true;
    for (const Value& v : values) {
      bool sat = false;
      for (const Value& o : ov) {
        if (CompareValues(v, op, o)) {
          sat = true;
          break;
        }
      }
      any = any || sat;
      all = all && sat;
    }
    if (any) {
      out.assignments.push_back(a);
      if (!all) *partial = true;
    }
  }
  return out;
}

Cell NarrowCellByEquality(const Corpus& corpus, const Cell& cell,
                          const Cell& other, const CellOpLimits& limits,
                          bool* partial) {
  return NarrowCellByComparison(corpus, cell, CmpOp::kEq, other, limits,
                                partial);
}

Cell ConstantCell(const Term& term) {
  switch (term.kind) {
    case Term::Kind::kNumber:
      return Cell::Exact(Value::Number(term.num));
    case Term::Kind::kString:
      return Cell::Exact(Value::String(term.str));
    case Term::Kind::kNull:
      return Cell::Exact(Value::Null());
    case Term::Kind::kVar:
      break;
  }
  return Cell::Exact(Value::Null());
}

}  // namespace iflex
