#include "exec/cell_ops.h"

#include <algorithm>

#include "common/strutil.h"

namespace iflex {

namespace {

// Constraint-invariant part of a VerifyMemo key (feature, value, param),
// computed once per (feature, constraint) pair instead of per assignment.
struct MemoKeyBase {
  VerifyMemo::Key key;
  bool usable = false;  // false when no memo is in play
};

MemoKeyBase MakeMemoBase(const Corpus& corpus, const Feature& fe,
                         const ConstraintLit& k, VerifyMemoL1* memo) {
  MemoKeyBase base;
  if (memo == nullptr) return base;
  base.usable = true;
  base.key.feature = corpus.interner().Intern(fe.name());
  if (base.key.feature == kInvalidValueId) base.usable = false;
  base.key.value = static_cast<uint8_t>(k.value);
  if (k.param.str.has_value()) {
    base.key.param_kind = 1;
    base.key.param_str = corpus.interner().Intern(*k.param.str);
    // A frozen interner can refuse new strings; keys must never collide,
    // so such constraints just go unmemoized.
    if (base.key.param_str == kInvalidValueId) base.usable = false;
  } else if (k.param.num.has_value()) {
    base.key.param_kind = 2;
    double d = *k.param.num;
    __builtin_memcpy(&base.key.param_num, &d, sizeof(d));
  }
  return base;
}

// Memoized f(span) = v; Verify is a pure function of the key over the
// frozen corpus, so a cached verdict is exact.
bool VerifySpan(const Corpus& corpus, const Feature& fe,
                const ConstraintLit& k, const Span& span, VerifyMemoL1* memo,
                const MemoKeyBase& base) {
  if (!base.usable) {
    return fe.Verify(corpus.Get(span.doc), span, k.param, k.value);
  }
  VerifyMemo::Key key = base.key;
  key.target_kind = 0;
  key.doc = span.doc;
  key.begin = span.begin;
  key.end = span.end;
  if (auto cached = memo->Lookup(key)) return *cached != 0;
  bool holds = fe.Verify(corpus.Get(span.doc), span, k.param, k.value);
  memo->Insert(key, holds ? 1 : 0);
  return holds;
}

// Memoized VerifyText; the tri-state verdict (holds / fails / needs
// document context) is keyed by the interned scalar text.
std::optional<bool> VerifyScalar(const Corpus& corpus, const Feature& fe,
                                 const ConstraintLit& k, std::string_view text,
                                 VerifyMemoL1* memo, const MemoKeyBase& base) {
  if (!base.usable) return fe.VerifyText(text, k.param, k.value);
  VerifyMemo::Key key = base.key;
  key.target_kind = 1;
  key.text = corpus.interner().Intern(text);
  if (key.text == kInvalidValueId) {  // frozen interner refused the text
    return fe.VerifyText(text, k.param, k.value);
  }
  if (auto cached = memo->Lookup(key)) {
    if (*cached < 0) return std::nullopt;
    return *cached != 0;
  }
  std::optional<bool> verdict = fe.VerifyText(text, k.param, k.value);
  memo->Insert(key, !verdict.has_value() ? int8_t{-1}
                                         : (*verdict ? int8_t{1} : int8_t{0}));
  return verdict;
}

// A(k, m(s)) of paper §4.2: the assignments resulting from applying
// constraint `k` (via feature fe) to one assignment.
std::vector<Assignment> ApplyOne(const Corpus& corpus, const Feature& fe,
                                 const ConstraintLit& k, const Assignment& a,
                                 VerifyMemoL1* memo, const MemoKeyBase& base) {
  std::vector<Assignment> out;
  if (a.is_exact()) {
    const Value& v = a.value;
    if (v.has_span()) {
      if (VerifySpan(corpus, fe, k, v.span(), memo, base)) {
        out.push_back(a);
      }
    } else {
      // Scalar value: fall back to text-only verification; features that
      // need document context keep the value (no narrowing, still sound).
      auto verdict = VerifyScalar(corpus, fe, k, v.AsText(), memo, base);
      if (!verdict.has_value() || *verdict) out.push_back(a);
    }
    return out;
  }
  // Contain assignment: refine into maximal satisfying regions.
  const Document& doc = corpus.Get(a.span.doc);
  for (const RefinedRegion& r : fe.Refine(doc, a.span, k.param, k.value)) {
    if (r.span.empty()) continue;
    if (r.exact) {
      out.push_back(Assignment::Exact(Value::OfSpan(corpus, r.span)));
    } else {
      out.push_back(Assignment::Contain(r.span));
    }
  }
  return out;
}

bool AssignmentsIdentical(const Assignment& a, const Assignment& b) {
  if (a.kind != b.kind) return false;
  if (a.is_contain()) return a.span == b.span;
  return a.value.Equals(b.value) &&
         a.value.has_span() == b.value.has_span() &&
         (!a.value.has_span() || a.value.span() == b.value.span());
}

void DedupAssignments(std::vector<Assignment>* as) {
  std::vector<Assignment> out;
  for (auto& a : *as) {
    bool dup = false;
    for (const auto& o : out) {
      if (AssignmentsIdentical(a, o)) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(std::move(a));
  }
  *as = std::move(out);
}

}  // namespace

Result<Cell> ApplyConstraintToCell(const Corpus& corpus,
                                   const FeatureRegistry& features,
                                   const Cell& cell, const ConstraintLit& k,
                                   const std::vector<ConstraintLit>& history,
                                   VerifyMemoL1* memo) {
  IFLEX_ASSIGN_OR_RETURN(const Feature* fe, features.Get(k.feature));
  const MemoKeyBase base = MakeMemoBase(corpus, *fe, k, memo);
  std::vector<const Feature*> prior_features(history.size());
  std::vector<MemoKeyBase> prior_bases(history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    IFLEX_ASSIGN_OR_RETURN(prior_features[i], features.Get(history[i].feature));
    prior_bases[i] = MakeMemoBase(corpus, *prior_features[i], history[i], memo);
  }
  Cell out;
  out.is_expansion = cell.is_expansion;
  for (const Assignment& a : cell.assignments) {
    std::vector<Assignment> current = ApplyOne(corpus, *fe, k, a, memo, base);
    // Re-check newly created assignments against the constraints applied
    // earlier for this attribute (paper §4.2: sub-spans created with k_j
    // are checked for violation of k_1..k_{j-1}).
    for (size_t i = 0; i < history.size(); ++i) {
      std::vector<Assignment> next;
      for (const Assignment& cur : current) {
        std::vector<Assignment> rechecked = ApplyOne(
            corpus, *prior_features[i], history[i], cur, memo, prior_bases[i]);
        next.insert(next.end(), rechecked.begin(), rechecked.end());
      }
      current = std::move(next);
    }
    out.assignments.insert(out.assignments.end(), current.begin(),
                           current.end());
  }
  DedupAssignments(&out.assignments);
  return out;
}

bool CompareValues(const Value& lhs, CmpOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) {
    bool both_null = lhs.is_null() && rhs.is_null();
    switch (op) {
      case CmpOp::kEq:
        return both_null;
      case CmpOp::kNe:
        return !both_null;
      default:
        return false;
    }
  }
  auto ln = lhs.AsNumber();
  auto rn = rhs.AsNumber();
  // A genuine number never matches non-numeric text: "Sqft" > 500000 must
  // be false, not a lexicographic accident.
  bool lhs_is_number = lhs.kind() == Value::Kind::kNumber;
  bool rhs_is_number = rhs.kind() == Value::Kind::kNumber;
  if ((lhs_is_number || rhs_is_number) &&
      !(ln.has_value() && rn.has_value())) {
    return op == CmpOp::kNe;
  }
  if (ln.has_value() && rn.has_value()) {
    switch (op) {
      case CmpOp::kLt:
        return *ln < *rn;
      case CmpOp::kLe:
        return *ln <= *rn;
      case CmpOp::kGt:
        return *ln > *rn;
      case CmpOp::kGe:
        return *ln >= *rn;
      case CmpOp::kEq:
        return *ln == *rn;
      case CmpOp::kNe:
        return *ln != *rn;
    }
  }
  int c = lhs.AsText().compare(rhs.AsText());
  switch (op) {
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
  }
  return false;
}

namespace {

// Enumerates a cell's values up to the cap. `complete` reports whether the
// enumeration covered every value.
std::vector<Value> EnumerateCapped(const Corpus& corpus, const Cell& cell,
                                   size_t cap, bool* complete) {
  std::vector<Value> out;
  *complete = cell.EnumerateValues(corpus, cap, &out);
  return out;
}

SatResult Combine(bool any, bool all, bool complete) {
  if (!complete) {
    // Unknown tail of values: cannot claim kNone or kAll.
    return SatResult::kSome;
  }
  if (all) return SatResult::kAll;
  if (any) return SatResult::kSome;
  return SatResult::kNone;
}

}  // namespace

namespace {

// Applies the additive comparison offset: numeric values shift, anything
// else becomes incomparable (NULL).
void ApplyOffset(std::vector<Value>* values, double offset) {
  if (offset == 0) return;
  for (Value& v : *values) {
    auto n = v.AsNumber();
    v = n.has_value() ? Value::Number(*n + offset) : Value::Null();
  }
}

}  // namespace

SatResult CompareCells(const Corpus& corpus, const Cell& lhs, CmpOp op,
                       const Cell& rhs, const CellOpLimits& limits,
                       double rhs_offset) {
  bool lc = false;
  bool rc = false;
  std::vector<Value> lv = EnumerateCapped(corpus, lhs, limits.max_cell_enum, &lc);
  std::vector<Value> rv = EnumerateCapped(corpus, rhs, limits.max_cell_enum, &rc);
  ApplyOffset(&rv, rhs_offset);
  if (lv.empty() || rv.empty()) return SatResult::kNone;
  bool any = false;
  bool all = true;
  for (const Value& a : lv) {
    for (const Value& b : rv) {
      if (CompareValues(a, op, b)) {
        any = true;
      } else {
        all = false;
      }
      if (any && !all) return SatResult::kSome;  // early out
    }
  }
  return Combine(any, all, lc && rc);
}

SatResult CellsEqual(const Corpus& corpus, const Cell& a, const Cell& b,
                     const CellOpLimits& limits) {
  return CompareCells(corpus, a, CmpOp::kEq, b, limits);
}

Cell NarrowCellByComparison(const Corpus& corpus, const Cell& cell, CmpOp op,
                            const Cell& other, const CellOpLimits& limits,
                            bool* partial, double other_offset) {
  *partial = false;
  bool oc = false;
  std::vector<Value> ov =
      EnumerateCapped(corpus, other, limits.max_cell_enum, &oc);
  ApplyOffset(&ov, other_offset);
  Cell out;
  out.is_expansion = cell.is_expansion;
  if (!oc) {
    // Other side too large to enumerate: keep everything, flag partial.
    *partial = true;
    out.assignments = cell.assignments;
    return out;
  }
  for (const Assignment& a : cell.assignments) {
    bool complete = false;
    std::vector<Value> values;
    Cell single;
    single.assignments.push_back(a);
    values = EnumerateCapped(corpus, single, limits.max_cell_enum, &complete);
    if (!complete) {
      *partial = true;
      out.assignments.push_back(a);
      continue;
    }
    bool any = false;
    bool all = true;
    for (const Value& v : values) {
      bool sat = false;
      for (const Value& o : ov) {
        if (CompareValues(v, op, o)) {
          sat = true;
          break;
        }
      }
      any = any || sat;
      all = all && sat;
    }
    if (any) {
      out.assignments.push_back(a);
      if (!all) *partial = true;
    }
  }
  return out;
}

Cell NarrowCellByEquality(const Corpus& corpus, const Cell& cell,
                          const Cell& other, const CellOpLimits& limits,
                          bool* partial) {
  return NarrowCellByComparison(corpus, cell, CmpOp::kEq, other, limits,
                                partial);
}

Cell ConstantCell(const Term& term) {
  switch (term.kind) {
    case Term::Kind::kNumber:
      return Cell::Exact(Value::Number(term.num));
    case Term::Kind::kString:
      return Cell::Exact(Value::String(term.str));
    case Term::Kind::kNull:
      return Cell::Exact(Value::Null());
    case Term::Kind::kVar:
      break;
  }
  return Cell::Exact(Value::Null());
}

}  // namespace iflex
