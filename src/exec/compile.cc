#include "exec/compile.h"

#include <climits>
#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>

#include "common/strutil.h"

namespace iflex {

namespace {

// Appends a filter to the plan's trailing filter block, opening a new
// block when the previous op is not one.
void AppendFilter(CompiledRule* plan, CompiledFilter f) {
  if (plan->ops.empty() ||
      plan->ops.back().kind != CompiledOp::Kind::kFilterBlock) {
    CompiledOp op;
    op.kind = CompiledOp::Kind::kFilterBlock;
    plan->ops.push_back(std::move(op));
  }
  plan->ops.back().filters.push_back(std::move(f));
}

}  // namespace

std::optional<CompiledRule> CompileRule(const Catalog& catalog,
                                        const Rule& rule) {
  std::unordered_set<std::string> bound;
  auto is_bound = [&](const std::string& v) { return bound.count(v) > 0; };

  std::vector<Literal> pending = rule.body;
  // Per-variable constraint history in application order, mirroring the
  // interpreter's history_ map (paper §4.2 re-check).
  std::unordered_map<std::string, std::vector<PreparedConstraint>> history;
  CompiledRule plan;

  while (!pending.empty()) {
    size_t best = SIZE_MAX;
    int best_prio = INT_MAX;
    for (size_t i = 0; i < pending.size(); ++i) {
      int prio =
          LiteralPriority(catalog, pending[i], !bound.empty(), is_bound);
      if (prio >= 0 && prio < best_prio) {
        best_prio = prio;
        best = i;
      }
    }
    // No evaluable literal left (the interpreter reports the canonical
    // error) or an unconnected join (filter pushdown and similarity
    // indexing are interpreter machinery): fall back.
    if (best == SIZE_MAX || best_prio == 6) return std::nullopt;
    Literal lit = std::move(pending[best]);
    pending.erase(pending.begin() + static_cast<ptrdiff_t>(best));

    switch (lit.kind) {
      case Literal::Kind::kConstraint: {
        Result<PreparedConstraint> pk =
            PrepareConstraint(catalog.corpus(), catalog.features(),
                              lit.constraint, /*want_memo=*/true);
        if (!pk.ok()) return std::nullopt;  // unknown feature
        CompiledConstraintStep step;
        step.k = std::move(*pk);
        step.history = history[lit.constraint.var];
        history[lit.constraint.var].push_back(step.k);
        if (plan.ops.empty() ||
            plan.ops.back().kind != CompiledOp::Kind::kConstraintChain) {
          CompiledOp op;
          op.kind = CompiledOp::Kind::kConstraintChain;
          plan.ops.push_back(std::move(op));
        }
        plan.ops.back().chain.push_back(std::move(step));
        break;
      }
      case Literal::Kind::kComparison: {
        CompiledFilter f;
        f.kind = CompiledFilter::Kind::kComparison;
        f.const_cells.resize(2);
        if (!lit.cmp.lhs.is_var()) {
          f.const_cells[0] = ConstantCell(lit.cmp.lhs);
        }
        if (!lit.cmp.rhs.is_var()) {
          f.const_cells[1] = ConstantCell(lit.cmp.rhs);
        }
        f.lit = std::move(lit);
        AppendFilter(&plan, std::move(f));
        break;
      }
      case Literal::Kind::kAtom: {
        const Atom& a = lit.atom;
        auto kind = catalog.KindOf(a.predicate);
        PredicateKind k = kind.ok() ? *kind : PredicateKind::kIntensional;
        switch (k) {
          case PredicateKind::kExtensional:
          case PredicateKind::kIntensional: {
            CompiledOp op;
            op.kind = CompiledOp::Kind::kJoin;
            op.atom = a;
            for (const Term& t : a.args) {
              if (t.is_var()) bound.insert(t.var);
            }
            plan.ops.push_back(std::move(op));
            break;
          }
          case PredicateKind::kBuiltinFrom: {
            // Malformed from() literals stay on the interpreter, which
            // raises the canonical ApplyFrom error.
            if (a.args.size() != 2 || !a.args[0].is_var() ||
                !a.args[1].is_var() || is_bound(a.args[1].var)) {
              return std::nullopt;
            }
            CompiledOp op;
            op.kind = CompiledOp::Kind::kFrom;
            op.atom = a;
            bound.insert(a.args[1].var);
            plan.ops.push_back(std::move(op));
            break;
          }
          case PredicateKind::kPPredicate: {
            CompiledOp op;
            op.kind = CompiledOp::Kind::kPPredicate;
            op.atom = a;
            size_t n_inputs = *catalog.InputArityOf(a.predicate);
            for (size_t i = n_inputs; i < a.args.size(); ++i) {
              if (a.args[i].is_var()) bound.insert(a.args[i].var);
            }
            plan.ops.push_back(std::move(op));
            break;
          }
          case PredicateKind::kPFunction: {
            Result<const PFunctionFn*> fn = catalog.PFunction(a.predicate);
            if (!fn.ok()) return std::nullopt;
            CompiledFilter f;
            f.kind = CompiledFilter::Kind::kPFunction;
            f.fn = *fn;
            f.const_cells.resize(a.args.size());
            for (size_t i = 0; i < a.args.size(); ++i) {
              if (!a.args[i].is_var()) {
                f.const_cells[i] = ConstantCell(a.args[i]);
              }
            }
            f.lit = std::move(lit);
            AppendFilter(&plan, std::move(f));
            break;
          }
          default:
            return std::nullopt;  // IE predicate: interpreter reports it
        }
        break;
      }
    }
  }
  if (plan.ops.empty()) return std::nullopt;  // empty body: interpreter
  plan.seed_join = plan.ops.front().kind == CompiledOp::Kind::kJoin;
  return plan;
}

const CompiledRule* RuleCompileCache::Get(const Catalog& catalog,
                                          const Rule& rule) {
  const uint64_t key = Fingerprint64(rule.ToString());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end()) return it->second.get();
  }
  // Lower outside the lock: compilation touches only immutable state (the
  // catalog plus the thread-safe interner), and a racing duplicate insert
  // keeps the first of two identical plans.
  std::optional<CompiledRule> plan = CompileRule(catalog, rule);
  std::unique_ptr<CompiledRule> owned =
      plan.has_value() ? std::make_unique<CompiledRule>(std::move(*plan))
                       : nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = plans_.emplace(key, std::move(owned));
  return it->second.get();
}

size_t RuleCompileCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

}  // namespace iflex
