#ifndef IFLEX_EXEC_COMPILE_H_
#define IFLEX_EXEC_COMPILE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "alog/ast.h"
#include "alog/catalog.h"
#include "exec/cell_ops.h"

namespace iflex {

/// The interpreter's literal-selection policy (RuleEvaluator::Priority in
/// executor.cc delegates here), shared with the rule compiler so compiled
/// plans replay exactly the sequence of operator choices the interpreter
/// would make: constraints as soon as their variable is bound, then
/// connected stored-table joins, from, p-predicates, comparisons,
/// p-functions, and unconnected joins last. Returns -1 when the literal is
/// not yet evaluable under `bound`; lower values run earlier. `any_bound`
/// is false only for the empty binding, where the first join is free.
template <typename BoundFn>
int LiteralPriority(const Catalog& catalog, const Literal& lit, bool any_bound,
                    BoundFn&& bound) {
  switch (lit.kind) {
    case Literal::Kind::kConstraint:
      return bound(lit.constraint.var) ? 0 : -1;
    case Literal::Kind::kComparison: {
      bool ok = (!lit.cmp.lhs.is_var() || bound(lit.cmp.lhs.var)) &&
                (!lit.cmp.rhs.is_var() || bound(lit.cmp.rhs.var));
      return ok ? 4 : -1;
    }
    case Literal::Kind::kAtom: {
      const Atom& a = lit.atom;
      auto kind = catalog.KindOf(a.predicate);
      PredicateKind k = kind.ok() ? *kind : PredicateKind::kIntensional;
      size_t n_inputs = 0;
      if (k == PredicateKind::kPPredicate || k == PredicateKind::kBuiltinFrom) {
        n_inputs = *catalog.InputArityOf(a.predicate);
      } else if (k == PredicateKind::kPFunction) {
        n_inputs = a.args.size();
      }
      for (size_t i = 0; i < n_inputs; ++i) {
        if (a.args[i].is_var() && !bound(a.args[i].var)) return -1;
      }
      switch (k) {
        case PredicateKind::kExtensional:
        case PredicateKind::kIntensional: {
          if (!any_bound) return 1;  // first join is free
          for (const Term& t : a.args) {
            // Shared variable or constant: the join is connected.
            if (!t.is_var() || bound(t.var)) return 1;
          }
          return 6;  // unconnected join: cross product, run last
        }
        case PredicateKind::kBuiltinFrom:
          return 2;
        case PredicateKind::kPPredicate:
          return 3;
        case PredicateKind::kPFunction:
          return 5;
        default:
          return -1;  // IE predicates must have been unfolded away
      }
    }
  }
  return -1;
}

/// One step of a fused constraint chain: the prepared constraint plus the
/// prepared forms of the same-variable constraints applied earlier in the
/// rule (the paper's §4.2 re-check history), resolved once at compile
/// time instead of once per tuple per pass.
struct CompiledConstraintStep {
  PreparedConstraint k;
  std::vector<PreparedConstraint> history;
};

/// One filter of a columnar filter block: a comparison or p-function
/// literal with its constant terms pre-built into one-value cells and the
/// p-function procedure pre-resolved, so block execution never touches
/// the catalog or re-parses terms.
struct CompiledFilter {
  enum class Kind : uint8_t { kComparison, kPFunction };
  Kind kind = Kind::kComparison;
  /// The source literal; irregular rows fall back to the interpreter's
  /// exact per-tuple evaluation of it.
  Literal lit;
  /// Resolved procedure for kPFunction (owned by the catalog).
  const PFunctionFn* fn = nullptr;
  /// Constant cells parallel to the literal's term positions (lhs/rhs for
  /// a comparison, the argument list for a p-function); entries for
  /// variable terms are left empty.
  std::vector<Cell> const_cells;
};

/// A flat operator of a compiled rule plan.
struct CompiledOp {
  enum class Kind : uint8_t {
    kJoin,             // connected stored/intensional join (atom)
    kFrom,             // the built-in from(x, y) span extractor (atom)
    kPPredicate,       // procedural predicate (atom)
    kConstraintChain,  // fused run of consecutive constraints (chain)
    kFilterBlock,      // columnar run of consecutive filters (filters)
  };
  Kind kind = Kind::kJoin;
  Atom atom;
  std::vector<CompiledConstraintStep> chain;
  std::vector<CompiledFilter> filters;
};

/// A lowered rule body: the exact operator sequence the interpreter would
/// execute, with consecutive constraints fused into chains, consecutive
/// filters grouped into blocks, and all name resolution (features, memo
/// key bases, p-functions, constants) hoisted out of the per-tuple loops.
struct CompiledRule {
  std::vector<CompiledOp> ops;
  /// True when ops[0] joins a stored/intensional table against the empty
  /// binding — the seed the morsel scheduler carves (docs/RUNTIME.md).
  bool seed_join = false;
};

/// Lowers one unfolded rule body into a flat compiled plan by simulating
/// the interpreter's literal selection over the bound-variable set.
/// Returns nullopt when the body uses a construct the compiler does not
/// cover — unconnected joins (filter pushdown / similarity indexing stay
/// interpreter-only), unknown features, malformed from()/IE literals —
/// and the caller falls back to the interpreter for that rule:
/// best-effort compilation, in the paper's spirit.
std::optional<CompiledRule> CompileRule(const Catalog& catalog,
                                        const Rule& rule);

/// Per-executor cache of compiled plans keyed by the rule's fingerprint.
/// Entries stay valid for the executor's lifetime: the catalog, corpus
/// interner, and feature registry a plan bakes in are fixed per executor,
/// which is exactly the (program, corpus) epoch of a refinement session —
/// feedback edits change a rule's text and therefore its key, and a new
/// corpus means a new catalog and a new executor. A null entry records
/// "not compilable" so uncovered rules are not re-lowered every Execute.
/// Thread-safe; returned pointers are stable across further inserts.
class RuleCompileCache {
 public:
  /// The plan for `rule`, compiling on first sight; nullptr when the rule
  /// is not compilable.
  const CompiledRule* Get(const Catalog& catalog, const Rule& rule);

  /// Number of cached entries (compiled and negative), for tests.
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<CompiledRule>> plans_;
};

}  // namespace iflex

#endif  // IFLEX_EXEC_COMPILE_H_
