#include "exec/annotate.h"

#include <map>
#include <string>

#include "common/strutil.h"
#include "resilience/failpoint.h"

namespace iflex {

namespace {

// Canonical string key for a tuple of values, consistent with
// Value::Equals (numeric-aware).
std::string KeyString(const std::vector<Value>& values) {
  std::string out;
  for (const Value& v : values) {
    auto n = v.AsNumber();
    if (n.has_value() && v.kind() != Value::Kind::kDoc) {
      out += StringPrintf("#%.17g|", *n);
    } else {
      out += v.ToString() + "|";
    }
  }
  return out;
}

void AddUnique(std::vector<Value>* values, const Value& v) {
  for (const Value& u : *values) {
    if (u.Equals(v)) return;
  }
  values->push_back(v);
}

struct Group {
  std::vector<Value> key;                        // non-annotated values
  std::vector<std::vector<Value>> annotated;     // U_i per annotated attr
  bool pinned = false;                           // non-maybe in output
};

}  // namespace

Result<ATable> BAnnotate(const ATable& input, const AnnotationSpec& spec,
                         size_t max_combos_per_tuple, obs::Tracer* tracer) {
  obs::TraceSpan span(tracer, "exec.bannotate");
  size_t arity = input.arity();
  std::vector<bool> is_annotated(arity, false);
  for (size_t i : spec.annotated) {
    if (i >= arity) {
      return Status::InvalidArgument("annotated attribute index out of range");
    }
    is_annotated[i] = true;
  }
  std::vector<size_t> key_cols;
  for (size_t i = 0; i < arity; ++i) {
    if (!is_annotated[i]) key_cols.push_back(i);
  }

  std::map<std::string, Group> groups;
  std::vector<std::string> order;  // deterministic output order

  for (const ATuple& t : input.tuples()) {
    // Count key combinations.
    size_t combos = 1;
    bool dead = false;
    for (size_t c : key_cols) {
      if (t.cells[c].empty()) {
        dead = true;
        break;
      }
      combos *= t.cells[c].size();
      if (combos > max_combos_per_tuple) {
        return Status::ExecutionError(
            "BAnnotate: too many key combinations in one a-tuple");
      }
    }
    for (size_t i : spec.annotated) {
      if (t.cells[i].empty()) dead = true;
    }
    if (dead) continue;

    bool singleton_key = true;
    for (size_t c : key_cols) singleton_key = singleton_key && t.cells[c].size() == 1;

    // Enumerate key combinations (odometer).
    std::vector<size_t> idx(key_cols.size(), 0);
    while (true) {
      std::vector<Value> key;
      key.reserve(key_cols.size());
      for (size_t k = 0; k < key_cols.size(); ++k) {
        key.push_back(t.cells[key_cols[k]][idx[k]]);
      }
      std::string ks = KeyString(key);
      auto it = groups.find(ks);
      if (it == groups.end()) {
        Group g;
        g.key = key;
        g.annotated.resize(spec.annotated.size());
        it = groups.emplace(ks, std::move(g)).first;
        order.push_back(ks);
      }
      Group& g = it->second;
      for (size_t a = 0; a < spec.annotated.size(); ++a) {
        for (const Value& v : t.cells[spec.annotated[a]]) {
          AddUnique(&g.annotated[a], v);
        }
      }
      // Paper: the output a-tuple for key n is non-maybe iff the input has
      // an a-tuple ({v1},...,{v_{n-1}}, U) — singleton key cells — that is
      // itself non-maybe.
      if (!t.maybe && singleton_key) g.pinned = true;

      // Advance odometer.
      size_t k = 0;
      for (; k < key_cols.size(); ++k) {
        if (++idx[k] < t.cells[key_cols[k]].size()) break;
        idx[k] = 0;
      }
      if (k == key_cols.size()) break;
      if (key_cols.empty()) break;
    }
  }

  ATable out(input.schema());
  for (const std::string& ks : order) {
    const Group& g = groups[ks];
    ATuple t;
    t.maybe = !g.pinned;
    t.cells.resize(arity);
    size_t ki = 0;
    size_t ai = 0;
    for (size_t i = 0; i < arity; ++i) {
      if (is_annotated[i]) {
        t.cells[i] = g.annotated[ai++];
      } else {
        t.cells[i] = {g.key[ki++]};
      }
    }
    out.Add(std::move(t));
  }
  return out;
}

namespace {

// Direct compact-table grouping, applicable when every key cell is a
// single exact assignment (the overwhelmingly common case: keys are
// documents). Mirrors BAnnotate without enumerating contain assignments
// in the annotated columns.
Result<CompactTable> CompactAnnotate(const CompactTable& input,
                                     const AnnotationSpec& spec) {
  size_t arity = input.arity();
  std::vector<bool> is_annotated(arity, false);
  for (size_t i : spec.annotated) is_annotated[i] = true;
  std::vector<size_t> key_cols;
  for (size_t i = 0; i < arity; ++i) {
    if (!is_annotated[i]) key_cols.push_back(i);
  }

  struct CGroup {
    std::vector<Cell> key_cells;
    std::vector<std::vector<Assignment>> annotated;
    bool pinned = false;
  };
  std::map<std::string, CGroup> groups;
  std::vector<std::string> order;

  for (const CompactTuple& t : input.tuples()) {
    std::vector<Value> key;
    for (size_t c : key_cols) {
      // Caller guarantees singleton exact key cells.
      key.push_back(t.cells[c].assignments[0].value);
    }
    std::string ks = KeyString(key);
    auto it = groups.find(ks);
    if (it == groups.end()) {
      CGroup g;
      for (size_t c : key_cols) g.key_cells.push_back(t.cells[c]);
      g.annotated.resize(spec.annotated.size());
      it = groups.emplace(ks, std::move(g)).first;
      order.push_back(ks);
    }
    CGroup& g = it->second;
    for (size_t a = 0; a < spec.annotated.size(); ++a) {
      const Cell& cell = t.cells[spec.annotated[a]];
      for (const Assignment& as : cell.assignments) {
        bool dup = false;
        for (const Assignment& prev : g.annotated[a]) {
          if (prev.kind == as.kind &&
              ((as.is_contain() && prev.span == as.span) ||
               (as.is_exact() && prev.value.Equals(as.value)))) {
            dup = true;
            break;
          }
        }
        if (!dup) g.annotated[a].push_back(as);
      }
    }
    if (!t.maybe) g.pinned = true;
  }

  CompactTable out(input.schema());
  for (const std::string& ks : order) {
    CGroup& g = groups[ks];
    CompactTuple t;
    t.maybe = !g.pinned;
    t.cells.resize(arity);
    size_t ki = 0;
    size_t ai = 0;
    for (size_t i = 0; i < arity; ++i) {
      if (is_annotated[i]) {
        Cell c;
        c.assignments = std::move(g.annotated[ai++]);
        t.cells[i] = std::move(c);
      } else {
        t.cells[i] = g.key_cells[ki++];
      }
    }
    out.Add(std::move(t));
  }
  return out;
}

bool KeysAreSingletonExact(const CompactTable& input,
                           const AnnotationSpec& spec) {
  size_t arity = input.arity();
  std::vector<bool> is_annotated(arity, false);
  for (size_t i : spec.annotated) is_annotated[i] = true;
  for (const CompactTuple& t : input.tuples()) {
    for (size_t i = 0; i < arity; ++i) {
      if (is_annotated[i]) continue;
      const Cell& c = t.cells[i];
      if (c.is_expansion || c.assignments.size() != 1 ||
          !c.assignments[0].is_exact()) {
        return false;
      }
    }
    // Annotated expansion cells are fine (each value its own tuple, all
    // landing in the same group), but an annotated *empty* cell kills the
    // tuple; handle it on the slow path.
    for (size_t i : spec.annotated) {
      if (t.cells[i].assignments.empty()) return false;
    }
  }
  return true;
}

}  // namespace

Result<CompactTable> ApplyAnnotations(const Corpus& corpus,
                                      const CompactTable& input,
                                      const AnnotationSpec& spec,
                                      bool use_compact, size_t max_tuples,
                                      obs::Tracer* tracer) {
  IFLEX_FAIL_POINT("exec.annotate");
  CompactTable result = input;
  if (!spec.annotated.empty()) {
    if (use_compact && KeysAreSingletonExact(input, spec)) {
      obs::TraceSpan span(tracer, "exec.annotate", "compact");
      IFLEX_ASSIGN_OR_RETURN(result, CompactAnnotate(input, spec));
    } else {
      // Default strategy (paper §4.3): via a-tables.
      obs::TraceSpan span(tracer, "exec.annotate", "atable");
      IFLEX_ASSIGN_OR_RETURN(ATable at,
                             CompactToATable(corpus, input, max_tuples));
      IFLEX_ASSIGN_OR_RETURN(ATable annotated,
                             BAnnotate(at, spec, 100000, tracer));
      result = ATableToCompact(annotated, input.schema());
    }
  }
  if (spec.existence) {
    for (CompactTuple& t : result.tuples()) t.maybe = true;
  }
  return result;
}

}  // namespace iflex
