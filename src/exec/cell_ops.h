#ifndef IFLEX_EXEC_CELL_OPS_H_
#define IFLEX_EXEC_CELL_OPS_H_

#include <vector>

#include "alog/ast.h"
#include "common/result.h"
#include "ctable/compact_table.h"
#include "exec/verify_memo.h"
#include "features/registry.h"

namespace iflex {

/// Tri-state outcome of evaluating a condition over the possible values of
/// compact cells (paper §4.1): no possible tuple satisfies it, some do, or
/// all do.
enum class SatResult : uint8_t { kNone, kSome, kAll };

/// Execution caps; hitting a cap degrades to the sound direction (keep the
/// tuple, mark it maybe) rather than failing.
struct CellOpLimits {
  /// Max values enumerated from one cell when checking a condition.
  size_t max_cell_enum = 20000;
  /// Max input-value combinations when invoking a p-predicate per tuple.
  size_t max_ppred_combos = 4096;
  /// Max value combinations tested per tuple for a p-*function* filter
  /// (similar(), ...). Overflow keeps the tuple as maybe — sound, and it
  /// bounds join costs while cells are still wide (unrefined cells over a
  /// whole record exceed it; cells refined by a constraint or two fall
  /// under it, so simulation sees real selectivity).
  size_t max_filter_combos = 1024;
};

/// A constraint with its feature procedure resolved and its memo key base
/// interned up front, so applying it to a cell pays no registry or
/// interner lookups. The interpreter prepares per call (same work it
/// always did); the rule compiler prepares once per (program, corpus)
/// epoch and reuses the prepared form for every tuple
/// (docs/PERFORMANCE.md, "Rule compilation").
struct PreparedConstraint {
  ConstraintLit lit;
  const Feature* feature = nullptr;
  /// Constraint-invariant part of the VerifyMemo key (feature, value,
  /// param); only meaningful when base_usable.
  VerifyMemo::Key base_key;
  /// False when memoization was not requested or the interner refused a
  /// component (keys must never collide, so such constraints simply go
  /// unmemoized).
  bool base_usable = false;
};

/// Resolves `k` against the registry and (when `want_memo`) interns its
/// memo key base. NotFound when the feature does not exist.
Result<PreparedConstraint> PrepareConstraint(const Corpus& corpus,
                                             const FeatureRegistry& features,
                                             const ConstraintLit& k,
                                             bool want_memo);

/// ApplyConstraintToCell over pre-resolved state: identical narrowing,
/// identical memo lookups, no per-call feature/interner work. `history`
/// holds the previously applied constraints for the same attribute in
/// application order (paper §4.2 re-check).
Cell ApplyPreparedConstraintToCell(
    const Corpus& corpus, const PreparedConstraint& k,
    const std::vector<PreparedConstraint>& history, const Cell& cell,
    VerifyMemoL1* memo);

/// Applies the domain constraint `k` to `cell` (paper §4.2): exact
/// assignments go through Verify, contain assignments through Refine, and
/// every refined assignment is re-checked against the previously applied
/// constraints `history` for this attribute. Preserves the expansion flag.
/// With `memo` non-null (a worker's VerifyMemoL1 bound to the session
/// memo), Verify/VerifyText verdicts are served from (and recorded into)
/// the memo tiers instead of re-running the feature procedures.
Result<Cell> ApplyConstraintToCell(const Corpus& corpus,
                                   const FeatureRegistry& features,
                                   const Cell& cell, const ConstraintLit& k,
                                   const std::vector<ConstraintLit>& history,
                                   VerifyMemoL1* memo = nullptr);

/// Evaluates `lhs op (rhs + rhs_offset)` over all possible value pairs of
/// two cells (either may be a 1-value "constant cell"). Overflowing the
/// enumeration cap yields kSome (sound: keep as maybe).
SatResult CompareCells(const Corpus& corpus, const Cell& lhs, CmpOp op,
                       const Cell& rhs, const CellOpLimits& limits,
                       double rhs_offset = 0);

/// Evaluates a single comparison between concrete values: numeric when
/// both sides are numeric, else textual; NULLs compare equal only to NULL.
bool CompareValues(const Value& lhs, CmpOp op, const Value& rhs);

/// Tri-state equality of two cells (join condition).
SatResult CellsEqual(const Corpus& corpus, const Cell& a, const Cell& b,
                     const CellOpLimits& limits);

/// Narrows `cell` to the assignments that can still equal some value of
/// `other`; used to filter expansion cells under join/selection
/// conditions. Sets `*partial` when a kept assignment also encodes
/// non-matching values (caller must mark the tuple maybe to stay a
/// superset). Returns an empty cell when nothing can match.
Cell NarrowCellByEquality(const Corpus& corpus, const Cell& cell,
                          const Cell& other, const CellOpLimits& limits,
                          bool* partial);

/// Narrows `cell` to assignments that can satisfy `op` against
/// `other + other_offset` (same contract as NarrowCellByEquality).
Cell NarrowCellByComparison(const Corpus& corpus, const Cell& cell, CmpOp op,
                            const Cell& other, const CellOpLimits& limits,
                            bool* partial, double other_offset = 0);

/// Builds a one-value constant cell from a term (number / string literal).
Cell ConstantCell(const Term& term);

}  // namespace iflex

#endif  // IFLEX_EXEC_CELL_OPS_H_
