#ifndef IFLEX_EXEC_EXECUTOR_H_
#define IFLEX_EXEC_EXECUTOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "alog/program.h"
#include "common/result.h"
#include "ctable/compact_table.h"
#include "exec/cell_ops.h"
#include "exec/compile.h"
#include "exec/verify_memo.h"
#include "exec/worker_context.h"
#include "obs/cost_model.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/deadline.h"
#include "resilience/failpoint.h"
#include "resilience/report.h"

namespace iflex {

namespace runtime {
class TaskPool;
}  // namespace runtime

/// Tuning knobs of the approximate query processor.
struct ExecOptions {
  CellOpLimits limits;
  /// Max tuples any intermediate compact table may reach.
  size_t max_table_tuples = 2000000;
  /// Use the direct compact-table implementation of ψ when applicable
  /// (fall back to the a-table BAnnotate route otherwise). Turning this
  /// off forces the paper's default strategy everywhere (ablation A).
  bool compact_annotate = true;
  /// Span sink for the per-rule / per-operator instrumentation; null
  /// means the process-wide obs::DefaultTracer() (runtime-off unless the
  /// IFLEX_TRACE env var or --trace-out turned it on).
  obs::Tracer* tracer = nullptr;
  /// Metric sink; null gives the executor a private registry, so each
  /// Executor's counters stay independent (what the tests and the
  /// assistant's per-iteration reads expect). Point several executors at
  /// one registry to aggregate a whole bench run.
  obs::MetricRegistry* metrics = nullptr;
  /// Execution pool; null (the default) runs fully serial. With a pool,
  /// rule bodies seeded by a stored/intensional join are evaluated in
  /// document *morsels* pulled dynamically from a shared cursor and
  /// multi-rule predicates fan out rule-per-task — results are merged in
  /// stable seed-tuple / rule order, so the output is bit-identical to
  /// serial at any thread count and any morsel size (docs/RUNTIME.md).
  runtime::TaskPool* pool = nullptr;
  /// Morsel size of the morsel-driven scheduler: how many seed tuples
  /// (≈ documents) one dynamically claimed work unit covers. Small enough
  /// that a straggler document delays only its own morsel, large enough
  /// to amortize the per-morsel claim + context acquire + L1 flush.
  /// Clamped to ≥ 1. Changing it never changes results, only scheduling.
  size_t morsel_docs = 128;
  /// Time bound on Execute (docs/ROBUSTNESS.md); checked cooperatively in
  /// every per-tuple loop, so expiry surfaces as kDeadlineExceeded
  /// promptly at any thread count. Never expires by default.
  resilience::Deadline deadline;
  /// Cooperative cancellation; polled alongside the deadline. The token
  /// (and whatever source tree it hangs off) must outlive Execute.
  const resilience::CancellationToken* cancel = nullptr;
  /// Graceful degradation: trap per-document faults in sharded evaluation
  /// and per-rule faults at the predicate level, truncate-and-report on
  /// budget overruns instead of erroring, and record everything dropped in
  /// the ExecReport. The result stays a valid superset-semantics answer
  /// over the surviving inputs. Deadline/cancel stops always propagate —
  /// best-effort never hides them. Off by default: errors abort Execute
  /// exactly as before.
  bool best_effort = false;
  /// Degradation sink; null keeps the report inside the Executor (read it
  /// via Executor::report()). Cleared at the start of every Execute.
  resilience::ExecReport* report = nullptr;
  /// Interned fast paths: the hash equi-join in JoinAtom and the Verify
  /// memo. Off forces the legacy tri-state scan and direct feature calls
  /// everywhere — results are byte-identical either way (the differential
  /// determinism tests enforce it). Also forced off by setting the
  /// IFLEX_DISABLE_FASTPATH environment variable.
  bool enable_fast_path = true;
  /// Rule compilation (docs/PERFORMANCE.md, "Rule compilation"): lower
  /// each rule body into a flat CompiledRule plan — fused constraint
  /// chains, columnar filter blocks — cached per executor, with per-rule
  /// fallback to the interpreter for uncovered constructs. Results are
  /// byte-identical either way (the compile determinism suite enforces
  /// it). Forced off when enable_fast_path is off (including via
  /// IFLEX_DISABLE_FASTPATH) or when the IFLEX_DISABLE_RULE_COMPILE
  /// environment variable is set.
  bool enable_rule_compile = true;
  /// Verify/VerifyText memo shared across executors (the assistant points
  /// every iteration and simulation at one session-scoped memo). Null
  /// gives the executor a private memo; ignored when enable_fast_path is
  /// off.
  VerifyMemo* verify_memo = nullptr;
  /// Attribution profiler (docs/OBSERVABILITY.md): when enabled, every
  /// operator application is charged to a (rule, operator, iteration)
  /// CostKey. Null means obs::DefaultCostModel(), which is disabled
  /// unless something (--explain-out, the shell) turned it on — the
  /// disabled path costs one relaxed load per operator application.
  obs::CostModel* cost_model = nullptr;
  /// Iteration tag stamped into every CostKey this Execute charges; the
  /// refinement session sets it per iteration, -1 means "outside a
  /// session".
  int cost_iteration = -1;
  /// Structured event log / flight recorder. Null means
  /// obs::DefaultEventLog(). When an Execute ends degraded, exceeds its
  /// deadline, is cancelled, or trips a fail point, the recorder's tail
  /// is dumped into ExecReport::flight_recorder.
  obs::EventLog* event_log = nullptr;
};

/// Counters exposed for the benches and the multi-iteration optimizer.
/// Since the obs layer landed this is a *snapshot view* over the
/// executor's MetricRegistry (metric names "exec.*"); the struct shape is
/// kept so call sites read fields as before.
struct ExecStats {
  size_t rules_evaluated = 0;
  size_t tuples_emitted = 0;
  size_t join_pairs = 0;
  /// Hash equi-join fast path: probes answered from the build-side index,
  /// and rows it indexed. Zero when every join took the legacy scan.
  size_t join_probes = 0;
  size_t join_build_rows = 0;
  size_t constraint_cells = 0;
  size_t ppred_invocations = 0;
  /// Rule evaluations that ran through a compiled plan (vs the
  /// interpreter). Zero when rule compilation is disabled or every rule
  /// fell back.
  size_t rules_compiled = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Cumulative totals of the session-shared caches at the end of the
  /// last Execute: corpus interner / token-cache lookups and Verify-memo
  /// lookups that hit.
  size_t intern_hits = 0;
  size_t verify_memo_hits = 0;
  /// Assignments across *all* intensional tables of the last Execute —
  /// "the number of assignments produced by the extraction process"
  /// (paper §5.1), which the convergence detector monitors. Unlike the
  /// final result's own count, this sees narrowing that projection hides.
  /// Reset at the *start* of every Execute, so a failed execution reports
  /// 0 instead of the previous run's stale value.
  size_t process_assignments = 0;
  /// Total |V(c)| across all intensional tables (capped): moves whenever
  /// any constraint narrows any cell anywhere in the process.
  double process_values = 0;

  void Clear() { *this = ExecStats(); }
};

/// Stable metric pointers for the executor's hot-path counters; cached
/// once per Executor so increments are plain pointer bumps. Internal to
/// the executor — read the numbers via Executor::stats() or metrics().
struct ExecCounters {
  obs::Counter* rules_evaluated = nullptr;
  obs::Counter* tuples_emitted = nullptr;
  obs::Counter* join_pairs = nullptr;
  obs::Counter* join_probes = nullptr;
  obs::Counter* join_build_rows = nullptr;
  obs::Counter* constraint_cells = nullptr;
  obs::Counter* ppred_invocations = nullptr;
  obs::Counter* rules_compiled = nullptr;
  obs::Counter* cache_hits = nullptr;
  obs::Counter* cache_misses = nullptr;
  obs::Counter* process_assignments = nullptr;
  obs::Gauge* process_values = nullptr;
  // Set (not added) at the end of every Execute to the cumulative totals
  // of the session-shared caches, which outlive any one executor.
  obs::Counter* intern_hits = nullptr;
  obs::Counter* intern_misses = nullptr;
  obs::Counter* verify_memo_hits = nullptr;
  obs::Counter* verify_memo_misses = nullptr;

  void BindTo(obs::MetricRegistry* registry);
};

/// Cross-iteration reuse cache (paper §5.2): intermediate results —
/// the compact table computed for each intensional predicate — keyed by a
/// fingerprint of the rules that produce it (transitively). When the
/// developer's feedback touches only one extractor, every untouched
/// predicate is served from cache.
///
/// Thread-safety: Lookup/Insert are synchronized by striped locks, so
/// concurrent simulation executors can share one cache. Returned table
/// pointers stay valid across concurrent inserts (node-based map; a
/// duplicate insert keeps the first copy — harmless, since parallel
/// execution is deterministic and both copies are identical). Clear() must
/// not race with readers still holding pointers.
class ReuseCache {
 public:
  const CompactTable* Lookup(uint64_t key) const {
    // Fail-point site "exec.cache": an injected fault degrades to a cache
    // miss — the caller recomputes, trading time for correctness.
    if (resilience::FailPointFired("exec.cache")) return nullptr;
    const Stripe& s = stripe(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    return it == s.map.end() ? nullptr : &it->second;
  }
  void Insert(uint64_t key, CompactTable table) {
    Stripe& s = stripe(key);
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.emplace(key, std::move(table));
  }
  void Clear() {
    for (Stripe& s : stripes_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.map.clear();
    }
  }
  size_t size() const {
    size_t n = 0;
    for (const Stripe& s : stripes_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.map.size();
    }
    return n;
  }

 private:
  // Cache-line-padded stripes, 64 of them: adjacent unpadded mutexes
  // false-share, and 16 stripes collide too often once 8+ simulation
  // executors hammer the cache concurrently (same reasoning as
  // VerifyMemo's stripes; docs/PERFORMANCE.md).
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, CompactTable> map;
  };
  static constexpr size_t kStripes = 64;

  Stripe& stripe(uint64_t key) { return stripes_[key % kStripes]; }
  const Stripe& stripe(uint64_t key) const { return stripes_[key % kStripes]; }

  std::array<Stripe, kStripes> stripes_;
};

/// Write-back front for one Execute over a shared ReuseCache: lookups
/// check the local pending set first (then the striped cache), and
/// inserts buffer locally, flushing to the striped cache in one pass when
/// the L1 is destroyed at the end of the Execute. Concurrent simulation
/// executors thus take stripe locks O(predicates) times per Execute for
/// reads and once per flush for writes, instead of locking per insert.
/// Delaying publication never changes results — a peer that misses a
/// not-yet-flushed entry recomputes the identical table (execution is
/// deterministic) — it only trades a little duplicated work for less
/// contention; cross-iteration reuse, the case that matters, always sees
/// flushed entries.
class ReuseCacheL1 {
 public:
  /// Null `shared` makes every operation a no-op (the uncached path).
  explicit ReuseCacheL1(ReuseCache* shared) : shared_(shared) {}
  ~ReuseCacheL1() { Flush(); }
  ReuseCacheL1(const ReuseCacheL1&) = delete;
  ReuseCacheL1& operator=(const ReuseCacheL1&) = delete;

  const CompactTable* Lookup(uint64_t key) const {
    auto it = pending_.find(key);
    if (it != pending_.end()) return it->second.get();
    return shared_ != nullptr ? shared_->Lookup(key) : nullptr;
  }
  /// Buffers an insert; unique_ptr storage keeps the pointer returned by
  /// Lookup stable across further inserts.
  void Insert(uint64_t key, CompactTable table) {
    if (shared_ == nullptr) return;
    pending_.emplace(key,
                     std::make_unique<CompactTable>(std::move(table)));
  }
  /// Publishes buffered entries to the shared cache; idempotent.
  void Flush() {
    if (shared_ == nullptr) return;
    for (auto& [key, table] : pending_) {
      shared_->Insert(key, std::move(*table));
    }
    pending_.clear();
  }
  size_t pending() const { return pending_.size(); }

 private:
  ReuseCache* shared_;
  std::unordered_map<uint64_t, std::unique_ptr<CompactTable>> pending_;
};

/// Evaluates Alog programs over compact tables with superset semantics
/// (paper §4): unfolds description rules, orders intensional predicates
/// topologically, evaluates each rule bottom-up, and applies the
/// annotation operator ψ at each rule root.
class Executor {
 public:
  explicit Executor(const Catalog& catalog, ExecOptions options = {});

  /// Executes `program` and returns the compact table of its query
  /// predicate.
  Result<CompactTable> Execute(const Program& program);

  /// Same, reusing/filling `cache` across iterations (paper §5.2).
  Result<CompactTable> Execute(const Program& program, ReuseCache* cache);

  /// Snapshot of the "exec.*" metrics in the legacy struct shape.
  const ExecStats& stats() const;
  void ClearStats();

  /// The executor's metric registry (private unless ExecOptions pointed
  /// it at a shared one).
  obs::MetricRegistry& metrics() const { return *metrics_; }

  /// Tables of every intensional predicate computed by the last Execute
  /// (the assistant inspects intermediate extraction coverage).
  const std::unordered_map<std::string, CompactTable>& last_idb() const {
    return last_idb_;
  }

  /// Degradation report of the last Execute (what best-effort mode
  /// dropped; report.degraded == false means the result is fault-free).
  /// Aliases ExecOptions::report when one was supplied.
  const resilience::ExecReport& report() const { return *report_; }

 private:
  Result<CompactTable> ExecuteInternal(const Program& program,
                                       ReuseCache* cache);

  const Catalog& catalog_;
  ExecOptions options_;
  obs::Tracer* tracer_;
  obs::CostModel* cost_model_;
  obs::EventLog* event_log_;
  /// Per-worker execution state (scratch buffers + memo L1), recycled
  /// across morsels/rules via a freelist (docs/RUNTIME.md).
  WorkerContextPool contexts_;
  /// Compiled-plan cache, one per executor: plans bake in pointers into
  /// the catalog / feature registry, whose lifetime the executor already
  /// bounds. Rule fingerprints key the (program, corpus) epoch.
  RuleCompileCache compile_cache_;
  std::unique_ptr<VerifyMemo> owned_verify_memo_;
  std::unique_ptr<obs::MetricRegistry> owned_metrics_;
  obs::MetricRegistry* metrics_;
  ExecCounters counters_;
  mutable ExecStats stats_;
  std::unordered_map<std::string, CompactTable> last_idb_;
  resilience::ExecReport owned_report_;
  resilience::ExecReport* report_ = nullptr;
};

/// Counts the extraction result size the way the paper reports it: the
/// number of result tuples, expanding expansion cells (one tuple per
/// encoded value) but treating a plain multi-assignment cell as a single
/// tuple with an uncertain value. Capped, hence double.
double ResultSize(const CompactTable& table, const Corpus& corpus);

}  // namespace iflex

#endif  // IFLEX_EXEC_EXECUTOR_H_
