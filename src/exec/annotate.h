#ifndef IFLEX_EXEC_ANNOTATE_H_
#define IFLEX_EXEC_ANNOTATE_H_

#include <vector>

#include "common/result.h"
#include "ctable/atable.h"
#include "ctable/compact_table.h"
#include "obs/trace.h"

namespace iflex {

/// The (f, A) pair of paper §2.2.3: an existence annotation plus the set
/// of attribute-annotated column indices.
struct AnnotationSpec {
  bool existence = false;
  std::vector<size_t> annotated;  // column indices, sorted

  bool empty() const { return !existence && annotated.empty(); }
};

/// The BAnnotate algorithm (paper §4.3) over a-tables: groups the possible
/// tuples by the non-annotated attributes, collects the possible values of
/// each annotated attribute per group, and pins a group as non-maybe iff
/// some non-maybe input a-tuple fixes that group key with singleton cells.
Result<ATable> BAnnotate(const ATable& input, const AnnotationSpec& spec,
                         size_t max_combos_per_tuple = 100000,
                         obs::Tracer* tracer = nullptr);

/// The annotation operator ψ (paper §4.3). `use_compact` selects the
/// optimized direct-over-compact-tables implementation (the full-paper
/// optimization); it applies when every non-annotated cell is a single
/// exact assignment and otherwise falls back to the a-table route
/// (convert -> BAnnotate -> convert back).
Result<CompactTable> ApplyAnnotations(const Corpus& corpus,
                                      const CompactTable& input,
                                      const AnnotationSpec& spec,
                                      bool use_compact = true,
                                      size_t max_tuples = 2000000,
                                      obs::Tracer* tracer = nullptr);

}  // namespace iflex

#endif  // IFLEX_EXEC_ANNOTATE_H_
