#ifndef IFLEX_EXEC_VERIFY_MEMO_H_
#define IFLEX_EXEC_VERIFY_MEMO_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/intern.h"
#include "text/span.h"

namespace iflex {

/// Memoization cache for Feature::Verify / Feature::VerifyText (paper
/// §4.2). Both procedures are pure functions of (feature, target, param,
/// value) over a frozen corpus, and the refinement loop re-checks the
/// same spans against the same constraints across iterations and
/// candidate simulations — so one session-scoped memo turns the repeated
/// work into hash lookups.
///
/// Keys use interned ids (feature name, scalar text, string param) from
/// the corpus interner, which are stable for the corpus lifetime; subset
/// catalogs share the corpus, so entries carry across iterations.
///
/// Lifecycle mirrors ReuseCache: striped locks make Lookup/Insert safe
/// from concurrent simulation executors, the owner (RefinementSession or
/// a standalone Executor) clears it with the caches it lives next to, and
/// Insert is suppressed while any fail point is armed so degraded /
/// fault-injected runs never populate it (the analog of keeping degraded
/// tables out of the reuse cache).
class VerifyMemo {
 public:
  struct Key {
    ValueId feature = kInvalidValueId;  // interned feature name
    uint8_t value = 0;                  // FeatureValue
    uint8_t target_kind = 0;            // 0 = span, 1 = scalar text
    uint8_t param_kind = 0;             // 0 = none, 1 = str, 2 = num
    DocId doc = kInvalidDocId;          // span target
    uint32_t begin = 0;
    uint32_t end = 0;
    ValueId text = kInvalidValueId;      // scalar-text target
    ValueId param_str = kInvalidValueId; // interned string param
    uint64_t param_num = 0;              // bit pattern of numeric param
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = 0xcbf29ce484222325ULL;
      auto mix = [&h](uint64_t x) {
        h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      };
      mix(k.feature);
      mix((uint64_t(k.value) << 16) | (uint64_t(k.target_kind) << 8) |
          k.param_kind);
      mix((uint64_t(k.doc) << 32) | k.begin);
      mix((uint64_t(k.end) << 32) | k.text);
      mix(k.param_str);
      mix(k.param_num);
      return static_cast<size_t>(h);
    }
  };

  /// Memoized verdict: 1 = holds, 0 = does not, -1 = VerifyText returned
  /// nullopt (feature needs document context). nullopt = not cached.
  std::optional<int8_t> Lookup(const Key& k) const;

  /// Caches a verdict. No-op while any fail point is armed (degraded runs
  /// must not populate the memo).
  void Insert(const Key& k, int8_t verdict);

  void Clear();
  size_t size() const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Key, int8_t, KeyHash> map;
  };
  static constexpr size_t kStripes = 16;

  Stripe& stripe(const Key& k) { return stripes_[KeyHash{}(k) % kStripes]; }
  const Stripe& stripe(const Key& k) const {
    return stripes_[KeyHash{}(k) % kStripes];
  }

  std::array<Stripe, kStripes> stripes_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace iflex

#endif  // IFLEX_EXEC_VERIFY_MEMO_H_
