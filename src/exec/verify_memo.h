#ifndef IFLEX_EXEC_VERIFY_MEMO_H_
#define IFLEX_EXEC_VERIFY_MEMO_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/intern.h"
#include "text/span.h"

namespace iflex {

/// Memoization cache for Feature::Verify / Feature::VerifyText (paper
/// §4.2). Both procedures are pure functions of (feature, target, param,
/// value) over a frozen corpus, and the refinement loop re-checks the
/// same spans against the same constraints across iterations and
/// candidate simulations — so one session-scoped memo turns the repeated
/// work into hash lookups.
///
/// Keys use interned ids (feature name, scalar text, string param) from
/// the corpus interner, which are stable for the corpus lifetime; subset
/// catalogs share the corpus, so entries carry across iterations.
///
/// Lifecycle mirrors ReuseCache: striped locks make Lookup/Insert safe
/// from concurrent simulation executors, the owner (RefinementSession or
/// a standalone Executor) clears it with the caches it lives next to, and
/// Insert is suppressed while any fail point is armed so degraded /
/// fault-injected runs never populate it (the analog of keeping degraded
/// tables out of the reuse cache).
class VerifyMemo {
 public:
  struct Key {
    ValueId feature = kInvalidValueId;  // interned feature name
    uint8_t value = 0;                  // FeatureValue
    uint8_t target_kind = 0;            // 0 = span, 1 = scalar text
    uint8_t param_kind = 0;             // 0 = none, 1 = str, 2 = num
    DocId doc = kInvalidDocId;          // span target
    uint32_t begin = 0;
    uint32_t end = 0;
    ValueId text = kInvalidValueId;      // scalar-text target
    ValueId param_str = kInvalidValueId; // interned string param
    uint64_t param_num = 0;              // bit pattern of numeric param
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = 0xcbf29ce484222325ULL;
      auto mix = [&h](uint64_t x) {
        h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      };
      mix(k.feature);
      mix((uint64_t(k.value) << 16) | (uint64_t(k.target_kind) << 8) |
          k.param_kind);
      mix((uint64_t(k.doc) << 32) | k.begin);
      mix((uint64_t(k.end) << 32) | k.text);
      mix(k.param_str);
      mix(k.param_num);
      return static_cast<size_t>(h);
    }
  };

  /// Memoized verdict: 1 = holds, 0 = does not, -1 = VerifyText returned
  /// nullopt (feature needs document context). nullopt = not cached.
  std::optional<int8_t> Lookup(const Key& k) const;

  /// Caches a verdict. No-op while any fail point is armed (degraded runs
  /// must not populate the memo).
  void Insert(const Key& k, int8_t verdict);

  /// Batched Insert: groups entries by stripe and takes each stripe lock
  /// once, so a worker flushing a morsel's verdicts pays O(stripes touched)
  /// lock acquisitions instead of O(entries). Same fail-point suppression
  /// as Insert.
  void InsertBatch(const std::vector<std::pair<Key, int8_t>>& entries);

  /// Folds hits a VerifyMemoL1 answered locally into the shared counter,
  /// keeping hits()+misses() equal to the total lookups the execution
  /// performed no matter which tier answered them.
  void AddHits(uint64_t n) { hits_.fetch_add(n, std::memory_order_relaxed); }

  void Clear();
  size_t size() const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  // Each stripe is padded to its own cache line: with the natural layout
  // adjacent stripe mutexes share lines and 8 workers hammering different
  // stripes still false-share. 64 stripes (up from 16) keeps the expected
  // collision rate low at 8+ workers.
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_map<Key, int8_t, KeyHash> map;
  };
  static constexpr size_t kStripes = 64;

  size_t stripe_index(const Key& k) const { return KeyHash{}(k) % kStripes; }
  Stripe& stripe(const Key& k) { return stripes_[stripe_index(k)]; }
  const Stripe& stripe(const Key& k) const {
    return stripes_[stripe_index(k)];
  }

  std::array<Stripe, kStripes> stripes_;
  alignas(64) mutable std::atomic<uint64_t> hits_{0};
  alignas(64) mutable std::atomic<uint64_t> misses_{0};
};

/// Per-worker L1 in front of a shared VerifyMemo (docs/RUNTIME.md, morsel
/// scheduler). Lives inside a WorkerContext, so the hot verify path takes
/// zero shared stripe locks for repeated verdicts: local hits are answered
/// from a private map, and new verdicts are buffered and flushed to the
/// striped memo in one batched pass at morsel boundaries.
///
/// Counter contract: a local hit is folded into the shared memo's hit
/// count at Flush (AddHits), and a local miss delegates to the shared
/// Lookup which counts itself — so hits()+misses() totals match a run
/// without any L1. Verdicts are pure functions of the frozen corpus, so
/// serving them from any tier (or recomputing while an insert is still
/// buffered) yields byte-identical results; only lock traffic changes.
class VerifyMemoL1 {
 public:
  using Key = VerifyMemo::Key;

  /// Binds to `shared` and clears all local state (call when a worker
  /// context is recycled across executions). Null detaches.
  void Reset(VerifyMemo* shared) {
    FlushTo(shared_);
    shared_ = shared;
    local_.clear();
  }

  bool bound() const { return shared_ != nullptr; }
  VerifyMemo* shared() const { return shared_; }

  std::optional<int8_t> Lookup(const Key& k) {
    auto it = local_.find(k);
    if (it != local_.end()) {
      ++local_hits_;
      return it->second;
    }
    auto cached = shared_->Lookup(k);  // counts its own hit/miss
    if (cached && local_.size() < kMaxLocal) local_.emplace(k, *cached);
    return cached;
  }

  void Insert(const Key& k, int8_t verdict) {
    // Mirror VerifyMemo::Insert's suppression: degraded / fault-injected
    // runs must not populate any memo tier, local included.
    if (resilience_active_()) return;
    if (local_.size() >= kMaxLocal) {
      // Bounded memory: spill the read cache and keep going. Pending
      // inserts spill with it (flushed early, not dropped).
      Flush();
      local_.clear();
    }
    if (local_.emplace(k, verdict).second) pending_.emplace_back(k, verdict);
  }

  /// Pushes buffered inserts into the shared memo (one batched striped
  /// pass) and folds locally-answered hits into its counters. Called at
  /// morsel boundaries by WorkerContext release; idempotent.
  void Flush() { FlushTo(shared_); }

  size_t pending() const { return pending_.size(); }

 private:
  static bool resilience_active_();

  void FlushTo(VerifyMemo* shared) {
    if (shared == nullptr) {
      pending_.clear();
      local_hits_ = 0;
      return;
    }
    if (!pending_.empty()) {
      shared->InsertBatch(pending_);
      pending_.clear();
    }
    if (local_hits_ > 0) {
      shared->AddHits(local_hits_);
      local_hits_ = 0;
    }
  }

  static constexpr size_t kMaxLocal = 1 << 16;

  VerifyMemo* shared_ = nullptr;
  std::unordered_map<Key, int8_t, VerifyMemo::KeyHash> local_;
  std::vector<std::pair<Key, int8_t>> pending_;
  uint64_t local_hits_ = 0;
};

}  // namespace iflex

#endif  // IFLEX_EXEC_VERIFY_MEMO_H_
