#ifndef IFLEX_EXEC_WORKER_CONTEXT_H_
#define IFLEX_EXEC_WORKER_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ctable/compact_table.h"
#include "exec/verify_memo.h"

namespace iflex {

/// Reusable enumeration buffers for the per-tuple filter hot path
/// (RuleEvaluator::EvalFilter). One EvalFilter call enumerates every
/// argument cell into a vector-of-vectors and walks the cross product;
/// allocating those per call dominated the p-function profile. A worker
/// keeps one scratch set warm across every tuple of every morsel it runs.
struct EvalScratch {
  std::vector<std::vector<Value>> arg_values;
  std::vector<size_t> idx;
  std::vector<Value> args;

  /// Readies the first `n_args` argument buffers (cleared, capacity kept).
  void Prepare(size_t n_args) {
    if (arg_values.size() < n_args) arg_values.resize(n_args);
    for (size_t i = 0; i < n_args; ++i) arg_values[i].clear();
    idx.assign(n_args, 0);
    args.clear();
    args.reserve(n_args);
  }
};

/// Per-worker execution state (docs/RUNTIME.md, morsel scheduler): the
/// scratch buffers and memo L1 a TaskPool participant uses while running
/// one morsel (or one whole rule on the serial path). Contexts are pooled
/// rather than keyed by thread identity because joins are *helping* — any
/// thread, including the caller blocked in ParallelFor, may run a morsel —
/// so "one context per OS thread" would leak state across pools and
/// nested batches. Acquire/Release is one uncontended lock per morsel
/// boundary; everything inside the morsel touches only this struct.
struct WorkerContext {
  EvalScratch scratch;
  VerifyMemoL1 memo_l1;
  /// Epoch stamp of the last Acquire (see WorkerContextPool::BeginEpoch).
  uint64_t epoch = 0;

  /// The memo front to hand to cell ops: null when no shared memo is
  /// bound (fast path off), so callers keep the legacy no-memo behavior.
  VerifyMemoL1* memo() { return memo_l1.bound() ? &memo_l1 : nullptr; }
};

/// Freelist of WorkerContexts, owned by an Executor. Grows on demand (one
/// context per concurrently running morsel/rule task, bounded by pool
/// width), never shrinks, and recycles contexts with their buffers warm.
class WorkerContextPool {
 public:
  WorkerContextPool() = default;
  WorkerContextPool(const WorkerContextPool&) = delete;
  WorkerContextPool& operator=(const WorkerContextPool&) = delete;

  /// Starts a new execution epoch bound to `memo` (may be null). Contexts
  /// acquired afterwards flush any stale state and rebind: within one
  /// epoch the shared memo is never cleared, so L1 read caches stay valid
  /// across morsels; across epochs they must not leak (the session may
  /// have cleared its caches between Executes).
  void BeginEpoch(VerifyMemo* memo) {
    std::lock_guard<std::mutex> lock(mu_);
    memo_ = memo;
    ++epoch_;
  }

  WorkerContext* Acquire() {
    WorkerContext* ctx = nullptr;
    VerifyMemo* memo = nullptr;
    uint64_t epoch = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      memo = memo_;
      epoch = epoch_;
      if (!free_.empty()) {
        ctx = free_.back();
        free_.pop_back();
      } else {
        all_.push_back(std::make_unique<WorkerContext>());
        ctx = all_.back().get();
      }
    }
    if (ctx->epoch != epoch || ctx->memo_l1.shared() != memo) {
      ctx->memo_l1.Reset(memo);
      ctx->epoch = epoch;
    }
    return ctx;
  }

  /// Returns a context to the freelist; this is the morsel barrier where
  /// the L1's buffered memo inserts flush to the shared striped memo.
  void Release(WorkerContext* ctx) {
    if (ctx == nullptr) return;
    ctx->memo_l1.Flush();
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(ctx);
  }

  /// Contexts ever created (== the high-water mark of concurrent tasks).
  size_t created() const {
    std::lock_guard<std::mutex> lock(mu_);
    return all_.size();
  }

 private:
  mutable std::mutex mu_;
  VerifyMemo* memo_ = nullptr;
  uint64_t epoch_ = 0;
  std::vector<std::unique_ptr<WorkerContext>> all_;
  std::vector<WorkerContext*> free_;
};

/// RAII Acquire/Release over one morsel or rule evaluation.
class WorkerContextLease {
 public:
  WorkerContextLease() = default;
  explicit WorkerContextLease(WorkerContextPool* pool)
      : pool_(pool), ctx_(pool != nullptr ? pool->Acquire() : nullptr) {}
  ~WorkerContextLease() { reset(); }

  WorkerContextLease(const WorkerContextLease&) = delete;
  WorkerContextLease& operator=(const WorkerContextLease&) = delete;
  WorkerContextLease(WorkerContextLease&& other) noexcept
      : pool_(other.pool_), ctx_(other.ctx_) {
    other.pool_ = nullptr;
    other.ctx_ = nullptr;
  }
  WorkerContextLease& operator=(WorkerContextLease&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      ctx_ = other.ctx_;
      other.pool_ = nullptr;
      other.ctx_ = nullptr;
    }
    return *this;
  }

  WorkerContext* get() const { return ctx_; }

  void reset() {
    if (pool_ != nullptr && ctx_ != nullptr) pool_->Release(ctx_);
    pool_ = nullptr;
    ctx_ = nullptr;
  }

 private:
  WorkerContextPool* pool_ = nullptr;
  WorkerContext* ctx_ = nullptr;
};

}  // namespace iflex

#endif  // IFLEX_EXEC_WORKER_CONTEXT_H_
