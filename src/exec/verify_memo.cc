#include "exec/verify_memo.h"

#include "resilience/failpoint.h"

namespace iflex {

std::optional<int8_t> VerifyMemo::Lookup(const Key& k) const {
  const Stripe& s = stripe(k);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(k);
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void VerifyMemo::Insert(const Key& k, int8_t verdict) {
  if (resilience::FailPoints::Active()) return;
  Stripe& s = stripe(k);
  std::lock_guard<std::mutex> lock(s.mu);
  s.map.emplace(k, verdict);
}

void VerifyMemo::Clear() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
  }
}

size_t VerifyMemo::size() const {
  size_t n = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

}  // namespace iflex
