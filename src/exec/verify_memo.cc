#include "exec/verify_memo.h"

#include "resilience/failpoint.h"

namespace iflex {

std::optional<int8_t> VerifyMemo::Lookup(const Key& k) const {
  const Stripe& s = stripe(k);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(k);
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void VerifyMemo::Insert(const Key& k, int8_t verdict) {
  if (resilience::FailPoints::Active()) return;
  Stripe& s = stripe(k);
  std::lock_guard<std::mutex> lock(s.mu);
  s.map.emplace(k, verdict);
}

void VerifyMemo::InsertBatch(
    const std::vector<std::pair<Key, int8_t>>& entries) {
  if (entries.empty() || resilience::FailPoints::Active()) return;
  // One pass per touched stripe, entries applied in batch order within a
  // stripe (stripe indices hashed once up front). emplace keeps the first
  // verdict on duplicates — identical by purity, so flush order across
  // workers never matters.
  std::vector<uint8_t> idx(entries.size());
  std::array<bool, kStripes> touched{};
  for (size_t i = 0; i < entries.size(); ++i) {
    idx[i] = static_cast<uint8_t>(stripe_index(entries[i].first));
    touched[idx[i]] = true;
  }
  for (size_t si = 0; si < kStripes; ++si) {
    if (!touched[si]) continue;
    Stripe& s = stripes_[si];
    std::lock_guard<std::mutex> lock(s.mu);
    for (size_t i = 0; i < entries.size(); ++i) {
      if (idx[i] == si) s.map.emplace(entries[i].first, entries[i].second);
    }
  }
}

bool VerifyMemoL1::resilience_active_() {
  return resilience::FailPoints::Active();
}

void VerifyMemo::Clear() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
  }
}

size_t VerifyMemo::size() const {
  size_t n = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

}  // namespace iflex
